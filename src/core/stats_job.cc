#include "core/stats_job.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/er_driver.h"
#include "mapreduce/pipeline.h"
#include "mapreduce/serde.h"

namespace progres {

namespace {

// Shuffle value of the statistics job: the entity's blocking key chain for
// one family plus its dominating-root-key tuple.
struct StatsValue {
  std::vector<std::string> level_keys;  // keys at levels 1..L
  std::string tuple;                    // dominating families' root keys
};

// One per-block statistics record produced by the reduce phase.
struct StatsRecord {
  int family = 0;
  int level = 1;
  std::string path;
  std::string parent_path;  // empty for roots
  int64_t size = 0;
  int64_t uncov = 0;
};

constexpr double kMapEmitCost = 0.05;
constexpr double kReduceValueCost = 0.05;

}  // namespace

// Wire form of StatsValue: a counted sequence of level keys, then the
// tuple — each length-prefixed, matching the job's wire-size accounting
// plus one varint for the sequence count.
template <>
struct KvCodec<StatsValue> {
  static void Encode(const StatsValue& value, std::string* out) {
    PutVarint64(value.level_keys.size(), out);
    for (const std::string& level_key : value.level_keys) {
      PutString(level_key, out);
    }
    PutString(value.tuple, out);
  }
  static bool Decode(std::string_view in, size_t* offset, StatsValue* value) {
    uint64_t count = 0;
    if (!GetVarint64(in, offset, &count)) return false;
    // Each key costs at least its one-byte length prefix, so a count past
    // the remaining bytes is corruption — reject before reserving.
    if (count > in.size() - *offset) return false;
    value->level_keys.clear();
    value->level_keys.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      std::string level_key;
      if (!GetString(in, offset, &level_key)) return false;
      value->level_keys.push_back(std::move(level_key));
    }
    return GetString(in, offset, &value->tuple);
  }
};

StatsJobOutput RunStatisticsJob(const Dataset& dataset,
                                const BlockingConfig& config,
                                const ClusterConfig& cluster,
                                int num_map_tasks, int num_reduce_tasks,
                                double submit_time) {
  StatsJobOutput output;

  // Preprocessing is all-or-nothing: the degradation budget applies to
  // resolution output, not the statistics pre-pass (a partial forest would
  // silently skew every downstream schedule), so the pre-pass runs with job
  // supervision stripped and its failures stay hard failures.
  ClusterConfig stats_cluster = cluster;
  stats_cluster.control = JobControl{};

  // Per-reduce-task record sinks (each task writes only its own slot). A
  // failed reduce attempt may have flushed records into its sink; the
  // registry's abort hook drops them so the retry starts clean.
  TaskStateRegistry<std::vector<StatsRecord>> sinks(num_reduce_tasks);

  // This inner pipeline deliberately does not register with the trace
  // recorder: when the progressive driver calls in here its own pipeline
  // already opened a "statistics job" process, so the job's spans land
  // there via the recorder's current pid (a standalone RunStatisticsJob
  // records under the default pid 0).
  Pipeline pipe;
  pipe.AddStage("statistics job", [&](double stage_submit) {
    using Job = MapReduceJob<Entity, std::string, StatsValue>;
    Job job(num_map_tasks, num_reduce_tasks);
    job.set_map_cost_per_record(0.1);
    job.set_wire_size([](const std::string& key, const StatsValue& value) {
      int64_t bytes = static_cast<int64_t>(VarintSize(key.size())) +
                      static_cast<int64_t>(key.size());
      for (const std::string& level_key : value.level_keys) {
        bytes += static_cast<int64_t>(VarintSize(level_key.size())) +
                 static_cast<int64_t>(level_key.size());
      }
      bytes += static_cast<int64_t>(VarintSize(value.tuple.size())) +
               static_cast<int64_t>(value.tuple.size());
      return bytes;
    });
    sinks.InstallAbortReset(&job);

    const auto map_fn = [&config](const Entity& e, Job::MapContext* ctx) {
      for (int f = 0; f < config.num_families(); ++f) {
        StatsValue value;
        const int levels = config.family(f).levels();
        value.level_keys.reserve(static_cast<size_t>(levels));
        for (int level = 1; level <= levels; ++level) {
          value.level_keys.push_back(config.Key(f, level, e));
        }
        for (int d = 0; d < f; ++d) {
          if (d > 0) value.tuple.push_back(kTupleSeparator);
          value.tuple += config.Key(d, 1, e);
        }
        std::string key;
        key.push_back(static_cast<char>('0' + f));
        key.push_back(kPathSeparator);
        key += value.level_keys.front();
        ctx->clock().Charge(kMapEmitCost);
        ctx->Emit(std::move(key), std::move(value));
      }
    };

    const auto reduce_fn = [&sinks](const std::string& key,
                                    std::vector<StatsValue>* values,
                                    Job::ReduceContext* ctx) {
      const int family = key.front() - '0';
      // Reconstruct the tree of this root block: per-path sizes, levels,
      // parents, and joint overlap-tuple counts.
      struct NodeAgg {
        int level = 1;
        std::string parent_path;
        int64_t size = 0;
        std::unordered_map<std::string, int64_t> joint;
      };
      std::unordered_map<std::string, NodeAgg> nodes;
      for (const StatsValue& value : *values) {
        ctx->clock().Charge(kReduceValueCost);
        std::string path;
        std::string parent_path;
        for (size_t level = 1; level <= value.level_keys.size(); ++level) {
          if (level > 1) path.push_back(kPathSeparator);
          path += value.level_keys[level - 1];
          NodeAgg& agg = nodes[path];
          agg.level = static_cast<int>(level);
          agg.parent_path = parent_path;
          ++agg.size;
          if (family > 0) ++agg.joint[value.tuple];
          parent_path = path;
        }
      }
      std::vector<StatsRecord>& sink = sinks.at(ctx->task_id());
      for (auto& [path, agg] : nodes) {
        StatsRecord record;
        record.family = family;
        record.level = agg.level;
        record.path = path;
        record.parent_path = std::move(agg.parent_path);
        record.size = agg.size;
        record.uncov = UncoveredFromJointCounts(agg.joint, family);
        ctx->clock().Charge(kReduceValueCost);
        sink.push_back(std::move(record));
      }
    };

    Job::Result run = job.Run(dataset.entities(), map_fn, reduce_fn,
                              stats_cluster, stage_submit);
    output.timing = run.timing;
    return StageResultFromJob(std::move(run), "statistics job");
  });

  const PipelineResult pipe_result = pipe.Run(submit_time);
  output.counters = pipe_result.counters;
  if (pipe_result.failed) {
    output.failed = true;
    output.error = pipe_result.error;
    return output;
  }

  // ---- Assemble forests from the emitted records ----
  std::vector<StatsRecord> records;
  for (auto& sink : sinks.states()) {
    for (auto& record : sink) records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const StatsRecord& a, const StatsRecord& b) {
              if (a.family != b.family) return a.family < b.family;
              if (a.level != b.level) return a.level < b.level;
              return a.path < b.path;
            });

  output.forests.resize(static_cast<size_t>(config.num_families()));
  for (int f = 0; f < config.num_families(); ++f) {
    output.forests[static_cast<size_t>(f)].family = f;
  }
  for (const StatsRecord& record : records) {
    Forest& forest = output.forests[static_cast<size_t>(record.family)];
    const int index = static_cast<int>(forest.nodes.size());
    forest.by_path.emplace(record.path, index);
    BlockNode node;
    node.id = {record.family, record.level, record.path};
    node.size = record.size;
    node.uncov = record.uncov;
    if (record.level == 1) {
      node.parent = -1;
      forest.roots.push_back(index);
    } else {
      node.parent = forest.by_path.at(record.parent_path);
      forest.nodes[static_cast<size_t>(node.parent)].children.push_back(index);
    }
    forest.nodes.push_back(std::move(node));
  }
  return output;
}

}  // namespace progres

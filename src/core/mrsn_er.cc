#include "core/mrsn_er.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "core/er_driver.h"
#include "mapreduce/job.h"
#include "mapreduce/pipeline.h"
#include "mapreduce/serde.h"

namespace progres {

namespace {

constexpr double kComparisonCost = 1.0;
constexpr double kReplicaSkipCost = 0.01;
constexpr double kReadCost = 0.1;
// Cost units charged per entity for the boundary (sampling) pre-pass.
constexpr double kBoundaryCostPerEntity = 0.05;

// Rank keys are offset by range so that the partitioner is a plain
// division and keys stay globally sorted within a task.
constexpr int64_t kRankStride = int64_t{1} << 32;

struct SlideValue {
  EntityId id = -1;
  // False for the window-replica copies shipped into the next range; pairs
  // between two replicas were already compared in their home range.
  bool owned = true;
};

struct MrsnTaskState : ErTaskState {
  std::deque<SlideValue> window;
};

}  // namespace

// Wire form of SlideValue: the entity id as a varint plus one flag byte —
// the same layout the job's wire-size accounting describes.
template <>
struct KvCodec<SlideValue> {
  static void Encode(const SlideValue& value, std::string* out) {
    PutVarint64(static_cast<uint64_t>(value.id), out);
    out->push_back(value.owned ? '\1' : '\0');
  }
  static bool Decode(std::string_view in, size_t* offset, SlideValue* value) {
    uint64_t id = 0;
    if (!GetVarint64(in, offset, &id)) return false;
    if (*offset >= in.size()) return false;
    value->id = static_cast<EntityId>(id);
    value->owned = in[*offset] != '\0';
    ++*offset;
    return true;
  }
};

MrsnEr::MrsnEr(const BlockingConfig& blocking, const MatchFunction& match,
               MrsnOptions options)
    : blocking_(blocking),
      match_(match),
      options_(std::move(options)) {}

ErRunResult MrsnEr::Run(const Dataset& dataset) const {
  const int map_tasks = options_.num_map_tasks > 0
                            ? options_.num_map_tasks
                            : options_.cluster.map_slots();
  const int reduce_tasks = options_.num_reduce_tasks > 0
                               ? options_.num_reduce_tasks
                               : options_.cluster.reduce_slots();
  const int64_t n = dataset.size();
  const double spc = options_.cluster.seconds_per_cost_unit;

  ErRunResult result;

  // Written by each pass's boundary pre-pass, read by the pass's job.
  std::vector<int64_t> rank_of(static_cast<size_t>(n));

  // One boundary pre-pass + one MR job per blocking family, chained on the
  // simulated clock.
  Pipeline pipe;
  pipe.set_trace(options_.cluster.trace);
  for (int pass = 0; pass < blocking_.num_families(); ++pass) {
    // ---- Boundary pre-pass: global sort order and range boundaries ----
    pipe.AddComputation("boundary pre-pass", [&, pass](double /*submit*/) {
      const int attr = blocking_.SortAttribute(pass);
      std::vector<EntityId> order(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        order[static_cast<size_t>(i)] = static_cast<EntityId>(i);
      }
      std::sort(order.begin(), order.end(), [&](EntityId a, EntityId b) {
        const auto va = dataset.entity(a).attribute(static_cast<size_t>(attr));
        const auto vb = dataset.entity(b).attribute(static_cast<size_t>(attr));
        if (va != vb) return va < vb;
        return a < b;
      });
      for (int64_t r = 0; r < n; ++r) {
        rank_of[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
      }
      return kBoundaryCostPerEntity * static_cast<double>(n) * spc;
    });

    // ---- The pass's MR job ----
    pipe.AddStage("mrsn pass", [&, pass](double submit_time) {
      const auto range_of_rank = [&](int64_t rank) {
        return static_cast<int>(rank * reduce_tasks / std::max<int64_t>(1, n));
      };
      const auto range_end = [&](int range) {
        return static_cast<int64_t>(range + 1) * n / reduce_tasks;
      };

      using Job = MapReduceJob<Entity, int64_t, SlideValue>;
      Job job(map_tasks, reduce_tasks);
      job.set_map_cost_per_record(kReadCost);
      job.set_partitioner([](const int64_t& key, int /*r*/) {
        return static_cast<int>(key / kRankStride);
      });
      job.set_wire_size([](const int64_t& key, const SlideValue& value) {
        return static_cast<int64_t>(VarintSize(static_cast<uint64_t>(key))) +
               static_cast<int64_t>(
                   VarintSize(static_cast<uint64_t>(value.id))) +
               1;  // the owned flag
      });
      // Resolution-side user code: poison records crash its map attempts.
      // SurfaceQuarantinedIds dedups across the per-family passes.
      job.set_poison_faults(true);

      const int window = options_.window;
      const auto map_fn = [&](const Entity& e, Job::MapContext* ctx) {
        const int64_t rank = rank_of[static_cast<size_t>(e.id)];
        const int range = range_of_rank(rank);
        ctx->Emit(static_cast<int64_t>(range) * kRankStride + rank,
                  {e.id, /*owned=*/true});
        // Replicate the range's tail into the next range so the sliding
        // window covers cross-boundary pairs.
        if (range + 1 < reduce_tasks &&
            rank >= range_end(range) - (window - 1)) {
          ctx->clock().Charge(kReadCost);
          ctx->counters().Increment("map.replicas");
          ctx->Emit(static_cast<int64_t>(range + 1) * kRankStride + rank,
                    {e.id, /*owned=*/false});
        }
      };

      // Retried attempts replay the pass's whole partition; the registry's
      // abort hook clears the task's sliding-window state and events first.
      // Supervised runs snapshot the state at alpha boundaries instead so a
      // deadline cut or quarantine can deliver a checkpointed prefix.
      TaskStateRegistry<MrsnTaskState> states(reduce_tasks);
      CheckpointStore checkpoints;
      if (options_.cluster.control.active()) {
        states.InstallCheckpointRecovery(&job, options_.alpha, &checkpoints);
      } else {
        states.InstallAbortReset(&job);
      }

      const auto reduce_fn = [&](const int64_t& /*key*/,
                                 std::vector<SlideValue>* values,
                                 Job::ReduceContext* ctx) {
        MrsnTaskState& state = states.at(ctx->task_id());
        for (const SlideValue& value : *values) {
          const Entity& e = dataset.entity(value.id);
          for (const SlideValue& previous : state.window) {
            if (!previous.owned && !value.owned) {
              // Both replicas: compared in their home range already.
              ctx->clock().Charge(kReplicaSkipCost);
              ++state.skipped;
              continue;
            }
            ctx->clock().Charge(kComparisonCost);
            if (match_.Resolve(dataset.entity(previous.id), e)) {
              ++state.duplicates;
              state.raw_events.emplace_back(
                  ctx->clock().units(), MakePairKey(previous.id, value.id));
            } else {
              ++state.distinct;
            }
          }
          state.window.push_back(value);
          if (static_cast<int>(state.window.size()) > window - 1) {
            state.window.pop_front();
          }
        }
      };

      Job::Result run = job.Run(dataset.entities(), map_fn, reduce_fn,
                                options_.cluster, submit_time);
      SurfaceQuarantinedIds(run.quarantined, dataset.entities(), &result);
      result.completeness.MergeFrom(run.completeness);
      if (!run.failed) {
        AccumulateReduceTasks(states.states(), run.timing, run.reduce_stats,
                              spc, options_.alpha, &result,
                              options_.cluster.trace);
      }
      return StageResultFromJob(std::move(run), "mrsn pass");
    });
  }

  const PipelineResult pipe_result = pipe.Run(/*submit_time=*/0.0);
  result.counters = pipe_result.counters;
  result.total_time = pipe_result.end;
  result.wall_seconds = pipe_result.wall_seconds;
  if (pipe_result.failed) {
    result.failed = true;
    result.error = pipe_result.error;
  } else {
    result.preprocessing_end = 0.0;
  }
  FinalizeDuplicates(&result);
  return result;
}

}  // namespace progres

#ifndef PROGRES_CORE_PROGRESSIVE_ER_H_
#define PROGRES_CORE_PROGRESSIVE_ER_H_

#include <string>
#include <vector>

#include "blocking/blocking_function.h"
#include "core/er_result.h"
#include "estimate/annotated_forest.h"
#include "estimate/prob_model.h"
#include "mapreduce/cluster.h"
#include "mechanism/mechanism.h"
#include "schedule/schedule.h"
#include "similarity/match_function.h"

namespace progres {

class Pipeline;

// How the second job's map phase routes an entity to its blocks
// (footnote 5 of the paper).
enum class MapEmission {
  // Naive: one key-value pair per (entity, block).
  kPerBlock,
  // Optimized: one key-value pair per (entity, tree), keyed by the tree's
  // first scheduled block; the reduce task regroups entities into blocks
  // locally. Cuts shuffle volume by roughly the average tree depth.
  kPerTree,
};

// Options of the full two-job progressive approach (Sec. III).
struct ProgressiveErOptions {
  ClusterConfig cluster;
  EstimateParams estimate;

  // 0 means "all slots", matching the paper's configuration where the
  // number of concurrent tasks equals the slot count.
  int num_map_tasks = 0;
  int num_reduce_tasks = 0;

  // Schedule-generation knobs (Sec. IV-C). Empty cost vector: a uniform
  // 10-point vector over the estimated total cost is used.
  std::vector<double> cost_vector;
  std::vector<double> weights;
  int batch_size = 4;
  TreeScheduler scheduler = TreeScheduler::kOurs;

  // Dominance-list redundancy elimination (Sec. V). Disable only for the
  // ablation bench.
  bool redundancy_elimination = true;

  // Incremental output interval alpha, in cost units (Sec. III-B).
  double alpha = 5000.0;

  // Map-side emission strategy (footnote 5).
  MapEmission map_emission = MapEmission::kPerBlock;

  // Resolution cost budget per reduce task, in cost units (> 0 enables the
  // budgeted variant the extended report describes: generate the highest
  // quality result within a cost budget). The schedule is truncated to the
  // highest-utility blocks fitting the budget and reduce tasks stop once
  // their clock exceeds it.
  double per_task_cost_budget = 0.0;

  // Cost units charged for generating the progressive schedule, per live
  // block (the map-task setup work of the second job).
  double schedule_cost_per_block = 0.2;

  // Checkpointed progressive recovery (checkpoint.h): reduce tasks of the
  // resolution job snapshot their state at each alpha-emission boundary and
  // a fault-injected re-attempt resumes from the latest snapshot instead of
  // replaying from scratch. Resolved pairs stay byte-identical either way;
  // only the re-executed work (and so the simulated timeline and "mr."
  // bookkeeping) shrinks.
  bool checkpoint_recovery = false;

  // Cross-process restart: a non-empty dir persists the resolution job's
  // checkpoints to disk (CRC-framed, atomically replaced), implying
  // checkpoint_recovery. With `resume`, a fresh process restores each
  // task's surviving snapshot and replays only past it — byte-identical
  // resolved pairs, strictly fewer re-resolved ones. A finished run deletes
  // its snapshot files (a completed job must not be resumed).
  std::string checkpoint_dir;
  bool resume = false;

  // > 0 kills the process (exit code 17, no unwind) after that many
  // persisted checkpoint saves — the deterministic mid-run crash behind the
  // restart tests and progres_cli --crash-after-checkpoints.
  int crash_after_checkpoints = 0;
};

// The paper's parallel progressive ER approach: a statistics job
// (progressive blocking), schedule generation, and a progressive resolution
// job whose reduce tasks resolve blocks bottom-up with mechanism M.
class ProgressiveEr {
 public:
  // `blocking` and `match` are copied. `mechanism` (the progressive
  // mechanism M) and `prob` (the trained duplicate-probability model) are
  // held by reference and must outlive the driver.
  ProgressiveEr(const BlockingConfig& blocking, const MatchFunction& match,
                const ProgressiveMechanism& mechanism,
                const ProbabilityModel& prob, ProgressiveErOptions options);

  // Resolves `dataset` end to end. Deterministic for fixed inputs.
  ErRunResult Run(const Dataset& dataset) const;

  // Introspection for tests/benches: runs only the preprocessing (stats job,
  // annotation, schedule generation), returning the annotated forests and
  // the schedule.
  struct Preprocessed {
    std::vector<AnnotatedForest> forests;
    ProgressiveSchedule schedule;
    double end_time = 0.0;  // simulated end of preprocessing
    // Set when the statistics job exhausted its fault budget.
    bool failed = false;
    std::string error;
  };
  Preprocessed Preprocess(const Dataset& dataset) const;

 private:
  // Appends the preprocessing stages — the statistics job and the
  // schedule-generation computation — to `pipe`. The stages write the
  // annotated forests and the schedule into `pre` as they execute.
  void AddPreprocessStages(const Dataset& dataset, Pipeline* pipe,
                           Preprocessed* pre) const;

  BlockingConfig blocking_;
  MatchFunction match_;
  const ProgressiveMechanism& mechanism_;
  const ProbabilityModel& prob_;
  ProgressiveErOptions options_;
};

}  // namespace progres

#endif  // PROGRES_CORE_PROGRESSIVE_ER_H_

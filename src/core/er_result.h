#ifndef PROGRES_CORE_ER_RESULT_H_
#define PROGRES_CORE_ER_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/recall_curve.h"
#include "mapreduce/counters.h"
#include "mapreduce/fault.h"
#include "mapreduce/supervisor.h"
#include "model/entity.h"

namespace progres {

// One incremental-output file (Sec. III-B): every alpha cost units each
// reduce task closes its current result file and starts a new one, so the
// results available at time t are the union of all chunks with
// flush_time <= t.
struct ResultChunk {
  int task = 0;
  double cost_begin = 0.0;  // task-local cost units
  double cost_end = 0.0;
  double flush_time = 0.0;  // global simulated seconds when the chunk closed
  std::vector<PairKey> pairs;
};

// Outcome of one end-to-end ER run (progressive or basic driver).
struct ErRunResult {
  // Fine-grained duplicate discoveries with global simulated times.
  std::vector<DuplicateEvent> events;
  // Unique duplicate pairs found over the whole run.
  std::vector<PairKey> duplicates;
  // Incremental output files.
  std::vector<ResultChunk> chunks;

  // End of preprocessing (first job + schedule generation); 0 for Basic.
  double preprocessing_end = 0.0;
  // Simulated completion time of the whole run.
  double total_time = 0.0;
  // Measured wall-clock duration of the run (seconds). A real measurement
  // on the driver's clock — varies run to run, excluded from the golden
  // dumps, and never mixed with the simulated times above.
  double wall_seconds = 0.0;

  // Aggregate resolution counters (across all reduce tasks).
  int64_t comparisons = 0;
  int64_t duplicate_count = 0;
  int64_t distinct_count = 0;
  int64_t skipped_count = 0;

  // Named MR counters merged across all tasks of the resolution job
  // (e.g. "map.emitted_pairs", "reduce.blocks_resolved").
  Counters counters;

  // Entities the runtime quarantined as poison records
  // (FaultConfig::skip_bad_records), sorted ascending, duplicates removed.
  // Pairs touching these entities are the only ones a faulty run may miss
  // relative to a fault-free run.
  std::vector<EntityId> quarantined_ids;

  // Job-supervision completeness report, merged across the run's MR jobs
  // (multi-pass drivers fold one report per pass). Inert — degraded=false,
  // covered_fraction=1.0 — unless ClusterConfig::control is active. A
  // degraded run keeps failed=false; this report tells callers what the
  // delivered output covers.
  CompletenessReport completeness;

  // Set when an underlying MR job exhausted its fault-injection
  // max_attempts budget; events/duplicates/chunks are empty in that case.
  bool failed = false;
  std::string error;
};

// Coarsened event stream: each duplicate is visible only when its chunk is
// flushed. Used by the alpha ablation to study the publish granularity.
std::vector<DuplicateEvent> EventsFromChunks(
    const std::vector<ResultChunk>& chunks);

// Shared by the drivers: appends one reduce task's raw duplicate
// discoveries ((task-local cost, pair), nondecreasing in cost) to `result`,
// stamping global event times (start_time + cost * seconds_per_cost_unit)
// and cutting `alpha`-sized incremental-output chunks.
void AppendTaskEvents(
    int task, double start_time, double task_cost,
    double seconds_per_cost_unit, double alpha,
    const std::vector<std::pair<double, PairKey>>& raw_events,
    ErRunResult* result);

// Fills ErRunResult::duplicates with the sorted unique pairs of `events`.
void FinalizeDuplicates(ErRunResult* result);

// Shared by the drivers: translates quarantined input records (indices into
// `entities`) to entity ids and merges them into result->quarantined_ids,
// keeping the list sorted and unique (multi-pass drivers like MRSN surface
// the same poison record once per pass).
void SurfaceQuarantinedIds(const std::vector<QuarantinedRecord>& quarantined,
                           const std::vector<Entity>& entities,
                           ErRunResult* result);

}  // namespace progres

#endif  // PROGRES_CORE_ER_RESULT_H_

#ifndef PROGRES_CORE_STATS_JOB_H_
#define PROGRES_CORE_STATS_JOB_H_

#include <string>
#include <vector>

#include "blocking/forest.h"
#include "mapreduce/job.h"
#include "model/dataset.h"

namespace progres {

// Result of the first MR job (Sec. III-B): the per-family forests with
// block sizes, child keys, and uncovered-pair counts. Structurally identical
// to BuildForests + ComputeUncoveredPairs (asserted by integration tests),
// but computed with a real map/shuffle/reduce pass whose cost feeds the
// simulated timeline (this is the preprocessing overhead visible in
// Fig. 10).
struct StatsJobOutput {
  std::vector<Forest> forests;
  JobTiming timing;
  // Named MR counters of the job, including the runtime's "mr." ones.
  Counters counters;
  // Set when the job exhausted its fault-injection max_attempts budget;
  // `forests` is empty in that case.
  bool failed = false;
  std::string error;
};

// Runs the progressive-blocking + statistics job. The map phase annotates
// each entity with its blocking key values and routes one record per family
// to the reduce task owning the entity's root block; each reduce call
// reconstructs one tree, counting block sizes and overlap tuples.
StatsJobOutput RunStatisticsJob(const Dataset& dataset,
                                const BlockingConfig& config,
                                const ClusterConfig& cluster,
                                int num_map_tasks, int num_reduce_tasks,
                                double submit_time = 0.0);

}  // namespace progres

#endif  // PROGRES_CORE_STATS_JOB_H_

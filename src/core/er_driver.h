#ifndef PROGRES_CORE_ER_DRIVER_H_
#define PROGRES_CORE_ER_DRIVER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/er_result.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_clock.h"
#include "mapreduce/counters.h"
#include "mapreduce/fault.h"
#include "mapreduce/trace.h"
#include "mechanism/mechanism.h"
#include "model/entity.h"

namespace progres {

// Shared scaffolding of the ER drivers (Basic, MRSN, Progressive, and the
// statistics job): every driver accumulates external per-reduce-task state
// alongside its MR job, must reset that state when a fault-injected attempt
// aborts, and assembles the same ErRunResult shape from per-task events.
// This header factors those three concerns out of the drivers.

// The per-reduce-task accumulator every resolving driver shares: the raw
// duplicate-discovery events (task-local cost order) plus outcome tallies.
// Drivers with extra per-task state (MRSN's sliding window, the progressive
// driver's tree buffers) derive from it.
struct ErTaskState {
  std::vector<std::pair<double, PairKey>> raw_events;
  int64_t duplicates = 0;
  int64_t distinct = 0;
  int64_t skipped = 0;
};

// Owns one State per reduce task (each task writes only its own slot, so no
// synchronization is needed) and wires the fault-tolerance contract: a
// fault-injected reduce attempt that dies default-reconstructs its task's
// State, so the retry never double-counts.
template <typename State>
class TaskStateRegistry {
 public:
  explicit TaskStateRegistry(int num_tasks)
      : states_(static_cast<size_t>(std::max(1, num_tasks))) {}

  State& at(int task) { return states_[static_cast<size_t>(task)]; }
  const State& at(int task) const { return states_[static_cast<size_t>(task)]; }
  size_t size() const { return states_.size(); }
  std::vector<State>& states() { return states_; }
  const std::vector<State>& states() const { return states_; }

  // Installs the job's task-abort hook: a failing reduce attempt resets its
  // task's State to a freshly-constructed one.
  template <typename Job>
  void InstallAbortReset(Job* job) {
    job->set_task_abort(
        [this](TaskPhase phase, int task_id, int /*attempt*/) {
          if (phase == TaskPhase::kReduce) {
            states_[static_cast<size_t>(task_id)] = State();
          }
        });
  }

  // Installs checkpointed recovery instead (checkpoint.h): the job
  // snapshots a copy of the task's State at each alpha-emission boundary
  // and a re-attempt restores the latest snapshot (or a fresh State when
  // none exists) rather than replaying from scratch. `store` must outlive
  // the job's Run. State must be copyable.
  //
  // With `encode`/`decode` supplied, they are installed on the store as its
  // type-erased driver-state codec, which persisted snapshots need
  // (CheckpointStore::ConfigurePersistence): a restarted process rebuilds
  // the State from the serialized blob instead of the dead process's
  // pointer. `decode` returning false marks the snapshot corrupt.
  template <typename Job>
  void InstallCheckpointRecovery(
      Job* job, double alpha, CheckpointStore* store,
      std::function<std::string(const State&)> encode = nullptr,
      std::function<bool(std::string_view, State*)> decode = nullptr) {
    if (encode != nullptr && decode != nullptr) {
      store->SetStateCodec(
          [encode = std::move(encode)](
              const std::shared_ptr<const void>& state) -> std::string {
            return state == nullptr
                       ? std::string()
                       : encode(*static_cast<const State*>(state.get()));
          },
          [decode = std::move(decode)](
              std::string_view blob) -> std::shared_ptr<const void> {
            auto state = std::make_shared<State>();
            if (!decode(blob, state.get())) return nullptr;
            return state;
          });
    }
    job->set_checkpointing(
        alpha, store,
        [this](int task_id) -> std::shared_ptr<const void> {
          return std::make_shared<const State>(
              states_[static_cast<size_t>(task_id)]);
        },
        [this](int task_id, const void* snapshot) {
          State& state = states_[static_cast<size_t>(task_id)];
          if (snapshot == nullptr) {
            state = State();
          } else {
            state = *static_cast<const State*>(snapshot);
          }
        });
  }

 private:
  std::vector<State> states_;
};

// The on_duplicate callback the drivers hand to the mechanism: records one
// discovery as (task-local cost now, pair) into the task's event stream.
inline std::function<void(EntityId, EntityId)> EventSink(ErTaskState* state,
                                                         CostClock* clock) {
  return [state, clock](EntityId a, EntityId b) {
    state->raw_events.emplace_back(clock->units(), MakePairKey(a, b));
  };
}

// Tallies one resolved block's outcome into the task state and the standard
// "reduce.*" counters (shared by the basic and progressive drivers).
void RecordResolveOutcome(const ResolveOutcome& outcome, ErTaskState* state,
                          Counters* counters);

// Assembles the per-task portion of an ErRunResult after a successful
// resolution job: aggregate tallies plus the globally-timed event stream
// and incremental-output chunks of every reduce task, in task order. With a
// `trace` attached, every incremental-output chunk is also recorded as an
// alpha-emission trace event (carrying the task-cumulative pair count), on
// the slot lane of the task's winning reduce attempt.
template <typename State>
void AccumulateReduceTasks(const std::vector<State>& states,
                           const JobTiming& timing,
                           const std::vector<TaskStats>& reduce_stats,
                           double seconds_per_cost_unit, double alpha,
                           ErRunResult* result,
                           TraceRecorder* trace = nullptr) {
  for (size_t t = 0; t < reduce_stats.size(); ++t) {
    const ErTaskState& state = states[t];
    result->duplicate_count += state.duplicates;
    result->distinct_count += state.distinct;
    result->skipped_count += state.skipped;
    result->comparisons += state.duplicates + state.distinct;
    const size_t first_chunk = result->chunks.size();
    AppendTaskEvents(static_cast<int>(t), timing.reduce_start[t],
                     reduce_stats[t].cost, seconds_per_cost_unit, alpha,
                     state.raw_events, result);
    if (trace == nullptr) continue;
    int slot = -1;
    for (const TaskAttemptTiming& a : timing.reduce_attempts) {
      if (a.won && a.task == static_cast<int>(t)) {
        slot = a.slot;
        break;
      }
    }
    int64_t cumulative = 0;
    for (size_t c = first_chunk; c < result->chunks.size(); ++c) {
      const ResultChunk& chunk = result->chunks[c];
      cumulative += static_cast<int64_t>(chunk.pairs.size());
      AlphaEmission emission;
      emission.pid = trace->current_pid();
      emission.task = static_cast<int>(t);
      emission.slot = slot;
      emission.time = chunk.flush_time;
      emission.pairs = static_cast<int64_t>(chunk.pairs.size());
      emission.cumulative_pairs = cumulative;
      trace->RecordEmission(emission);
    }
  }
}

}  // namespace progres

#endif  // PROGRES_CORE_ER_DRIVER_H_

#include "core/er_driver.h"

namespace progres {

void RecordResolveOutcome(const ResolveOutcome& outcome, ErTaskState* state,
                          Counters* counters) {
  state->duplicates += outcome.duplicates;
  state->distinct += outcome.distinct;
  state->skipped += outcome.skipped;
  counters->Increment("reduce.blocks_resolved");
  counters->Increment("reduce.duplicates", outcome.duplicates);
  counters->Increment("reduce.comparisons",
                      outcome.duplicates + outcome.distinct);
  counters->Increment("reduce.skipped", outcome.skipped);
  if (outcome.stopped_early) {
    counters->Increment("reduce.blocks_stopped_early");
  }
}

}  // namespace progres

#include "core/er_result.h"

#include <algorithm>
#include <unordered_set>

namespace progres {

std::vector<DuplicateEvent> EventsFromChunks(
    const std::vector<ResultChunk>& chunks) {
  std::vector<DuplicateEvent> events;
  for (const ResultChunk& chunk : chunks) {
    for (PairKey pair : chunk.pairs) {
      events.push_back({chunk.flush_time, pair});
    }
  }
  return events;
}

void AppendTaskEvents(
    int task, double start_time, double task_cost,
    double seconds_per_cost_unit, double alpha,
    const std::vector<std::pair<double, PairKey>>& raw_events,
    ErRunResult* result) {
  ResultChunk chunk;
  chunk.task = task;
  int64_t chunk_index = 0;
  for (const auto& [cost, pair] : raw_events) {
    result->events.push_back({start_time + cost * seconds_per_cost_unit,
                              pair});
    while (cost > static_cast<double>(chunk_index + 1) * alpha) {
      chunk.cost_begin = static_cast<double>(chunk_index) * alpha;
      chunk.cost_end = static_cast<double>(chunk_index + 1) * alpha;
      chunk.flush_time = start_time + chunk.cost_end * seconds_per_cost_unit;
      result->chunks.push_back(std::move(chunk));
      chunk = ResultChunk();
      chunk.task = task;
      ++chunk_index;
    }
    chunk.pairs.push_back(pair);
  }
  chunk.cost_begin = static_cast<double>(chunk_index) * alpha;
  chunk.cost_end = task_cost;
  chunk.flush_time = start_time + task_cost * seconds_per_cost_unit;
  result->chunks.push_back(std::move(chunk));
}

void SurfaceQuarantinedIds(const std::vector<QuarantinedRecord>& quarantined,
                           const std::vector<Entity>& entities,
                           ErRunResult* result) {
  if (quarantined.empty()) return;
  for (const QuarantinedRecord& q : quarantined) {
    if (q.record >= 0 && q.record < static_cast<int64_t>(entities.size())) {
      result->quarantined_ids.push_back(
          entities[static_cast<size_t>(q.record)].id);
    }
  }
  std::sort(result->quarantined_ids.begin(), result->quarantined_ids.end());
  result->quarantined_ids.erase(std::unique(result->quarantined_ids.begin(),
                                            result->quarantined_ids.end()),
                                result->quarantined_ids.end());
}

void FinalizeDuplicates(ErRunResult* result) {
  std::unordered_set<PairKey> unique;
  unique.reserve(result->events.size());
  for (const DuplicateEvent& event : result->events) unique.insert(event.pair);
  result->duplicates.assign(unique.begin(), unique.end());
  std::sort(result->duplicates.begin(), result->duplicates.end());
}

}  // namespace progres

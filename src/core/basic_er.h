#ifndef PROGRES_CORE_BASIC_ER_H_
#define PROGRES_CORE_BASIC_ER_H_

#include "blocking/blocking_function.h"
#include "core/er_result.h"
#include "mapreduce/cluster.h"
#include "mechanism/mechanism.h"
#include "model/dataset.h"
#include "similarity/match_function.h"

namespace progres {

// Options of the Basic baseline (Sec. II-C).
struct BasicErOptions {
  ClusterConfig cluster;
  int num_map_tasks = 0;     // 0 means all slots
  int num_reduce_tasks = 0;  // 0 means all slots

  // Window size w of the mechanism.
  int window = 15;
  // Popcorn stopping threshold [5]; <= 0 means the stopping condition is
  // never met (the paper's "Basic F").
  double popcorn_threshold = 0.0;
  int popcorn_window = 1000;

  // Kolb et al. [14] smallest-key redundancy elimination (Sec. VI-B1
  // incorporates it into Basic).
  bool kolb_redundancy = true;

  // Incremental output interval alpha, in cost units.
  double alpha = 5000.0;
};

// The basic single-job approach of Sec. II-C: map emits each entity once per
// main blocking function keyed by blocking key + function id; the default
// hash partitioner distributes blocks; each reduce call resolves one block
// with mechanism M under the popcorn stopping condition. No sub-blocking, no
// duplicate-aware scheduling, each block visited exactly once.
class BasicEr {
 public:
  // `blocking` and `match` are copied; `mechanism` must outlive the driver.
  BasicEr(const BlockingConfig& blocking, const MatchFunction& match,
          const ProgressiveMechanism& mechanism, BasicErOptions options);

  ErRunResult Run(const Dataset& dataset) const;

 private:
  BlockingConfig blocking_;
  MatchFunction match_;
  const ProgressiveMechanism& mechanism_;
  BasicErOptions options_;
};

}  // namespace progres

#endif  // PROGRES_CORE_BASIC_ER_H_

#ifndef PROGRES_CORE_MRSN_ER_H_
#define PROGRES_CORE_MRSN_ER_H_

#include "blocking/blocking_function.h"
#include "core/er_result.h"
#include "mapreduce/cluster.h"
#include "model/dataset.h"
#include "similarity/match_function.h"

namespace progres {

// The multi-pass MapReduce Sorted Neighborhood baseline of Kolb et al. [8]
// (RepSN), which the paper contrasts with in Sec. VII: a fixed,
// non-progressive parallel ER algorithm that "needs to run to completion
// before it can produce results". One MR job per pass (one pass per sort
// attribute): entities are range-partitioned on the sort key so that each
// reduce task holds a contiguous slice of the global sort order; the last
// w - 1 entities of each range are replicated into the next range so the
// sliding window never misses a cross-boundary pair; each reduce task slides
// a window of size w over its slice.
//
// Range boundaries come from a boundary pre-pass over the sort keys — the
// paper's deployment would run Hadoop's TotalOrderPartitioner sampling job;
// in-process we compute exact quantiles, charging the equivalent cost.
struct MrsnOptions {
  ClusterConfig cluster;
  int num_map_tasks = 0;     // 0 means all slots
  int num_reduce_tasks = 0;  // 0 means all slots
  int window = 15;
  double alpha = 5000.0;
};

class MrsnEr {
 public:
  // One pass per family in `blocking`: the pass sorts on the family's sort
  // attribute. Copies `blocking` and `match`.
  MrsnEr(const BlockingConfig& blocking, const MatchFunction& match,
         MrsnOptions options);

  ErRunResult Run(const Dataset& dataset) const;

 private:
  BlockingConfig blocking_;
  MatchFunction match_;
  MrsnOptions options_;
};

}  // namespace progres

#endif  // PROGRES_CORE_MRSN_ER_H_

#include "core/progressive_er.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/stats_job.h"
#include "mapreduce/job.h"
#include "mapreduce/serde.h"
#include "redundancy/dominance.h"

namespace progres {

namespace {

constexpr double kMapEmitCost = 0.05;
// Cost of checking one buffered entity's membership in a block during
// per-tree regrouping.
constexpr double kRegroupCostPerEntity = 0.01;

// Shuffle value of the resolution job: an entity reference plus its
// dominance list for the target block or tree (Sec. III-B).
struct ResolveValue {
  EntityId id = -1;
  DominanceList list;
};

// Wire size of one shuffled (sequence value, entity + dominance list) pair
// under the serde encoding — the `shuffle.bytes` counter.
int64_t WireSize(int64_t sq, const ResolveValue& value) {
  int64_t bytes = VarintSize(static_cast<uint64_t>(sq));
  bytes += VarintSize(static_cast<uint64_t>(value.id));
  bytes += VarintSize(value.list.values.size());
  for (int32_t v : value.list.values) {
    bytes += VarintSize(ZigZagEncode(v));
  }
  return bytes;
}

// Mutable per-reduce-task state, indexed by task id so concurrent tasks
// never share an entry.
struct TaskState {
  // (task-local cost, pair) per duplicate found, in discovery order.
  std::vector<std::pair<double, PairKey>> raw_events;
  // Already-resolved pairs per tree (keyed by the tree's dominance value):
  // the incremental bottom-up resolution must not repeat child work.
  std::unordered_map<int32_t, std::unordered_set<PairKey>> resolved;
  // Per-tree emission: buffered tree members keyed by tree dominance value,
  // and the index of the next unresolved block in the task's schedule.
  std::unordered_map<int32_t, std::vector<ResolveValue>> tree_values;
  size_t next_block = 0;
  int64_t duplicates = 0;
  int64_t distinct = 0;
  int64_t skipped = 0;
};

}  // namespace

ProgressiveEr::ProgressiveEr(const BlockingConfig& blocking,
                             const MatchFunction& match,
                             const ProgressiveMechanism& mechanism,
                             const ProbabilityModel& prob,
                             ProgressiveErOptions options)
    : blocking_(blocking),
      match_(match),
      mechanism_(mechanism),
      prob_(prob),
      options_(std::move(options)) {}

ProgressiveEr::Preprocessed ProgressiveEr::Preprocess(
    const Dataset& dataset) const {
  const int map_tasks = options_.num_map_tasks > 0
                            ? options_.num_map_tasks
                            : options_.cluster.map_slots();
  const int reduce_tasks = options_.num_reduce_tasks > 0
                               ? options_.num_reduce_tasks
                               : options_.cluster.reduce_slots();

  // ---- First MR job: progressive blocking + statistics ----
  StatsJobOutput stats = RunStatisticsJob(dataset, blocking_,
                                          options_.cluster, map_tasks,
                                          reduce_tasks);

  // ---- Schedule generation (map-task setup of the second job) ----
  Preprocessed pre;
  if (stats.failed) {
    pre.failed = true;
    pre.error = stats.error;
    pre.end_time = stats.timing.end;
    return pre;
  }
  pre.forests = AnnotateForests(stats.forests, options_.estimate, prob_,
                                dataset.size());
  ScheduleParams params;
  params.num_reduce_tasks = reduce_tasks;
  params.cost_vector = options_.cost_vector;
  params.weights = options_.weights;
  params.batch_size = options_.batch_size;
  params.scheduler = options_.scheduler;
  params.per_task_budget = options_.per_task_cost_budget;
  pre.schedule = GenerateSchedule(&pre.forests, params);

  int64_t live_blocks = 0;
  for (const AnnotatedForest& forest : pre.forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      if (!forest.block(n).eliminated) ++live_blocks;
    }
  }
  pre.end_time = stats.timing.end +
                 options_.schedule_cost_per_block *
                     static_cast<double>(live_blocks) *
                     options_.cluster.seconds_per_cost_unit;
  return pre;
}

ErRunResult ProgressiveEr::Run(const Dataset& dataset) const {
  const Preprocessed pre = Preprocess(dataset);
  if (pre.failed) {
    ErRunResult result;
    result.failed = true;
    result.error = pre.error;
    result.preprocessing_end = pre.end_time;
    result.total_time = pre.end_time;
    return result;
  }
  const std::vector<AnnotatedForest>& forests = pre.forests;
  const ProgressiveSchedule& schedule = pre.schedule;
  const int map_tasks = options_.num_map_tasks > 0
                            ? options_.num_map_tasks
                            : options_.cluster.map_slots();
  const int reduce_tasks = schedule.num_reduce_tasks;
  const int num_families = blocking_.num_families();
  const bool redundancy = options_.redundancy_elimination;
  const bool per_tree = options_.map_emission == MapEmission::kPerTree;

  // Sequence value -> block lookup for the reduce side.
  std::unordered_map<int64_t, BlockRef> block_of_sequence;
  for (const auto& [key, sq] : schedule.sequence) {
    block_of_sequence[sq] = {static_cast<int>(key >> 32),
                             static_cast<int>(key & 0xffffffffULL)};
  }

  // Per-tree emission: the shuffle key of a tree is the sequence value of
  // its first scheduled block. Trees whose blocks were all truncated by the
  // budget have no key and are never shipped.
  std::unordered_map<uint64_t, int64_t> tree_first_sq;
  if (per_tree) {
    for (const AnnotatedForest& forest : forests) {
      for (int root : forest.tree_roots()) {
        int64_t first = -1;
        for (int n : forest.TreeBlocks(root)) {
          const int64_t sq = schedule.SequenceOf(forest.family(), n);
          if (sq >= 0 && (first < 0 || sq < first)) first = sq;
        }
        if (first >= 0) {
          tree_first_sq[BlockRefKey(forest.family(), root)] = first;
        }
      }
    }
  }

  using Job = MapReduceJob<Entity, int64_t, ResolveValue>;
  Job job(map_tasks, reduce_tasks);
  job.set_map_cost_per_record(0.1);
  job.set_partitioner([range = schedule.range_per_task](const int64_t& sq,
                                                        int /*r*/) {
    return static_cast<int>(sq / range);
  });

  const auto map_fn = [&, this](const Entity& e, Job::MapContext* ctx) {
    for (int f = 0; f < num_families; ++f) {
      const AnnotatedForest& forest = forests[static_cast<size_t>(f)];
      const int levels = blocking_.family(f).levels();
      int previous_node = -1;
      int previous_tree = -1;
      for (int level = 1; level <= levels; ++level) {
        const int node = forest.Find(blocking_.Path(f, level, e));
        if (node < 0) break;  // chain eliminated from here down
        if (node == previous_node) continue;  // equal-size collapse redirect
        previous_node = node;
        if (per_tree) {
          // One emission per (entity, tree): emit when the chain enters a
          // new tree. The dominance list is identical for every block of
          // the tree along e's chain.
          const int tree = forest.FindTreeRoot(node);
          if (tree == previous_tree) continue;
          previous_tree = tree;
          const auto it = tree_first_sq.find(BlockRefKey(f, tree));
          if (it == tree_first_sq.end()) continue;  // budget-truncated tree
          ResolveValue value;
          value.id = e.id;
          if (redundancy) {
            value.list =
                BuildDominanceList(e, f, node, blocking_, forests, schedule);
          }
          ctx->clock().Charge(kMapEmitCost);
          ctx->counters().Increment("map.emitted_pairs");
          ctx->counters().Increment("shuffle.bytes",
                                    WireSize(it->second, value));
          ctx->Emit(it->second, std::move(value));
        } else {
          const int64_t sq = schedule.SequenceOf(f, node);
          if (sq < 0) continue;  // budget-truncated block
          ResolveValue value;
          value.id = e.id;
          if (redundancy) {
            value.list =
                BuildDominanceList(e, f, node, blocking_, forests, schedule);
          }
          ctx->clock().Charge(kMapEmitCost);
          ctx->counters().Increment("map.emitted_pairs");
          ctx->counters().Increment("shuffle.bytes", WireSize(sq, value));
          ctx->Emit(sq, std::move(value));
        }
      }
    }
  };

  std::vector<TaskState> states(static_cast<size_t>(reduce_tasks));

  // A failed reduce attempt leaves partial events, resolved-pair sets and
  // buffered tree groups behind; reset its state so the retry replays the
  // task from scratch.
  job.set_task_abort([&states](TaskPhase phase, int task_id, int /*attempt*/) {
    if (phase == TaskPhase::kReduce) {
      states[static_cast<size_t>(task_id)] = TaskState();
    }
  });

  // Resolves one scheduled block given its members (and their dominance
  // lists); shared by both emission modes.
  const auto resolve_block =
      [&, this](const BlockRef& ref, const std::vector<const Entity*>& members,
                const std::unordered_map<EntityId, const DominanceList*>& lists,
                Job::ReduceContext* ctx) {
        if (options_.per_task_cost_budget > 0.0 &&
            ctx->clock().units() >= options_.per_task_cost_budget) {
          ctx->counters().Increment("reduce.blocks_skipped_budget");
          return;
        }
        const AnnotatedForest& forest =
            forests[static_cast<size_t>(ref.family)];
        const AnnotatedBlock& block = forest.block(ref.node);
        TaskState& state = states[static_cast<size_t>(ctx->task_id())];

        ResolveRequest request;
        request.block = &members;
        request.sort_attribute = blocking_.SortAttribute(ref.family);
        request.match = &match_;
        request.options.window = block.window;
        request.options.termination_distinct =
            block.tree_root ? -1 : block.th;
        request.clock = &ctx->clock();

        std::function<bool(const Entity&, const Entity&)> predicate;
        if (redundancy) {
          predicate = [&](const Entity& a, const Entity& b) {
            return ShouldResolve(*lists.at(a.id), *lists.at(b.id),
                                 ref.family + 1, num_families);
          };
          request.should_resolve = &predicate;
        }

        const int32_t tree_dom = schedule.dominance.at(
            BlockRefKey(ref.family, forest.FindTreeRoot(ref.node)));
        request.resolved = &state.resolved[tree_dom];

        request.on_duplicate = [&](EntityId a, EntityId b) {
          state.raw_events.emplace_back(ctx->clock().units(),
                                        MakePairKey(a, b));
        };

        const ResolveOutcome outcome = mechanism_.Resolve(request);
        state.duplicates += outcome.duplicates;
        state.distinct += outcome.distinct;
        state.skipped += outcome.skipped;
        ctx->counters().Increment("reduce.blocks_resolved");
        ctx->counters().Increment("reduce.duplicates", outcome.duplicates);
        ctx->counters().Increment("reduce.comparisons",
                                  outcome.duplicates + outcome.distinct);
        ctx->counters().Increment("reduce.skipped", outcome.skipped);
        if (outcome.stopped_early) {
          ctx->counters().Increment("reduce.blocks_stopped_early");
        }
      };

  // Per-tree mode: resolves every pending scheduled block whose sequence
  // value is <= sq_limit (their trees are guaranteed buffered).
  const auto drain_pending = [&, this](int64_t sq_limit,
                                       Job::ReduceContext* ctx) {
    TaskState& state = states[static_cast<size_t>(ctx->task_id())];
    const auto& blocks =
        schedule.task_blocks[static_cast<size_t>(ctx->task_id())];
    while (state.next_block < blocks.size()) {
      const BlockRef ref = blocks[state.next_block];
      const int64_t sq = schedule.SequenceOf(ref.family, ref.node);
      if (sq > sq_limit) break;
      ++state.next_block;
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(ref.family)];
      const AnnotatedBlock& block = forest.block(ref.node);
      const int32_t tree_dom = schedule.dominance.at(
          BlockRefKey(ref.family, forest.FindTreeRoot(ref.node)));
      const auto buffered = state.tree_values.find(tree_dom);
      if (buffered == state.tree_values.end()) continue;  // empty tree group

      // Regroup: select the tree members belonging to this block.
      std::vector<const Entity*> members;
      std::unordered_map<EntityId, const DominanceList*> lists;
      for (const ResolveValue& value : buffered->second) {
        ctx->clock().Charge(kRegroupCostPerEntity);
        const Entity& e = dataset.entity(value.id);
        if (blocking_.Path(ref.family, block.id.level, e) != block.id.path) {
          continue;
        }
        members.push_back(&e);
        lists.emplace(value.id, &value.list);
      }
      resolve_block(ref, members, lists, ctx);
    }
  };

  const auto reduce_fn = [&](const int64_t& sq,
                             std::vector<ResolveValue>* values,
                             Job::ReduceContext* ctx) {
    if (per_tree) {
      TaskState& state = states[static_cast<size_t>(ctx->task_id())];
      const BlockRef first = block_of_sequence.at(sq);
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(first.family)];
      const int32_t tree_dom = schedule.dominance.at(
          BlockRefKey(first.family, forest.FindTreeRoot(first.node)));
      state.tree_values[tree_dom] = std::move(*values);
      drain_pending(sq, ctx);
      return;
    }
    const BlockRef ref = block_of_sequence.at(sq);
    std::vector<const Entity*> members;
    members.reserve(values->size());
    std::unordered_map<EntityId, const DominanceList*> lists;
    lists.reserve(values->size());
    for (const ResolveValue& value : *values) {
      members.push_back(&dataset.entity(value.id));
      lists.emplace(value.id, &value.list);
    }
    resolve_block(ref, members, lists, ctx);
  };

  if (per_tree) {
    job.set_reduce_cleanup([&](Job::ReduceContext* ctx) {
      // Every tree group has arrived; flush the remaining blocks.
      drain_pending(std::numeric_limits<int64_t>::max(), ctx);
    });
  }

  const Job::Result run = job.Run(dataset.entities(), map_fn, reduce_fn,
                                  options_.cluster, pre.end_time);

  // ---- Assemble the globally-timed result ----
  ErRunResult result;
  if (run.failed) {
    result.failed = true;
    result.error = "resolution job: " + run.error;
    result.preprocessing_end = pre.end_time;
    result.total_time = run.timing.end;
    result.counters = run.counters;
    return result;
  }
  result.preprocessing_end = pre.end_time;
  result.total_time = run.timing.end;
  result.counters = run.counters;
  const double spc = options_.cluster.seconds_per_cost_unit;
  for (int t = 0; t < reduce_tasks; ++t) {
    const TaskState& state = states[static_cast<size_t>(t)];
    result.duplicate_count += state.duplicates;
    result.distinct_count += state.distinct;
    result.skipped_count += state.skipped;
    result.comparisons += state.duplicates + state.distinct;
    AppendTaskEvents(t, run.timing.reduce_start[static_cast<size_t>(t)],
                     run.reduce_stats[static_cast<size_t>(t)].cost, spc,
                     options_.alpha, state.raw_events, &result);
  }
  FinalizeDuplicates(&result);
  return result;
}

}  // namespace progres

#include "core/progressive_er.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/er_driver.h"
#include "core/stats_job.h"
#include "mapreduce/job.h"
#include "mapreduce/pipeline.h"
#include "mapreduce/serde.h"
#include "redundancy/dominance.h"

namespace progres {

namespace {

constexpr double kMapEmitCost = 0.05;
// Cost of checking one buffered entity's membership in a block during
// per-tree regrouping.
constexpr double kRegroupCostPerEntity = 0.01;

// Shuffle value of the resolution job: an entity reference plus its
// dominance list for the target block or tree (Sec. III-B).
struct ResolveValue {
  EntityId id = -1;
  DominanceList list;
};

// Wire size of one shuffled (sequence value, entity + dominance list) pair
// under the serde encoding — the `shuffle.bytes` counter.
int64_t WireSize(int64_t sq, const ResolveValue& value) {
  int64_t bytes = VarintSize(static_cast<uint64_t>(sq));
  bytes += VarintSize(static_cast<uint64_t>(value.id));
  bytes += VarintSize(value.list.values.size());
  for (int32_t v : value.list.values) {
    bytes += VarintSize(ZigZagEncode(v));
  }
  return bytes;
}

// Mutable per-reduce-task state beyond the shared accumulator: the
// incremental bottom-up resolution's resolved-pair memory and the per-tree
// emission buffers.
struct ResolveTaskState : ErTaskState {
  // Already-resolved pairs per tree (keyed by the tree's dominance value):
  // the incremental bottom-up resolution must not repeat child work.
  std::unordered_map<int32_t, std::unordered_set<PairKey>> resolved;
  // Per-tree emission: buffered tree members keyed by tree dominance value,
  // and the index of the next unresolved block in the task's schedule.
  std::unordered_map<int32_t, std::vector<ResolveValue>> tree_values;
  size_t next_block = 0;
};

}  // namespace

// Wire form of ResolveValue: the entity id, then the dominance list as a
// counted sequence of ZigZag varints — the layout WireSize describes.
template <>
struct KvCodec<ResolveValue> {
  static void Encode(const ResolveValue& value, std::string* out) {
    PutVarint64(static_cast<uint64_t>(value.id), out);
    PutVarint64(value.list.values.size(), out);
    for (const int32_t v : value.list.values) {
      PutVarint64(ZigZagEncode(v), out);
    }
  }
  static bool Decode(std::string_view in, size_t* offset,
                     ResolveValue* value) {
    uint64_t id = 0;
    if (!GetVarint64(in, offset, &id)) return false;
    value->id = static_cast<EntityId>(id);
    uint64_t count = 0;
    if (!GetVarint64(in, offset, &count)) return false;
    // Each entry costs at least one byte; a larger count is corruption.
    if (count > in.size() - *offset) return false;
    value->list.values.clear();
    value->list.values.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t raw = 0;
      if (!GetVarint64(in, offset, &raw)) return false;
      value->list.values.push_back(
          static_cast<int32_t>(ZigZagDecode(raw)));
    }
    return true;
  }
};

namespace {

// Canonical wire form of a ResolveTaskState snapshot, used by persisted
// checkpoints (CheckpointStore::ConfigurePersistence). Deterministic field
// order — unordered maps are serialized sorted by key, resolved-pair sets
// sorted by value — so equal states encode byte-identically, and a decode
// on the restarted process rebuilds exactly the state the dead process
// snapshotted. Doubles travel as raw IEEE bits (varint-packed) for an
// exact round trip.
std::string EncodeResolveTaskState(const ResolveTaskState& state) {
  std::string out;
  PutVarint64(state.raw_events.size(), &out);
  for (const auto& [cost, pair] : state.raw_events) {
    uint64_t bits = 0;
    std::memcpy(&bits, &cost, sizeof(bits));
    PutVarint64(bits, &out);
    PutVarint64(pair, &out);
  }
  PutVarint64(static_cast<uint64_t>(state.duplicates), &out);
  PutVarint64(static_cast<uint64_t>(state.distinct), &out);
  PutVarint64(static_cast<uint64_t>(state.skipped), &out);

  std::vector<int32_t> keys;
  keys.reserve(state.resolved.size());
  for (const auto& [key, pairs] : state.resolved) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  PutVarint64(keys.size(), &out);
  for (const int32_t key : keys) {
    PutVarint64(ZigZagEncode(key), &out);
    const auto& set = state.resolved.at(key);
    std::vector<PairKey> pairs(set.begin(), set.end());
    std::sort(pairs.begin(), pairs.end());
    PutVarint64(pairs.size(), &out);
    for (const PairKey pair : pairs) PutVarint64(pair, &out);
  }

  keys.clear();
  for (const auto& [key, values] : state.tree_values) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  PutVarint64(keys.size(), &out);
  for (const int32_t key : keys) {
    PutVarint64(ZigZagEncode(key), &out);
    const auto& values = state.tree_values.at(key);
    PutVarint64(values.size(), &out);
    for (const ResolveValue& value : values) {
      KvCodec<ResolveValue>::Encode(value, &out);
    }
  }
  PutVarint64(state.next_block, &out);
  return out;
}

bool DecodeResolveTaskState(std::string_view in, ResolveTaskState* state) {
  size_t offset = 0;
  const auto remaining = [&] { return in.size() - offset; };
  uint64_t count = 0;
  if (!GetVarint64(in, &offset, &count) || count > remaining()) return false;
  state->raw_events.clear();
  state->raw_events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t bits = 0;
    uint64_t pair = 0;
    if (!GetVarint64(in, &offset, &bits) ||
        !GetVarint64(in, &offset, &pair)) {
      return false;
    }
    double cost = 0.0;
    std::memcpy(&cost, &bits, sizeof(cost));
    state->raw_events.emplace_back(cost, pair);
  }
  uint64_t duplicates = 0;
  uint64_t distinct = 0;
  uint64_t skipped = 0;
  if (!GetVarint64(in, &offset, &duplicates) ||
      !GetVarint64(in, &offset, &distinct) ||
      !GetVarint64(in, &offset, &skipped)) {
    return false;
  }
  state->duplicates = static_cast<int64_t>(duplicates);
  state->distinct = static_cast<int64_t>(distinct);
  state->skipped = static_cast<int64_t>(skipped);

  if (!GetVarint64(in, &offset, &count) || count > remaining()) return false;
  state->resolved.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t raw = 0;
    uint64_t pairs = 0;
    if (!GetVarint64(in, &offset, &raw) ||
        !GetVarint64(in, &offset, &pairs) || pairs > remaining()) {
      return false;
    }
    auto& set =
        state->resolved[static_cast<int32_t>(ZigZagDecode(raw))];
    set.reserve(pairs);
    for (uint64_t p = 0; p < pairs; ++p) {
      uint64_t pair = 0;
      if (!GetVarint64(in, &offset, &pair)) return false;
      set.insert(pair);
    }
  }

  if (!GetVarint64(in, &offset, &count) || count > remaining()) return false;
  state->tree_values.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t raw = 0;
    uint64_t values = 0;
    if (!GetVarint64(in, &offset, &raw) ||
        !GetVarint64(in, &offset, &values) || values > remaining()) {
      return false;
    }
    auto& group =
        state->tree_values[static_cast<int32_t>(ZigZagDecode(raw))];
    group.reserve(values);
    for (uint64_t v = 0; v < values; ++v) {
      ResolveValue value;
      if (!KvCodec<ResolveValue>::Decode(in, &offset, &value)) return false;
      group.push_back(std::move(value));
    }
  }
  uint64_t next_block = 0;
  if (!GetVarint64(in, &offset, &next_block)) return false;
  state->next_block = static_cast<size_t>(next_block);
  return offset == in.size();
}

}  // namespace

ProgressiveEr::ProgressiveEr(const BlockingConfig& blocking,
                             const MatchFunction& match,
                             const ProgressiveMechanism& mechanism,
                             const ProbabilityModel& prob,
                             ProgressiveErOptions options)
    : blocking_(blocking),
      match_(match),
      mechanism_(mechanism),
      prob_(prob),
      options_(std::move(options)) {}

void ProgressiveEr::AddPreprocessStages(const Dataset& dataset,
                                        Pipeline* pipe,
                                        Preprocessed* pre) const {
  const int map_tasks = options_.num_map_tasks > 0
                            ? options_.num_map_tasks
                            : options_.cluster.map_slots();
  const int reduce_tasks = options_.num_reduce_tasks > 0
                               ? options_.num_reduce_tasks
                               : options_.cluster.reduce_slots();

  // The raw forests cross from the stats stage to the schedule stage; a
  // shared buffer keeps the stage closures self-contained.
  auto stats_forests = std::make_shared<std::vector<Forest>>();

  // ---- First MR job: progressive blocking + statistics ----
  pipe->AddStage("statistics job", [this, &dataset, stats_forests, map_tasks,
                                    reduce_tasks](double submit_time) {
    StatsJobOutput stats =
        RunStatisticsJob(dataset, blocking_, options_.cluster, map_tasks,
                         reduce_tasks, submit_time);
    StageResult stage;
    stage.failed = stats.failed;
    stage.error = stats.error;  // already labelled "statistics job: ..."
    stage.end_time = stats.timing.end;
    stage.counters = std::move(stats.counters);
    stage.timing = std::move(stats.timing);
    *stats_forests = std::move(stats.forests);
    return stage;
  });

  // ---- Schedule generation (map-task setup of the second job) ----
  pipe->AddComputation("schedule generation", [this, &dataset, stats_forests,
                                               pre, reduce_tasks](
                                                  double /*submit_time*/) {
    pre->forests = AnnotateForests(*stats_forests, options_.estimate, prob_,
                                   dataset.size());
    ScheduleParams params;
    params.num_reduce_tasks = reduce_tasks;
    params.cost_vector = options_.cost_vector;
    params.weights = options_.weights;
    params.batch_size = options_.batch_size;
    params.scheduler = options_.scheduler;
    params.per_task_budget = options_.per_task_cost_budget;
    pre->schedule = GenerateSchedule(&pre->forests, params);

    int64_t live_blocks = 0;
    for (const AnnotatedForest& forest : pre->forests) {
      for (int n = 0; n < forest.num_blocks(); ++n) {
        if (!forest.block(n).eliminated) ++live_blocks;
      }
    }
    return options_.schedule_cost_per_block *
           static_cast<double>(live_blocks) *
           options_.cluster.seconds_per_cost_unit;
  });
}

ProgressiveEr::Preprocessed ProgressiveEr::Preprocess(
    const Dataset& dataset) const {
  Preprocessed pre;
  Pipeline pipe;
  pipe.set_trace(options_.cluster.trace);
  AddPreprocessStages(dataset, &pipe, &pre);
  const PipelineResult run = pipe.Run(/*submit_time=*/0.0);
  pre.end_time = run.end;
  if (run.failed) {
    pre.failed = true;
    pre.error = run.error;
  }
  return pre;
}

ErRunResult ProgressiveEr::Run(const Dataset& dataset) const {
  Preprocessed pre;
  ErRunResult result;

  Pipeline pipe;
  pipe.set_trace(options_.cluster.trace);
  AddPreprocessStages(dataset, &pipe, &pre);

  // ---- Second MR job: progressive resolution ----
  pipe.AddStage("resolution job", [&, this](double submit_time) {
    const std::vector<AnnotatedForest>& forests = pre.forests;
    const ProgressiveSchedule& schedule = pre.schedule;
    if (!schedule.error.empty()) {
      StageResult stage;
      stage.failed = true;
      stage.error = "schedule generation: " + schedule.error;
      stage.end_time = submit_time;
      return stage;
    }
    const int map_tasks = options_.num_map_tasks > 0
                              ? options_.num_map_tasks
                              : options_.cluster.map_slots();
    const int reduce_tasks = schedule.num_reduce_tasks;
    const int num_families = blocking_.num_families();
    const bool redundancy = options_.redundancy_elimination;
    // The pair-level schedulers ship a block to every one of its match
    // units, which per-tree regrouping cannot express — they force
    // per-block emission (documented fallback).
    const bool pair_level = schedule.pair_level;
    const bool per_tree =
        options_.map_emission == MapEmission::kPerTree && !pair_level;

    // Sequence value -> block lookup for the reduce side.
    std::unordered_map<int64_t, BlockRef> block_of_sequence;
    for (const auto& [key, sq] : schedule.sequence) {
      block_of_sequence[sq] = {static_cast<int>(key >> 32),
                               static_cast<int>(key & 0xffffffffULL)};
    }

    // Per-tree emission: the shuffle key of a tree is the sequence value of
    // its first scheduled block. Trees whose blocks were all truncated by
    // the budget have no key and are never shipped.
    std::unordered_map<uint64_t, int64_t> tree_first_sq;
    if (per_tree) {
      for (const AnnotatedForest& forest : forests) {
        for (int root : forest.tree_roots()) {
          int64_t first = -1;
          for (int n : forest.TreeBlocks(root)) {
            const int64_t sq = schedule.SequenceOf(forest.family(), n);
            if (sq >= 0 && (first < 0 || sq < first)) first = sq;
          }
          if (first >= 0) {
            tree_first_sq[BlockRefKey(forest.family(), root)] = first;
          }
        }
      }
    }

    using Job = MapReduceJob<Entity, int64_t, ResolveValue>;
    Job job(map_tasks, reduce_tasks);
    job.set_map_cost_per_record(0.1);
    job.set_partitioner([range = schedule.range_per_task](const int64_t& sq,
                                                          int /*r*/) {
      return static_cast<int>(sq / range);
    });
    job.set_wire_size([](const int64_t& sq, const ResolveValue& value) {
      return WireSize(sq, value);
    });
    // The resolution map runs the match-adjacent user code a poison record
    // crashes; the statistics pre-pass never does, so only this job engages
    // the skip-bad-records machinery.
    job.set_poison_faults(true);

    const auto map_fn = [&, this](const Entity& e, Job::MapContext* ctx) {
      for (int f = 0; f < num_families; ++f) {
        const AnnotatedForest& forest = forests[static_cast<size_t>(f)];
        const int levels = blocking_.family(f).levels();
        int previous_node = -1;
        int previous_tree = -1;
        for (int level = 1; level <= levels; ++level) {
          const int node = forest.Find(blocking_.Path(f, level, e));
          if (node < 0) break;  // chain eliminated from here down
          if (node == previous_node) continue;  // equal-size collapse redirect
          previous_node = node;
          if (per_tree) {
            // One emission per (entity, tree): emit when the chain enters a
            // new tree. The dominance list is identical for every block of
            // the tree along e's chain.
            const int tree = forest.FindTreeRoot(node);
            if (tree == previous_tree) continue;
            previous_tree = tree;
            const auto it = tree_first_sq.find(BlockRefKey(f, tree));
            if (it == tree_first_sq.end()) continue;  // budget-truncated tree
            ResolveValue value;
            value.id = e.id;
            if (redundancy) {
              value.list =
                  BuildDominanceList(e, f, node, blocking_, forests, schedule);
            }
            ctx->clock().Charge(kMapEmitCost);
            ctx->counters().Increment("map.emitted_pairs");
            ctx->counters().Increment("shuffle.bytes",
                                      WireSize(it->second, value));
            ctx->Emit(it->second, std::move(value));
          } else if (pair_level) {
            // Every match unit of the block receives the full membership:
            // sub-block restrictions are over positions in the full block's
            // sorted order, so each unit must see every member (the extra
            // shuffle volume is the price of pair-level balancing).
            const auto it =
                schedule.unit_sequences.find(BlockRefKey(f, node));
            if (it == schedule.unit_sequences.end()) continue;
            ResolveValue value;
            value.id = e.id;
            if (redundancy) {
              value.list =
                  BuildDominanceList(e, f, node, blocking_, forests, schedule);
            }
            for (const int64_t sq : it->second) {
              ctx->clock().Charge(kMapEmitCost);
              ctx->counters().Increment("map.emitted_pairs");
              ctx->counters().Increment("shuffle.bytes", WireSize(sq, value));
              ctx->Emit(sq, value);
            }
          } else {
            const int64_t sq = schedule.SequenceOf(f, node);
            if (sq < 0) continue;  // budget-truncated block
            ResolveValue value;
            value.id = e.id;
            if (redundancy) {
              value.list =
                  BuildDominanceList(e, f, node, blocking_, forests, schedule);
            }
            ctx->clock().Charge(kMapEmitCost);
            ctx->counters().Increment("map.emitted_pairs");
            ctx->counters().Increment("shuffle.bytes", WireSize(sq, value));
            ctx->Emit(sq, std::move(value));
          }
        }
      }
    };

    // A failed reduce attempt leaves partial events, resolved-pair sets and
    // buffered tree groups behind. The default abort hook resets its state
    // so the retry replays the task from scratch; with checkpoint_recovery
    // the job instead snapshots the state at each alpha-emission boundary
    // and the retry resumes from the latest snapshot.
    TaskStateRegistry<ResolveTaskState> states(reduce_tasks);
    CheckpointStore checkpoints;
    const bool persist = !options_.checkpoint_dir.empty();
    // Job supervision needs the snapshots too: a deadline cut or
    // quarantine restores the latest alpha-boundary state.
    if (options_.checkpoint_recovery || persist ||
        options_.cluster.control.active()) {
      states.InstallCheckpointRecovery(&job, options_.alpha, &checkpoints,
                                       EncodeResolveTaskState,
                                       DecodeResolveTaskState);
      if (persist) {
        checkpoints.ConfigurePersistence(options_.checkpoint_dir,
                                         "resolution", options_.resume,
                                         options_.crash_after_checkpoints);
      }
    } else {
      states.InstallAbortReset(&job);
    }

    // Resolves one scheduled block given its members (and their dominance
    // lists); shared by both emission modes. `unit` carries a pair-level
    // match task's sub-block or slice restriction (null: whole block).
    const auto resolve_block =
        [&, this](const BlockRef& ref, const MatchTask* unit,
                  const std::vector<const Entity*>& members,
                  const std::unordered_map<EntityId, const DominanceList*>&
                      lists,
                  Job::ReduceContext* ctx) {
          if (options_.per_task_cost_budget > 0.0 &&
              ctx->clock().units() >= options_.per_task_cost_budget) {
            ctx->counters().Increment("reduce.blocks_skipped_budget");
            return;
          }
          const AnnotatedForest& forest =
              forests[static_cast<size_t>(ref.family)];
          const AnnotatedBlock& block = forest.block(ref.node);
          ResolveTaskState& state = states.at(ctx->task_id());

          ResolveRequest request;
          request.block = &members;
          request.sort_attribute = blocking_.SortAttribute(ref.family);
          request.match = &match_;
          request.options.window = block.window;
          request.options.termination_distinct =
              block.tree_root ? -1 : block.th;
          if (unit != nullptr) {
            if (unit->kind == MatchTask::Kind::kSub) {
              request.options.sub_a_lo = unit->a_lo;
              request.options.sub_a_hi = unit->a_hi;
              request.options.sub_b_lo = unit->b_lo;
              request.options.sub_b_hi = unit->b_hi;
            } else if (unit->kind == MatchTask::Kind::kSlice) {
              request.options.slice_begin = unit->begin;
              request.options.slice_end = unit->end;
            }
          }
          request.clock = &ctx->clock();

          std::function<bool(const Entity&, const Entity&)> predicate;
          if (redundancy) {
            predicate = [&](const Entity& a, const Entity& b) {
              return ShouldResolve(*lists.at(a.id), *lists.at(b.id),
                                   ref.family + 1, num_families);
            };
            request.should_resolve = &predicate;
          }

          const int32_t tree_dom = schedule.dominance.at(
              BlockRefKey(ref.family, forest.FindTreeRoot(ref.node)));
          request.resolved = &state.resolved[tree_dom];

          request.on_duplicate = EventSink(&state, &ctx->clock());

          const ResolveOutcome outcome = mechanism_.Resolve(request);
          RecordResolveOutcome(outcome, &state, &ctx->counters());
        };

    // Per-tree mode: resolves every pending scheduled block whose sequence
    // value is <= sq_limit (their trees are guaranteed buffered).
    const auto drain_pending = [&, this](int64_t sq_limit,
                                         Job::ReduceContext* ctx) {
      ResolveTaskState& state = states.at(ctx->task_id());
      const auto& blocks =
          schedule.task_blocks[static_cast<size_t>(ctx->task_id())];
      while (state.next_block < blocks.size()) {
        const BlockRef ref = blocks[state.next_block];
        const int64_t sq = schedule.SequenceOf(ref.family, ref.node);
        if (sq > sq_limit) break;
        ++state.next_block;
        const AnnotatedForest& forest =
            forests[static_cast<size_t>(ref.family)];
        const AnnotatedBlock& block = forest.block(ref.node);
        const int32_t tree_dom = schedule.dominance.at(
            BlockRefKey(ref.family, forest.FindTreeRoot(ref.node)));
        const auto buffered = state.tree_values.find(tree_dom);
        if (buffered == state.tree_values.end()) continue;  // empty tree group

        // Regroup: select the tree members belonging to this block.
        std::vector<const Entity*> members;
        std::unordered_map<EntityId, const DominanceList*> lists;
        for (const ResolveValue& value : buffered->second) {
          ctx->clock().Charge(kRegroupCostPerEntity);
          const Entity& e = dataset.entity(value.id);
          if (blocking_.Path(ref.family, block.id.level, e) !=
              block.id.path) {
            continue;
          }
          members.push_back(&e);
          lists.emplace(value.id, &value.list);
        }
        resolve_block(ref, /*unit=*/nullptr, members, lists, ctx);
      }
    };

    const auto reduce_fn = [&](const int64_t& sq,
                               std::vector<ResolveValue>* values,
                               Job::ReduceContext* ctx) {
      if (per_tree) {
        ResolveTaskState& state = states.at(ctx->task_id());
        const BlockRef first = block_of_sequence.at(sq);
        const AnnotatedForest& forest =
            forests[static_cast<size_t>(first.family)];
        const int32_t tree_dom = schedule.dominance.at(
            BlockRefKey(first.family, forest.FindTreeRoot(first.node)));
        state.tree_values[tree_dom] = std::move(*values);
        drain_pending(sq, ctx);
        return;
      }
      const MatchTask* unit = nullptr;
      BlockRef ref;
      if (pair_level) {
        // Unit positions are the sequence layout: SQ = task * range + index.
        unit = &schedule.task_units[static_cast<size_t>(
            sq / schedule.range_per_task)][static_cast<size_t>(
            sq % schedule.range_per_task)];
        ref = unit->ref;
      } else {
        ref = block_of_sequence.at(sq);
      }
      std::vector<const Entity*> members;
      members.reserve(values->size());
      std::unordered_map<EntityId, const DominanceList*> lists;
      lists.reserve(values->size());
      for (const ResolveValue& value : *values) {
        members.push_back(&dataset.entity(value.id));
        lists.emplace(value.id, &value.list);
      }
      resolve_block(ref, unit, members, lists, ctx);
    };

    if (per_tree) {
      job.set_reduce_cleanup([&](Job::ReduceContext* ctx) {
        // Every tree group has arrived; flush the remaining blocks.
        drain_pending(std::numeric_limits<int64_t>::max(), ctx);
      });
    }

    Job::Result run = job.Run(dataset.entities(), map_fn, reduce_fn,
                              options_.cluster, submit_time);
    SurfaceQuarantinedIds(run.quarantined, dataset.entities(), &result);
    result.completeness.MergeFrom(run.completeness);
    if (!run.failed) {
      AccumulateReduceTasks(states.states(), run.timing, run.reduce_stats,
                            options_.cluster.seconds_per_cost_unit,
                            options_.alpha, &result, options_.cluster.trace);
    }
    return StageResultFromJob(std::move(run), "resolution job");
  });

  const PipelineResult pipe_result = pipe.Run(/*submit_time=*/0.0);

  // ErRunResult::counters reports the resolution job only (the statistics
  // job's counters are internal to preprocessing), so read the resolution
  // stage's report rather than the pipeline-wide merge.
  const StageReport* resolution = pipe_result.Find("resolution job");
  if (resolution != nullptr) {
    result.counters = resolution->result.counters;
    result.preprocessing_end = resolution->start;
  } else {
    result.preprocessing_end = pipe_result.end;
  }
  result.total_time = pipe_result.end;
  result.wall_seconds = pipe_result.wall_seconds;
  if (pipe_result.failed) {
    result.failed = true;
    result.error = pipe_result.error;
    return result;
  }
  FinalizeDuplicates(&result);
  return result;
}

}  // namespace progres

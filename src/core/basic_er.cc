#include "core/basic_er.h"

#include <algorithm>
#include <utility>

#include "core/er_driver.h"
#include "mapreduce/job.h"
#include "mapreduce/pipeline.h"
#include "mapreduce/serde.h"
#include "redundancy/kolb.h"

namespace progres {

namespace {

constexpr double kMapEmitCost = 0.05;

}  // namespace

BasicEr::BasicEr(const BlockingConfig& blocking, const MatchFunction& match,
                 const ProgressiveMechanism& mechanism, BasicErOptions options)
    : blocking_(blocking),
      match_(match),
      mechanism_(mechanism),
      options_(std::move(options)) {}

ErRunResult BasicEr::Run(const Dataset& dataset) const {
  const int map_tasks = options_.num_map_tasks > 0
                            ? options_.num_map_tasks
                            : options_.cluster.map_slots();
  const int reduce_tasks = options_.num_reduce_tasks > 0
                               ? options_.num_reduce_tasks
                               : options_.cluster.reduce_slots();
  const int num_families = blocking_.num_families();
  const double spc = options_.cluster.seconds_per_cost_unit;

  ErRunResult result;

  Pipeline pipe;
  pipe.set_trace(options_.cluster.trace);
  pipe.AddStage("basic job", [&, this](double submit_time) {
    using Job = MapReduceJob<Entity, std::string, EntityId>;
    Job job(map_tasks, reduce_tasks);
    job.set_map_cost_per_record(0.1);
    // The default hash partitioner stands; keys are "blocking key value
    // followed by the function ID" (Sec. II-C, footnote 3).
    job.set_wire_size([](const std::string& key, const EntityId& id) {
      return static_cast<int64_t>(VarintSize(key.size())) +
             static_cast<int64_t>(key.size()) +
             VarintSize(static_cast<uint64_t>(id));
    });
    // Resolution-side user code: poison records crash its map attempts.
    job.set_poison_faults(true);

    const auto map_fn = [&, this](const Entity& e, Job::MapContext* ctx) {
      for (int f = 0; f < num_families; ++f) {
        std::string key = blocking_.Key(f, 1, e);
        key.push_back(kPathSeparator);
        key.push_back(static_cast<char>('0' + f));
        ctx->clock().Charge(kMapEmitCost);
        ctx->counters().Increment("map.emitted_pairs");
        ctx->counters().Increment(
            "shuffle.bytes",
            static_cast<int64_t>(VarintSize(key.size())) +
                static_cast<int64_t>(key.size()) +
                VarintSize(static_cast<uint64_t>(e.id)));
        ctx->Emit(std::move(key), e.id);
      }
    };

    TaskStateRegistry<ErTaskState> states(reduce_tasks);
    CheckpointStore checkpoints;
    if (options_.cluster.control.active()) {
      // Supervised runs snapshot task state at alpha boundaries so a
      // deadline cut or quarantine can deliver a checkpointed prefix.
      states.InstallCheckpointRecovery(&job, options_.alpha, &checkpoints);
    } else {
      states.InstallAbortReset(&job);
    }

    const auto reduce_fn = [&, this](const std::string& key,
                                     std::vector<EntityId>* values,
                                     Job::ReduceContext* ctx) {
      const int family = key.back() - '0';
      ErTaskState& state = states.at(ctx->task_id());

      std::vector<const Entity*> members;
      members.reserve(values->size());
      for (EntityId id : *values) members.push_back(&dataset.entity(id));

      ResolveRequest request;
      request.block = &members;
      request.sort_attribute = blocking_.SortAttribute(family);
      request.match = &match_;
      request.options.window = options_.window;
      request.options.termination_distinct = -1;
      request.options.popcorn_threshold = options_.popcorn_threshold;
      request.options.popcorn_window = options_.popcorn_window;
      request.clock = &ctx->clock();

      std::function<bool(const Entity&, const Entity&)> predicate;
      if (options_.kolb_redundancy) {
        predicate = [&, family](const Entity& a, const Entity& b) {
          return KolbShouldResolve(a, b, family, blocking_);
        };
        request.should_resolve = &predicate;
      }

      request.on_duplicate = EventSink(&state, &ctx->clock());

      const ResolveOutcome outcome = mechanism_.Resolve(request);
      RecordResolveOutcome(outcome, &state, &ctx->counters());
    };

    Job::Result run = job.Run(dataset.entities(), map_fn, reduce_fn,
                              options_.cluster, submit_time);
    SurfaceQuarantinedIds(run.quarantined, dataset.entities(), &result);
    result.completeness.MergeFrom(run.completeness);
    if (!run.failed) {
      result.preprocessing_end = run.timing.map_end;
      AccumulateReduceTasks(states.states(), run.timing, run.reduce_stats,
                            spc, options_.alpha, &result,
                            options_.cluster.trace);
    }
    return StageResultFromJob(std::move(run), "basic job");
  });

  const PipelineResult pipe_result = pipe.Run(/*submit_time=*/0.0);
  result.counters = pipe_result.counters;
  result.total_time = pipe_result.end;
  result.wall_seconds = pipe_result.wall_seconds;
  if (pipe_result.failed) {
    result.failed = true;
    result.error = pipe_result.error;
    return result;
  }
  FinalizeDuplicates(&result);
  return result;
}

}  // namespace progres

#include "core/basic_er.h"

#include <algorithm>
#include <unordered_set>

#include "mapreduce/job.h"
#include "mapreduce/serde.h"
#include "redundancy/kolb.h"

namespace progres {

namespace {

constexpr double kMapEmitCost = 0.05;

struct TaskState {
  std::vector<std::pair<double, PairKey>> raw_events;
  int64_t duplicates = 0;
  int64_t distinct = 0;
  int64_t skipped = 0;
};

}  // namespace

BasicEr::BasicEr(const BlockingConfig& blocking, const MatchFunction& match,
                 const ProgressiveMechanism& mechanism, BasicErOptions options)
    : blocking_(blocking),
      match_(match),
      mechanism_(mechanism),
      options_(std::move(options)) {}

ErRunResult BasicEr::Run(const Dataset& dataset) const {
  const int map_tasks = options_.num_map_tasks > 0
                            ? options_.num_map_tasks
                            : options_.cluster.map_slots();
  const int reduce_tasks = options_.num_reduce_tasks > 0
                               ? options_.num_reduce_tasks
                               : options_.cluster.reduce_slots();
  const int num_families = blocking_.num_families();

  using Job = MapReduceJob<Entity, std::string, EntityId>;
  Job job(map_tasks, reduce_tasks);
  job.set_map_cost_per_record(0.1);
  // The default hash partitioner stands; keys are "blocking key value
  // followed by the function ID" (Sec. II-C, footnote 3).

  const auto map_fn = [&, this](const Entity& e, Job::MapContext* ctx) {
    for (int f = 0; f < num_families; ++f) {
      std::string key = blocking_.Key(f, 1, e);
      key.push_back(kPathSeparator);
      key.push_back(static_cast<char>('0' + f));
      ctx->clock().Charge(kMapEmitCost);
      ctx->counters().Increment("map.emitted_pairs");
      ctx->counters().Increment(
          "shuffle.bytes",
          static_cast<int64_t>(VarintSize(key.size())) +
              static_cast<int64_t>(key.size()) +
              VarintSize(static_cast<uint64_t>(e.id)));
      ctx->Emit(std::move(key), e.id);
    }
  };

  std::vector<TaskState> states(static_cast<size_t>(reduce_tasks));

  // Reset a task's accumulated events/outcomes when a fault-injected
  // attempt dies, so the retry does not double-count.
  job.set_task_abort([&states](TaskPhase phase, int task_id, int /*attempt*/) {
    if (phase == TaskPhase::kReduce) {
      states[static_cast<size_t>(task_id)] = TaskState();
    }
  });

  const auto reduce_fn = [&, this](const std::string& key,
                                   std::vector<EntityId>* values,
                                   Job::ReduceContext* ctx) {
    const int family = key.back() - '0';
    TaskState& state = states[static_cast<size_t>(ctx->task_id())];

    std::vector<const Entity*> members;
    members.reserve(values->size());
    for (EntityId id : *values) members.push_back(&dataset.entity(id));

    ResolveRequest request;
    request.block = &members;
    request.sort_attribute = blocking_.SortAttribute(family);
    request.match = &match_;
    request.options.window = options_.window;
    request.options.termination_distinct = -1;
    request.options.popcorn_threshold = options_.popcorn_threshold;
    request.options.popcorn_window = options_.popcorn_window;
    request.clock = &ctx->clock();

    std::function<bool(const Entity&, const Entity&)> predicate;
    if (options_.kolb_redundancy) {
      predicate = [&, family](const Entity& a, const Entity& b) {
        return KolbShouldResolve(a, b, family, blocking_);
      };
      request.should_resolve = &predicate;
    }

    request.on_duplicate = [&](EntityId a, EntityId b) {
      state.raw_events.emplace_back(ctx->clock().units(), MakePairKey(a, b));
    };

    const ResolveOutcome outcome = mechanism_.Resolve(request);
    state.duplicates += outcome.duplicates;
    state.distinct += outcome.distinct;
    state.skipped += outcome.skipped;
    ctx->counters().Increment("reduce.blocks_resolved");
    ctx->counters().Increment("reduce.duplicates", outcome.duplicates);
    ctx->counters().Increment("reduce.comparisons",
                              outcome.duplicates + outcome.distinct);
    ctx->counters().Increment("reduce.skipped", outcome.skipped);
    if (outcome.stopped_early) {
      ctx->counters().Increment("reduce.blocks_stopped_early");
    }
  };

  const Job::Result run = job.Run(dataset.entities(), map_fn, reduce_fn,
                                  options_.cluster, /*submit_time=*/0.0);

  ErRunResult result;
  result.counters = run.counters;
  if (run.failed) {
    result.failed = true;
    result.error = "basic job: " + run.error;
    result.total_time = run.timing.end;
    return result;
  }
  result.preprocessing_end = run.timing.map_end;
  result.total_time = run.timing.end;
  const double spc = options_.cluster.seconds_per_cost_unit;
  for (int t = 0; t < reduce_tasks; ++t) {
    const TaskState& state = states[static_cast<size_t>(t)];
    result.duplicate_count += state.duplicates;
    result.distinct_count += state.distinct;
    result.skipped_count += state.skipped;
    result.comparisons += state.duplicates + state.distinct;
    AppendTaskEvents(t, run.timing.reduce_start[static_cast<size_t>(t)],
                     run.reduce_stats[static_cast<size_t>(t)].cost, spc,
                     options_.alpha, state.raw_events, &result);
  }
  FinalizeDuplicates(&result);
  return result;
}

}  // namespace progres

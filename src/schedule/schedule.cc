#include "schedule/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <functional>
#include <limits>

namespace progres {

namespace {

// One entry of the utility-sorted list SL (Sec. IV-C1).
struct SlEntry {
  BlockRef ref;
  double util = 0.0;
  double cost = 0.0;
};

// Collects every live block and sorts by non-increasing utility
// (deterministic tie-break on family, then node index).
std::vector<SlEntry> BuildSl(const std::vector<AnnotatedForest>& forests) {
  std::vector<SlEntry> sl;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated) continue;
      sl.push_back({{forest.family(), n}, b.util, b.cost});
    }
  }
  std::sort(sl.begin(), sl.end(), [](const SlEntry& a, const SlEntry& b) {
    if (a.util != b.util) return a.util > b.util;
    if (a.ref.family != b.ref.family) return a.ref.family < b.ref.family;
    return a.ref.node < b.ref.node;
  });
  return sl;
}

// Assigns each SL entry to a bucket: bucket i (0-based) holds the blocks
// resolvable during (c_{i-1} * r, c_i * r] cumulative cost units. Blocks
// past c_k * r land in the virtual overflow bucket (index k), which has
// unbounded capacity and is excluded from overflow checks.
std::unordered_map<uint64_t, int> AssignBuckets(
    const std::vector<SlEntry>& sl, const std::vector<double>& cost_vector,
    int num_reduce_tasks) {
  std::unordered_map<uint64_t, int> bucket_of;
  bucket_of.reserve(sl.size());
  double cumulative = 0.0;
  size_t bucket = 0;
  const double r = static_cast<double>(num_reduce_tasks);
  for (const SlEntry& entry : sl) {
    cumulative += entry.cost;
    while (bucket < cost_vector.size() &&
           cumulative > cost_vector[bucket] * r) {
      ++bucket;
    }
    bucket_of[BlockRefKey(entry.ref)] = static_cast<int>(bucket);
  }
  return bucket_of;
}

// Capacity of bucket h: c_h - c_{h-1} (with c_0 = 0).
double BucketCapacity(const std::vector<double>& cost_vector, int h) {
  return h == 0 ? cost_vector[0]
                : cost_vector[static_cast<size_t>(h)] -
                      cost_vector[static_cast<size_t>(h - 1)];
}

// The tree cost vector VC(T): per bucket, the total cost of the subtree's
// blocks (Sec. IV-C2). Vector has |C| + 1 entries (last = overflow bucket).
std::vector<double> SubtreeCostVector(
    const AnnotatedForest& forest, int root,
    const std::unordered_map<uint64_t, int>& bucket_of, int num_buckets) {
  std::vector<double> vc(static_cast<size_t>(num_buckets) + 1, 0.0);
  for (int n : forest.TreeBlocks(root)) {
    const auto it = bucket_of.find(BlockRefKey(forest.family(), n));
    if (it == bucket_of.end()) continue;
    vc[static_cast<size_t>(it->second)] += forest.block(n).cost;
  }
  return vc;
}

// Sum of CostP over the subtree rooted at `node` (in-tree blocks only).
double SubtreeCostP(const AnnotatedForest& forest, int node,
                    const MechanismCosts& costs) {
  double sum = 0.0;
  for (int n : forest.TreeBlocks(node)) {
    const AnnotatedBlock& b = forest.block(n);
    sum += CostP(b.dup, b.dis, costs);
  }
  return sum;
}

// In-tree (non-eliminated, non-split) children of `node`, sorted by
// non-increasing utility.
std::vector<int> SortedInTreeChildren(const AnnotatedForest& forest,
                                      int node) {
  std::vector<int> children;
  for (int c : forest.block(node).children) {
    const AnnotatedBlock& cb = forest.block(c);
    if (!cb.eliminated && !cb.tree_root) children.push_back(c);
  }
  std::sort(children.begin(), children.end(), [&](int a, int b) {
    const double ua = forest.block(a).util;
    const double ub = forest.block(b).util;
    if (ua != ub) return ua > ub;
    return a < b;
  });
  return children;
}

// SHOULD-SPLIT (Fig. 6): would keeping child `c` (in addition to the already
// kept children `kept`) still overflow some bucket, even if every remaining
// child were split away?
bool ShouldSplit(const AnnotatedForest& forest, int root, int candidate,
                 const std::vector<int>& kept,
                 const std::vector<int>& remaining,
                 const std::unordered_map<uint64_t, int>& bucket_of,
                 const std::vector<double>& cost_vector,
                 std::vector<double>* v_star) {
  const AnnotatedBlock& root_block = forest.block(root);
  const int num_buckets = static_cast<int>(cost_vector.size());

  // Hypothetical covered pairs of the root if all remaining children (other
  // than the candidate) were split off.
  int64_t cov_hyp = root_block.cov;
  for (int d : remaining) {
    if (d == candidate) continue;
    cov_hyp -= forest.block(d).cov;
  }
  cov_hyp = std::max<int64_t>(0, cov_hyp);

  // Hypothetical Eq. 5 cost of the root with Chd = kept + {candidate}.
  const MechanismCosts& costs = forest.params().costs;
  double desc_costp = 0.0;
  for (int e : kept) desc_costp += SubtreeCostP(forest, e, costs);
  desc_costp += SubtreeCostP(forest, candidate, costs);
  double cost_hyp = CostA(root_block.size, costs) +
                    CostF(root_block.size, root_block.window, cov_hyp, costs) -
                    desc_costp;
  cost_hyp = std::max(cost_hyp, CostA(root_block.size, costs));

  // Place the hypothetical cost in the root's current SL bucket.
  const auto root_bucket = bucket_of.find(BlockRefKey(forest.family(), root));
  const int s = root_bucket == bucket_of.end() ? num_buckets
                                               : root_bucket->second;
  (*v_star)[static_cast<size_t>(s)] = cost_hyp;

  // Test every real bucket's capacity against kept + candidate + V*.
  std::vector<double> load(static_cast<size_t>(num_buckets) + 1, 0.0);
  for (int e : kept) {
    const std::vector<double> vc =
        SubtreeCostVector(forest, e, bucket_of, num_buckets);
    for (size_t h = 0; h < load.size(); ++h) load[h] += vc[h];
  }
  const std::vector<double> vc_candidate =
      SubtreeCostVector(forest, candidate, bucket_of, num_buckets);
  for (size_t h = 0; h < load.size(); ++h) load[h] += vc_candidate[h];

  for (int h = 0; h < num_buckets; ++h) {
    if (load[static_cast<size_t>(h)] + (*v_star)[static_cast<size_t>(h)] >
        BucketCapacity(cost_vector, h)) {
      return true;
    }
  }
  return false;
}

// SPLIT-TREE (Fig. 6). Returns the number of subtrees split off.
int SplitTree(AnnotatedForest* forest, int root,
              const std::unordered_map<uint64_t, int>& bucket_of,
              const std::vector<double>& cost_vector) {
  std::vector<int> children = SortedInTreeChildren(*forest, root);
  std::vector<int> kept;
  std::vector<double> v_star(cost_vector.size() + 1, 0.0);
  int splits = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    const int c = children[i];
    const std::vector<int> remaining(children.begin() + static_cast<long>(i),
                                     children.end());
    if (ShouldSplit(*forest, root, c, kept, remaining, bucket_of, cost_vector,
                    &v_star)) {
      forest->SplitSubtree(c);
      ++splits;
    } else {
      kept.push_back(c);
    }
  }
  return splits;
}

// Pairs of a kSub unit: (i, i + d) with d = 1..window-1, a_lo <= i < a_hi
// and b_lo <= i + d < b_hi over the block's sorted order.
int64_t SubPairCount(int64_t a_lo, int64_t a_hi, int64_t b_lo, int64_t b_hi,
                     int window) {
  int64_t pairs = 0;
  for (int64_t d = 1; d < window; ++d) {
    const int64_t lo = std::max(a_lo, b_lo - d);
    const int64_t hi = std::min(a_hi, b_hi - d);
    pairs += std::max<int64_t>(0, hi - lo);
  }
  return pairs;
}

// One live block with the data the pair-level schedulers need, in canonical
// (family, node) order.
struct PairBlock {
  BlockRef ref;
  int64_t size = 0;
  int window = 0;
  double util = 0.0;
  double cost = 0.0;
  int64_t pairs = 0;
};

std::vector<PairBlock> CollectPairBlocks(
    const std::vector<AnnotatedForest>& forests) {
  std::vector<PairBlock> blocks;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated) continue;
      blocks.push_back({{forest.family(), n},
                        b.size,
                        b.window,
                        b.util,
                        b.cost,
                        WindowPairCount(b.size, b.window)});
    }
  }
  return blocks;
}

// BlockSplit (Kolb et al., Sec. 4): blocks whose candidate-pair count
// exceeds the per-task average are split into m contiguous sub-ranges of
// their sorted order, yielding m "single" match tasks (both endpoints
// inside one range) and m-1 adjacent "cross" tasks (pairs straddling a
// boundary). Sub-ranges are kept at least `window` wide so, under the
// windowed enumeration (max rank distance window-1), no pair straddles two
// boundaries and the single + cross tasks partition the block's pair space
// exactly. All units are then assigned greedily by descending pair count to
// the least-loaded reduce task.
std::vector<std::vector<MatchTask>> AssignBlockSplit(
    const std::vector<PairBlock>& blocks, int num_reduce_tasks) {
  int64_t total = 0;
  for (const PairBlock& b : blocks) total += b.pairs;
  const double threshold =
      static_cast<double>(total) / static_cast<double>(num_reduce_tasks);

  std::vector<MatchTask> units;
  for (const PairBlock& b : blocks) {
    int64_t m = 1;
    if (threshold > 0.0 && static_cast<double>(b.pairs) > threshold &&
        b.window > 1) {
      const int64_t by_cost = static_cast<int64_t>(
          std::ceil(static_cast<double>(b.pairs) / threshold));
      const int64_t by_width = b.size / static_cast<int64_t>(b.window);
      m = std::max<int64_t>(1, std::min(by_cost, by_width));
    }
    if (m <= 1) {
      MatchTask unit;
      unit.ref = b.ref;
      unit.pairs = b.pairs;
      units.push_back(unit);
      continue;
    }
    const auto boundary = [&](int64_t k) { return k * b.size / m; };
    for (int64_t k = 0; k < m; ++k) {
      MatchTask single;
      single.ref = b.ref;
      single.kind = MatchTask::Kind::kSub;
      single.a_lo = single.b_lo = boundary(k);
      single.a_hi = single.b_hi = boundary(k + 1);
      single.pairs = SubPairCount(single.a_lo, single.a_hi, single.b_lo,
                                  single.b_hi, b.window);
      units.push_back(single);
    }
    for (int64_t k = 0; k + 1 < m; ++k) {
      MatchTask cross;
      cross.ref = b.ref;
      cross.kind = MatchTask::Kind::kSub;
      cross.a_lo = boundary(k);
      cross.a_hi = boundary(k + 1);
      cross.b_lo = boundary(k + 1);
      cross.b_hi = boundary(k + 2);
      cross.pairs = SubPairCount(cross.a_lo, cross.a_hi, cross.b_lo,
                                 cross.b_hi, b.window);
      units.push_back(cross);
    }
  }

  // Greedy descending-cost assignment (deterministic tie-breaks).
  std::sort(units.begin(), units.end(),
            [](const MatchTask& a, const MatchTask& b) {
              if (a.pairs != b.pairs) return a.pairs > b.pairs;
              if (!(a.ref == b.ref)) {
                if (a.ref.family != b.ref.family)
                  return a.ref.family < b.ref.family;
                return a.ref.node < b.ref.node;
              }
              if (a.a_lo != b.a_lo) return a.a_lo < b.a_lo;
              return a.b_lo < b.b_lo;
            });
  std::vector<std::vector<MatchTask>> task_units(
      static_cast<size_t>(num_reduce_tasks));
  std::vector<int64_t> load(static_cast<size_t>(num_reduce_tasks), 0);
  for (const MatchTask& unit : units) {
    int best = 0;
    for (int t = 1; t < num_reduce_tasks; ++t) {
      if (load[static_cast<size_t>(t)] < load[static_cast<size_t>(best)]) {
        best = t;
      }
    }
    load[static_cast<size_t>(best)] += unit.pairs;
    task_units[static_cast<size_t>(best)].push_back(unit);
  }
  return task_units;
}

// PairRange (Kolb et al., Sec. 5): the global comparison space — every live
// block's windowed pair enumeration, concatenated in canonical (family,
// node) order — is carved into num_reduce_tasks near-equal contiguous
// ranges. A block overlapping a range boundary contributes a kSlice unit
// restricted to the overlapping enumeration indices; zero-pair blocks ride
// with the task owning their (empty) global offset.
std::vector<std::vector<MatchTask>> AssignPairRange(
    const std::vector<PairBlock>& blocks, int num_reduce_tasks) {
  int64_t total = 0;
  for (const PairBlock& b : blocks) total += b.pairs;
  const auto task_begin = [&](int64_t t) {
    return t * total / num_reduce_tasks;
  };
  const auto task_of_index = [&](int64_t g) {
    // The task whose [task_begin(t), task_begin(t+1)) range owns global
    // pair index g; empty ranges are skipped by scanning forward.
    int64_t t = std::min<int64_t>(num_reduce_tasks - 1,
                                  g * num_reduce_tasks / std::max<int64_t>(
                                                             1, total));
    while (t > 0 && task_begin(t) > g) --t;
    while (t + 1 < num_reduce_tasks && task_begin(t + 1) <= g) ++t;
    return t;
  };

  std::vector<std::vector<MatchTask>> task_units(
      static_cast<size_t>(num_reduce_tasks));
  int64_t offset = 0;
  for (const PairBlock& b : blocks) {
    if (b.pairs == 0) {
      MatchTask unit;
      unit.ref = b.ref;
      task_units[static_cast<size_t>(task_of_index(offset))].push_back(unit);
      continue;
    }
    int64_t local = 0;
    while (local < b.pairs) {
      const int64_t t = task_of_index(offset + local);
      const int64_t range_end =
          t + 1 < num_reduce_tasks ? task_begin(t + 1) : total;
      const int64_t take = std::min(b.pairs - local, range_end - offset - local);
      MatchTask unit;
      unit.ref = b.ref;
      unit.pairs = take;
      if (local == 0 && take == b.pairs) {
        unit.kind = MatchTask::Kind::kWhole;
      } else {
        unit.kind = MatchTask::Kind::kSlice;
        unit.begin = local;
        unit.end = local + take;
      }
      task_units[static_cast<size_t>(t)].push_back(unit);
      local += take;
    }
    offset += b.pairs;
  }
  return task_units;
}

// Within-task unit order for BlockSplit: by non-increasing block utility
// (units of one block adjacent, sub-ranges in position order), then fixed
// up so that units of a block's in-tree descendants present in the same
// task precede the block's own units — the bottom-up property the
// progressive mechanisms' incremental resolution exploits.
void OrderUnitsBottomUp(const std::vector<AnnotatedForest>& forests,
                        std::vector<MatchTask>* units) {
  std::sort(units->begin(), units->end(),
            [&](const MatchTask& a, const MatchTask& b) {
              const double ua =
                  forests[static_cast<size_t>(a.ref.family)].block(a.ref.node)
                      .util;
              const double ub =
                  forests[static_cast<size_t>(b.ref.family)].block(b.ref.node)
                      .util;
              if (ua != ub) return ua > ub;
              if (a.ref.family != b.ref.family)
                return a.ref.family < b.ref.family;
              if (a.ref.node != b.ref.node) return a.ref.node < b.ref.node;
              if (a.a_lo != b.a_lo) return a.a_lo < b.a_lo;
              return a.b_lo < b.b_lo;
            });
  std::unordered_map<uint64_t, std::vector<MatchTask>> of_block;
  std::vector<BlockRef> block_order;
  for (const MatchTask& unit : *units) {
    auto& group = of_block[BlockRefKey(unit.ref)];
    if (group.empty()) block_order.push_back(unit.ref);
    group.push_back(unit);
  }
  std::vector<MatchTask> out;
  out.reserve(units->size());
  std::unordered_map<uint64_t, bool> emitted;
  const std::function<void(const BlockRef&)> emit = [&](const BlockRef& ref) {
    bool& done = emitted[BlockRefKey(ref)];
    if (done) return;
    done = true;
    const AnnotatedForest& forest = forests[static_cast<size_t>(ref.family)];
    for (int c : SortedInTreeChildren(forest, ref.node)) {
      emit({ref.family, c});
    }
    const auto it = of_block.find(BlockRefKey(ref));
    if (it == of_block.end()) return;
    for (const MatchTask& unit : it->second) out.push_back(unit);
  };
  for (const BlockRef& ref : block_order) emit(ref);
  *units = std::move(out);
}

struct TreeInfo {
  BlockRef root;
  std::vector<double> vc;
  double weighted_cost = 0.0;
  double total_cost = 0.0;
};

// Collects every tree with its cost vector and weighted cost.
std::vector<TreeInfo> CollectTrees(
    const std::vector<AnnotatedForest>& forests,
    const std::unordered_map<uint64_t, int>& bucket_of,
    const std::vector<double>& cost_vector,
    const std::vector<double>& weights) {
  const int num_buckets = static_cast<int>(cost_vector.size());
  std::vector<TreeInfo> trees;
  for (const AnnotatedForest& forest : forests) {
    for (int root : forest.tree_roots()) {
      TreeInfo info;
      info.root = {forest.family(), root};
      info.vc = SubtreeCostVector(forest, root, bucket_of, num_buckets);
      for (int h = 0; h < num_buckets; ++h) {
        info.weighted_cost += weights[static_cast<size_t>(h)] *
                              info.vc[static_cast<size_t>(h)];
      }
      // Overflow-bucket cost contributes with the smallest weight so that
      // huge late trees still order sensibly.
      info.weighted_cost +=
          weights.back() * 0.5 * info.vc[static_cast<size_t>(num_buckets)];
      for (double v : info.vc) info.total_cost += v;
      trees.push_back(std::move(info));
    }
  }
  return trees;
}

}  // namespace

std::vector<double> MakeUniformCostVector(double total_cost,
                                          int num_reduce_tasks, int k) {
  std::vector<double> c(static_cast<size_t>(k), 0.0);
  const double per_task =
      total_cost / std::max(1, num_reduce_tasks) / static_cast<double>(k);
  for (int i = 0; i < k; ++i) {
    c[static_cast<size_t>(i)] = per_task * static_cast<double>(i + 1);
  }
  return c;
}

std::vector<double> MakeLinearWeights(int k) {
  std::vector<double> w(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < k; ++i) {
    w[static_cast<size_t>(i)] =
        1.0 - static_cast<double>(i) / static_cast<double>(k);
  }
  return w;
}

std::vector<double> MakeExponentialWeights(int k, double decay) {
  std::vector<double> w(static_cast<size_t>(k), 0.0);
  double value = 1.0;
  for (int i = 0; i < k; ++i) {
    w[static_cast<size_t>(i)] = value;
    value *= decay;
  }
  return w;
}

std::vector<double> MakeStepWeights(int k, double cutoff_fraction) {
  std::vector<double> w(static_cast<size_t>(k), 0.0);
  const int cutoff = static_cast<int>(
      std::ceil(cutoff_fraction * static_cast<double>(k)));
  for (int i = 0; i < k && i < cutoff; ++i) w[static_cast<size_t>(i)] = 1.0;
  return w;
}

std::string ValidateScheduleParams(const ScheduleParams& params) {
  if (params.num_reduce_tasks <= 0) {
    return "schedule: num_reduce_tasks must be positive, got " +
           std::to_string(params.num_reduce_tasks);
  }
  for (size_t i = 0; i < params.cost_vector.size(); ++i) {
    if (params.cost_vector[i] <= 0.0) {
      return "schedule: cost_vector values must be positive (c[" +
             std::to_string(i) + "] = " +
             std::to_string(params.cost_vector[i]) + ")";
    }
    if (i > 0 && params.cost_vector[i] <= params.cost_vector[i - 1]) {
      return "schedule: cost_vector must be strictly increasing (c[" +
             std::to_string(i - 1) + "] = " +
             std::to_string(params.cost_vector[i - 1]) + ", c[" +
             std::to_string(i) + "] = " +
             std::to_string(params.cost_vector[i]) + ")";
    }
  }
  if (!params.weights.empty() &&
      params.weights.size() != params.cost_vector.size()) {
    return "schedule: weights length " + std::to_string(params.weights.size()) +
           " does not match cost_vector length " +
           std::to_string(params.cost_vector.size());
  }
  return "";
}

int64_t WindowPairCount(int64_t n, int window) {
  int64_t pairs = 0;
  const int64_t max_distance = std::min<int64_t>(window - 1, n - 1);
  for (int64_t d = 1; d <= max_distance; ++d) pairs += n - d;
  return pairs;
}

std::string DescribeSchedule(const ProgressiveSchedule& schedule,
                             const std::vector<AnnotatedForest>& forests,
                             int blocks_per_task) {
  std::string out;
  char line[256];
  for (int t = 0; t < schedule.num_reduce_tasks; ++t) {
    const auto& blocks = schedule.task_blocks[static_cast<size_t>(t)];
    double cost = 0.0;
    std::unordered_map<uint64_t, bool> trees;
    for (const BlockRef& ref : blocks) {
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(ref.family)];
      cost += forest.block(ref.node).cost;
      trees[BlockRefKey(ref.family, forest.FindTreeRoot(ref.node))] = true;
    }
    std::snprintf(line, sizeof(line),
                  "task %d: %zu trees, %zu blocks, est cost %.0f\n", t,
                  trees.size(), blocks.size(), cost);
    out += line;
    const int shown = std::min<int>(blocks_per_task,
                                    static_cast<int>(blocks.size()));
    for (int i = 0; i < shown; ++i) {
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(blocks[static_cast<size_t>(i)].family)];
      const AnnotatedBlock& b =
          forest.block(blocks[static_cast<size_t>(i)].node);
      std::snprintf(line, sizeof(line),
                    "  #%d family=%d level=%d size=%lld util=%.4f cost=%.0f%s\n",
                    i, blocks[static_cast<size_t>(i)].family, b.id.level,
                    static_cast<long long>(b.size), b.util, b.cost,
                    b.tree_root ? " [root]" : "");
      out += line;
    }
  }
  return out;
}

double TotalEstimatedCost(const std::vector<AnnotatedForest>& forests) {
  double total = 0.0;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      if (!forest.block(n).eliminated) total += forest.block(n).cost;
    }
  }
  return total;
}

namespace {

// Sequence values, task_blocks mirror and dominance values for a pair-level
// (unit-based) schedule; the counterpart of GenerateSchedule's step 4.
void FinishPairLevelSchedule(const std::vector<AnnotatedForest>& forests,
                             ProgressiveSchedule* schedule) {
  size_t max_units = 1;
  for (const auto& units : schedule->task_units) {
    max_units = std::max(max_units, units.size());
  }
  schedule->range_per_task = static_cast<int64_t>(max_units) + 1;
  schedule->task_blocks.resize(schedule->task_units.size());
  for (size_t t = 0; t < schedule->task_units.size(); ++t) {
    const auto& units = schedule->task_units[t];
    auto& blocks = schedule->task_blocks[t];
    blocks.clear();
    blocks.reserve(units.size());
    for (size_t i = 0; i < units.size(); ++i) {
      const int64_t sq = static_cast<int64_t>(t) * schedule->range_per_task +
                         static_cast<int64_t>(i);
      const uint64_t key = BlockRefKey(units[i].ref);
      schedule->unit_sequences[key].push_back(sq);
      const auto it = schedule->sequence.find(key);
      if (it == schedule->sequence.end() || sq < it->second) {
        schedule->sequence[key] = sq;
      }
      blocks.push_back(units[i].ref);
    }
  }
  for (auto& [key, sqs] : schedule->unit_sequences) {
    std::sort(sqs.begin(), sqs.end());
  }
  int32_t next_dom = 1;
  for (const AnnotatedForest& forest : forests) {
    for (int root : forest.tree_roots()) {
      schedule->dominance[BlockRefKey(forest.family(), root)] = next_dom++;
    }
  }
}

}  // namespace

ProgressiveSchedule GenerateSchedule(std::vector<AnnotatedForest>* forests,
                                     const ScheduleParams& params) {
  {
    ProgressiveSchedule invalid;
    invalid.error = ValidateScheduleParams(params);
    if (!invalid.error.empty()) return invalid;
  }
  ScheduleParams p = params;

  // ---- Pair-level schedulers (Kolb et al.) ----
  if (p.scheduler == TreeScheduler::kBlockSplit ||
      p.scheduler == TreeScheduler::kPairRange) {
    ProgressiveSchedule schedule;
    schedule.num_reduce_tasks = p.num_reduce_tasks;
    schedule.pair_level = true;
    const std::vector<PairBlock> blocks = CollectPairBlocks(*forests);
    if (p.scheduler == TreeScheduler::kBlockSplit) {
      schedule.task_units = AssignBlockSplit(blocks, p.num_reduce_tasks);
      for (auto& units : schedule.task_units) {
        OrderUnitsBottomUp(*forests, &units);
      }
    } else {
      // PairRange keeps range order (canonical enumeration order): batch
      // semantics, documented — progressive utility ordering does not apply.
      schedule.task_units = AssignPairRange(blocks, p.num_reduce_tasks);
    }
    if (p.per_task_budget > 0.0) {
      // Prorate each block's estimated cost over its units by pair share.
      for (auto& units : schedule.task_units) {
        double cumulative = 0.0;
        size_t keep = 0;
        while (keep < units.size()) {
          const MatchTask& unit = units[keep];
          const AnnotatedBlock& b =
              (*forests)[static_cast<size_t>(unit.ref.family)].block(
                  unit.ref.node);
          const int64_t block_pairs = WindowPairCount(b.size, b.window);
          cumulative += block_pairs > 0
                            ? b.cost * static_cast<double>(unit.pairs) /
                                  static_cast<double>(block_pairs)
                            : b.cost;
          if (cumulative > p.per_task_budget) break;
          ++keep;
        }
        units.resize(keep);
      }
    }
    FinishPairLevelSchedule(*forests, &schedule);
    return schedule;
  }

  if (p.cost_vector.empty()) {
    p.cost_vector =
        MakeUniformCostVector(TotalEstimatedCost(*forests),
                              p.num_reduce_tasks, /*k=*/10);
  }
  if (p.weights.size() != p.cost_vector.size()) {
    p.weights = MakeLinearWeights(static_cast<int>(p.cost_vector.size()));
  }
  const int num_buckets = static_cast<int>(p.cost_vector.size());

  // ---- Step 1: split overflowed trees (GENERATE-SCHEDULE lines 2-7) ----
  if (p.scheduler == TreeScheduler::kOurs) {
    while (true) {
      const std::vector<SlEntry> sl = BuildSl(*forests);
      const std::unordered_map<uint64_t, int> bucket_of =
          AssignBuckets(sl, p.cost_vector, p.num_reduce_tasks);

      // IDENTIFY-TREES: trees whose cost vector exceeds some bucket's
      // capacity and that still have a child to split.
      struct Overflowed {
        int family;
        int root;
        double excess;
      };
      std::vector<Overflowed> overflowed;
      for (AnnotatedForest& forest : *forests) {
        for (int root : forest.tree_roots()) {
          const std::vector<double> vc =
              SubtreeCostVector(forest, root, bucket_of, num_buckets);
          double excess = 0.0;
          for (int h = 0; h < num_buckets; ++h) {
            excess += std::max(0.0, vc[static_cast<size_t>(h)] -
                                        BucketCapacity(p.cost_vector, h));
          }
          if (excess > 0.0 &&
              !SortedInTreeChildren(forest, root).empty()) {
            overflowed.push_back({forest.family(), root, excess});
          }
        }
      }
      if (overflowed.empty()) break;
      std::sort(overflowed.begin(), overflowed.end(),
                [](const Overflowed& a, const Overflowed& b) {
                  if (a.excess != b.excess) return a.excess > b.excess;
                  if (a.family != b.family) return a.family < b.family;
                  return a.root < b.root;
                });

      int splits = 0;
      const int batch =
          std::min<int>(p.batch_size, static_cast<int>(overflowed.size()));
      for (int i = 0; i < batch; ++i) {
        AnnotatedForest& forest =
            (*forests)[static_cast<size_t>(overflowed[static_cast<size_t>(i)]
                                               .family)];
        splits += SplitTree(&forest, overflowed[static_cast<size_t>(i)].root,
                            bucket_of, p.cost_vector);
      }
      if (splits == 0) break;  // nothing splittable improved: stop
    }
  }

  // ---- Step 2: partition trees among reduce tasks ----
  const std::vector<SlEntry> sl = BuildSl(*forests);
  const std::unordered_map<uint64_t, int> bucket_of =
      AssignBuckets(sl, p.cost_vector, p.num_reduce_tasks);
  std::vector<TreeInfo> trees =
      CollectTrees(*forests, bucket_of, p.cost_vector, p.weights);

  ProgressiveSchedule schedule;
  schedule.num_reduce_tasks = p.num_reduce_tasks;
  schedule.task_blocks.resize(static_cast<size_t>(p.num_reduce_tasks));

  if (p.scheduler == TreeScheduler::kLpt) {
    // LPT: longest (total cost) first onto the least-loaded task.
    std::sort(trees.begin(), trees.end(),
              [](const TreeInfo& a, const TreeInfo& b) {
                if (a.total_cost != b.total_cost)
                  return a.total_cost > b.total_cost;
                if (a.root.family != b.root.family)
                  return a.root.family < b.root.family;
                return a.root.node < b.root.node;
              });
    std::vector<double> load(static_cast<size_t>(p.num_reduce_tasks), 0.0);
    for (const TreeInfo& tree : trees) {
      int best = 0;
      for (int t = 1; t < p.num_reduce_tasks; ++t) {
        if (load[static_cast<size_t>(t)] < load[static_cast<size_t>(best)]) {
          best = t;
        }
      }
      load[static_cast<size_t>(best)] += tree.total_cost;
      schedule.task_of_tree[BlockRefKey(tree.root)] = best;
    }
  } else {
    // ASSIGN-TREES: weighted-cost order onto the task with the largest
    // slack SK(R) (Sec. IV-C2).
    std::sort(trees.begin(), trees.end(),
              [](const TreeInfo& a, const TreeInfo& b) {
                if (a.weighted_cost != b.weighted_cost)
                  return a.weighted_cost > b.weighted_cost;
                if (a.root.family != b.root.family)
                  return a.root.family < b.root.family;
                return a.root.node < b.root.node;
              });
    std::vector<std::vector<double>> load(
        static_cast<size_t>(p.num_reduce_tasks),
        std::vector<double>(static_cast<size_t>(num_buckets) + 1, 0.0));
    // The overflow bucket participates in the slack computation with the
    // tail weight and the last real bucket's capacity; otherwise a tree
    // whose cost lies entirely past c_k would yield identical (zero) slack
    // on every task and all such trees would pile onto the first one,
    // creating a straggler.
    const double overflow_weight = p.weights.back() * 0.5;
    const double overflow_capacity =
        BucketCapacity(p.cost_vector, num_buckets - 1);
    std::vector<double> total_load(static_cast<size_t>(p.num_reduce_tasks),
                                   0.0);
    for (const TreeInfo& tree : trees) {
      int best = 0;
      double best_slack = std::numeric_limits<double>::lowest();
      for (int t = 0; t < p.num_reduce_tasks; ++t) {
        double slack = 0.0;
        for (int h = 0; h <= num_buckets; ++h) {
          if (tree.vc[static_cast<size_t>(h)] <= 0.0) continue;  // delta_h
          const double weight = h < num_buckets
                                    ? p.weights[static_cast<size_t>(h)]
                                    : overflow_weight;
          const double capacity = h < num_buckets
                                      ? BucketCapacity(p.cost_vector, h)
                                      : overflow_capacity;
          slack += weight * (capacity -
                             load[static_cast<size_t>(t)][static_cast<size_t>(h)]);
        }
        // Ties (e.g. two heavy trees occupying disjoint buckets, both seeing
        // untouched capacity everywhere) break toward the least-loaded task;
        // otherwise they would all stack onto the first task and create a
        // straggler.
        constexpr double kTieTolerance = 1e-9;
        if (slack > best_slack + kTieTolerance ||
            (slack > best_slack - kTieTolerance &&
             total_load[static_cast<size_t>(t)] <
                 total_load[static_cast<size_t>(best)])) {
          best_slack = std::max(best_slack, slack);
          best = t;
        }
      }
      for (size_t h = 0; h < tree.vc.size(); ++h) {
        load[static_cast<size_t>(best)][h] += tree.vc[h];
      }
      total_load[static_cast<size_t>(best)] += tree.total_cost;
      schedule.task_of_tree[BlockRefKey(tree.root)] = best;
    }
  }

  // ---- Step 3: per-task block schedules ----
  // Within a task, blocks are ordered by non-increasing utility, except that
  // a block's in-tree descendants always precede it (bottom-up resolution,
  // Sec. III-A): when a block is emitted, its unemitted descendants are
  // emitted first, themselves in utility order.
  for (int t = 0; t < p.num_reduce_tasks; ++t) {
    struct TaskBlock {
      BlockRef ref;
      double util;
    };
    std::vector<TaskBlock> blocks;
    for (const TreeInfo& tree : trees) {
      if (schedule.task_of_tree.at(BlockRefKey(tree.root)) != t) continue;
      const AnnotatedForest& forest =
          (*forests)[static_cast<size_t>(tree.root.family)];
      for (int n : forest.TreeBlocks(tree.root.node)) {
        blocks.push_back({{tree.root.family, n}, forest.block(n).util});
      }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const TaskBlock& a, const TaskBlock& b) {
                if (a.util != b.util) return a.util > b.util;
                if (a.ref.family != b.ref.family)
                  return a.ref.family < b.ref.family;
                return a.ref.node < b.ref.node;
              });

    std::unordered_map<uint64_t, bool> emitted;
    std::vector<BlockRef>& out = schedule.task_blocks[static_cast<size_t>(t)];
    // Recursive emission with the bottom-up constraint.
    const std::function<void(const BlockRef&)> emit =
        [&](const BlockRef& ref) {
          bool& done = emitted[BlockRefKey(ref)];
          if (done) return;
          done = true;  // mark first: guards against cycles (none expected)
          const AnnotatedForest& forest =
              (*forests)[static_cast<size_t>(ref.family)];
          for (int c : SortedInTreeChildren(forest, ref.node)) {
            emit({ref.family, c});
          }
          out.push_back(ref);
        };
    for (const TaskBlock& tb : blocks) emit(tb.ref);
  }

  // ---- Step 3b: budget truncation ----
  if (p.per_task_budget > 0.0) {
    for (auto& blocks : schedule.task_blocks) {
      double cumulative = 0.0;
      size_t keep = 0;
      while (keep < blocks.size()) {
        const BlockRef& ref = blocks[keep];
        cumulative +=
            (*forests)[static_cast<size_t>(ref.family)].block(ref.node).cost;
        if (cumulative > p.per_task_budget) break;
        ++keep;
      }
      blocks.resize(keep);
    }
  }

  // ---- Step 4: sequence values and dominance values ----
  size_t max_blocks = 1;
  for (const auto& blocks : schedule.task_blocks) {
    max_blocks = std::max(max_blocks, blocks.size());
  }
  schedule.range_per_task = static_cast<int64_t>(max_blocks) + 1;
  for (int t = 0; t < p.num_reduce_tasks; ++t) {
    const auto& blocks = schedule.task_blocks[static_cast<size_t>(t)];
    for (size_t i = 0; i < blocks.size(); ++i) {
      schedule.sequence[BlockRefKey(blocks[i])] =
          static_cast<int64_t>(t) * schedule.range_per_task +
          static_cast<int64_t>(i);
    }
  }
  int32_t next_dom = 1;
  for (const AnnotatedForest& forest : *forests) {
    for (int root : forest.tree_roots()) {
      schedule.dominance[BlockRefKey(forest.family(), root)] = next_dom++;
    }
  }

  // Mirror the block schedules as kWhole units so unit-level consumers (the
  // coverage harness, DescribeSchedule) see one uniform representation.
  schedule.task_units.resize(schedule.task_blocks.size());
  for (size_t t = 0; t < schedule.task_blocks.size(); ++t) {
    for (const BlockRef& ref : schedule.task_blocks[t]) {
      const AnnotatedBlock& b =
          (*forests)[static_cast<size_t>(ref.family)].block(ref.node);
      MatchTask unit;
      unit.ref = ref;
      unit.pairs = WindowPairCount(b.size, b.window);
      schedule.task_units[t].push_back(unit);
    }
  }
  return schedule;
}

}  // namespace progres

#include "schedule/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <functional>
#include <limits>

namespace progres {

namespace {

// One entry of the utility-sorted list SL (Sec. IV-C1).
struct SlEntry {
  BlockRef ref;
  double util = 0.0;
  double cost = 0.0;
};

// Collects every live block and sorts by non-increasing utility
// (deterministic tie-break on family, then node index).
std::vector<SlEntry> BuildSl(const std::vector<AnnotatedForest>& forests) {
  std::vector<SlEntry> sl;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      const AnnotatedBlock& b = forest.block(n);
      if (b.eliminated) continue;
      sl.push_back({{forest.family(), n}, b.util, b.cost});
    }
  }
  std::sort(sl.begin(), sl.end(), [](const SlEntry& a, const SlEntry& b) {
    if (a.util != b.util) return a.util > b.util;
    if (a.ref.family != b.ref.family) return a.ref.family < b.ref.family;
    return a.ref.node < b.ref.node;
  });
  return sl;
}

// Assigns each SL entry to a bucket: bucket i (0-based) holds the blocks
// resolvable during (c_{i-1} * r, c_i * r] cumulative cost units. Blocks
// past c_k * r land in the virtual overflow bucket (index k), which has
// unbounded capacity and is excluded from overflow checks.
std::unordered_map<uint64_t, int> AssignBuckets(
    const std::vector<SlEntry>& sl, const std::vector<double>& cost_vector,
    int num_reduce_tasks) {
  std::unordered_map<uint64_t, int> bucket_of;
  bucket_of.reserve(sl.size());
  double cumulative = 0.0;
  size_t bucket = 0;
  const double r = static_cast<double>(num_reduce_tasks);
  for (const SlEntry& entry : sl) {
    cumulative += entry.cost;
    while (bucket < cost_vector.size() &&
           cumulative > cost_vector[bucket] * r) {
      ++bucket;
    }
    bucket_of[BlockRefKey(entry.ref)] = static_cast<int>(bucket);
  }
  return bucket_of;
}

// Capacity of bucket h: c_h - c_{h-1} (with c_0 = 0).
double BucketCapacity(const std::vector<double>& cost_vector, int h) {
  return h == 0 ? cost_vector[0]
                : cost_vector[static_cast<size_t>(h)] -
                      cost_vector[static_cast<size_t>(h - 1)];
}

// The tree cost vector VC(T): per bucket, the total cost of the subtree's
// blocks (Sec. IV-C2). Vector has |C| + 1 entries (last = overflow bucket).
std::vector<double> SubtreeCostVector(
    const AnnotatedForest& forest, int root,
    const std::unordered_map<uint64_t, int>& bucket_of, int num_buckets) {
  std::vector<double> vc(static_cast<size_t>(num_buckets) + 1, 0.0);
  for (int n : forest.TreeBlocks(root)) {
    const auto it = bucket_of.find(BlockRefKey(forest.family(), n));
    if (it == bucket_of.end()) continue;
    vc[static_cast<size_t>(it->second)] += forest.block(n).cost;
  }
  return vc;
}

// Sum of CostP over the subtree rooted at `node` (in-tree blocks only).
double SubtreeCostP(const AnnotatedForest& forest, int node,
                    const MechanismCosts& costs) {
  double sum = 0.0;
  for (int n : forest.TreeBlocks(node)) {
    const AnnotatedBlock& b = forest.block(n);
    sum += CostP(b.dup, b.dis, costs);
  }
  return sum;
}

// In-tree (non-eliminated, non-split) children of `node`, sorted by
// non-increasing utility.
std::vector<int> SortedInTreeChildren(const AnnotatedForest& forest,
                                      int node) {
  std::vector<int> children;
  for (int c : forest.block(node).children) {
    const AnnotatedBlock& cb = forest.block(c);
    if (!cb.eliminated && !cb.tree_root) children.push_back(c);
  }
  std::sort(children.begin(), children.end(), [&](int a, int b) {
    const double ua = forest.block(a).util;
    const double ub = forest.block(b).util;
    if (ua != ub) return ua > ub;
    return a < b;
  });
  return children;
}

// SHOULD-SPLIT (Fig. 6): would keeping child `c` (in addition to the already
// kept children `kept`) still overflow some bucket, even if every remaining
// child were split away?
bool ShouldSplit(const AnnotatedForest& forest, int root, int candidate,
                 const std::vector<int>& kept,
                 const std::vector<int>& remaining,
                 const std::unordered_map<uint64_t, int>& bucket_of,
                 const std::vector<double>& cost_vector,
                 std::vector<double>* v_star) {
  const AnnotatedBlock& root_block = forest.block(root);
  const int num_buckets = static_cast<int>(cost_vector.size());

  // Hypothetical covered pairs of the root if all remaining children (other
  // than the candidate) were split off.
  int64_t cov_hyp = root_block.cov;
  for (int d : remaining) {
    if (d == candidate) continue;
    cov_hyp -= forest.block(d).cov;
  }
  cov_hyp = std::max<int64_t>(0, cov_hyp);

  // Hypothetical Eq. 5 cost of the root with Chd = kept + {candidate}.
  const MechanismCosts& costs = forest.params().costs;
  double desc_costp = 0.0;
  for (int e : kept) desc_costp += SubtreeCostP(forest, e, costs);
  desc_costp += SubtreeCostP(forest, candidate, costs);
  double cost_hyp = CostA(root_block.size, costs) +
                    CostF(root_block.size, root_block.window, cov_hyp, costs) -
                    desc_costp;
  cost_hyp = std::max(cost_hyp, CostA(root_block.size, costs));

  // Place the hypothetical cost in the root's current SL bucket.
  const auto root_bucket = bucket_of.find(BlockRefKey(forest.family(), root));
  const int s = root_bucket == bucket_of.end() ? num_buckets
                                               : root_bucket->second;
  (*v_star)[static_cast<size_t>(s)] = cost_hyp;

  // Test every real bucket's capacity against kept + candidate + V*.
  std::vector<double> load(static_cast<size_t>(num_buckets) + 1, 0.0);
  for (int e : kept) {
    const std::vector<double> vc =
        SubtreeCostVector(forest, e, bucket_of, num_buckets);
    for (size_t h = 0; h < load.size(); ++h) load[h] += vc[h];
  }
  const std::vector<double> vc_candidate =
      SubtreeCostVector(forest, candidate, bucket_of, num_buckets);
  for (size_t h = 0; h < load.size(); ++h) load[h] += vc_candidate[h];

  for (int h = 0; h < num_buckets; ++h) {
    if (load[static_cast<size_t>(h)] + (*v_star)[static_cast<size_t>(h)] >
        BucketCapacity(cost_vector, h)) {
      return true;
    }
  }
  return false;
}

// SPLIT-TREE (Fig. 6). Returns the number of subtrees split off.
int SplitTree(AnnotatedForest* forest, int root,
              const std::unordered_map<uint64_t, int>& bucket_of,
              const std::vector<double>& cost_vector) {
  std::vector<int> children = SortedInTreeChildren(*forest, root);
  std::vector<int> kept;
  std::vector<double> v_star(cost_vector.size() + 1, 0.0);
  int splits = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    const int c = children[i];
    const std::vector<int> remaining(children.begin() + static_cast<long>(i),
                                     children.end());
    if (ShouldSplit(*forest, root, c, kept, remaining, bucket_of, cost_vector,
                    &v_star)) {
      forest->SplitSubtree(c);
      ++splits;
    } else {
      kept.push_back(c);
    }
  }
  return splits;
}

struct TreeInfo {
  BlockRef root;
  std::vector<double> vc;
  double weighted_cost = 0.0;
  double total_cost = 0.0;
};

// Collects every tree with its cost vector and weighted cost.
std::vector<TreeInfo> CollectTrees(
    const std::vector<AnnotatedForest>& forests,
    const std::unordered_map<uint64_t, int>& bucket_of,
    const std::vector<double>& cost_vector,
    const std::vector<double>& weights) {
  const int num_buckets = static_cast<int>(cost_vector.size());
  std::vector<TreeInfo> trees;
  for (const AnnotatedForest& forest : forests) {
    for (int root : forest.tree_roots()) {
      TreeInfo info;
      info.root = {forest.family(), root};
      info.vc = SubtreeCostVector(forest, root, bucket_of, num_buckets);
      for (int h = 0; h < num_buckets; ++h) {
        info.weighted_cost += weights[static_cast<size_t>(h)] *
                              info.vc[static_cast<size_t>(h)];
      }
      // Overflow-bucket cost contributes with the smallest weight so that
      // huge late trees still order sensibly.
      info.weighted_cost +=
          weights.back() * 0.5 * info.vc[static_cast<size_t>(num_buckets)];
      for (double v : info.vc) info.total_cost += v;
      trees.push_back(std::move(info));
    }
  }
  return trees;
}

}  // namespace

std::vector<double> MakeUniformCostVector(double total_cost,
                                          int num_reduce_tasks, int k) {
  std::vector<double> c(static_cast<size_t>(k), 0.0);
  const double per_task =
      total_cost / std::max(1, num_reduce_tasks) / static_cast<double>(k);
  for (int i = 0; i < k; ++i) {
    c[static_cast<size_t>(i)] = per_task * static_cast<double>(i + 1);
  }
  return c;
}

std::vector<double> MakeLinearWeights(int k) {
  std::vector<double> w(static_cast<size_t>(k), 0.0);
  for (int i = 0; i < k; ++i) {
    w[static_cast<size_t>(i)] =
        1.0 - static_cast<double>(i) / static_cast<double>(k);
  }
  return w;
}

std::vector<double> MakeExponentialWeights(int k, double decay) {
  std::vector<double> w(static_cast<size_t>(k), 0.0);
  double value = 1.0;
  for (int i = 0; i < k; ++i) {
    w[static_cast<size_t>(i)] = value;
    value *= decay;
  }
  return w;
}

std::vector<double> MakeStepWeights(int k, double cutoff_fraction) {
  std::vector<double> w(static_cast<size_t>(k), 0.0);
  const int cutoff = static_cast<int>(
      std::ceil(cutoff_fraction * static_cast<double>(k)));
  for (int i = 0; i < k && i < cutoff; ++i) w[static_cast<size_t>(i)] = 1.0;
  return w;
}

std::string DescribeSchedule(const ProgressiveSchedule& schedule,
                             const std::vector<AnnotatedForest>& forests,
                             int blocks_per_task) {
  std::string out;
  char line[256];
  for (int t = 0; t < schedule.num_reduce_tasks; ++t) {
    const auto& blocks = schedule.task_blocks[static_cast<size_t>(t)];
    double cost = 0.0;
    std::unordered_map<uint64_t, bool> trees;
    for (const BlockRef& ref : blocks) {
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(ref.family)];
      cost += forest.block(ref.node).cost;
      trees[BlockRefKey(ref.family, forest.FindTreeRoot(ref.node))] = true;
    }
    std::snprintf(line, sizeof(line),
                  "task %d: %zu trees, %zu blocks, est cost %.0f\n", t,
                  trees.size(), blocks.size(), cost);
    out += line;
    const int shown = std::min<int>(blocks_per_task,
                                    static_cast<int>(blocks.size()));
    for (int i = 0; i < shown; ++i) {
      const AnnotatedForest& forest =
          forests[static_cast<size_t>(blocks[static_cast<size_t>(i)].family)];
      const AnnotatedBlock& b =
          forest.block(blocks[static_cast<size_t>(i)].node);
      std::snprintf(line, sizeof(line),
                    "  #%d family=%d level=%d size=%lld util=%.4f cost=%.0f%s\n",
                    i, blocks[static_cast<size_t>(i)].family, b.id.level,
                    static_cast<long long>(b.size), b.util, b.cost,
                    b.tree_root ? " [root]" : "");
      out += line;
    }
  }
  return out;
}

double TotalEstimatedCost(const std::vector<AnnotatedForest>& forests) {
  double total = 0.0;
  for (const AnnotatedForest& forest : forests) {
    for (int n = 0; n < forest.num_blocks(); ++n) {
      if (!forest.block(n).eliminated) total += forest.block(n).cost;
    }
  }
  return total;
}

ProgressiveSchedule GenerateSchedule(std::vector<AnnotatedForest>* forests,
                                     const ScheduleParams& params) {
  ScheduleParams p = params;
  if (p.cost_vector.empty()) {
    p.cost_vector =
        MakeUniformCostVector(TotalEstimatedCost(*forests),
                              p.num_reduce_tasks, /*k=*/10);
  }
  if (p.weights.size() != p.cost_vector.size()) {
    p.weights = MakeLinearWeights(static_cast<int>(p.cost_vector.size()));
  }
  const int num_buckets = static_cast<int>(p.cost_vector.size());

  // ---- Step 1: split overflowed trees (GENERATE-SCHEDULE lines 2-7) ----
  if (p.scheduler == TreeScheduler::kOurs) {
    while (true) {
      const std::vector<SlEntry> sl = BuildSl(*forests);
      const std::unordered_map<uint64_t, int> bucket_of =
          AssignBuckets(sl, p.cost_vector, p.num_reduce_tasks);

      // IDENTIFY-TREES: trees whose cost vector exceeds some bucket's
      // capacity and that still have a child to split.
      struct Overflowed {
        int family;
        int root;
        double excess;
      };
      std::vector<Overflowed> overflowed;
      for (AnnotatedForest& forest : *forests) {
        for (int root : forest.tree_roots()) {
          const std::vector<double> vc =
              SubtreeCostVector(forest, root, bucket_of, num_buckets);
          double excess = 0.0;
          for (int h = 0; h < num_buckets; ++h) {
            excess += std::max(0.0, vc[static_cast<size_t>(h)] -
                                        BucketCapacity(p.cost_vector, h));
          }
          if (excess > 0.0 &&
              !SortedInTreeChildren(forest, root).empty()) {
            overflowed.push_back({forest.family(), root, excess});
          }
        }
      }
      if (overflowed.empty()) break;
      std::sort(overflowed.begin(), overflowed.end(),
                [](const Overflowed& a, const Overflowed& b) {
                  if (a.excess != b.excess) return a.excess > b.excess;
                  if (a.family != b.family) return a.family < b.family;
                  return a.root < b.root;
                });

      int splits = 0;
      const int batch =
          std::min<int>(p.batch_size, static_cast<int>(overflowed.size()));
      for (int i = 0; i < batch; ++i) {
        AnnotatedForest& forest =
            (*forests)[static_cast<size_t>(overflowed[static_cast<size_t>(i)]
                                               .family)];
        splits += SplitTree(&forest, overflowed[static_cast<size_t>(i)].root,
                            bucket_of, p.cost_vector);
      }
      if (splits == 0) break;  // nothing splittable improved: stop
    }
  }

  // ---- Step 2: partition trees among reduce tasks ----
  const std::vector<SlEntry> sl = BuildSl(*forests);
  const std::unordered_map<uint64_t, int> bucket_of =
      AssignBuckets(sl, p.cost_vector, p.num_reduce_tasks);
  std::vector<TreeInfo> trees =
      CollectTrees(*forests, bucket_of, p.cost_vector, p.weights);

  ProgressiveSchedule schedule;
  schedule.num_reduce_tasks = p.num_reduce_tasks;
  schedule.task_blocks.resize(static_cast<size_t>(p.num_reduce_tasks));

  if (p.scheduler == TreeScheduler::kLpt) {
    // LPT: longest (total cost) first onto the least-loaded task.
    std::sort(trees.begin(), trees.end(),
              [](const TreeInfo& a, const TreeInfo& b) {
                if (a.total_cost != b.total_cost)
                  return a.total_cost > b.total_cost;
                if (a.root.family != b.root.family)
                  return a.root.family < b.root.family;
                return a.root.node < b.root.node;
              });
    std::vector<double> load(static_cast<size_t>(p.num_reduce_tasks), 0.0);
    for (const TreeInfo& tree : trees) {
      int best = 0;
      for (int t = 1; t < p.num_reduce_tasks; ++t) {
        if (load[static_cast<size_t>(t)] < load[static_cast<size_t>(best)]) {
          best = t;
        }
      }
      load[static_cast<size_t>(best)] += tree.total_cost;
      schedule.task_of_tree[BlockRefKey(tree.root)] = best;
    }
  } else {
    // ASSIGN-TREES: weighted-cost order onto the task with the largest
    // slack SK(R) (Sec. IV-C2).
    std::sort(trees.begin(), trees.end(),
              [](const TreeInfo& a, const TreeInfo& b) {
                if (a.weighted_cost != b.weighted_cost)
                  return a.weighted_cost > b.weighted_cost;
                if (a.root.family != b.root.family)
                  return a.root.family < b.root.family;
                return a.root.node < b.root.node;
              });
    std::vector<std::vector<double>> load(
        static_cast<size_t>(p.num_reduce_tasks),
        std::vector<double>(static_cast<size_t>(num_buckets) + 1, 0.0));
    // The overflow bucket participates in the slack computation with the
    // tail weight and the last real bucket's capacity; otherwise a tree
    // whose cost lies entirely past c_k would yield identical (zero) slack
    // on every task and all such trees would pile onto the first one,
    // creating a straggler.
    const double overflow_weight = p.weights.back() * 0.5;
    const double overflow_capacity =
        BucketCapacity(p.cost_vector, num_buckets - 1);
    std::vector<double> total_load(static_cast<size_t>(p.num_reduce_tasks),
                                   0.0);
    for (const TreeInfo& tree : trees) {
      int best = 0;
      double best_slack = std::numeric_limits<double>::lowest();
      for (int t = 0; t < p.num_reduce_tasks; ++t) {
        double slack = 0.0;
        for (int h = 0; h <= num_buckets; ++h) {
          if (tree.vc[static_cast<size_t>(h)] <= 0.0) continue;  // delta_h
          const double weight = h < num_buckets
                                    ? p.weights[static_cast<size_t>(h)]
                                    : overflow_weight;
          const double capacity = h < num_buckets
                                      ? BucketCapacity(p.cost_vector, h)
                                      : overflow_capacity;
          slack += weight * (capacity -
                             load[static_cast<size_t>(t)][static_cast<size_t>(h)]);
        }
        // Ties (e.g. two heavy trees occupying disjoint buckets, both seeing
        // untouched capacity everywhere) break toward the least-loaded task;
        // otherwise they would all stack onto the first task and create a
        // straggler.
        constexpr double kTieTolerance = 1e-9;
        if (slack > best_slack + kTieTolerance ||
            (slack > best_slack - kTieTolerance &&
             total_load[static_cast<size_t>(t)] <
                 total_load[static_cast<size_t>(best)])) {
          best_slack = std::max(best_slack, slack);
          best = t;
        }
      }
      for (size_t h = 0; h < tree.vc.size(); ++h) {
        load[static_cast<size_t>(best)][h] += tree.vc[h];
      }
      total_load[static_cast<size_t>(best)] += tree.total_cost;
      schedule.task_of_tree[BlockRefKey(tree.root)] = best;
    }
  }

  // ---- Step 3: per-task block schedules ----
  // Within a task, blocks are ordered by non-increasing utility, except that
  // a block's in-tree descendants always precede it (bottom-up resolution,
  // Sec. III-A): when a block is emitted, its unemitted descendants are
  // emitted first, themselves in utility order.
  for (int t = 0; t < p.num_reduce_tasks; ++t) {
    struct TaskBlock {
      BlockRef ref;
      double util;
    };
    std::vector<TaskBlock> blocks;
    for (const TreeInfo& tree : trees) {
      if (schedule.task_of_tree.at(BlockRefKey(tree.root)) != t) continue;
      const AnnotatedForest& forest =
          (*forests)[static_cast<size_t>(tree.root.family)];
      for (int n : forest.TreeBlocks(tree.root.node)) {
        blocks.push_back({{tree.root.family, n}, forest.block(n).util});
      }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const TaskBlock& a, const TaskBlock& b) {
                if (a.util != b.util) return a.util > b.util;
                if (a.ref.family != b.ref.family)
                  return a.ref.family < b.ref.family;
                return a.ref.node < b.ref.node;
              });

    std::unordered_map<uint64_t, bool> emitted;
    std::vector<BlockRef>& out = schedule.task_blocks[static_cast<size_t>(t)];
    // Recursive emission with the bottom-up constraint.
    const std::function<void(const BlockRef&)> emit =
        [&](const BlockRef& ref) {
          bool& done = emitted[BlockRefKey(ref)];
          if (done) return;
          done = true;  // mark first: guards against cycles (none expected)
          const AnnotatedForest& forest =
              (*forests)[static_cast<size_t>(ref.family)];
          for (int c : SortedInTreeChildren(forest, ref.node)) {
            emit({ref.family, c});
          }
          out.push_back(ref);
        };
    for (const TaskBlock& tb : blocks) emit(tb.ref);
  }

  // ---- Step 3b: budget truncation ----
  if (p.per_task_budget > 0.0) {
    for (auto& blocks : schedule.task_blocks) {
      double cumulative = 0.0;
      size_t keep = 0;
      while (keep < blocks.size()) {
        const BlockRef& ref = blocks[keep];
        cumulative +=
            (*forests)[static_cast<size_t>(ref.family)].block(ref.node).cost;
        if (cumulative > p.per_task_budget) break;
        ++keep;
      }
      blocks.resize(keep);
    }
  }

  // ---- Step 4: sequence values and dominance values ----
  size_t max_blocks = 1;
  for (const auto& blocks : schedule.task_blocks) {
    max_blocks = std::max(max_blocks, blocks.size());
  }
  schedule.range_per_task = static_cast<int64_t>(max_blocks) + 1;
  for (int t = 0; t < p.num_reduce_tasks; ++t) {
    const auto& blocks = schedule.task_blocks[static_cast<size_t>(t)];
    for (size_t i = 0; i < blocks.size(); ++i) {
      schedule.sequence[BlockRefKey(blocks[i])] =
          static_cast<int64_t>(t) * schedule.range_per_task +
          static_cast<int64_t>(i);
    }
  }
  int32_t next_dom = 1;
  for (const AnnotatedForest& forest : *forests) {
    for (int root : forest.tree_roots()) {
      schedule.dominance[BlockRefKey(forest.family(), root)] = next_dom++;
    }
  }
  return schedule;
}

}  // namespace progres

#ifndef PROGRES_SCHEDULE_SCHEDULE_H_
#define PROGRES_SCHEDULE_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "estimate/annotated_forest.h"

namespace progres {

// Reference to a block across the per-family forests.
struct BlockRef {
  int family = 0;
  int node = 0;

  bool operator==(const BlockRef& other) const {
    return family == other.family && node == other.node;
  }
};

// Packs a BlockRef into a map key.
inline uint64_t BlockRefKey(int family, int node) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(family)) << 32) |
         static_cast<uint32_t>(node);
}
inline uint64_t BlockRefKey(const BlockRef& ref) {
  return BlockRefKey(ref.family, ref.node);
}

// Which reduce-side scheduling algorithm to use. The first three are the
// tree schedulers Sec. VI-B2 compares; the last two are Kolb/Thor/Rahm's
// pair-level load balancers ("Load Balancing for MapReduce-based Entity
// Resolution"), which schedule match-task units finer than a block.
enum class TreeScheduler {
  kOurs,        // split overflowed trees + slack-based greedy partitioning
  kNoSplit,     // our partitioning without the tree-split mechanism
  kLpt,         // Longest Processing Time load balancing [23]
  kBlockSplit,  // split oversized blocks into single/cross sub-block tasks
  kPairRange,   // carve the global pair enumeration into contiguous ranges
};

// Inputs to schedule generation (Sec. IV-C).
struct ScheduleParams {
  int num_reduce_tasks = 4;
  // The sampled cost vector C = {c_1 < c_2 < ... < c_k}, in per-task cost
  // units. Use MakeUniformCostVector for a sensible default.
  std::vector<double> cost_vector;
  // W(c_i): non-increasing weights in [0, 1]; same length as cost_vector.
  std::vector<double> weights;
  // Batch size b: trees split per iteration before SL is re-sorted.
  int batch_size = 4;
  TreeScheduler scheduler = TreeScheduler::kOurs;
  // When > 0, each task's block schedule is truncated once its cumulative
  // estimated cost exceeds this budget (the extended report's
  // quality-within-a-budget variant). Truncation drops a suffix, so the
  // bottom-up (children first) property is preserved.
  double per_task_budget = 0.0;
};

// Builds a uniform cost vector with `k` points spanning `total_cost /
// num_reduce_tasks` units per task.
std::vector<double> MakeUniformCostVector(double total_cost,
                                          int num_reduce_tasks, int k);

// Linearly decaying weights: W(c_i) = 1 - (i - 1) / k, i = 1..k.
std::vector<double> MakeLinearWeights(int k);

// Exponentially decaying weights: W(c_i) = decay^(i-1), decay in (0, 1].
// Strongly favours the earliest intervals.
std::vector<double> MakeExponentialWeights(int k, double decay);

// Step weights: 1 for the first ceil(cutoff_fraction * k) intervals, 0
// after — "only results before the deadline matter".
std::vector<double> MakeStepWeights(int k, double cutoff_fraction);

// Validates scheduling parameters. Returns "" when valid, otherwise a
// labelled error ("schedule: ..."). Rejects num_reduce_tasks <= 0, a
// cost_vector that is not strictly increasing and positive, and a
// weights/cost_vector length mismatch (both non-empty). Empty cost_vector
// or weights are valid: GenerateSchedule fills in documented defaults.
std::string ValidateScheduleParams(const ScheduleParams& params);

// Candidate pairs a windowed mechanism enumerates over a block of `n`
// entities: sum over d = 1..window-1 of max(0, n - d) — the d-major order
// both mechanisms (sorted neighborhood, PSNM) share.
int64_t WindowPairCount(int64_t n, int window);

// One reduce-side match unit. The tree schedulers assign whole blocks
// (kWhole); the pair-level schedulers also produce sub-block tasks:
// BlockSplit's single/cross tasks restrict the sorted positions of a
// pair's endpoints (kSub), PairRange slices the block's canonical d-major
// pair enumeration by index (kSlice). Every unit ships the full block
// membership; the restriction is applied during enumeration.
struct MatchTask {
  enum class Kind { kWhole, kSub, kSlice };
  BlockRef ref;
  Kind kind = Kind::kWhole;
  // kSub: only pairs (i, j), i < j, with a_lo <= i < a_hi and
  // b_lo <= j < b_hi over the block's sorted order.
  int64_t a_lo = 0, a_hi = -1, b_lo = 0, b_hi = -1;
  // kSlice: only pairs whose d-major enumeration index is in [begin, end).
  int64_t begin = 0, end = -1;
  // Candidate pairs this unit enumerates (its scheduling cost).
  int64_t pairs = 0;
};

// The generated progressive schedule: one tree schedule (tree -> reduce
// task) plus one block schedule per reduce task (Sec. III-B).
struct ProgressiveSchedule {
  int num_reduce_tasks = 0;

  // Blocks of each reduce task in resolution order (the block schedule).
  // Within a tree the order is bottom-up; across blocks it is by
  // non-increasing utility.
  std::vector<std::vector<BlockRef>> task_blocks;

  // Sequence values: SQ(block) = task * range_per_task + position, so the
  // MR partitioner routes on SQ / range_per_task and the runtime's key sort
  // yields each task's block schedule.
  int64_t range_per_task = 0;
  std::unordered_map<uint64_t, int64_t> sequence;  // BlockRefKey -> SQ

  // Dominance value Dom(T) of each tree, keyed by the root's BlockRefKey.
  // Unique across all trees of all families (Sec. V).
  std::unordered_map<uint64_t, int32_t> dominance;

  // Reduce task of each tree root. Empty for the pair-level schedulers,
  // whose trees may span tasks.
  std::unordered_map<uint64_t, int> task_of_tree;

  // True for kBlockSplit/kPairRange: the schedule's unit of assignment is a
  // match task, not a block. task_units parallels task_blocks one-to-one
  // (task_blocks[t][i] == task_units[t][i].ref); for the tree schedulers
  // every unit is kWhole. Pair-level drivers route on unit sequence values:
  // SQ(unit) = task * range_per_task + position, with `sequence` keeping a
  // block's first SQ and unit_sequences all of them (ascending).
  bool pair_level = false;
  std::vector<std::vector<MatchTask>> task_units;
  std::unordered_map<uint64_t, std::vector<int64_t>> unit_sequences;

  // Non-empty when the input parameters failed validation; the rest of the
  // schedule is empty and must not be used.
  std::string error;

  int64_t SequenceOf(int family, int node) const {
    const auto it = sequence.find(BlockRefKey(family, node));
    return it == sequence.end() ? -1 : it->second;
  }
  int TaskOfSequence(int64_t sq) const {
    return static_cast<int>(sq / range_per_task);
  }
};

// Generates a progressive schedule (Fig. 6). May mutate `forests`: the
// kOurs scheduler splits overflowed trees. Deterministic for fixed inputs.
ProgressiveSchedule GenerateSchedule(std::vector<AnnotatedForest>* forests,
                                     const ScheduleParams& params);

// Human-readable description of a schedule: per reduce task, the number of
// trees and blocks, the estimated cost, and the first few blocks in
// resolution order. For debugging and the CLI's `explain` command.
std::string DescribeSchedule(const ProgressiveSchedule& schedule,
                             const std::vector<AnnotatedForest>& forests,
                             int blocks_per_task = 5);

// Total estimated cost of all blocks in all trees (used to size cost
// vectors).
double TotalEstimatedCost(const std::vector<AnnotatedForest>& forests);

}  // namespace progres

#endif  // PROGRES_SCHEDULE_SCHEDULE_H_

#ifndef PROGRES_MAPREDUCE_COUNTERS_H_
#define PROGRES_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace progres {

// Hadoop-style named counters. Each task owns a private Counters instance
// (no synchronization needed); the runtime merges them into the job-wide
// totals after the task finishes.
//
// The "mr." name prefix is reserved for the runtime's own bookkeeping and
// must not be used by user map/reduce functions:
//   mr.attempts             task attempts executed (>= task count)
//   mr.failed_attempts      non-winning attempts (crashes, hangs, poison)
//   mr.speculative_launched backup copies launched by speculative execution
//   mr.speculative_wins     backup copies that beat the original attempt
//   mr.shuffle.records      post-combine pairs crossing the shuffle
//   mr.shuffle.bytes        their serialized volume (needs set_wire_size)
//   mr.shuffle.checksum_errors  partition fetches failing their CRC32
//   mr.shuffle.refetches    re-fetches triggered by checksum errors
//   mr.shuffle.map_reruns   map re-runs after max_fetch_retries corrupt
//                           copies of the same partition
//   mr.spill.runs           sorted spill runs written by winning map
//                           attempts (shuffle_budget.max_bytes > 0 only)
//   mr.spill.records        post-combine records in those runs
//   mr.spill.bytes          encoded bytes written to spill files
//   mr.spill.merge_passes   reduce tasks whose winning gather k-way merged
//                           at least one spill run
//   mr.faults.machine_lost  attempts killed by a machine failure
//   mr.faults.machines_dead machines that died during the job's timeline
//   mr.faults.task_timeouts hung attempts killed by the heartbeat timeout
//   mr.blacklist.machines   machines blacklisted for repeated failures
//   mr.retry.backoff_seconds  simulated retry-backoff delay (rounded)
//   mr.recovery.replayed_pairs  reduce input values re-processed by retries
//   mr.recovery.replayed_cost   cost units re-executed after machine kills
//   mr.checkpoint.saved     reduce-task snapshots saved (checkpointing only)
//   mr.checkpoint.restored  snapshots restored by re-attempts (ditto)
//   mr.skipped.records      poison records quarantined by skip-bad-records
//   mr.disk.write_errors    spill write tries that failed (injected + real)
//   mr.disk.retries         spill writes retried after a transient error
//                           (reconciles 1:1 with kSpillRetry trace spans)
//   mr.disk.retry_backoff_seconds  modeled spill-retry backoff (rounded)
//   mr.disk.enospc          planned full-disk discoveries on the primary
//                           spill dir
//   mr.disk.torn_writes     spill runs truncated after an apparent success
//   mr.disk.corrupt_runs    spill runs failing CRC validation at the map
//                           barrier (reconciles 1:1 with kRunCorrupt spans)
//   mr.disk.map_reruns      map re-runs triggered by corrupt spill runs
//   mr.disk.dir_failovers   primary -> fallback spill-dir switches
//   mr.restart.restored_tasks  reduce tasks resumed from checkpoints
//                           persisted by an earlier process (reconciles 1:1
//                           with kRestartRestore spans)
//   mr.restart.corrupt_checkpoints  persisted snapshots failing validation
//                           on load (ignored; the task replays instead)
//   mr.supervisor.deadline_cancels  tasks cut or cancelled at the job
//                           deadline (reconciles 1:1 with kDeadlineCancel
//                           spans; job supervision only, see supervisor.h)
//   mr.supervisor.quarantined_tasks  permanently failing tasks quarantined
//                           under allow_degraded (1:1 with kTaskQuarantine)
//   mr.supervisor.breaker_trips  fault-domain circuit breakers tripped
//                           (1:1 with kBreakerTrip spans)
//   mr.supervisor.retries_denied  retries the budget ledger refused to fund
//   mr.supervisor.retry_spend.task     ledger spend: failed task attempts
//   mr.supervisor.retry_spend.machine  ledger spend: machine-lost attempts
//   mr.supervisor.retry_spend.disk     ledger spend: spill retries + map
//                           re-runs after corrupt spill runs
//   mr.supervisor.retry_spend.data     ledger spend: shuffle re-fetches +
//                           map re-runs after corrupt fetches
// Counters that would be zero stay absent, so a fault-free job's counter
// set is unchanged by these features. User counters merge independently of
// the reserved ones: the runtime only ever increments "mr." names, and a
// job's non-"mr." counters are byte-identical to a fault-free run.
class Counters {
 public:
  // Adds `delta` to counter `name`, creating it at zero if absent.
  void Increment(const std::string& name, int64_t delta = 1) {
    values_[name] += delta;
  }

  // Current value of `name` (0 if never incremented).
  int64_t Get(const std::string& name) const {
    const auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  // Merges another task's counters into this one.
  void MergeFrom(const Counters& other) {
    for (const auto& [name, value] : other.values_) values_[name] += value;
  }

  // All counters, sorted by name (std::map keeps them ordered).
  const std::map<std::string, int64_t>& values() const { return values_; }

 private:
  std::map<std::string, int64_t> values_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_COUNTERS_H_

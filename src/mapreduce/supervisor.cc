#include "mapreduce/supervisor.h"

#include <algorithm>

namespace progres {

const char* FaultDomainName(FaultDomain domain) {
  switch (domain) {
    case FaultDomain::kTask:
      return "task";
    case FaultDomain::kMachine:
      return "machine";
    case FaultDomain::kDisk:
      return "disk";
    case FaultDomain::kData:
      return "data";
  }
  return "unknown";
}

const char* TaskOutcomeName(TaskOutcomeKind kind) {
  switch (kind) {
    case TaskOutcomeKind::kComplete:
      return "complete";
    case TaskOutcomeKind::kCut:
      return "cut";
    case TaskOutcomeKind::kCancelled:
      return "cancelled";
    case TaskOutcomeKind::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

void CompletenessReport::MergeFrom(const CompletenessReport& other) {
  degraded = degraded || other.degraded;
  records_total += other.records_total;
  records_covered += other.records_covered;
  covered_fraction =
      records_total > 0
          ? static_cast<double>(records_covered) /
                static_cast<double>(records_total)
          : 1.0;
  tasks.insert(tasks.end(), other.tasks.begin(), other.tasks.end());
  deadline_cancels += other.deadline_cancels;
  quarantined_tasks += other.quarantined_tasks;
  breaker_trips += other.breaker_trips;
  retries_denied += other.retries_denied;
}

std::string CompletenessReport::ToString() const {
  std::string out = "completeness: ";
  out += degraded ? "degraded" : "complete";
  // Two-decimal percentage, rounded half away from zero; coverage is
  // always in [0, 1].
  const double pct = covered_fraction * 100.0;
  const int64_t hundredths = static_cast<int64_t>(pct * 100.0 + 0.5);
  out += ", covered ";
  out += std::to_string(hundredths / 100);
  out += ".";
  const int64_t frac = hundredths % 100;
  if (frac < 10) out += "0";
  out += std::to_string(frac);
  out += "% (";
  out += std::to_string(records_covered);
  out += "/";
  out += std::to_string(records_total);
  out += " records)";
  if (deadline_cancels > 0) {
    out += ", deadline_cancels=" + std::to_string(deadline_cancels);
  }
  if (quarantined_tasks > 0) {
    out += ", quarantined=" + std::to_string(quarantined_tasks);
  }
  if (breaker_trips > 0) {
    out += ", breaker_trips=" + std::to_string(breaker_trips);
  }
  if (retries_denied > 0) {
    out += ", retries_denied=" + std::to_string(retries_denied);
  }
  for (const TaskReport& task : tasks) {
    out += "\n  ";
    out += task.phase == TaskPhase::kMap ? "map" : "reduce";
    out += " task " + std::to_string(task.task) + ": ";
    out += TaskOutcomeName(task.kind);
    out += " (" + std::to_string(task.records_covered) + "/" +
           std::to_string(task.records_total) + " records)";
  }
  return out;
}

JobSupervisor::JobSupervisor(const JobControl& control, const FaultPlan* plan,
                             int num_map_tasks, int num_reduce_tasks)
    : control_(control) {
  if (plan == nullptr) return;
  // Disk breaker: pure plan lookup, independent of the retry budget.
  if (plan->enabled() && plan->HasDiskFaults()) {
    for (int t = 0; t < num_map_tasks; ++t) {
      if (plan->SpillPrimaryFull(t)) {
        first_full_task_ = t;
        break;
      }
    }
  }
  // Retry-budget ledger: grant each task's *planned* retries (consecutive
  // pre-winner failures, which is also what a doomed task burns) in
  // deterministic task order until the budget runs out. A task's cap stays
  // at max_attempts while its grant is whole — so a sufficient budget
  // changes nothing — and drops to 1 + granted retries once the ledger
  // comes up short.
  if (!plan->enabled() || control_.fault_budget <= 0) return;
  const int max_attempts = plan->max_attempts();
  int64_t remaining = control_.fault_budget;
  const auto grant = [&](TaskPhase phase, int t) {
    const int desired = std::min(
        plan->FailuresBeforeSuccess(phase, t, max_attempts), max_attempts - 1);
    const int granted =
        static_cast<int>(std::min<int64_t>(desired, remaining));
    remaining -= granted;
    retries_denied_ += desired - granted;
    return granted == desired ? max_attempts : 1 + granted;
  };
  map_caps_.reserve(static_cast<size_t>(std::max(0, num_map_tasks)));
  for (int t = 0; t < num_map_tasks; ++t) {
    map_caps_.push_back(grant(TaskPhase::kMap, t));
  }
  reduce_caps_.reserve(static_cast<size_t>(std::max(0, num_reduce_tasks)));
  for (int t = 0; t < num_reduce_tasks; ++t) {
    reduce_caps_.push_back(grant(TaskPhase::kReduce, t));
  }
}

}  // namespace progres

#ifndef PROGRES_MAPREDUCE_JOB_H_
#define PROGRES_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_clock.h"
#include "mapreduce/counters.h"
#include "mapreduce/fault.h"

namespace progres {

// In-process MapReduce runtime. It honours the Hadoop contract the paper's
// algorithms rely on:
//   * the input is split into contiguous chunks, one per map task;
//   * map tasks emit (key, value) pairs that a partition function routes to
//     reduce tasks;
//   * each reduce task sorts its pairs by key and invokes the reduce function
//     once per distinct key, in key order (so sequence-value keys yield the
//     paper's per-task block resolution order);
//   * per-task setup hooks run before the first record/group (the second
//     job's schedule generation runs in map-task setup);
//   * task attempts that fail are retried up to FaultConfig::max_attempts
//     times. A failed attempt discards its partial buckets/outputs/counters
//     (plus any external per-task state, via the task-abort hook) and the
//     task re-runs from scratch, so job output is byte-identical to a
//     fault-free run. Exhausting max_attempts fails the job cleanly
//     (Result::failed + Result::error).
//
// Tasks execute concurrently on a thread pool; all algorithmic cost is
// charged to deterministic per-task CostClocks, and the simulated cluster
// (cluster.h) converts per-attempt costs into start/end times afterwards —
// including retry delays and speculative backup copies of stragglers — so
// results are bit-identical regardless of real thread interleaving.
//
// Keys and values are typed (template parameters) rather than raw bytes;
// serialization would add nothing to the reproduced algorithms.

// Per-task execution statistics (winning attempt only).
struct TaskStats {
  double cost = 0.0;        // cost units charged by the task
  int64_t records_in = 0;   // map: input records; reduce: input values
  int64_t pairs_out = 0;    // map: emitted KVs; reduce: emitted KVs
};

// Timing of one job on the simulated cluster.
struct JobTiming {
  double start = 0.0;               // when the job was submitted (seconds)
  double map_end = 0.0;             // end of the map phase (barrier)
  std::vector<double> reduce_start; // per reduce task (winning attempt)
  double end = 0.0;                 // job completion (makespan)
  // Every scheduled attempt, including failed and speculative ones.
  std::vector<TaskAttemptTiming> map_attempts;
  std::vector<TaskAttemptTiming> reduce_attempts;
};

template <typename Record, typename K, typename V>
class MapReduceJob {
 public:
  class MapContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    // Emits a pair routed to partition `partition(key, num_reduce_tasks)`.
    void Emit(K key, V value) {
      const int r = job_->partition_(key, job_->num_reduce_tasks_);
      buckets_[static_cast<size_t>(r)].emplace_back(std::move(key),
                                                    std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    MapReduceJob* job_ = nullptr;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    std::vector<std::vector<std::pair<K, V>>> buckets_;
  };

  class ReduceContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    void Emit(K key, V value) {
      outputs_.emplace_back(std::move(key), std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    std::vector<std::pair<K, V>> outputs_;
  };

  using MapFn = std::function<void(const Record&, MapContext*)>;
  using ReduceFn =
      std::function<void(const K&, std::vector<V>*, ReduceContext*)>;
  using PartitionFn = std::function<int(const K&, int num_reduce_tasks)>;
  using SetupFn = std::function<void(int task_id)>;
  // Cleanup hook run after a reduce task's last group (Hadoop's cleanup()).
  using ReduceCleanupFn = std::function<void(ReduceContext*)>;
  // Combiner: reduces one map task's values for a key into replacement
  // pairs appended to `out` (local aggregation before the shuffle).
  using CombineFn = std::function<void(const K&, std::vector<V>*,
                                       std::vector<std::pair<K, V>>*)>;
  // Abort hook invoked when a task attempt fails, before the retry. Jobs
  // that accumulate external per-task state (sinks indexed by task_id) must
  // reset that state here or retries would double-count.
  using TaskAbortFn = std::function<void(TaskPhase phase, int task_id,
                                         int attempt)>;

  struct Result {
    // Reduce outputs concatenated in reduce-task order (within a task, in
    // emission order).
    std::vector<std::pair<K, V>> outputs;
    std::vector<TaskStats> map_stats;
    std::vector<TaskStats> reduce_stats;
    // Named counters merged across every map and reduce task. Fault and
    // speculation bookkeeping lands under the reserved "mr." prefix
    // (mr.attempts, mr.failed_attempts, mr.speculative_launched,
    // mr.speculative_wins); everything else is byte-identical to a
    // fault-free run.
    Counters counters;
    JobTiming timing;
    // Set when some task exhausted FaultConfig::max_attempts. `outputs`,
    // stats and non-"mr." counters are empty/unspecified in that case.
    bool failed = false;
    std::string error;
  };

  MapReduceJob(int num_map_tasks, int num_reduce_tasks)
      : num_map_tasks_(std::max(1, num_map_tasks)),
        num_reduce_tasks_(std::max(1, num_reduce_tasks)),
        partition_([](const K& key, int r) {
          return static_cast<int>(std::hash<K>{}(key) % static_cast<size_t>(r));
        }) {}

  // Overrides the default hash partitioner.
  void set_partitioner(PartitionFn fn) { partition_ = std::move(fn); }

  // Cost units auto-charged per map input record (models record read +
  // key-extraction work).
  void set_map_cost_per_record(double cost) { map_cost_per_record_ = cost; }

  // Optional hooks run at the start of each task, before any record/group.
  void set_map_setup(SetupFn fn) { map_setup_ = std::move(fn); }
  void set_reduce_setup(SetupFn fn) { reduce_setup_ = std::move(fn); }

  // Optional combiner run on each map task's output, per partition, before
  // the shuffle (Hadoop's local aggregation).
  void set_combiner(CombineFn fn) { combiner_ = std::move(fn); }

  // Optional cleanup run at the end of each reduce task, after its last
  // group (may still charge cost and emit). Runs only on attempts that
  // complete — never on failed ones.
  void set_reduce_cleanup(ReduceCleanupFn fn) {
    reduce_cleanup_ = std::move(fn);
  }

  // Optional hook run when a task attempt fails (see TaskAbortFn).
  void set_task_abort(TaskAbortFn fn) { task_abort_ = std::move(fn); }

  // Runs the job on `input` using `cluster` for both real thread parallelism
  // and the simulated time model. `submit_time` is when the job starts on
  // the simulated clock.
  Result Run(const std::vector<Record>& input, const MapFn& map_fn,
             const ReduceFn& reduce_fn, const ClusterConfig& cluster,
             double submit_time = 0.0) {
    Result result;
    result.timing.start = submit_time;

    const FaultPlan plan(cluster.fault);
    const int max_attempts = plan.max_attempts();
    const bool heterogeneous = !cluster.machine_speed.empty();
    const std::vector<double> map_speeds =
        heterogeneous
            ? cluster.SlotSpeeds(cluster.map_slots_per_machine)
            : std::vector<double>(
                  static_cast<size_t>(std::max(1, cluster.map_slots())), 1.0);
    const std::vector<double> reduce_speeds =
        heterogeneous
            ? cluster.SlotSpeeds(cluster.reduce_slots_per_machine)
            : std::vector<double>(
                  static_cast<size_t>(std::max(1, cluster.reduce_slots())),
                  1.0);

    // Per-task cost of every executed attempt (failed attempts first, then
    // the winning one). Feeds the attempt-aware timing model.
    std::vector<std::vector<double>> map_attempt_costs(
        static_cast<size_t>(num_map_tasks_));
    std::vector<std::vector<double>> reduce_attempt_costs(
        static_cast<size_t>(num_reduce_tasks_));
    std::vector<char> map_doomed(static_cast<size_t>(num_map_tasks_), 0);
    std::vector<char> reduce_doomed(static_cast<size_t>(num_reduce_tasks_), 0);

    // ---- Map phase ----
    std::vector<MapContext> map_ctx(static_cast<size_t>(num_map_tasks_));
    {
      const int threads = cluster.execution_threads > 0
                              ? cluster.execution_threads
                              : static_cast<int>(
                                    std::thread::hardware_concurrency());
      ThreadPool pool(threads);
      const size_t n = input.size();
      for (int t = 0; t < num_map_tasks_; ++t) {
        MapContext& ctx = map_ctx[static_cast<size_t>(t)];
        ctx.job_ = this;
        ctx.task_id_ = t;
        const size_t lo = n * static_cast<size_t>(t) /
                          static_cast<size_t>(num_map_tasks_);
        const size_t hi = n * static_cast<size_t>(t + 1) /
                          static_cast<size_t>(num_map_tasks_);
        const int failures =
            plan.FailuresBeforeSuccess(TaskPhase::kMap, t, max_attempts);
        pool.Submit([this, &input, &map_fn, &ctx, &plan, &map_attempt_costs,
                     &map_doomed, lo, hi, t, failures, max_attempts] {
          const int executed = std::min(failures + 1, max_attempts);
          for (int attempt = 0; attempt < executed; ++attempt) {
            const bool fails = attempt < failures;
            ResetMapContext(&ctx);
            size_t limit = hi - lo;
            if (fails) {
              limit = static_cast<size_t>(
                  static_cast<double>(limit) *
                  plan.FailurePoint(TaskPhase::kMap, t, attempt));
            }
            if (map_setup_) map_setup_(t);
            for (size_t i = lo; i < lo + limit; ++i) {
              ctx.clock_.Charge(map_cost_per_record_);
              map_fn(input[i], &ctx);
              ++ctx.stats_.records_in;
            }
            if (fails) {
              map_attempt_costs[static_cast<size_t>(t)].push_back(
                  ctx.clock_.units());
              if (task_abort_) task_abort_(TaskPhase::kMap, t, attempt);
            } else {
              if (combiner_) CombineBuckets(&ctx);
              ctx.stats_.cost = ctx.clock_.units();
              map_attempt_costs[static_cast<size_t>(t)].push_back(
                  ctx.clock_.units());
            }
          }
          if (failures >= max_attempts) {
            map_doomed[static_cast<size_t>(t)] = 1;
          }
        });
      }
      pool.Wait();

      MergeFaultCounters(map_attempt_costs, map_doomed, &result.counters);
      for (int t = 0; t < num_map_tasks_; ++t) {
        if (!map_doomed[static_cast<size_t>(t)]) continue;
        result.failed = true;
        result.error = "map task " + std::to_string(t) +
                       " failed after " + std::to_string(max_attempts) +
                       " attempts";
        double map_end = submit_time;
        result.timing.map_attempts = ScheduleTaskAttempts(
            map_attempt_costs, map_speeds, submit_time,
            cluster.seconds_per_cost_unit, cluster.speculation, &map_end,
            nullptr);
        result.timing.map_end = map_end;
        result.timing.end = map_end;
        return result;
      }

      // ---- Reduce phase ----
      std::vector<ReduceContext> reduce_ctx(
          static_cast<size_t>(num_reduce_tasks_));
      for (int r = 0; r < num_reduce_tasks_; ++r) {
        ReduceContext& ctx = reduce_ctx[static_cast<size_t>(r)];
        ctx.task_id_ = r;
        const int failures =
            plan.FailuresBeforeSuccess(TaskPhase::kReduce, r, max_attempts);
        pool.Submit([this, &map_ctx, &reduce_fn, &ctx, &plan,
                     &reduce_attempt_costs, &reduce_doomed, r, failures,
                     max_attempts] {
          const int executed = std::min(failures + 1, max_attempts);
          for (int attempt = 0; attempt < executed; ++attempt) {
            const bool fails = attempt < failures;
            ResetReduceContext(&ctx);
            const double point =
                fails ? plan.FailurePoint(TaskPhase::kReduce, r, attempt)
                      : 1.0;
            RunReduceTask(map_ctx, reduce_fn, &ctx, r, fails, point);
            reduce_attempt_costs[static_cast<size_t>(r)].push_back(
                ctx.clock_.units());
            if (fails && task_abort_) {
              task_abort_(TaskPhase::kReduce, r, attempt);
            }
          }
          if (failures >= max_attempts) {
            reduce_doomed[static_cast<size_t>(r)] = 1;
          }
        });
      }
      pool.Wait();

      MergeFaultCounters(reduce_attempt_costs, reduce_doomed,
                         &result.counters);
      for (int r = 0; r < num_reduce_tasks_; ++r) {
        if (!reduce_doomed[static_cast<size_t>(r)]) continue;
        result.failed = true;
        result.error = "reduce task " + std::to_string(r) +
                       " failed after " + std::to_string(max_attempts) +
                       " attempts";
        break;
      }

      if (!result.failed) {
        // ---- Collect stats, counters & outputs ----
        for (MapContext& ctx : map_ctx) {
          result.map_stats.push_back(ctx.stats_);
          result.counters.MergeFrom(ctx.counters_);
        }
        for (ReduceContext& ctx : reduce_ctx) {
          result.reduce_stats.push_back(ctx.stats_);
          result.counters.MergeFrom(ctx.counters_);
          for (auto& kv : ctx.outputs_) result.outputs.push_back(std::move(kv));
        }
      }
    }

    // ---- Simulated timing (failed attempts and retries included) ----
    double map_end = submit_time;
    result.timing.map_attempts = ScheduleTaskAttempts(
        map_attempt_costs, map_speeds, submit_time,
        cluster.seconds_per_cost_unit, cluster.speculation, &map_end,
        nullptr);
    result.timing.map_end = map_end;

    double end = map_end;
    result.timing.reduce_attempts = ScheduleTaskAttempts(
        reduce_attempt_costs, reduce_speeds, map_end,
        cluster.seconds_per_cost_unit, cluster.speculation, &end,
        &result.timing.reduce_start);
    result.timing.end = end;

    MergeSpeculationCounters(result.timing, &result.counters);
    return result;
  }

 private:
  void ResetMapContext(MapContext* ctx) {
    ctx->clock_.Reset();
    ctx->counters_ = Counters();
    ctx->stats_ = TaskStats();
    ctx->buckets_.clear();
    ctx->buckets_.resize(static_cast<size_t>(num_reduce_tasks_));
  }

  void ResetReduceContext(ReduceContext* ctx) {
    ctx->clock_.Reset();
    ctx->counters_ = Counters();
    ctx->stats_ = TaskStats();
    ctx->outputs_.clear();
  }

  // Attempt/failure totals for one phase under the reserved "mr." counter
  // prefix. Every attempt of a doomed task failed; otherwise the last
  // attempt of each chain is the winner.
  static void MergeFaultCounters(
      const std::vector<std::vector<double>>& attempt_costs,
      const std::vector<char>& doomed, Counters* counters) {
    int64_t attempts = 0;
    int64_t failed = 0;
    for (size_t t = 0; t < attempt_costs.size(); ++t) {
      const int64_t executed =
          static_cast<int64_t>(attempt_costs[t].size());
      attempts += executed;
      failed += doomed[t] ? executed : executed - 1;
    }
    counters->Increment("mr.attempts", attempts);
    counters->Increment("mr.failed_attempts", failed);
  }

  static void MergeSpeculationCounters(const JobTiming& timing,
                                       Counters* counters) {
    int64_t launched = 0;
    int64_t wins = 0;
    for (const auto* phase : {&timing.map_attempts, &timing.reduce_attempts}) {
      for (const TaskAttemptTiming& attempt : *phase) {
        if (!attempt.speculative) continue;
        ++launched;
        if (attempt.won) ++wins;
      }
    }
    counters->Increment("mr.speculative_launched", launched);
    counters->Increment("mr.speculative_wins", wins);
  }

  // Applies the combiner to every partition bucket of a finished map task:
  // values are grouped by key locally and replaced by the combiner's output.
  void CombineBuckets(MapContext* ctx) {
    for (auto& bucket : ctx->buckets_) {
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                         return a.first < b.first;
                       });
      std::vector<std::pair<K, V>> combined;
      size_t i = 0;
      while (i < bucket.size()) {
        size_t j = i;
        while (j < bucket.size() && !(bucket[i].first < bucket[j].first)) ++j;
        std::vector<V> values;
        values.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          values.push_back(std::move(bucket[k].second));
        }
        combiner_(bucket[i].first, &values, &combined);
        i = j;
      }
      bucket = std::move(combined);
    }
  }

  // Runs one reduce-task attempt. A failing attempt (`fails`) copies its
  // input out of the map buckets — they must survive for the retry — and
  // stops at the group boundary past `fail_point` of the input pairs; the
  // winning attempt moves the buckets and runs cleanup.
  void RunReduceTask(std::vector<MapContext>& map_ctx,
                     const ReduceFn& reduce_fn, ReduceContext* ctx, int r,
                     bool fails, double fail_point) {
    // Gather this task's partition from every map task (map-task order, so
    // the merge is deterministic), then sort by key. stable_sort keeps the
    // map-task order among equal keys, mirroring Hadoop's merge.
    std::vector<std::pair<K, V>> pairs;
    size_t total = 0;
    for (MapContext& m : map_ctx) {
      total += m.buckets_[static_cast<size_t>(r)].size();
    }
    pairs.reserve(total);
    if (fails) {
      if constexpr (std::is_copy_constructible_v<K> &&
                    std::is_copy_constructible_v<V>) {
        for (const MapContext& m : map_ctx) {
          const auto& bucket = m.buckets_[static_cast<size_t>(r)];
          for (const auto& kv : bucket) pairs.push_back(kv);
        }
      }
      // Move-only payloads cannot be replayed; the failing attempt then
      // dies before touching any input, which keeps retries correct.
    } else {
      for (MapContext& m : map_ctx) {
        auto& bucket = m.buckets_[static_cast<size_t>(r)];
        for (auto& kv : bucket) pairs.push_back(std::move(kv));
      }
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                       return a.first < b.first;
                     });
    const size_t fail_after =
        fails ? static_cast<size_t>(static_cast<double>(pairs.size()) *
                                    fail_point)
              : pairs.size() + 1;

    if (reduce_setup_) reduce_setup_(r);
    size_t i = 0;
    while (i < pairs.size()) {
      if (fails && i >= fail_after) break;  // injected failure fires here
      size_t j = i;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      std::vector<V> values;
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) values.push_back(std::move(pairs[k].second));
      ctx->stats_.records_in += static_cast<int64_t>(values.size());
      reduce_fn(pairs[i].first, &values, ctx);
      i = j;
    }
    if (!fails) {
      if (reduce_cleanup_) reduce_cleanup_(ctx);
      ctx->stats_.cost = ctx->clock_.units();
    }
  }

  int num_map_tasks_;
  int num_reduce_tasks_;
  PartitionFn partition_;
  double map_cost_per_record_ = 1.0;
  SetupFn map_setup_;
  SetupFn reduce_setup_;
  ReduceCleanupFn reduce_cleanup_;
  CombineFn combiner_;
  TaskAbortFn task_abort_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_JOB_H_

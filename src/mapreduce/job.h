#ifndef PROGRES_MAPREDUCE_JOB_H_
#define PROGRES_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_clock.h"
#include "mapreduce/counters.h"
#include "mapreduce/fault.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/task_runner.h"

namespace progres {

// In-process MapReduce runtime, layered out of three components:
//   * Shuffle (shuffle.h) — partition routing, map-side spill buffers, the
//     combiner, the reduce-side gather/sort/group merge, and shuffle-volume
//     accounting (exported under "mr.shuffle.records"/"mr.shuffle.bytes");
//   * TaskAttemptRunner (task_runner.h) — the retry/abort bookkeeping of
//     fault-injected task attempts, per phase;
//   * the attempt-aware timing model (cluster.h) — converts per-attempt
//     costs into a deterministic simulated timeline, including retry delays
//     and speculative backup copies of stragglers.
//
// MapReduceJob composes them and honours the Hadoop contract the paper's
// algorithms rely on:
//   * the input is split into contiguous chunks, one per map task;
//   * map tasks emit (key, value) pairs that a partition function routes to
//     reduce tasks;
//   * each reduce task sorts its pairs by key and invokes the reduce function
//     once per distinct key, in key order (so sequence-value keys yield the
//     paper's per-task block resolution order);
//   * per-task setup hooks run before the first record/group (the second
//     job's schedule generation runs in map-task setup);
//   * task attempts that fail are retried up to FaultConfig::max_attempts
//     times. A failed attempt discards its partial buckets/outputs/counters
//     (plus any external per-task state, via the task-abort hook) and the
//     task re-runs from scratch, so job output is byte-identical to a
//     fault-free run. Exhausting max_attempts fails the job cleanly
//     (Result::failed + Result::error).
//
// Tasks execute concurrently on a thread pool; all algorithmic cost is
// charged to deterministic per-task CostClocks, so results are bit-identical
// regardless of real thread interleaving.
//
// Keys and values are typed (template parameters) rather than raw bytes;
// serialization would add nothing to the reproduced algorithms.

template <typename Record, typename K, typename V>
class MapReduceJob {
 public:
  using JobShuffle = Shuffle<K, V>;

  class MapContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    // Emits a pair routed to partition `partition(key, num_reduce_tasks)`.
    void Emit(K key, V value) {
      output_.Add(std::move(key), std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    typename JobShuffle::MapOutput output_;
  };

  class ReduceContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    void Emit(K key, V value) {
      outputs_.emplace_back(std::move(key), std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    std::vector<std::pair<K, V>> outputs_;
  };

  using MapFn = std::function<void(const Record&, MapContext*)>;
  using ReduceFn =
      std::function<void(const K&, std::vector<V>*, ReduceContext*)>;
  using PartitionFn = typename JobShuffle::PartitionFn;
  using SetupFn = std::function<void(int task_id)>;
  // Cleanup hook run after a reduce task's last group (Hadoop's cleanup()).
  using ReduceCleanupFn = std::function<void(ReduceContext*)>;
  using CombineFn = typename JobShuffle::CombineFn;
  using WireSizeFn = typename JobShuffle::WireSizeFn;
  // Abort hook invoked when a task attempt fails, before the retry. Jobs
  // that accumulate external per-task state (sinks indexed by task_id) must
  // reset that state here or retries would double-count.
  using TaskAbortFn = std::function<void(TaskPhase phase, int task_id,
                                         int attempt)>;

  struct Result {
    // Reduce outputs concatenated in reduce-task order (within a task, in
    // emission order).
    std::vector<std::pair<K, V>> outputs;
    std::vector<TaskStats> map_stats;
    std::vector<TaskStats> reduce_stats;
    // Named counters merged across every map and reduce task, plus the
    // runtime's own bookkeeping under the reserved "mr." prefix (see
    // counters.h). Everything outside "mr." is byte-identical to a
    // fault-free run.
    Counters counters;
    JobTiming timing;
    // Set when some task exhausted FaultConfig::max_attempts. `outputs`,
    // stats and non-"mr." counters are empty/unspecified in that case.
    bool failed = false;
    std::string error;
  };

  MapReduceJob(int num_map_tasks, int num_reduce_tasks)
      : num_map_tasks_(std::max(1, num_map_tasks)),
        num_reduce_tasks_(std::max(1, num_reduce_tasks)),
        shuffle_(num_reduce_tasks) {}

  // Overrides the default hash partitioner.
  void set_partitioner(PartitionFn fn) {
    shuffle_.set_partitioner(std::move(fn));
  }

  // Cost units auto-charged per map input record (models record read +
  // key-extraction work).
  void set_map_cost_per_record(double cost) { map_cost_per_record_ = cost; }

  // Optional hooks run at the start of each task, before any record/group.
  void set_map_setup(SetupFn fn) { map_setup_ = std::move(fn); }
  void set_reduce_setup(SetupFn fn) { reduce_setup_ = std::move(fn); }

  // Optional combiner run on each map task's output, per partition, before
  // the shuffle (Hadoop's local aggregation).
  void set_combiner(CombineFn fn) { shuffle_.set_combiner(std::move(fn)); }

  // Optional per-pair wire size under the job's serde encoding; enables the
  // "mr.shuffle.bytes" accounting ("mr.shuffle.records" is always counted).
  void set_wire_size(WireSizeFn fn) { shuffle_.set_wire_size(std::move(fn)); }

  // Optional cleanup run at the end of each reduce task, after its last
  // group (may still charge cost and emit). Runs only on attempts that
  // complete — never on failed ones.
  void set_reduce_cleanup(ReduceCleanupFn fn) {
    reduce_cleanup_ = std::move(fn);
  }

  // Optional hook run when a task attempt fails (see TaskAbortFn).
  void set_task_abort(TaskAbortFn fn) { task_abort_ = std::move(fn); }

  // Runs the job on `input` using `cluster` for both real thread parallelism
  // and the simulated time model. `submit_time` is when the job starts on
  // the simulated clock.
  Result Run(const std::vector<Record>& input, const MapFn& map_fn,
             const ReduceFn& reduce_fn, const ClusterConfig& cluster,
             double submit_time = 0.0) {
    Result result;
    result.timing.start = submit_time;

    const FaultPlan plan(cluster.fault);
    const bool heterogeneous = !cluster.machine_speed.empty();
    const std::vector<double> map_speeds =
        heterogeneous
            ? cluster.SlotSpeeds(cluster.map_slots_per_machine)
            : std::vector<double>(
                  static_cast<size_t>(std::max(1, cluster.map_slots())), 1.0);
    const std::vector<double> reduce_speeds =
        heterogeneous
            ? cluster.SlotSpeeds(cluster.reduce_slots_per_machine)
            : std::vector<double>(
                  static_cast<size_t>(std::max(1, cluster.reduce_slots())),
                  1.0);

    TaskAttemptRunner map_runner(TaskPhase::kMap, num_map_tasks_, &plan);
    TaskAttemptRunner reduce_runner(TaskPhase::kReduce, num_reduce_tasks_,
                                    &plan);

    // ---- Map phase ----
    std::vector<MapContext> map_ctx(static_cast<size_t>(num_map_tasks_));
    {
      const int threads = cluster.execution_threads > 0
                              ? cluster.execution_threads
                              : static_cast<int>(
                                    std::thread::hardware_concurrency());
      ThreadPool pool(threads);
      const size_t n = input.size();
      for (int t = 0; t < num_map_tasks_; ++t) {
        map_ctx[static_cast<size_t>(t)].task_id_ = t;
      }
      map_runner.RunAll(
          &pool,
          [this, &map_ctx](int t) {
            ResetMapContext(&map_ctx[static_cast<size_t>(t)]);
          },
          [this, &input, &map_fn, &map_ctx, n](
              const TaskAttemptRunner::Attempt& attempt) {
            MapContext& ctx = map_ctx[static_cast<size_t>(attempt.task)];
            const size_t lo = n * static_cast<size_t>(attempt.task) /
                              static_cast<size_t>(num_map_tasks_);
            const size_t hi = n * static_cast<size_t>(attempt.task + 1) /
                              static_cast<size_t>(num_map_tasks_);
            size_t limit = hi - lo;
            if (attempt.fails) {
              limit = static_cast<size_t>(static_cast<double>(limit) *
                                          attempt.fail_point);
            }
            if (map_setup_) map_setup_(attempt.task);
            for (size_t i = lo; i < lo + limit; ++i) {
              ctx.clock_.Charge(map_cost_per_record_);
              map_fn(input[i], &ctx);
              ++ctx.stats_.records_in;
            }
            if (!attempt.fails) {
              shuffle_.Combine(&ctx.output_);
              ctx.stats_.cost = ctx.clock_.units();
            }
            return ctx.clock_.units();
          },
          task_abort_);

      map_runner.MergeFaultCounters(&result.counters);
      const int doomed_map = map_runner.FirstDoomed();
      if (doomed_map >= 0) {
        result.failed = true;
        result.error = map_runner.DoomedError(doomed_map);
        double map_end = submit_time;
        result.timing.map_attempts = ScheduleTaskAttempts(
            map_runner.attempt_costs(), map_speeds, submit_time,
            cluster.seconds_per_cost_unit, cluster.speculation, &map_end,
            nullptr);
        result.timing.map_end = map_end;
        result.timing.end = map_end;
        return result;
      }

      // Post-combine shuffle volume of the winning map attempts.
      {
        typename JobShuffle::Volume volume;
        for (const MapContext& ctx : map_ctx) {
          const auto task_volume = shuffle_.MeasureVolume(ctx.output_);
          volume.records += task_volume.records;
          volume.bytes += task_volume.bytes;
        }
        result.counters.Increment("mr.shuffle.records", volume.records);
        result.counters.Increment("mr.shuffle.bytes", volume.bytes);
      }

      // ---- Reduce phase ----
      std::vector<typename JobShuffle::MapOutput*> map_outputs;
      map_outputs.reserve(map_ctx.size());
      for (MapContext& ctx : map_ctx) map_outputs.push_back(&ctx.output_);
      std::vector<ReduceContext> reduce_ctx(
          static_cast<size_t>(num_reduce_tasks_));
      for (int r = 0; r < num_reduce_tasks_; ++r) {
        reduce_ctx[static_cast<size_t>(r)].task_id_ = r;
      }
      reduce_runner.RunAll(
          &pool,
          [this, &reduce_ctx](int t) {
            ResetReduceContext(&reduce_ctx[static_cast<size_t>(t)]);
          },
          [this, &map_outputs, &reduce_fn, &reduce_ctx](
              const TaskAttemptRunner::Attempt& attempt) {
            ReduceContext& ctx = reduce_ctx[static_cast<size_t>(attempt.task)];
            RunReduceAttempt(map_outputs, reduce_fn, &ctx, attempt);
            return ctx.clock_.units();
          },
          task_abort_);

      reduce_runner.MergeFaultCounters(&result.counters);
      const int doomed_reduce = reduce_runner.FirstDoomed();
      if (doomed_reduce >= 0) {
        result.failed = true;
        result.error = reduce_runner.DoomedError(doomed_reduce);
      }

      if (!result.failed) {
        // ---- Collect stats, counters & outputs ----
        for (MapContext& ctx : map_ctx) {
          result.map_stats.push_back(ctx.stats_);
          result.counters.MergeFrom(ctx.counters_);
        }
        for (ReduceContext& ctx : reduce_ctx) {
          result.reduce_stats.push_back(ctx.stats_);
          result.counters.MergeFrom(ctx.counters_);
          for (auto& kv : ctx.outputs_) result.outputs.push_back(std::move(kv));
        }
      }
    }

    // ---- Simulated timing (failed attempts and retries included) ----
    double map_end = submit_time;
    result.timing.map_attempts = ScheduleTaskAttempts(
        map_runner.attempt_costs(), map_speeds, submit_time,
        cluster.seconds_per_cost_unit, cluster.speculation, &map_end,
        nullptr);
    result.timing.map_end = map_end;

    double end = map_end;
    result.timing.reduce_attempts = ScheduleTaskAttempts(
        reduce_runner.attempt_costs(), reduce_speeds, map_end,
        cluster.seconds_per_cost_unit, cluster.speculation, &end,
        &result.timing.reduce_start);
    result.timing.end = end;

    MergeSpeculationCounters(result.timing, &result.counters);
    return result;
  }

 private:
  void ResetMapContext(MapContext* ctx) {
    ctx->clock_.Reset();
    ctx->counters_ = Counters();
    ctx->stats_ = TaskStats();
    ctx->output_.Reset(shuffle_);
  }

  void ResetReduceContext(ReduceContext* ctx) {
    ctx->clock_.Reset();
    ctx->counters_ = Counters();
    ctx->stats_ = TaskStats();
    ctx->outputs_.clear();
  }

  // Runs one reduce-task attempt: gather/sort via the shuffle (a failing
  // attempt copies its input — the buckets must survive for the retry — and
  // stops at the group boundary past `fail_point` of the input pairs), then
  // one reduce call per group; the winning attempt runs cleanup.
  void RunReduceAttempt(
      std::vector<typename JobShuffle::MapOutput*>& map_outputs,
      const ReduceFn& reduce_fn, ReduceContext* ctx,
      const TaskAttemptRunner::Attempt& attempt) {
    std::vector<std::pair<K, V>> pairs =
        shuffle_.GatherSorted(map_outputs, attempt.task, attempt.fails);
    const size_t limit =
        attempt.fails
            ? static_cast<size_t>(static_cast<double>(pairs.size()) *
                                  attempt.fail_point)
            : pairs.size() + 1;

    if (reduce_setup_) reduce_setup_(attempt.task);
    JobShuffle::ForEachGroup(
        &pairs, limit, [&](const K& key, std::vector<V>* values) {
          ctx->stats_.records_in += static_cast<int64_t>(values->size());
          reduce_fn(key, values, ctx);
        });
    if (!attempt.fails) {
      if (reduce_cleanup_) reduce_cleanup_(ctx);
      ctx->stats_.cost = ctx->clock_.units();
    }
  }

  int num_map_tasks_;
  int num_reduce_tasks_;
  JobShuffle shuffle_;
  double map_cost_per_record_ = 1.0;
  SetupFn map_setup_;
  SetupFn reduce_setup_;
  ReduceCleanupFn reduce_cleanup_;
  TaskAbortFn task_abort_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_JOB_H_

#ifndef PROGRES_MAPREDUCE_JOB_H_
#define PROGRES_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_clock.h"
#include "mapreduce/counters.h"

namespace progres {

// In-process MapReduce runtime. It honours the Hadoop contract the paper's
// algorithms rely on:
//   * the input is split into contiguous chunks, one per map task;
//   * map tasks emit (key, value) pairs that a partition function routes to
//     reduce tasks;
//   * each reduce task sorts its pairs by key and invokes the reduce function
//     once per distinct key, in key order (so sequence-value keys yield the
//     paper's per-task block resolution order);
//   * per-task setup hooks run before the first record/group (the second
//     job's schedule generation runs in map-task setup).
//
// Tasks execute concurrently on a thread pool; all algorithmic cost is
// charged to deterministic per-task CostClocks, and the simulated cluster
// (cluster.h) converts per-task costs into start/end times afterwards, so
// results are bit-identical regardless of real thread interleaving.
//
// Keys and values are typed (template parameters) rather than raw bytes;
// serialization would add nothing to the reproduced algorithms.

// Per-task execution statistics.
struct TaskStats {
  double cost = 0.0;        // cost units charged by the task
  int64_t records_in = 0;   // map: input records; reduce: input values
  int64_t pairs_out = 0;    // map: emitted KVs; reduce: emitted KVs
};

// Timing of one job on the simulated cluster.
struct JobTiming {
  double start = 0.0;               // when the job was submitted (seconds)
  double map_end = 0.0;             // end of the map phase (barrier)
  std::vector<double> reduce_start; // per reduce task
  double end = 0.0;                 // job completion (makespan)
};

template <typename Record, typename K, typename V>
class MapReduceJob {
 public:
  class MapContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    // Emits a pair routed to partition `partition(key, num_reduce_tasks)`.
    void Emit(K key, V value) {
      const int r = job_->partition_(key, job_->num_reduce_tasks_);
      buckets_[static_cast<size_t>(r)].emplace_back(std::move(key),
                                                    std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    MapReduceJob* job_ = nullptr;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    std::vector<std::vector<std::pair<K, V>>> buckets_;
  };

  class ReduceContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    void Emit(K key, V value) {
      outputs_.emplace_back(std::move(key), std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    std::vector<std::pair<K, V>> outputs_;
  };

  using MapFn = std::function<void(const Record&, MapContext*)>;
  using ReduceFn =
      std::function<void(const K&, std::vector<V>*, ReduceContext*)>;
  using PartitionFn = std::function<int(const K&, int num_reduce_tasks)>;
  using SetupFn = std::function<void(int task_id)>;
  // Cleanup hook run after a reduce task's last group (Hadoop's cleanup()).
  using ReduceCleanupFn = std::function<void(ReduceContext*)>;
  // Combiner: reduces one map task's values for a key into replacement
  // pairs appended to `out` (local aggregation before the shuffle).
  using CombineFn = std::function<void(const K&, std::vector<V>*,
                                       std::vector<std::pair<K, V>>*)>;

  struct Result {
    // Reduce outputs concatenated in reduce-task order (within a task, in
    // emission order).
    std::vector<std::pair<K, V>> outputs;
    std::vector<TaskStats> map_stats;
    std::vector<TaskStats> reduce_stats;
    // Named counters merged across every map and reduce task.
    Counters counters;
    JobTiming timing;
  };

  MapReduceJob(int num_map_tasks, int num_reduce_tasks)
      : num_map_tasks_(std::max(1, num_map_tasks)),
        num_reduce_tasks_(std::max(1, num_reduce_tasks)),
        partition_([](const K& key, int r) {
          return static_cast<int>(std::hash<K>{}(key) % static_cast<size_t>(r));
        }) {}

  // Overrides the default hash partitioner.
  void set_partitioner(PartitionFn fn) { partition_ = std::move(fn); }

  // Cost units auto-charged per map input record (models record read +
  // key-extraction work).
  void set_map_cost_per_record(double cost) { map_cost_per_record_ = cost; }

  // Optional hooks run at the start of each task, before any record/group.
  void set_map_setup(SetupFn fn) { map_setup_ = std::move(fn); }
  void set_reduce_setup(SetupFn fn) { reduce_setup_ = std::move(fn); }

  // Optional combiner run on each map task's output, per partition, before
  // the shuffle (Hadoop's local aggregation).
  void set_combiner(CombineFn fn) { combiner_ = std::move(fn); }

  // Optional cleanup run at the end of each reduce task, after its last
  // group (may still charge cost and emit).
  void set_reduce_cleanup(ReduceCleanupFn fn) {
    reduce_cleanup_ = std::move(fn);
  }

  // Runs the job on `input` using `cluster` for both real thread parallelism
  // and the simulated time model. `submit_time` is when the job starts on
  // the simulated clock.
  Result Run(const std::vector<Record>& input, const MapFn& map_fn,
             const ReduceFn& reduce_fn, const ClusterConfig& cluster,
             double submit_time = 0.0) {
    Result result;
    result.timing.start = submit_time;

    // ---- Map phase ----
    std::vector<MapContext> map_ctx(static_cast<size_t>(num_map_tasks_));
    {
      const int threads = cluster.execution_threads > 0
                              ? cluster.execution_threads
                              : static_cast<int>(
                                    std::thread::hardware_concurrency());
      ThreadPool pool(threads);
      const size_t n = input.size();
      for (int t = 0; t < num_map_tasks_; ++t) {
        MapContext& ctx = map_ctx[static_cast<size_t>(t)];
        ctx.job_ = this;
        ctx.task_id_ = t;
        ctx.buckets_.resize(static_cast<size_t>(num_reduce_tasks_));
        const size_t lo = n * static_cast<size_t>(t) /
                          static_cast<size_t>(num_map_tasks_);
        const size_t hi = n * static_cast<size_t>(t + 1) /
                          static_cast<size_t>(num_map_tasks_);
        pool.Submit([this, &input, &map_fn, &ctx, lo, hi] {
          if (map_setup_) map_setup_(ctx.task_id_);
          for (size_t i = lo; i < hi; ++i) {
            ctx.clock_.Charge(map_cost_per_record_);
            map_fn(input[i], &ctx);
            ++ctx.stats_.records_in;
          }
          if (combiner_) CombineBuckets(&ctx);
          ctx.stats_.cost = ctx.clock_.units();
        });
      }
      pool.Wait();

      // ---- Reduce phase ----
      std::vector<ReduceContext> reduce_ctx(
          static_cast<size_t>(num_reduce_tasks_));
      for (int r = 0; r < num_reduce_tasks_; ++r) {
        ReduceContext& ctx = reduce_ctx[static_cast<size_t>(r)];
        ctx.task_id_ = r;
        pool.Submit([this, &map_ctx, &reduce_fn, &ctx, r] {
          RunReduceTask(map_ctx, reduce_fn, &ctx, r);
        });
      }
      pool.Wait();

      // ---- Collect stats, counters & outputs ----
      for (MapContext& ctx : map_ctx) {
        result.map_stats.push_back(ctx.stats_);
        result.counters.MergeFrom(ctx.counters_);
      }
      for (ReduceContext& ctx : reduce_ctx) {
        result.reduce_stats.push_back(ctx.stats_);
        result.counters.MergeFrom(ctx.counters_);
        for (auto& kv : ctx.outputs_) result.outputs.push_back(std::move(kv));
      }
    }

    // ---- Simulated timing ----
    const bool heterogeneous = !cluster.machine_speed.empty();
    std::vector<double> map_costs;
    map_costs.reserve(result.map_stats.size());
    for (const TaskStats& s : result.map_stats) map_costs.push_back(s.cost);
    double map_end = submit_time;
    if (heterogeneous) {
      ScheduleTasksHeterogeneous(
          map_costs, cluster.SlotSpeeds(cluster.map_slots_per_machine),
          submit_time, cluster.seconds_per_cost_unit, &map_end);
    } else {
      ScheduleTasks(map_costs, cluster.map_slots(), submit_time,
                    cluster.seconds_per_cost_unit, &map_end);
    }
    result.timing.map_end = map_end;

    std::vector<double> reduce_costs;
    reduce_costs.reserve(result.reduce_stats.size());
    for (const TaskStats& s : result.reduce_stats) {
      reduce_costs.push_back(s.cost);
    }
    double end = map_end;
    if (heterogeneous) {
      result.timing.reduce_start = ScheduleTasksHeterogeneous(
          reduce_costs, cluster.SlotSpeeds(cluster.reduce_slots_per_machine),
          map_end, cluster.seconds_per_cost_unit, &end);
    } else {
      result.timing.reduce_start =
          ScheduleTasks(reduce_costs, cluster.reduce_slots(), map_end,
                        cluster.seconds_per_cost_unit, &end);
    }
    result.timing.end = end;
    return result;
  }

 private:
  // Applies the combiner to every partition bucket of a finished map task:
  // values are grouped by key locally and replaced by the combiner's output.
  void CombineBuckets(MapContext* ctx) {
    for (auto& bucket : ctx->buckets_) {
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                         return a.first < b.first;
                       });
      std::vector<std::pair<K, V>> combined;
      size_t i = 0;
      while (i < bucket.size()) {
        size_t j = i;
        while (j < bucket.size() && !(bucket[i].first < bucket[j].first)) ++j;
        std::vector<V> values;
        values.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          values.push_back(std::move(bucket[k].second));
        }
        combiner_(bucket[i].first, &values, &combined);
        i = j;
      }
      bucket = std::move(combined);
    }
  }

  void RunReduceTask(std::vector<MapContext>& map_ctx,
                     const ReduceFn& reduce_fn, ReduceContext* ctx, int r) {
    // Gather this task's partition from every map task (map-task order, so
    // the merge is deterministic), then sort by key. stable_sort keeps the
    // map-task order among equal keys, mirroring Hadoop's merge.
    std::vector<std::pair<K, V>> pairs;
    size_t total = 0;
    for (MapContext& m : map_ctx) {
      total += m.buckets_[static_cast<size_t>(r)].size();
    }
    pairs.reserve(total);
    for (MapContext& m : map_ctx) {
      auto& bucket = m.buckets_[static_cast<size_t>(r)];
      for (auto& kv : bucket) pairs.push_back(std::move(kv));
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
                       return a.first < b.first;
                     });

    if (reduce_setup_) reduce_setup_(r);
    size_t i = 0;
    while (i < pairs.size()) {
      size_t j = i;
      while (j < pairs.size() && !(pairs[i].first < pairs[j].first)) ++j;
      std::vector<V> values;
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) values.push_back(std::move(pairs[k].second));
      ctx->stats_.records_in += static_cast<int64_t>(values.size());
      reduce_fn(pairs[i].first, &values, ctx);
      i = j;
    }
    if (reduce_cleanup_) reduce_cleanup_(ctx);
    ctx->stats_.cost = ctx->clock_.units();
  }

  int num_map_tasks_;
  int num_reduce_tasks_;
  PartitionFn partition_;
  double map_cost_per_record_ = 1.0;
  SetupFn map_setup_;
  SetupFn reduce_setup_;
  ReduceCleanupFn reduce_cleanup_;
  CombineFn combiner_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_JOB_H_

#ifndef PROGRES_MAPREDUCE_JOB_H_
#define PROGRES_MAPREDUCE_JOB_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_clock.h"
#include "mapreduce/counters.h"
#include "mapreduce/executor.h"
#include "mapreduce/fault.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill.h"
#include "mapreduce/supervisor.h"
#include "mapreduce/task_runner.h"
#include "mapreduce/trace.h"

namespace progres {

// In-process MapReduce runtime, layered out of three components:
//   * Shuffle (shuffle.h) — partition routing, the memory-budgeted map-side
//     KV block buffers with their sorted spill runs
//     (ClusterConfig::shuffle_budget), the combiner, the reduce-side
//     gather (an in-memory sort, or a k-way external merge over the spill
//     runs), and data-plane accounting (exported under "mr.shuffle.*" and
//     "mr.spill.*");
//   * TaskAttemptRunner (task_runner.h) — the retry/abort bookkeeping of
//     fault-injected task attempts, per phase;
//   * the attempt-aware timing model (cluster.h) — converts per-attempt
//     costs into a deterministic simulated timeline, including retry delays
//     and speculative backup copies of stragglers.
//
// MapReduceJob composes them and honours the Hadoop contract the paper's
// algorithms rely on:
//   * the input is split into contiguous chunks, one per map task;
//   * map tasks emit (key, value) pairs that a partition function routes to
//     reduce tasks;
//   * each reduce task sorts its pairs by key and invokes the reduce function
//     once per distinct key, in key order (so sequence-value keys yield the
//     paper's per-task block resolution order);
//   * per-task setup hooks run before the first record/group (the second
//     job's schedule generation runs in map-task setup);
//   * task attempts that fail are retried up to FaultConfig::max_attempts
//     times. A failed attempt discards its partial buckets/outputs/counters
//     (plus any external per-task state, via the task-abort hook) and the
//     task re-runs from scratch, so job output is byte-identical to a
//     fault-free run. Exhausting max_attempts fails the job cleanly
//     (Result::failed + Result::error);
//   * with checkpointing enabled (set_checkpointing), a reduce re-attempt
//     instead restores the task's last alpha-boundary snapshot and resumes
//     mid-schedule — same byte-identical outputs, but only the progress
//     since the snapshot is re-executed;
//   * machine-level failures (FaultConfig::machine_failures) play out in
//     the timing model: a dying machine kills the attempts on its slots and
//     leaves the cluster, orphaned tasks re-queue (with exponential
//     backoff) on the survivors, and the replacement attempt is costed from
//     the task's best recovery point. Losing every machine fails the job
//     cleanly;
//   * with job supervision (ClusterConfig::control, supervisor.h) the
//     fail-fast rules above soften into deadline-driven graceful
//     degradation: a retry-budget ledger caps per-task attempts, permanent
//     task failures are quarantined instead of failing the job, the
//     simulated deadline cuts late reduce tasks back to their last
//     checkpointed prefix, and Result::completeness reports exactly what
//     was delivered. All of it is opt-in — an inactive JobControl leaves
//     every run byte- and timing-identical to the unsupervised runtime.
//
// The cluster configuration is validated at submission
// (ValidateClusterConfig); an invalid config fails the job with a labelled
// error instead of running with silently corrected parameters.
//
// Two execution backends share this contract (ClusterConfig::backend):
// the simulated backend runs attempts serially on the submitting thread —
// the deterministic reference — while the threaded backend runs them
// concurrently on a thread pool (executor.h) and measures wall-clock time
// alongside (JobTiming::wall, wall-stamped trace spans). All algorithmic
// cost is charged to deterministic per-task CostClocks and all cross-task
// state merges after the phase barriers, so results are bit-identical
// across backends and regardless of real thread interleaving; the simulated
// timeline stays the results clock under both.
//
// Keys and values are typed (template parameters) rather than raw bytes;
// serialization would add nothing to the reproduced algorithms.

template <typename Record, typename K, typename V>
class MapReduceJob {
 public:
  using JobShuffle = Shuffle<K, V>;

  class MapContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    // Emits a pair routed to partition `partition(key, num_reduce_tasks)`.
    void Emit(K key, V value) {
      output_.Add(std::move(key), std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    typename JobShuffle::MapOutput output_;
  };

  class ReduceContext {
   public:
    int task_id() const { return task_id_; }
    CostClock& clock() { return clock_; }
    Counters& counters() { return counters_; }

    void Emit(K key, V value) {
      outputs_.emplace_back(std::move(key), std::move(value));
      ++stats_.pairs_out;
    }

   private:
    friend class MapReduceJob;
    int task_id_ = 0;
    CostClock clock_;
    Counters counters_;
    TaskStats stats_;
    std::vector<std::pair<K, V>> outputs_;
  };

  using MapFn = std::function<void(const Record&, MapContext*)>;
  using ReduceFn =
      std::function<void(const K&, std::vector<V>*, ReduceContext*)>;
  using PartitionFn = typename JobShuffle::PartitionFn;
  using SetupFn = std::function<void(int task_id)>;
  // Cleanup hook run after a reduce task's last group (Hadoop's cleanup()).
  using ReduceCleanupFn = std::function<void(ReduceContext*)>;
  using CombineFn = typename JobShuffle::CombineFn;
  using WireSizeFn = typename JobShuffle::WireSizeFn;
  // Abort hook invoked when a task attempt fails, before the retry. Jobs
  // that accumulate external per-task state (sinks indexed by task_id) must
  // reset that state here or retries would double-count.
  using TaskAbortFn = std::function<void(TaskPhase phase, int task_id,
                                         int attempt)>;

  struct Result {
    // Reduce outputs concatenated in reduce-task order (within a task, in
    // emission order).
    std::vector<std::pair<K, V>> outputs;
    std::vector<TaskStats> map_stats;
    std::vector<TaskStats> reduce_stats;
    // Named counters merged across every map and reduce task, plus the
    // runtime's own bookkeeping under the reserved "mr." prefix (see
    // counters.h). Everything outside "mr." is byte-identical to a
    // fault-free run.
    Counters counters;
    JobTiming timing;
    // Input records quarantined by the skip-bad-records machinery
    // (FaultConfig::skip_bad_records), in map-task order. Quarantined
    // records were *not* processed — their absence from `outputs` is the
    // only permitted divergence from a fault-free run.
    std::vector<QuarantinedRecord> quarantined;
    // Job-supervision completeness report (supervisor.h). Inert — default
    // values — unless ClusterConfig::control is active. `degraded` set
    // means some task delivered less than its full output while `failed`
    // stayed false (degraded success).
    CompletenessReport completeness;
    // Set when some task exhausted FaultConfig::max_attempts. `outputs`,
    // stats and non-"mr." counters are empty/unspecified in that case.
    bool failed = false;
    std::string error;
  };

  MapReduceJob(int num_map_tasks, int num_reduce_tasks)
      : num_map_tasks_(std::max(1, num_map_tasks)),
        num_reduce_tasks_(std::max(1, num_reduce_tasks)),
        shuffle_(num_reduce_tasks) {}

  // Overrides the default hash partitioner.
  void set_partitioner(PartitionFn fn) {
    shuffle_.set_partitioner(std::move(fn));
  }

  // Cost units auto-charged per map input record (models record read +
  // key-extraction work).
  void set_map_cost_per_record(double cost) { map_cost_per_record_ = cost; }

  // Optional hooks run at the start of each task, before any record/group.
  void set_map_setup(SetupFn fn) { map_setup_ = std::move(fn); }
  void set_reduce_setup(SetupFn fn) { reduce_setup_ = std::move(fn); }

  // Optional combiner run on each map task's output, per partition, before
  // the shuffle (Hadoop's local aggregation).
  void set_combiner(CombineFn fn) { shuffle_.set_combiner(std::move(fn)); }

  // Optional per-pair wire size under the job's serde encoding; enables the
  // "mr.shuffle.bytes" accounting ("mr.shuffle.records" is always counted).
  void set_wire_size(WireSizeFn fn) { shuffle_.set_wire_size(std::move(fn)); }

  // Optional cleanup run at the end of each reduce task, after its last
  // group (may still charge cost and emit). Runs only on attempts that
  // complete — never on failed ones.
  void set_reduce_cleanup(ReduceCleanupFn fn) {
    reduce_cleanup_ = std::move(fn);
  }

  // Optional hook run when a task attempt fails (see TaskAbortFn).
  void set_task_abort(TaskAbortFn fn) { task_abort_ = std::move(fn); }

  // Marks this job's map function as poison-sensitive: the records listed
  // in FaultConfig::poison_records crash its map attempts, engaging the
  // skip-bad-records machinery. Off by default — jobs whose map function
  // never runs the user code a bad record would crash (e.g. a statistics
  // pre-pass) stay immune, exactly like a Hadoop job without skipping.
  void set_poison_faults(bool sensitive) { poison_faults_ = sensitive; }

  // Driver-state snapshot/restore hooks for checkpointed recovery. `save`
  // returns a type-erased copy of the driver's per-task state; `restore`
  // replaces the task's state with a snapshot, or resets it to
  // freshly-constructed when the snapshot is null (no checkpoint yet).
  using SaveStateFn = std::function<std::shared_ptr<const void>(int task_id)>;
  using RestoreStateFn =
      std::function<void(int task_id, const void* snapshot)>;

  // Enables checkpointed progressive recovery of reduce tasks: after each
  // group, when the task's cost clock crosses a multiple of `alpha` (the
  // progressive emission boundary), its context and driver state are
  // snapshotted into `store`; a re-attempt restores the latest snapshot and
  // resumes instead of replaying from scratch. `store` must outlive Run,
  // which resets it at submission. Outputs stay byte-identical to a
  // fault-free run; only the "mr." bookkeeping and the simulated timeline
  // change. Drivers that keep the abort-reset path simply never call this.
  void set_checkpointing(double alpha, CheckpointStore* store,
                         SaveStateFn save, RestoreStateFn restore) {
    checkpoint_alpha_ = alpha;
    checkpoint_store_ = store;
    checkpoint_save_ = std::move(save);
    checkpoint_restore_ = std::move(restore);
  }

  // Runs the job on `input` using `cluster` for both real thread parallelism
  // and the simulated time model. `submit_time` is when the job starts on
  // the simulated clock.
  Result Run(const std::vector<Record>& input, const MapFn& map_fn,
             const ReduceFn& reduce_fn, const ClusterConfig& cluster,
             double submit_time = 0.0) {
    Result result;
    result.timing.start = submit_time;
    Stopwatch wall_watch;
    const bool threaded = cluster.backend == ExecutionBackend::kThreaded;
    // Stamps the measured wall clock into the result; called at every
    // return path so even failed jobs report how long they really took.
    // reduce_seconds is derived (total minus the map barrier's stamp) only
    // once the reduce phase has actually started — on earlier exits (invalid
    // config, doomed map task) it stays 0 rather than absorbing elapsed time
    // from a phase that never ran.
    bool reduce_phase_started = false;
    const auto finish_wall = [&result, &wall_watch, &reduce_phase_started] {
      result.timing.wall.total_seconds = wall_watch.ElapsedSeconds();
      if (reduce_phase_started) {
        result.timing.wall.reduce_seconds =
            std::max(0.0, result.timing.wall.total_seconds -
                              result.timing.wall.map_seconds);
      }
    };

    const std::string config_error = ValidateClusterConfig(cluster);
    if (!config_error.empty()) {
      result.failed = true;
      result.error = "invalid cluster config: " + config_error;
      result.timing.map_end = submit_time;
      result.timing.end = submit_time;
      finish_wall();
      return result;
    }
    // ---- Shuffle memory budget ----
    // Resolved once per run: the job-wide budget split across map tasks
    // (floored at one block each) and the spill directory prepared and
    // probed up front, so an unusable directory fails the submission
    // instead of a mid-map spill. The PROGRES_FORCE_SPILL environment hook
    // drops a disabled budget to one block so test suites can drive the
    // out-of-core path through unmodified configs — outputs are
    // byte-identical either way by design.
    {
      ShuffleBudget budget = cluster.shuffle_budget;
      if (budget.max_bytes == 0 &&
          std::getenv("PROGRES_FORCE_SPILL") != nullptr) {
        budget.max_bytes = 1;
        budget.block_bytes = 4096;
      }
      typename JobShuffle::SpillConfig spill;
      spill.block_bytes = budget.block_bytes;
      if (budget.max_bytes > 0) {
        std::string spill_error;
        spill.dir = ResolveSpillDir(budget.spill_dir, &spill_error);
        if (spill.dir.empty()) {
          result.failed = true;
          result.error = "shuffle budget unusable: " + spill_error;
          result.timing.map_end = submit_time;
          result.timing.end = submit_time;
          finish_wall();
          return result;
        }
        // The optional fallback dir is resolved and probed with the same
        // rigour — a failover target discovered broken mid-spill would turn
        // graceful degradation into a second outage.
        if (!budget.fallback_spill_dir.empty()) {
          std::string fallback_error;
          spill.fallback_dir =
              ResolveSpillDir(budget.fallback_spill_dir, &fallback_error);
          if (spill.fallback_dir.empty()) {
            result.failed = true;
            result.error = "shuffle budget unusable: " + fallback_error;
            result.timing.map_end = submit_time;
            result.timing.end = submit_time;
            finish_wall();
            return result;
          }
        }
        spill.enabled = true;
        spill.task_buffer_bytes =
            std::max(budget.block_bytes,
                     budget.max_bytes / static_cast<int64_t>(num_map_tasks_));
      }
      shuffle_.set_spill(std::move(spill));
    }
    // The threaded backend's engine: the worker pool plus the wall-clock
    // record of every attempt executed on it. Null under the simulated
    // backend, whose attempt chains run serially on this thread.
    std::unique_ptr<ThreadedExecutor> wall;
    if (threaded) {
      wall = std::make_unique<ThreadedExecutor>(cluster.execution_threads);
    }
    result.timing.wall.threads = threaded ? wall->threads() : 1;
    // Deadline cuts restore *historical* alpha boundaries, not just the
    // latest one — arm snapshot history before the store resets (and
    // preloads any persisted snapshots into it).
    if (cluster.control.active() && checkpointing()) {
      checkpoint_store_->set_keep_history(true);
    }
    if (checkpointing()) checkpoint_store_->Reset(num_reduce_tasks_);

    // PROGRES_DISK_FAULTS drives the storage fault domain through
    // unmodified configs, mirroring PROGRES_FORCE_SPILL: whenever spilling
    // is active, small planned disk-fault probabilities are overlaid so
    // test suites exercise retry/re-run recovery everywhere. Enabling the
    // plan with every other fault family at zero probability changes
    // nothing else — outputs stay byte-identical by design.
    FaultConfig fault_config = cluster.fault;
    if (shuffle_.spill_config().enabled &&
        std::getenv("PROGRES_DISK_FAULTS") != nullptr) {
      fault_config.enabled = true;
      if (fault_config.spill_write_error_prob == 0.0) {
        fault_config.spill_write_error_prob = 0.02;
      }
      if (fault_config.spill_torn_write_prob == 0.0) {
        fault_config.spill_torn_write_prob = 0.01;
      }
      if (fault_config.spill_corrupt_prob == 0.0) {
        fault_config.spill_corrupt_prob = 0.01;
      }
    }
    const FaultPlan plan(fault_config);
    const std::vector<MachineFault> machine_failures =
        plan.MachineFailures(cluster.machines);
    const bool heterogeneous = !cluster.machine_speed.empty();
    const std::vector<double> map_speeds =
        heterogeneous
            ? cluster.SlotSpeeds(cluster.map_slots_per_machine)
            : std::vector<double>(
                  static_cast<size_t>(std::max(1, cluster.map_slots())), 1.0);
    const std::vector<double> reduce_speeds =
        heterogeneous
            ? cluster.SlotSpeeds(cluster.reduce_slots_per_machine)
            : std::vector<double>(
                  static_cast<size_t>(std::max(1, cluster.reduce_slots())),
                  1.0);

    TaskAttemptRunner map_runner(TaskPhase::kMap, num_map_tasks_, &plan);
    TaskAttemptRunner reduce_runner(TaskPhase::kReduce, num_reduce_tasks_,
                                    &plan);

    // ---- Job supervision (deadline-driven graceful degradation) ----
    // The supervisor precomputes the retry-budget ledger and the breaker
    // state from the fault plan — pure functions, identical under both
    // backends. Everything below is gated on `supervisor.active()`; an
    // inactive JobControl leaves the run byte- and timing-identical to the
    // unsupervised runtime.
    const JobControl& control = cluster.control;
    const JobSupervisor supervisor(control, &plan, num_map_tasks_,
                                   num_reduce_tasks_);
    if (supervisor.active()) {
      map_runner.set_attempt_caps(supervisor.map_attempt_caps());
      reduce_runner.set_attempt_caps(supervisor.reduce_attempt_caps());
    }
    // Disk circuit breaker: armed only when a fallback dir exists to fail
    // over to — without one the sticky spill error must surface unchanged.
    const bool disk_breaker = supervisor.active() &&
                              supervisor.disk_breaker_tripped() &&
                              shuffle_.spill_config().enabled &&
                              !shuffle_.spill_config().fallback_dir.empty();
    // Supervisor events, one per kDeadlineCancel / kTaskQuarantine /
    // kBreakerTrip span. The "mr.supervisor.*" activity counters are
    // derived from this same list, so counters and spans reconcile by
    // construction.
    struct SupervisorEvent {
      SpanKind kind;
      TaskPhase phase;
      int task;
      int domain;      // FaultDomain index for breaker trips, else -1
      double cost;     // restored boundary cost (cut/quarantine), else 0
      double deadline; // the cut deadline, anchoring kDeadlineCancel spans
    };
    std::vector<SupervisorEvent> supervisor_events;
    if (supervisor.active() && supervisor.budget_breaker_tripped()) {
      supervisor_events.push_back({SpanKind::kBreakerTrip, TaskPhase::kMap,
                                   -1, static_cast<int>(FaultDomain::kTask),
                                   0.0, 0.0});
    }
    if (disk_breaker) {
      supervisor_events.push_back({SpanKind::kBreakerTrip, TaskPhase::kMap,
                                   supervisor.first_full_task(),
                                   static_cast<int>(FaultDomain::kDisk), 0.0,
                                   0.0});
    }
    // Per-task completeness slots, assembled into Result::completeness once
    // the timing model has run (deadline cuts are post-hoc).
    std::vector<TaskReport> map_report(static_cast<size_t>(num_map_tasks_));
    std::vector<char> map_affected(static_cast<size_t>(num_map_tasks_), 0);
    std::vector<TaskReport> reduce_report(
        static_cast<size_t>(num_reduce_tasks_));
    std::vector<char> reduce_affected(static_cast<size_t>(num_reduce_tasks_),
                                      0);
    bool wall_expired = false;

    // Shared scheduler inputs of both phases: the machine fault domain, the
    // retry-hygiene knobs, and the phase's hung attempts with the heartbeat
    // timeout that kills them.
    const auto phase_options = [&](TaskPhase phase,
                                   const std::vector<double>& speeds,
                                   int slots_per_machine, double start,
                                   const TaskAttemptRunner& runner) {
      AttemptScheduleOptions options;
      options.slot_speeds = speeds;
      options.slots_per_machine = slots_per_machine;
      options.start_time = start;
      options.seconds_per_cost_unit = cluster.seconds_per_cost_unit;
      options.speculation = cluster.speculation;
      options.machine_failures = machine_failures;
      options.retry_backoff_seconds = cluster.fault.retry_backoff_seconds;
      options.retry_backoff_factor = cluster.fault.retry_backoff_factor;
      options.blacklist_failures = cluster.fault.blacklist_failures;
      options.hang_attempts = runner.attempt_hangs();
      options.task_timeout_seconds = cluster.fault.task_timeout_seconds;
      // The simulated scheduler still computes the results clock under both
      // backends, but only the simulated backend records its spans — the
      // threaded backend stamps the executor's wall-clock timeline instead.
      options.trace = threaded ? nullptr : cluster.trace;
      options.trace_phase = phase;
      options.trace_pid =
          cluster.trace != nullptr ? cluster.trace->current_pid() : 0;
      return options;
    };

    // ---- Map phase ----
    std::vector<MapContext> map_ctx(static_cast<size_t>(num_map_tasks_));
    // Reduce contexts and the map-output pointer list live at Run scope
    // (not in the phase block) because the supervisor's post-hoc deadline
    // enforcement rewrites contexts after the timing model has run.
    std::vector<ReduceContext> reduce_ctx(
        static_cast<size_t>(num_reduce_tasks_));
    for (int r = 0; r < num_reduce_tasks_; ++r) {
      reduce_ctx[static_cast<size_t>(r)].task_id_ = r;
    }
    std::vector<typename JobShuffle::MapOutput*> map_outputs;
    map_outputs.reserve(map_ctx.size());
    for (MapContext& ctx : map_ctx) map_outputs.push_back(&ctx.output_);
    // Full gathered input of reduce task `t` — the denominator a degraded
    // task's coverage is reported against. Re-gathers (cheap, in-memory or
    // a re-read of the spill runs); a failing gather yields its partial
    // size, floored at the covered count by the callers.
    const auto gathered_total = [&](int t) -> int64_t {
      typename JobShuffle::GatherStats probe;
      return static_cast<int64_t>(
          shuffle_.GatherSorted(map_outputs, t, &probe).size());
    };
    // Quarantines reduce task `t` under allow_degraded: the delivered
    // output becomes the latest checkpointed prefix (nothing without one),
    // driver state is rewound to match, and the completeness report records
    // the loss against the task's full gathered input.
    const auto quarantine_reduce = [&, this](int t) {
      ReduceContext& ctx = reduce_ctx[static_cast<size_t>(t)];
      const int64_t total = gathered_total(t);
      const TaskCheckpoint* ck =
          checkpointing() ? checkpoint_store_->Latest(t) : nullptr;
      int64_t covered = 0;
      double boundary = 0.0;
      if (ck != nullptr) {
        RestoreReduceContext(&ctx, *ck);
        if (checkpoint_restore_) checkpoint_restore_(t, ck->driver_state.get());
        ctx.stats_.cost = ck->cost;
        covered = ck->records_in;
        boundary = ck->cost;
      } else {
        ResetReduceContext(&ctx);
        if (checkpointing() && checkpoint_restore_) {
          checkpoint_restore_(t, nullptr);
        }
      }
      TaskReport& report = reduce_report[static_cast<size_t>(t)];
      report.phase = TaskPhase::kReduce;
      report.task = t;
      report.kind = TaskOutcomeKind::kQuarantined;
      report.records_total = std::max(total, covered);
      report.records_covered = covered;
      report.covered_fraction =
          report.records_total > 0
              ? static_cast<double>(covered) /
                    static_cast<double>(report.records_total)
              : 0.0;
      reduce_affected[static_cast<size_t>(t)] = 1;
      supervisor_events.push_back({SpanKind::kTaskQuarantine,
                                   TaskPhase::kReduce, t, -1, boundary, 0.0});
    };
    // Per-attempt recovery bookkeeping of the reduce phase, consumed by the
    // machine-aware timing model after the pool scope closes: the absolute
    // progress each executed attempt started from, and the input values a
    // failed attempt forced the retry to re-process.
    std::vector<std::vector<double>> reduce_attempt_bases(
        static_cast<size_t>(num_reduce_tasks_));
    std::vector<int64_t> reduce_replayed(
        static_cast<size_t>(num_reduce_tasks_), 0);
    // Shuffle-corruption recovery bookkeeping, filled at the map/reduce
    // barrier and consumed by the reduce timing model and the trace:
    // per-reduce-task fetch stalls and one (reduce, map) event per detected
    // checksum error.
    std::vector<double> fetch_stalls(static_cast<size_t>(num_reduce_tasks_),
                                     0.0);
    std::vector<std::pair<int, int>> corrupt_events;
    // Per-task gather accounting of the most recent reduce attempt (so the
    // winner's values survive), consumed by the "mr.spill.merge_passes"
    // counter and the spill-merge trace spans.
    std::vector<typename JobShuffle::GatherStats> gather_stats(
        static_cast<size_t>(num_reduce_tasks_));
    // Storage-fault bookkeeping. `map_generation[t]` numbers every
    // execution of map task t (attempt retries and barrier re-runs alike)
    // so each draws fresh disk-fault decisions and unique run-file names;
    // `disk_totals[t]` accumulates the surviving executions' disk stats
    // (failed attempts' are discarded with the rest of their artifacts);
    // `corrupt_run_events` records every spill run that failed CRC
    // validation at the barrier, for the kRunCorrupt trace spans.
    std::vector<int> map_generation(static_cast<size_t>(num_map_tasks_), 0);
    std::vector<typename JobShuffle::MapOutput::DiskStats> disk_totals(
        static_cast<size_t>(num_map_tasks_));
    struct CorruptRunEvent {
      int task;
      int64_t records;
      int64_t bytes;
    };
    std::vector<CorruptRunEvent> corrupt_run_events;
    // Cross-process restart bookkeeping: reduce tasks whose first restore
    // this run came from a checkpoint persisted by an earlier process, and
    // the restored boundary cost (for the kRestartRestore spans).
    std::vector<char> restart_restored(static_cast<size_t>(num_reduce_tasks_),
                                       0);
    std::vector<double> restart_restore_cost(
        static_cast<size_t>(num_reduce_tasks_), 0.0);
    // Poison-record state, keyed by FaultPlan::PoisonIndex. Records
    // partition into disjoint per-map-task ranges, so each entry is only
    // ever touched by one task's thread.
    const bool poison_active = poison_faults_ && plan.enabled() &&
                               plan.num_poison_records() > 0;
    std::vector<int> poison_crashes(
        static_cast<size_t>(plan.num_poison_records()), 0);
    std::vector<char> poison_quarantined(
        static_cast<size_t>(plan.num_poison_records()), 0);
    std::vector<std::vector<int64_t>> quarantined_by_task(
        static_cast<size_t>(num_map_tasks_));
    // Under the threaded backend the simulated scheduler records no spans;
    // the executor's wall-clock timeline is stamped once per run instead:
    // attempt spans from the workers' measurements, data-plane instants at
    // their wall-clock anchors (checksum errors at the map barrier, a
    // quarantine at its winning map attempt's start) and shuffle delivery
    // marks at the winning reduce attempts' wall starts. Called exactly
    // once on every return path past the map phase.
    const auto stamp_wall_trace = [&] {
      if (!threaded || cluster.trace == nullptr) return;
      const int pid = cluster.trace->current_pid();
      wall->StampAttemptSpans(cluster.trace, pid);
      const double map_wall_end = wall->phase_end(TaskPhase::kMap);
      for (const auto& [r, m] : corrupt_events) {
        TraceInstant instant;
        instant.kind = InstantKind::kShuffleCorruption;
        instant.phase = TaskPhase::kReduce;
        instant.pid = pid;
        instant.time = map_wall_end;
        instant.task = r;
        instant.peer_task = m;
        cluster.trace->RecordInstant(instant);
      }
      for (const QuarantinedRecord& q : result.quarantined) {
        TraceInstant instant;
        instant.kind = InstantKind::kRecordQuarantined;
        instant.phase = TaskPhase::kMap;
        instant.pid = pid;
        WallAttempt winner;
        instant.time =
            wall->WinningAttempt(TaskPhase::kMap, q.task, &winner)
                ? winner.start
                : map_wall_end;
        instant.task = q.task;
        instant.record = q.record;
        cluster.trace->RecordInstant(instant);
      }
      if (result.failed) return;
      for (int t = 0; t < num_map_tasks_; ++t) {
        const auto& runs =
            map_ctx[static_cast<size_t>(t)].output_.spill_runs();
        WallAttempt winner;
        if (!wall->WinningAttempt(TaskPhase::kMap, t, &winner)) continue;
        for (const SpillRun& run : runs) {
          TraceSpan span;
          span.kind = SpanKind::kSpillWrite;
          span.phase = TaskPhase::kMap;
          span.pid = pid;
          span.task = t;
          span.attempt = winner.attempt;
          span.machine = -1;
          span.slot = winner.worker;
          span.start = winner.end;
          span.end = winner.end;
          span.records_in = run.records;
          span.bytes = run.bytes;
          cluster.trace->RecordSpan(span);
        }
        // Spill-retry marks, one per retried write — reconciled 1:1 with
        // "mr.disk.retries".
        for (int64_t i = 0; i < disk_totals[static_cast<size_t>(t)].retries;
             ++i) {
          TraceSpan span;
          span.kind = SpanKind::kSpillRetry;
          span.phase = TaskPhase::kMap;
          span.pid = pid;
          span.task = t;
          span.attempt = winner.attempt;
          span.machine = -1;
          span.slot = winner.worker;
          span.start = winner.end;
          span.end = winner.end;
          cluster.trace->RecordSpan(span);
        }
      }
      // Corrupt-run marks at the barrier (where CRC validation runs) —
      // reconciled 1:1 with "mr.disk.corrupt_runs".
      for (const CorruptRunEvent& event : corrupt_run_events) {
        TraceSpan span;
        span.kind = SpanKind::kRunCorrupt;
        span.phase = TaskPhase::kMap;
        span.pid = pid;
        span.task = event.task;
        span.machine = -1;
        WallAttempt winner;
        span.slot = wall->WinningAttempt(TaskPhase::kMap, event.task, &winner)
                        ? winner.worker
                        : -1;
        span.attempt = winner.attempt;
        span.start = map_wall_end;
        span.end = map_wall_end;
        span.records_in = event.records;
        span.bytes = event.bytes;
        cluster.trace->RecordSpan(span);
      }
      for (size_t t = 0; t < result.reduce_stats.size(); ++t) {
        WallAttempt winner;
        if (!wall->WinningAttempt(TaskPhase::kReduce, static_cast<int>(t),
                                  &winner)) {
          continue;
        }
        TraceSpan span;
        span.kind = SpanKind::kShuffle;
        span.phase = TaskPhase::kReduce;
        span.pid = pid;
        span.task = static_cast<int>(t);
        span.attempt = winner.attempt;
        span.machine = -1;
        span.slot = winner.worker;
        span.start = winner.start;
        span.end = winner.start;
        span.records_in = result.reduce_stats[t].records_in;
        cluster.trace->RecordSpan(span);
        const auto& gs = gather_stats[t];
        if (gs.runs_merged > 0) {
          TraceSpan merge;
          merge.kind = SpanKind::kSpillMerge;
          merge.phase = TaskPhase::kReduce;
          merge.pid = pid;
          merge.task = static_cast<int>(t);
          merge.attempt = winner.attempt;
          merge.machine = -1;
          merge.slot = winner.worker;
          merge.start = winner.start;
          merge.end = winner.start;
          merge.records_in = gs.spilled_records;
          merge.bytes = gs.spilled_bytes;
          cluster.trace->RecordSpan(merge);
        }
        // Restart-restore marks, one per task resumed from a persisted
        // checkpoint — reconciled 1:1 with "mr.restart.restored_tasks".
        if (restart_restored[t]) {
          TraceSpan restore;
          restore.kind = SpanKind::kRestartRestore;
          restore.phase = TaskPhase::kReduce;
          restore.pid = pid;
          restore.task = static_cast<int>(t);
          restore.attempt = winner.attempt;
          restore.machine = -1;
          restore.slot = winner.worker;
          restore.start = winner.start;
          restore.end = winner.start;
          restore.cost_units = restart_restore_cost[t];
          cluster.trace->RecordSpan(restore);
        }
      }
    };
    {
      ThreadPool* pool = threaded ? wall->pool() : nullptr;
      const size_t n = input.size();
      for (int t = 0; t < num_map_tasks_; ++t) {
        map_ctx[static_cast<size_t>(t)].task_id_ = t;
      }
      // Hoisted so the barrier's CRC-recovery loop can re-run a map task
      // whose spill runs failed validation: reset, then the body, exactly
      // as a scheduled attempt would. Each execution bumps the task's
      // generation — fresh disk-fault decisions, fresh run-file names.
      const auto reset_map = [this, &map_ctx, &map_generation, &plan,
                              disk_breaker, &supervisor](int t) {
        ResetMapContext(&map_ctx[static_cast<size_t>(t)]);
        map_ctx[static_cast<size_t>(t)].output_.ConfigureSpill(
            &plan, map_generation[static_cast<size_t>(t)]++);
        // Disk breaker: once the first task discovered the primary spill
        // dir full, later tasks start directly on the fallback — one global
        // failover instead of a per-task ENOSPC retry storm.
        if (disk_breaker && supervisor.StartOnFallback(t)) {
          map_ctx[static_cast<size_t>(t)].output_.StartOnFallback();
        }
      };
      const auto run_map_body =
          [this, &input, &map_fn, &map_ctx, n, &plan, &cluster,
           poison_active, &poison_crashes, &poison_quarantined,
           &quarantined_by_task](const TaskAttemptRunner::Attempt& attempt) {
            MapContext& ctx = map_ctx[static_cast<size_t>(attempt.task)];
            const size_t lo = n * static_cast<size_t>(attempt.task) /
                              static_cast<size_t>(num_map_tasks_);
            const size_t hi = n * static_cast<size_t>(attempt.task + 1) /
                              static_cast<size_t>(num_map_tasks_);
            size_t limit = hi - lo;
            // Crashes and hangs both cut the attempt short; a hung attempt
            // simply stops heartbeating at its cutoff instead of dying.
            const bool cut = attempt.fails || attempt.hangs;
            if (cut) {
              const double point =
                  attempt.fails ? attempt.fail_point : attempt.hang_point;
              limit = static_cast<size_t>(static_cast<double>(limit) * point);
            }
            if (map_setup_) map_setup_(attempt.task);
            TaskAttemptRunner::BodyOutcome out;
            for (size_t i = lo; i < lo + limit; ++i) {
              if (poison_active &&
                  plan.IsPoisonRecord(static_cast<int64_t>(i))) {
                const size_t p = static_cast<size_t>(
                    plan.PoisonIndex(static_cast<int64_t>(i)));
                if (poison_quarantined[p]) continue;  // skipped, not run
                // The record crashes this attempt. Once it has crashed
                // max_attempts_before_skip attempts, skip-bad-records
                // quarantines it so the next attempt can pass over it.
                ++poison_crashes[p];
                if (cluster.fault.skip_bad_records &&
                    poison_crashes[p] >=
                        cluster.fault.max_attempts_before_skip) {
                  poison_quarantined[p] = 1;
                  quarantined_by_task[static_cast<size_t>(attempt.task)]
                      .push_back(static_cast<int64_t>(i));
                }
                out.poison_crashed = true;
                break;
              }
              ctx.clock_.Charge(map_cost_per_record_);
              map_fn(input[i], &ctx);
              ++ctx.stats_.records_in;
            }
            if (!cut && !out.poison_crashed) {
              shuffle_.Combine(&ctx.output_);
              ctx.stats_.cost = ctx.clock_.units();
            }
            out.cost = ctx.clock_.units();
            return out;
          };
      // Quarantines map task `t` under allow_degraded: its output is
      // dropped (the chunk's records vanish from every downstream
      // partition) and the loss is recorded against the chunk size.
      const auto quarantine_map = [&, this](int t) {
        ResetMapContext(&map_ctx[static_cast<size_t>(t)]);
        const size_t lo = n * static_cast<size_t>(t) /
                          static_cast<size_t>(num_map_tasks_);
        const size_t hi = n * static_cast<size_t>(t + 1) /
                          static_cast<size_t>(num_map_tasks_);
        TaskReport& report = map_report[static_cast<size_t>(t)];
        report.phase = TaskPhase::kMap;
        report.task = t;
        report.kind = TaskOutcomeKind::kQuarantined;
        report.records_total = static_cast<int64_t>(hi - lo);
        report.records_covered = 0;
        report.covered_fraction = 0.0;
        map_affected[static_cast<size_t>(t)] = 1;
        supervisor_events.push_back(
            {SpanKind::kTaskQuarantine, TaskPhase::kMap, t, -1, 0.0, 0.0});
      };
      map_runner.RunAll(pool, wall.get(), reset_map, run_map_body,
                        task_abort_);
      if (threaded) wall->EndPhase(TaskPhase::kMap);
      result.timing.wall.map_seconds = wall_watch.ElapsedSeconds();

      map_runner.MergeFaultCounters(&result.counters);
      // Quarantine bookkeeping survives even a doomed job: the skipped
      // records and their counter are facts about the map phase.
      {
        int64_t skipped = 0;
        for (int t = 0; t < num_map_tasks_; ++t) {
          for (const int64_t rec :
               quarantined_by_task[static_cast<size_t>(t)]) {
            result.quarantined.push_back({t, rec});
            ++skipped;
          }
        }
        if (skipped > 0) {
          result.counters.Increment("mr.skipped.records", skipped);
        }
      }
      const int doomed_map = map_runner.FirstDoomed();
      if (doomed_map >= 0 && control.allow_degraded) {
        // Degraded mode: quarantine every doomed map task and keep going.
        for (const int t : map_runner.DoomedTasks()) quarantine_map(t);
      } else if (doomed_map >= 0) {
        result.failed = true;
        result.error = map_runner.DoomedError(doomed_map);
        AttemptScheduleOutcome map_schedule = ScheduleTaskAttemptsOnCluster(
            map_runner.attempt_costs(),
            phase_options(TaskPhase::kMap, map_speeds,
                          cluster.map_slots_per_machine, submit_time,
                          map_runner));
        MergeRecoveryCounters(map_schedule, &result.counters);
        result.timing.map_attempts = std::move(map_schedule.attempts);
        result.timing.map_end = map_schedule.end_time;
        result.timing.end = map_schedule.end_time;
        stamp_wall_trace();
        finish_wall();
        return result;
      }
      // A winning map attempt that could not honour the spill contract
      // fails the job with the labelled I/O error — silently exceeding the
      // memory budget is not an option (the buffered data stayed complete
      // in memory, but the configuration needs fixing, not retrying).
      for (int t = 0; t < num_map_tasks_; ++t) {
        const std::string& spill_error =
            map_ctx[static_cast<size_t>(t)].output_.spill_error();
        if (spill_error.empty()) continue;
        if (control.allow_degraded) {
          // Degraded mode: the memory budget cannot be honoured for this
          // task — quarantine it instead of failing the job.
          quarantine_map(t);
          continue;
        }
        result.failed = true;
        result.error = "map task " + std::to_string(t) + ": " + spill_error;
        AttemptScheduleOutcome map_schedule = ScheduleTaskAttemptsOnCluster(
            map_runner.attempt_costs(),
            phase_options(TaskPhase::kMap, map_speeds,
                          cluster.map_slots_per_machine, submit_time,
                          map_runner));
        MergeRecoveryCounters(map_schedule, &result.counters);
        result.timing.map_attempts = std::move(map_schedule.attempts);
        result.timing.map_end = map_schedule.end_time;
        result.timing.end = map_schedule.end_time;
        stamp_wall_trace();
        finish_wall();
        return result;
      }

      // ---- CRC validation of the spill runs the merges will trust ----
      // Torn writes and flipped bytes are silent at write time; the barrier
      // re-reads every winning run against its CRC before any reduce-side
      // merge trusts the bytes. A task with an invalid run re-runs in place
      // — a fresh generation with fresh fault decisions, mirroring the
      // shuffle-corruption map re-run — and each re-run stalls the reduce
      // tasks it feeds for the map's run time. The attempt budget caps the
      // rounds; exhausting it fails the job with a labelled error.
      if (shuffle_.spill_config().enabled && plan.HasDiskFaults()) {
        const auto accumulate_disk = [&map_ctx, &disk_totals](int t) {
          const auto& stats =
              map_ctx[static_cast<size_t>(t)].output_.disk_stats();
          auto& total = disk_totals[static_cast<size_t>(t)];
          total.write_errors += stats.write_errors;
          total.retries += stats.retries;
          total.enospc += stats.enospc;
          total.torn_writes += stats.torn_writes;
          total.dir_failovers += stats.dir_failovers;
          total.backoff_seconds += stats.backoff_seconds;
        };
        int64_t corrupt_runs = 0;
        int64_t disk_map_reruns = 0;
        for (int t = 0; t < num_map_tasks_ && !result.failed; ++t) {
          MapContext& ctx = map_ctx[static_cast<size_t>(t)];
          for (int round = 1;; ++round) {
            int64_t bad = 0;
            for (const SpillRun& run : ctx.output_.spill_runs()) {
              if (ValidateSpillRun(run)) continue;
              ++bad;
              ++corrupt_runs;
              corrupt_run_events.push_back({t, run.records, run.bytes});
            }
            if (bad == 0) break;
            if (round >= plan.max_attempts()) {
              if (control.allow_degraded) {
                quarantine_map(t);
                break;
              }
              result.failed = true;
              result.error = "map task " + std::to_string(t) +
                             ": spill runs failed CRC validation after " +
                             std::to_string(round) + " generations";
              break;
            }
            ++disk_map_reruns;
            for (int r = 0; r < num_reduce_tasks_; ++r) {
              fetch_stalls[static_cast<size_t>(r)] +=
                  map_runner.attempt_costs()[static_cast<size_t>(t)].back() *
                  cluster.seconds_per_cost_unit;
            }
            accumulate_disk(t);
            reset_map(t);
            TaskAttemptRunner::Attempt rerun;
            rerun.task = t;
            run_map_body(rerun);
            if (!ctx.output_.spill_error().empty()) {
              if (control.allow_degraded) {
                quarantine_map(t);
                break;
              }
              result.failed = true;
              result.error = "map task " + std::to_string(t) + ": " +
                             ctx.output_.spill_error();
              break;
            }
          }
        }
        for (int t = 0; t < num_map_tasks_; ++t) accumulate_disk(t);
        // The surviving executions' storage-fault tallies, exported under
        // "mr.disk.*" (zero counters stay absent, as everywhere).
        typename JobShuffle::MapOutput::DiskStats sum;
        for (const auto& total : disk_totals) {
          sum.write_errors += total.write_errors;
          sum.retries += total.retries;
          sum.enospc += total.enospc;
          sum.torn_writes += total.torn_writes;
          sum.dir_failovers += total.dir_failovers;
          sum.backoff_seconds += total.backoff_seconds;
        }
        if (sum.write_errors > 0) {
          result.counters.Increment("mr.disk.write_errors", sum.write_errors);
        }
        if (sum.retries > 0) {
          result.counters.Increment("mr.disk.retries", sum.retries);
        }
        if (sum.backoff_seconds > 0.0) {
          result.counters.Increment(
              "mr.disk.retry_backoff_seconds",
              static_cast<int64_t>(std::llround(sum.backoff_seconds)));
        }
        if (sum.enospc > 0) {
          result.counters.Increment("mr.disk.enospc", sum.enospc);
        }
        if (sum.torn_writes > 0) {
          result.counters.Increment("mr.disk.torn_writes", sum.torn_writes);
        }
        if (sum.dir_failovers > 0) {
          result.counters.Increment("mr.disk.dir_failovers",
                                    sum.dir_failovers);
        }
        if (corrupt_runs > 0) {
          result.counters.Increment("mr.disk.corrupt_runs", corrupt_runs);
        }
        if (disk_map_reruns > 0) {
          result.counters.Increment("mr.disk.map_reruns", disk_map_reruns);
        }
        if (result.failed) {
          AttemptScheduleOutcome map_schedule = ScheduleTaskAttemptsOnCluster(
              map_runner.attempt_costs(),
              phase_options(TaskPhase::kMap, map_speeds,
                            cluster.map_slots_per_machine, submit_time,
                            map_runner));
          MergeRecoveryCounters(map_schedule, &result.counters);
          result.timing.map_attempts = std::move(map_schedule.attempts);
          result.timing.map_end = map_schedule.end_time;
          result.timing.end = map_schedule.end_time;
          stamp_wall_trace();
          finish_wall();
          return result;
        }
      }

      // Post-combine shuffle volume of the winning map attempts.
      {
        typename JobShuffle::Volume volume;
        for (const MapContext& ctx : map_ctx) {
          const auto task_volume = shuffle_.MeasureVolume(ctx.output_);
          volume.records += task_volume.records;
          volume.bytes += task_volume.bytes;
        }
        result.counters.Increment("mr.shuffle.records", volume.records);
        result.counters.Increment("mr.shuffle.bytes", volume.bytes);
      }

      // Out-of-core bookkeeping of the winning map attempts: every sorted
      // spill run that will feed the reduce-side merges, reconciled against
      // the kSpillWrite trace spans (one span per run).
      {
        int64_t spill_runs = 0;
        int64_t spill_records = 0;
        int64_t spill_bytes = 0;
        for (const MapContext& ctx : map_ctx) {
          for (const SpillRun& run : ctx.output_.spill_runs()) {
            ++spill_runs;
            spill_records += run.records;
            spill_bytes += run.bytes;
          }
        }
        if (spill_runs > 0) {
          result.counters.Increment("mr.spill.runs", spill_runs);
          result.counters.Increment("mr.spill.records", spill_records);
          result.counters.Increment("mr.spill.bytes", spill_bytes);
        }
      }

      // ---- Checksummed shuffle: corruption detection & recovery ----
      // Every (map, reduce) partition ships with its CRC32; the consuming
      // reduce task recomputes it on fetch. A corrupt fetch is re-fetched
      // (free — the shuffle is in-memory), and after max_fetch_retries
      // consecutive corrupt copies the producing map attempt is re-run,
      // stalling the reduce task for the map's winning run time.
      if (plan.enabled() && cluster.fault.shuffle_corrupt_prob > 0.0) {
        int64_t checksum_errors = 0;
        int64_t refetches = 0;
        int64_t map_reruns = 0;
        const int cap = cluster.fault.max_fetch_retries + 1;
        for (int r = 0; r < num_reduce_tasks_; ++r) {
          for (int m = 0; m < num_map_tasks_; ++m) {
            const int corrupt = plan.CorruptFetches(m, r, cap);
            if (corrupt == 0) continue;
            // Detection itself: the shipped checksum against one recomputed
            // from the delivered partition. The corruption model flips the
            // delivered copy's checksum, so a mismatch is certain — but the
            // comparison below is the real gate, not the plan.
            const uint32_t shipped = shuffle_.PartitionChecksum(
                map_ctx[static_cast<size_t>(m)].output_, r);
            const uint32_t delivered = shipped ^ 0xffffffffu;
            if (delivered == shipped) continue;  // fetch verified clean
            checksum_errors += corrupt;
            refetches += corrupt;  // one re-fetch per detected error
            for (int e = 0; e < corrupt; ++e) corrupt_events.push_back({r, m});
            if (corrupt > cluster.fault.max_fetch_retries) {
              // Re-fetching never yielded a clean copy: re-run the winning
              // map attempt (at nominal speed) to regenerate the partition.
              ++map_reruns;
              fetch_stalls[static_cast<size_t>(r)] +=
                  map_runner.attempt_costs()[static_cast<size_t>(m)].back() *
                  cluster.seconds_per_cost_unit;
            }
          }
        }
        if (checksum_errors > 0) {
          result.counters.Increment("mr.shuffle.checksum_errors",
                                    checksum_errors);
          result.counters.Increment("mr.shuffle.refetches", refetches);
        }
        if (map_reruns > 0) {
          result.counters.Increment("mr.shuffle.map_reruns", map_reruns);
        }
      }

      // ---- Wall-clock deadline at the map/reduce barrier ----
      // The supervisor's coarse wall-clock guard: a job already past its
      // wall deadline when the map barrier closes does not start reduce
      // work. Degraded mode cancels every reduce task (best-effort
      // finalization below); otherwise the job fails with a labelled error.
      if (control.wall_deadline_seconds > 0.0 &&
          wall_watch.ElapsedSeconds() > control.wall_deadline_seconds) {
        if (!control.allow_degraded) {
          result.failed = true;
          result.error =
              "job wall-clock deadline exceeded at the map/reduce barrier";
          AttemptScheduleOutcome map_schedule = ScheduleTaskAttemptsOnCluster(
              map_runner.attempt_costs(),
              phase_options(TaskPhase::kMap, map_speeds,
                            cluster.map_slots_per_machine, submit_time,
                            map_runner));
          MergeRecoveryCounters(map_schedule, &result.counters);
          result.timing.map_attempts = std::move(map_schedule.attempts);
          result.timing.map_end = map_schedule.end_time;
          result.timing.end = map_schedule.end_time;
          stamp_wall_trace();
          finish_wall();
          return result;
        }
        wall_expired = true;
      }

      if (!wall_expired) {  // ---- Reduce phase ----
      // Per-task cursors of the checkpoint-aware attempt loop: the restored
      // base cost and group watermark of the currently running attempt.
      // Each task only ever touches its own slot.
      std::vector<double> attempt_base(static_cast<size_t>(num_reduce_tasks_),
                                       0.0);
      std::vector<int64_t> attempt_skip(
          static_cast<size_t>(num_reduce_tasks_), 0);
      reduce_phase_started = true;
      reduce_runner.RunAll(
          pool, wall.get(),
          [this, &reduce_ctx, &reduce_attempt_bases, &attempt_base,
           &attempt_skip, &restart_restored, &restart_restore_cost, &wall,
           &cluster, threaded](int t) {
            ReduceContext& ctx = reduce_ctx[static_cast<size_t>(t)];
            const TaskCheckpoint* checkpoint =
                checkpointing() ? checkpoint_store_->Latest(t) : nullptr;
            if (checkpoint != nullptr) {
              // A snapshot still marked preloaded came off disk from an
              // earlier process — this restore is a cross-process restart,
              // tallied separately under "mr.restart.restored_tasks".
              if (checkpoint_store_->Preloaded(t)) {
                restart_restored[static_cast<size_t>(t)] = 1;
                restart_restore_cost[static_cast<size_t>(t)] =
                    checkpoint->cost;
              }
              RestoreReduceContext(&ctx, *checkpoint);
              if (checkpoint_restore_) {
                checkpoint_restore_(t, checkpoint->driver_state.get());
              }
              checkpoint_store_->NoteRestore(t);
              attempt_base[static_cast<size_t>(t)] = checkpoint->cost;
              attempt_skip[static_cast<size_t>(t)] = checkpoint->groups;
              // Wall-clock restore mark, recorded live from the worker
              // thread (the simulated backend's scheduler emits its own).
              if (threaded && cluster.trace != nullptr) {
                TraceSpan span;
                span.kind = SpanKind::kCheckpointRestore;
                span.phase = TaskPhase::kReduce;
                span.pid = cluster.trace->current_pid();
                span.task = t;
                span.machine = -1;
                span.slot = ThreadPool::CurrentWorker();
                span.start = wall->Now();
                span.end = span.start;
                span.cost_units = checkpoint->cost;
                cluster.trace->RecordSpan(span);
              }
            } else {
              ResetReduceContext(&ctx);
              if (checkpointing() && checkpoint_restore_) {
                checkpoint_restore_(t, nullptr);
              }
              attempt_base[static_cast<size_t>(t)] = 0.0;
              attempt_skip[static_cast<size_t>(t)] = 0;
            }
            reduce_attempt_bases[static_cast<size_t>(t)].push_back(
                attempt_base[static_cast<size_t>(t)]);
          },
          [this, &map_outputs, &reduce_fn, &reduce_ctx, &attempt_base,
           &attempt_skip, &gather_stats, &wall, &cluster,
           threaded](const TaskAttemptRunner::Attempt& attempt) {
            ReduceContext& ctx = reduce_ctx[static_cast<size_t>(attempt.task)];
            RunReduceAttempt(map_outputs, reduce_fn, &ctx, attempt,
                             attempt_skip[static_cast<size_t>(attempt.task)],
                             &gather_stats[static_cast<size_t>(attempt.task)],
                             wall.get(),
                             threaded ? cluster.trace : nullptr);
            // Incremental cost: with a restored checkpoint, only the work
            // past the boundary counts as this attempt's duration.
            return TaskAttemptRunner::BodyOutcome{
                ctx.clock_.units() -
                    attempt_base[static_cast<size_t>(attempt.task)],
                false};
          },
          [this, &reduce_ctx, &reduce_replayed](TaskPhase phase, int t,
                                                int att) {
            // The retry repeats everything past the last checkpoint (from
            // scratch without one) — the measurable price of the failure.
            const ReduceContext& ctx = reduce_ctx[static_cast<size_t>(t)];
            const TaskCheckpoint* checkpoint =
                checkpointing() ? checkpoint_store_->Latest(t) : nullptr;
            const int64_t kept =
                checkpoint != nullptr ? checkpoint->records_in : 0;
            reduce_replayed[static_cast<size_t>(t)] +=
                std::max<int64_t>(0, ctx.stats_.records_in - kept);
            if (task_abort_) task_abort_(phase, t, att);
          });

      if (threaded) wall->EndPhase(TaskPhase::kReduce);

      reduce_runner.MergeFaultCounters(&result.counters);
      const int doomed_reduce = reduce_runner.FirstDoomed();
      if (doomed_reduce >= 0 && control.allow_degraded) {
        // Degraded mode: quarantine, restoring each doomed task's
        // checkpointed prefix, and keep the job alive.
        for (const int t : reduce_runner.DoomedTasks()) quarantine_reduce(t);
      } else if (doomed_reduce >= 0) {
        result.failed = true;
        result.error = reduce_runner.DoomedError(doomed_reduce);
      }
      if (!result.failed) {
        // A gather that could not read its spill runs back (unreadable or
        // corrupt files) fails the job with the labelled error, like any
        // other data-plane fault — or, degraded, quarantines the task.
        for (int t = 0; t < num_reduce_tasks_; ++t) {
          const std::string& gather_error =
              gather_stats[static_cast<size_t>(t)].error;
          if (gather_error.empty()) continue;
          if (control.allow_degraded) {
            if (!reduce_affected[static_cast<size_t>(t)]) {
              quarantine_reduce(t);
            }
            continue;
          }
          result.failed = true;
          result.error =
              "reduce task " + std::to_string(t) + ": " + gather_error;
          break;
        }
      }
      if (!result.failed) {
        // Reduce tasks whose winning gather ran the k-way external merge,
        // reconciled against the kSpillMerge trace spans (one per task).
        int64_t merge_passes = 0;
        for (int t = 0; t < num_reduce_tasks_; ++t) {
          if (gather_stats[static_cast<size_t>(t)].runs_merged > 0) {
            ++merge_passes;
          }
        }
        if (merge_passes > 0) {
          result.counters.Increment("mr.spill.merge_passes", merge_passes);
        }
      }

      }  // if (!wall_expired): reduce phase
      // (Stats, counters & outputs are collected after the timing model and
      // the supervisor's deadline enforcement — a cut task's context must
      // hold exactly its restored prefix when it is read.)
    }

    // ---- Checkpoint & replay bookkeeping ----
    {
      int64_t replayed = 0;
      for (const int64_t r : reduce_replayed) replayed += r;
      if (replayed > 0) {
        result.counters.Increment("mr.recovery.replayed_pairs", replayed);
      }
      if (checkpointing() && checkpoint_store_->saved() > 0) {
        result.counters.Increment("mr.checkpoint.saved",
                                  checkpoint_store_->saved());
      }
      if (checkpointing() && checkpoint_store_->restored() > 0) {
        result.counters.Increment("mr.checkpoint.restored",
                                  checkpoint_store_->restored());
      }
      if (checkpointing()) {
        int64_t restored_tasks = 0;
        for (const char flag : restart_restored) restored_tasks += flag;
        if (restored_tasks > 0) {
          result.counters.Increment("mr.restart.restored_tasks",
                                    restored_tasks);
        }
        if (checkpoint_store_->corrupt_checkpoints() > 0) {
          result.counters.Increment("mr.restart.corrupt_checkpoints",
                                    checkpoint_store_->corrupt_checkpoints());
        }
      }
    }

    // ---- Simulated timing (failed attempts, retries, machine faults) ----
    AttemptScheduleOutcome map_schedule = ScheduleTaskAttemptsOnCluster(
        map_runner.attempt_costs(),
        phase_options(TaskPhase::kMap, map_speeds,
                      cluster.map_slots_per_machine, submit_time,
                      map_runner));
    MergeRecoveryCounters(map_schedule, &result.counters);
    result.timing.map_attempts = std::move(map_schedule.attempts);
    result.timing.map_end = map_schedule.end_time;
    if (map_schedule.failed && !result.failed) {
      FailOnLostCluster(&result, TaskPhase::kMap, map_schedule.failed_task);
      result.timing.end = map_schedule.end_time;
      stamp_wall_trace();
      finish_wall();
      return result;
    }

    // Spill-run write marks at the winning map attempts' ends: zero-
    // duration children, one per run, carrying its volume — reconciled
    // against the "mr.spill.*" counters. (Simulated backend; the threaded
    // backend stamps the same marks on the wall clock in stamp_wall_trace.)
    if (!threaded && cluster.trace != nullptr && !result.failed) {
      for (const TaskAttemptTiming& a : result.timing.map_attempts) {
        if (!a.won) continue;
        for (const SpillRun& run :
             map_ctx[static_cast<size_t>(a.task)].output_.spill_runs()) {
          TraceSpan span;
          span.kind = SpanKind::kSpillWrite;
          span.phase = TaskPhase::kMap;
          span.pid = cluster.trace->current_pid();
          span.task = a.task;
          span.attempt = a.attempt;
          span.machine = a.slot / cluster.map_slots_per_machine;
          span.slot = a.slot;
          span.start = a.end;
          span.end = a.end;
          span.records_in = run.records;
          span.bytes = run.bytes;
          cluster.trace->RecordSpan(span);
        }
        // One zero-duration retry mark per transient spill-write retry the
        // task survived — reconciles with "mr.disk.retries".
        for (int64_t i = 0;
             i < disk_totals[static_cast<size_t>(a.task)].retries; ++i) {
          TraceSpan span;
          span.kind = SpanKind::kSpillRetry;
          span.phase = TaskPhase::kMap;
          span.pid = cluster.trace->current_pid();
          span.task = a.task;
          span.attempt = a.attempt;
          span.machine = a.slot / cluster.map_slots_per_machine;
          span.slot = a.slot;
          span.start = a.end;
          span.end = a.end;
          cluster.trace->RecordSpan(span);
        }
      }
      // Corrupt spill runs surface at the map barrier, where the CRC
      // validation pass reads them back — reconciles with
      // "mr.disk.corrupt_runs".
      for (const CorruptRunEvent& event : corrupt_run_events) {
        int slot = -1;
        int attempt = 0;
        for (const TaskAttemptTiming& a : result.timing.map_attempts) {
          if (a.won && a.task == event.task) {
            slot = a.slot;
            attempt = a.attempt;
            break;
          }
        }
        TraceSpan span;
        span.kind = SpanKind::kRunCorrupt;
        span.phase = TaskPhase::kMap;
        span.pid = cluster.trace->current_pid();
        span.task = event.task;
        span.attempt = attempt;
        span.machine =
            slot >= 0 ? slot / cluster.map_slots_per_machine : -1;
        span.slot = slot;
        span.start = result.timing.map_end;
        span.end = result.timing.map_end;
        span.records_in = event.records;
        span.bytes = event.bytes;
        cluster.trace->RecordSpan(span);
      }
    }

    // Data-plane fault instants, timestamped off the map schedule: checksum
    // errors surface at the map/reduce barrier (when fetches happen), and a
    // quarantine takes effect when the task's winning attempt first skips
    // the record. The threaded backend records the same instants on the
    // wall clock instead (stamp_wall_trace).
    if (!threaded && cluster.trace != nullptr) {
      for (const auto& [r, m] : corrupt_events) {
        TraceInstant instant;
        instant.kind = InstantKind::kShuffleCorruption;
        instant.phase = TaskPhase::kReduce;
        instant.pid = cluster.trace->current_pid();
        instant.time = result.timing.map_end;
        instant.task = r;
        instant.peer_task = m;
        cluster.trace->RecordInstant(instant);
      }
      for (const QuarantinedRecord& q : result.quarantined) {
        TraceInstant instant;
        instant.kind = InstantKind::kRecordQuarantined;
        instant.phase = TaskPhase::kMap;
        instant.pid = cluster.trace->current_pid();
        instant.time =
            map_schedule.winning_starts[static_cast<size_t>(q.task)];
        instant.task = q.task;
        instant.record = q.record;
        cluster.trace->RecordInstant(instant);
      }
    }

    AttemptScheduleOptions reduce_options = phase_options(
        TaskPhase::kReduce, reduce_speeds, cluster.reduce_slots_per_machine,
        result.timing.map_end, reduce_runner);
    reduce_options.attempt_bases = std::move(reduce_attempt_bases);
    reduce_options.fetch_stall_seconds = std::move(fetch_stalls);
    // Degraded-mode placement: machine loss that leaves reduce tasks
    // unplaceable quarantines them (below) instead of failing the job.
    reduce_options.tolerate_unplaced = control.allow_degraded;
    if (checkpointing()) {
      reduce_options.recovery_points.resize(
          static_cast<size_t>(num_reduce_tasks_));
      for (int t = 0; t < num_reduce_tasks_; ++t) {
        reduce_options.recovery_points[static_cast<size_t>(t)] =
            checkpoint_store_->RecoveryPoints(t);
      }
    }
    AttemptScheduleOutcome reduce_schedule;
    if (!wall_expired) {
      reduce_schedule = ScheduleTaskAttemptsOnCluster(
          reduce_runner.attempt_costs(), reduce_options);
      MergeRecoveryCounters(reduce_schedule, &result.counters);
      result.timing.reduce_attempts = std::move(reduce_schedule.attempts);
      result.timing.reduce_start = std::move(reduce_schedule.winning_starts);
      result.timing.end = reduce_schedule.end_time;
      if (reduce_schedule.failed && !result.failed) {
        FailOnLostCluster(&result, TaskPhase::kReduce,
                          reduce_schedule.failed_task);
        stamp_wall_trace();
        finish_wall();
        return result;
      }
    } else {
      // Past the wall deadline no reduce attempt ever started: the job
      // finalizes at the map barrier and every reduce task is cancelled.
      result.timing.reduce_start.assign(
          static_cast<size_t>(num_reduce_tasks_), result.timing.map_end);
      result.timing.end = result.timing.map_end;
      for (int t = 0; t < num_reduce_tasks_; ++t) {
        TaskReport& report = reduce_report[static_cast<size_t>(t)];
        report.phase = TaskPhase::kReduce;
        report.task = t;
        report.kind = TaskOutcomeKind::kCancelled;
        report.records_total = gathered_total(t);
        report.records_covered = 0;
        report.covered_fraction = 0.0;
        reduce_affected[static_cast<size_t>(t)] = 1;
        supervisor_events.push_back({SpanKind::kDeadlineCancel,
                                     TaskPhase::kReduce, t, -1, 0.0,
                                     result.timing.map_end});
      }
    }

    // ---- Job supervision: deadline enforcement, best-effort finalization ----
    // The simulated deadline is enforced post-hoc on the results clock —
    // identical under both backends, since the threaded backend computes
    // the same simulated timeline. Without allow_degraded an overrun is a
    // clean labelled failure; with it, each late reduce task is cut back to
    // its last checkpoint at or below the progress the deadline allowed
    // (cancelled outright without one) and the job finalizes at the
    // deadline.
    if (!result.failed && control.deadline_seconds > 0.0 &&
        result.timing.end > control.deadline_seconds &&
        !control.allow_degraded) {
      result.failed = true;
      result.error = "job deadline exceeded: finished at " +
                     std::to_string(result.timing.end) + "s > deadline " +
                     std::to_string(control.deadline_seconds) + "s";
      stamp_wall_trace();
      finish_wall();
      return result;
    }
    if (!result.failed && supervisor.active()) {
      for (const int t : reduce_schedule.unplaced_tasks) {
        if (!reduce_affected[static_cast<size_t>(t)]) quarantine_reduce(t);
      }
      if (control.deadline_seconds > 0.0) {
        const double deadline = control.deadline_seconds;
        for (const TaskAttemptTiming& a : result.timing.reduce_attempts) {
          if (!a.won || a.end <= deadline) continue;
          const int t = a.task;
          if (reduce_affected[static_cast<size_t>(t)]) continue;
          // Progress the deadline allowed: the winning attempt advances
          // from its restored base at its slot's speed. (A mid-attempt
          // machine-kill resume point is above the base — the cut then
          // restores an earlier checkpoint: conservative, still
          // deterministic.)
          const auto& bases =
              reduce_options.attempt_bases[static_cast<size_t>(t)];
          const double base = bases.empty() ? 0.0 : bases.back();
          const double speed =
              a.slot >= 0 && a.slot < static_cast<int>(reduce_speeds.size())
                  ? reduce_speeds[static_cast<size_t>(a.slot)]
                  : 1.0;
          const double start =
              result.timing.reduce_start[static_cast<size_t>(t)];
          const double cut_cost =
              base + std::max(0.0, deadline - start) * speed /
                         cluster.seconds_per_cost_unit;
          ReduceContext& ctx = reduce_ctx[static_cast<size_t>(t)];
          TaskReport& report = reduce_report[static_cast<size_t>(t)];
          report.phase = TaskPhase::kReduce;
          report.task = t;
          report.records_total = ctx.stats_.records_in;
          const TaskCheckpoint* ck =
              checkpointing()
                  ? checkpoint_store_->LatestAtOrBelow(t, cut_cost)
                  : nullptr;
          if (ck != nullptr) {
            RestoreReduceContext(&ctx, *ck);
            if (checkpoint_restore_) {
              checkpoint_restore_(t, ck->driver_state.get());
            }
            ctx.stats_.cost = ck->cost;
            report.kind = TaskOutcomeKind::kCut;
            report.records_covered = ck->records_in;
          } else {
            ResetReduceContext(&ctx);
            if (checkpointing() && checkpoint_restore_) {
              checkpoint_restore_(t, nullptr);
            }
            report.kind = TaskOutcomeKind::kCancelled;
            report.records_covered = 0;
          }
          report.covered_fraction =
              report.records_total > 0
                  ? static_cast<double>(report.records_covered) /
                        static_cast<double>(report.records_total)
                  : 0.0;
          reduce_affected[static_cast<size_t>(t)] = 1;
          supervisor_events.push_back(
              {SpanKind::kDeadlineCancel, TaskPhase::kReduce, t, -1,
               ck != nullptr ? ck->cost : 0.0, deadline});
        }
        // The job finalizes at the deadline: everything past it was
        // cancelled. (Reaching here with an overrun implies
        // allow_degraded — the fail-fast branch above returned otherwise.)
        if (result.timing.end > deadline) result.timing.end = deadline;
      }
    }

    if (!result.failed) {
      // ---- Collect stats, counters & outputs ----
      for (MapContext& ctx : map_ctx) {
        result.map_stats.push_back(ctx.stats_);
        result.counters.MergeFrom(ctx.counters_);
      }
      for (ReduceContext& ctx : reduce_ctx) {
        result.reduce_stats.push_back(ctx.stats_);
        result.counters.MergeFrom(ctx.counters_);
        for (auto& kv : ctx.outputs_) result.outputs.push_back(std::move(kv));
      }
    }

    // ---- Completeness report, supervisor counters & spans ----
    // Counters and spans are derived from the same event list, so
    // "mr.supervisor.*" reconciles 1:1 against the supervisor span kinds by
    // construction; zero counters stay absent, as everywhere.
    if (!result.failed && supervisor.active()) {
      CompletenessReport& completeness = result.completeness;
      for (int t = 0; t < num_map_tasks_; ++t) {
        if (map_affected[static_cast<size_t>(t)]) {
          completeness.tasks.push_back(map_report[static_cast<size_t>(t)]);
        }
      }
      for (int t = 0; t < num_reduce_tasks_; ++t) {
        if (reduce_affected[static_cast<size_t>(t)]) {
          completeness.tasks.push_back(reduce_report[static_cast<size_t>(t)]);
        } else {
          const int64_t records =
              result.reduce_stats[static_cast<size_t>(t)].records_in;
          completeness.records_total += records;
          completeness.records_covered += records;
        }
      }
      for (const TaskReport& report : completeness.tasks) {
        completeness.records_total += report.records_total;
        completeness.records_covered += report.records_covered;
      }
      completeness.covered_fraction =
          completeness.records_total > 0
              ? static_cast<double>(completeness.records_covered) /
                    static_cast<double>(completeness.records_total)
              : 1.0;
      completeness.degraded = !completeness.tasks.empty();
      for (const SupervisorEvent& event : supervisor_events) {
        switch (event.kind) {
          case SpanKind::kDeadlineCancel:
            ++completeness.deadline_cancels;
            break;
          case SpanKind::kTaskQuarantine:
            ++completeness.quarantined_tasks;
            break;
          case SpanKind::kBreakerTrip:
            ++completeness.breaker_trips;
            break;
          default:
            break;
        }
      }
      completeness.retries_denied = supervisor.retries_denied();
      const auto spend = [&result](const char* name, int64_t value) {
        if (value > 0) result.counters.Increment(name, value);
      };
      spend("mr.supervisor.deadline_cancels", completeness.deadline_cancels);
      spend("mr.supervisor.quarantined_tasks",
            completeness.quarantined_tasks);
      spend("mr.supervisor.breaker_trips", completeness.breaker_trips);
      spend("mr.supervisor.retries_denied", completeness.retries_denied);
      spend("mr.supervisor.retry_spend.task",
            result.counters.Get("mr.failed_attempts"));
      spend("mr.supervisor.retry_spend.machine",
            result.counters.Get("mr.faults.machine_lost"));
      spend("mr.supervisor.retry_spend.disk",
            result.counters.Get("mr.disk.retries") +
                result.counters.Get("mr.disk.map_reruns"));
      spend("mr.supervisor.retry_spend.data",
            result.counters.Get("mr.shuffle.refetches") +
                result.counters.Get("mr.shuffle.map_reruns"));
      if (cluster.trace != nullptr) {
        // Simulated anchors: a breaker trips at submission, a quarantine
        // marks its task's last attempt, a deadline cancel spans the cut
        // point to the work it threw away. The threaded backend anchors the
        // same spans on its wall clock instead (counts match either way —
        // reconciliation tests count span kinds).
        const auto win_end_of = [&result](TaskPhase phase, int task) {
          const auto& attempts = phase == TaskPhase::kMap
                                     ? result.timing.map_attempts
                                     : result.timing.reduce_attempts;
          for (const TaskAttemptTiming& a : attempts) {
            if (a.won && a.task == task) return a.end;
          }
          return result.timing.end;
        };
        const int pid = cluster.trace->current_pid();
        for (const SupervisorEvent& event : supervisor_events) {
          TraceSpan span;
          span.kind = event.kind;
          span.phase = event.phase;
          span.pid = pid;
          span.task = event.task;
          span.machine = -1;
          span.slot = -1;
          span.domain = event.domain;
          span.cost_units = event.cost;
          if (threaded) {
            double anchor = 0.0;
            if (event.kind != SpanKind::kBreakerTrip) {
              WallAttempt winner;
              anchor = wall->WinningAttempt(event.phase, event.task, &winner)
                           ? winner.end
                           : wall->phase_end(event.phase);
            }
            span.start = anchor;
            span.end = anchor;
          } else if (event.kind == SpanKind::kBreakerTrip) {
            span.start = submit_time;
            span.end = submit_time;
          } else if (event.kind == SpanKind::kTaskQuarantine) {
            span.start = win_end_of(event.phase, event.task);
            span.end = span.start;
          } else {
            span.start = event.deadline;
            span.end = std::max(event.deadline,
                                win_end_of(event.phase, event.task));
          }
          cluster.trace->RecordSpan(span);
        }
      }
    }

    // Shuffle delivery marks: each winning reduce attempt starts by pulling
    // its sorted input — a zero-duration child span carrying the volume.
    // (Simulated backend only; the threaded backend marks deliveries at the
    // winning attempts' wall starts in stamp_wall_trace.)
    if (!threaded && cluster.trace != nullptr && !result.failed) {
      for (const TaskAttemptTiming& a : result.timing.reduce_attempts) {
        if (!a.won) continue;
        TraceSpan span;
        span.kind = SpanKind::kShuffle;
        span.phase = TaskPhase::kReduce;
        span.pid = cluster.trace->current_pid();
        span.task = a.task;
        span.attempt = a.attempt;
        span.machine = a.slot / cluster.reduce_slots_per_machine;
        span.slot = a.slot;
        span.start = a.start;
        span.end = a.start;
        span.records_in =
            result.reduce_stats[static_cast<size_t>(a.task)].records_in;
        cluster.trace->RecordSpan(span);
        const auto& gs = gather_stats[static_cast<size_t>(a.task)];
        if (gs.runs_merged > 0) {
          TraceSpan merge;
          merge.kind = SpanKind::kSpillMerge;
          merge.phase = TaskPhase::kReduce;
          merge.pid = cluster.trace->current_pid();
          merge.task = a.task;
          merge.attempt = a.attempt;
          merge.machine = a.slot / cluster.reduce_slots_per_machine;
          merge.slot = a.slot;
          merge.start = a.start;
          merge.end = a.start;
          merge.records_in = gs.spilled_records;
          merge.bytes = gs.spilled_bytes;
          cluster.trace->RecordSpan(merge);
        }
        // A task resumed from a previous process's persisted snapshot marks
        // the restore at its winning attempt's start — reconciles with
        // "mr.restart.restored_tasks".
        if (restart_restored[static_cast<size_t>(a.task)]) {
          TraceSpan span;
          span.kind = SpanKind::kRestartRestore;
          span.phase = TaskPhase::kReduce;
          span.pid = cluster.trace->current_pid();
          span.task = a.task;
          span.attempt = a.attempt;
          span.machine = a.slot / cluster.reduce_slots_per_machine;
          span.slot = a.slot;
          span.start = a.start;
          span.end = a.start;
          span.cost_units =
              restart_restore_cost[static_cast<size_t>(a.task)];
          cluster.trace->RecordSpan(span);
        }
      }
    }

    MergeSpeculationCounters(result.timing, &result.counters);
    stamp_wall_trace();
    finish_wall();
    // A finished job must not be resumable: drop its persisted snapshots.
    if (checkpointing() && checkpoint_store_->persistent() &&
        !result.failed) {
      checkpoint_store_->CleanupPersisted();
    }
    return result;
  }

 private:
  void ResetMapContext(MapContext* ctx) {
    ctx->clock_.Reset();
    ctx->counters_ = Counters();
    ctx->stats_ = TaskStats();
    ctx->output_.Reset(shuffle_, ctx->task_id_);
  }

  void ResetReduceContext(ReduceContext* ctx) {
    ctx->clock_.Reset();
    ctx->counters_ = Counters();
    ctx->stats_ = TaskStats();
    ctx->outputs_.clear();
  }

  bool checkpointing() const {
    return checkpoint_store_ != nullptr && checkpoint_alpha_ > 0.0;
  }

  // Rewinds a reduce context to a saved snapshot: clock re-charged to the
  // boundary cost, counters/stats replaced, outputs truncated to the
  // boundary's length (everything before the boundary was already emitted
  // identically — determinism makes the prefix byte-equal).
  void RestoreReduceContext(ReduceContext* ctx,
                            const TaskCheckpoint& checkpoint) {
    ctx->clock_.Reset();
    ctx->clock_.Charge(checkpoint.cost);
    ctx->counters_ = checkpoint.counters;
    ctx->stats_ = TaskStats();
    ctx->stats_.records_in = checkpoint.records_in;
    ctx->stats_.pairs_out = checkpoint.pairs_out;
    if (ctx->outputs_.size() < checkpoint.outputs &&
        !checkpoint.encoded_outputs.empty()) {
      // A snapshot loaded from disk by a restarted process: the live
      // context never held the outputs, so decode the persisted copy.
      ctx->outputs_.clear();
      const std::string_view view(checkpoint.encoded_outputs);
      size_t offset = 0;
      while (offset < view.size()) {
        K key;
        V value;
        if (!KvCodec<K>::Decode(view, &offset, &key) ||
            !KvCodec<V>::Decode(view, &offset, &value)) {
          break;
        }
        ctx->outputs_.emplace_back(std::move(key), std::move(value));
      }
    }
    if (ctx->outputs_.size() > checkpoint.outputs) {
      ctx->outputs_.erase(
          ctx->outputs_.begin() +
              static_cast<std::ptrdiff_t>(checkpoint.outputs),
          ctx->outputs_.end());
    }
  }

  // Snapshots the task after a group if its clock crossed into a new
  // alpha-window (the progressive emission boundary) since the last saved
  // snapshot. The store ignores non-advancing saves, so a resumed attempt
  // re-crossing an old boundary is a no-op. Under the threaded backend
  // (`wall` and `wall_trace` non-null) each save is marked on the wall
  // clock live from the worker thread that took it.
  void MaybeCheckpoint(ReduceContext* ctx, int64_t groups_done,
                       ThreadedExecutor* wall, TraceRecorder* wall_trace) {
    if (!checkpointing()) return;
    const int task = ctx->task_id_;
    const double units = ctx->clock_.units();
    const TaskCheckpoint* latest = checkpoint_store_->Latest(task);
    const double last = latest != nullptr ? latest->cost : 0.0;
    if (units <= last) return;
    if (std::floor(units / checkpoint_alpha_) <=
        std::floor(last / checkpoint_alpha_)) {
      return;
    }
    TaskCheckpoint checkpoint;
    checkpoint.cost = units;
    checkpoint.groups = groups_done;
    checkpoint.records_in = ctx->stats_.records_in;
    checkpoint.pairs_out = ctx->stats_.pairs_out;
    checkpoint.outputs = ctx->outputs_.size();
    checkpoint.counters = ctx->counters_;
    if (checkpoint_store_->persistent()) {
      // A restarted process can't reuse this context's live outputs, so a
      // persisted snapshot carries an encoded copy of them.
      for (const auto& kv : ctx->outputs_) {
        KvCodec<K>::Encode(kv.first, &checkpoint.encoded_outputs);
        KvCodec<V>::Encode(kv.second, &checkpoint.encoded_outputs);
      }
    }
    if (checkpoint_save_) checkpoint.driver_state = checkpoint_save_(task);
    checkpoint_store_->Save(task, std::move(checkpoint));
    if (wall != nullptr && wall_trace != nullptr) {
      TraceSpan span;
      span.kind = SpanKind::kCheckpointSave;
      span.phase = TaskPhase::kReduce;
      span.pid = wall_trace->current_pid();
      span.task = task;
      span.machine = -1;
      span.slot = ThreadPool::CurrentWorker();
      span.start = wall->Now();
      span.end = span.start;
      span.cost_units = units;
      wall_trace->RecordSpan(span);
    }
  }

  // Runs one reduce-task attempt: gather/merge via the shuffle (decoding
  // never consumes the map-side blocks or spill files, so a failing or
  // hanging attempt leaves everything intact for the retry; a cut attempt
  // stops at the group boundary past its cutoff fraction of the input
  // pairs), then one reduce call per group; the winning attempt runs
  // cleanup. A resumed attempt skips the `skip_groups` groups its restored
  // checkpoint already covers. `gather_stats` receives the attempt's merge
  // accounting (the winner's values are the ones the job reports).
  void RunReduceAttempt(
      std::vector<typename JobShuffle::MapOutput*>& map_outputs,
      const ReduceFn& reduce_fn, ReduceContext* ctx,
      const TaskAttemptRunner::Attempt& attempt, int64_t skip_groups,
      typename JobShuffle::GatherStats* gather_stats, ThreadedExecutor* wall,
      TraceRecorder* wall_trace) {
    const bool cut = attempt.fails || attempt.hangs;
    std::vector<std::pair<K, V>> pairs =
        shuffle_.GatherSorted(map_outputs, attempt.task, gather_stats);
    const size_t limit =
        cut ? static_cast<size_t>(
                  static_cast<double>(pairs.size()) *
                  (attempt.fails ? attempt.fail_point : attempt.hang_point))
            : pairs.size() + 1;

    if (reduce_setup_) reduce_setup_(attempt.task);
    int64_t group_index = 0;
    JobShuffle::ForEachGroup(
        &pairs, limit, [&](const K& key, std::vector<V>* values) {
          const int64_t group = group_index++;
          if (group < skip_groups) return;
          ctx->stats_.records_in += static_cast<int64_t>(values->size());
          reduce_fn(key, values, ctx);
          MaybeCheckpoint(ctx, group + 1, wall, wall_trace);
        });
    if (!cut) {
      if (reduce_cleanup_) reduce_cleanup_(ctx);
      ctx->stats_.cost = ctx->clock_.units();
    }
  }

  // Clean job failure when a task ran out of machines to run on: keeps the
  // "mr." bookkeeping but scrubs user-visible data, which Result documents
  // as unspecified on failure.
  void FailOnLostCluster(Result* result, TaskPhase phase, int task) {
    result->failed = true;
    result->error =
        std::string(phase == TaskPhase::kMap ? "map" : "reduce") + " task " +
        std::to_string(task) + " lost: no healthy machines remain";
    result->outputs.clear();
    result->map_stats.clear();
    result->reduce_stats.clear();
    Counters scrubbed;
    for (const auto& [name, value] : result->counters.values()) {
      if (name.rfind("mr.", 0) == 0) scrubbed.Increment(name, value);
    }
    result->counters = std::move(scrubbed);
  }

  int num_map_tasks_;
  int num_reduce_tasks_;
  JobShuffle shuffle_;
  double map_cost_per_record_ = 1.0;
  SetupFn map_setup_;
  SetupFn reduce_setup_;
  ReduceCleanupFn reduce_cleanup_;
  TaskAbortFn task_abort_;
  bool poison_faults_ = false;
  double checkpoint_alpha_ = 0.0;
  CheckpointStore* checkpoint_store_ = nullptr;
  SaveStateFn checkpoint_save_;
  RestoreStateFn checkpoint_restore_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_JOB_H_

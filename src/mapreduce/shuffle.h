#ifndef PROGRES_MAPREDUCE_SHUFFLE_H_
#define PROGRES_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mapreduce/serde.h"

namespace progres {

// The shuffle of one MapReduce job as a first-class component: it owns the
// partition function, the map-side spill buffers (one bucket per reduce
// partition), the optional combiner, and the reduce-side gather/sort/group
// merge. MapReduceJob composes a Shuffle with the task-attempt runner and
// the timing model; tests can exercise the shuffle in isolation.
//
// The component also *accounts* for the data crossing it: MeasureVolume
// reports the post-combine record count of a map task's output, and — when
// a wire-size function is configured — the serialized byte volume. The
// runtime exports these under the reserved "mr.shuffle.records" and
// "mr.shuffle.bytes" counters, which is what makes shuffle skew and the
// per-block vs per-tree emission trade-off directly measurable.
template <typename K, typename V>
class Shuffle {
 public:
  using KV = std::pair<K, V>;
  using PartitionFn = std::function<int(const K&, int num_partitions)>;
  // Combiner: reduces one map task's values for a key into replacement
  // pairs appended to `out` (local aggregation before the shuffle).
  using CombineFn =
      std::function<void(const K&, std::vector<V>*, std::vector<KV>*)>;
  // Wire size of one (key, value) pair under the job's serde encoding;
  // feeds the "mr.shuffle.bytes" accounting.
  using WireSizeFn = std::function<int64_t(const K&, const V&)>;

  explicit Shuffle(int num_partitions)
      : num_partitions_(std::max(1, num_partitions)),
        partition_([](const K& key, int r) {
          return static_cast<int>(std::hash<K>{}(key) %
                                  static_cast<size_t>(r));
        }) {}

  int num_partitions() const { return num_partitions_; }
  bool has_combiner() const { return static_cast<bool>(combiner_); }

  void set_partitioner(PartitionFn fn) { partition_ = std::move(fn); }
  void set_combiner(CombineFn fn) { combiner_ = std::move(fn); }
  void set_wire_size(WireSizeFn fn) { wire_size_ = std::move(fn); }

  // Map-side spill buffer of one map task. Reset discards a failed
  // attempt's pairs so the retry starts from scratch.
  class MapOutput {
   public:
    MapOutput() = default;

    void Reset(const Shuffle& shuffle) {
      shuffle_ = &shuffle;
      buckets_.clear();
      buckets_.resize(static_cast<size_t>(shuffle.num_partitions_));
    }

    // Routes one pair to its partition bucket.
    void Add(K key, V value) {
      const int r = shuffle_->partition_(key, shuffle_->num_partitions_);
      buckets_[static_cast<size_t>(r)].emplace_back(std::move(key),
                                                    std::move(value));
    }

   private:
    friend class Shuffle;
    const Shuffle* shuffle_ = nullptr;
    std::vector<std::vector<KV>> buckets_;
  };

  // Applies the combiner to every partition bucket of a finished map
  // attempt: values are grouped by key locally and replaced by the
  // combiner's output. No-op without a combiner.
  void Combine(MapOutput* out) const {
    if (!combiner_) return;
    for (auto& bucket : out->buckets_) {
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const KV& a, const KV& b) {
                         return a.first < b.first;
                       });
      std::vector<KV> combined;
      size_t i = 0;
      while (i < bucket.size()) {
        size_t j = i;
        while (j < bucket.size() && !(bucket[i].first < bucket[j].first)) ++j;
        std::vector<V> values;
        values.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          values.push_back(std::move(bucket[k].second));
        }
        combiner_(bucket[i].first, &values, &combined);
        i = j;
      }
      bucket = std::move(combined);
    }
  }

  // Post-combine shuffle volume of one map task's output: what actually
  // crosses the map/reduce boundary. `bytes` stays 0 without a wire-size
  // function.
  struct Volume {
    int64_t records = 0;
    int64_t bytes = 0;
  };
  Volume MeasureVolume(const MapOutput& out) const {
    Volume volume;
    for (const auto& bucket : out.buckets_) {
      volume.records += static_cast<int64_t>(bucket.size());
      if (wire_size_) {
        for (const KV& kv : bucket) {
          volume.bytes += wire_size_(kv.first, kv.second);
        }
      }
    }
    return volume;
  }

  // CRC32 of partition `r` of a finished map output — the checksum shipped
  // alongside the partition so the consuming reduce task can verify its
  // fetch. The runtime moves typed values rather than serialized bytes, so
  // the checksum covers the partition's *wire stream shape*: the varint
  // record count followed by each pair's wire size (0 without a wire-size
  // function). That is exactly the framing a length-prefixed transfer would
  // put on the wire, and any corruption model that flips the delivered
  // checksum is detected the same way Hadoop's IFile checksum detects
  // flipped payload bytes.
  uint32_t PartitionChecksum(const MapOutput& out, int r) const {
    const auto& bucket = out.buckets_[static_cast<size_t>(r)];
    std::string stream;
    PutVarint64(bucket.size(), &stream);
    for (const KV& kv : bucket) {
      const int64_t bytes =
          wire_size_ ? wire_size_(kv.first, kv.second) : 0;
      PutVarint64(static_cast<uint64_t>(bytes), &stream);
    }
    return Crc32(stream);
  }

  // Reduce-side merge: gathers partition `r` from every map output (in
  // map-task order, so the merge is deterministic), then sorts by key.
  // stable_sort keeps the map-task order among equal keys, mirroring
  // Hadoop's merge. With `copy` the buckets survive (a retried attempt
  // must replay them); move-only payloads cannot be replayed, so a copying
  // gather returns empty — the failing attempt then dies before touching
  // any input, which keeps retries correct.
  std::vector<KV> GatherSorted(std::vector<MapOutput*>& maps, int r,
                               bool copy) const {
    std::vector<KV> pairs;
    size_t total = 0;
    for (const MapOutput* m : maps) {
      total += m->buckets_[static_cast<size_t>(r)].size();
    }
    pairs.reserve(total);
    if (copy) {
      if constexpr (std::is_copy_constructible_v<K> &&
                    std::is_copy_constructible_v<V>) {
        for (const MapOutput* m : maps) {
          const auto& bucket = m->buckets_[static_cast<size_t>(r)];
          for (const auto& kv : bucket) pairs.push_back(kv);
        }
      }
    } else {
      for (MapOutput* m : maps) {
        auto& bucket = m->buckets_[static_cast<size_t>(r)];
        for (auto& kv : bucket) pairs.push_back(std::move(kv));
      }
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const KV& a, const KV& b) {
                       return a.first < b.first;
                     });
    return pairs;
  }

  // Invokes fn(key, &values) once per distinct key of the sorted `pairs`,
  // in key order, moving values out. Groups whose first pair sits at or
  // past `limit` are not visited — the injected-failure cutoff of a
  // failing reduce attempt.
  template <typename Fn>
  static void ForEachGroup(std::vector<KV>* pairs, size_t limit, Fn&& fn) {
    size_t i = 0;
    while (i < pairs->size()) {
      if (i >= limit) break;
      size_t j = i;
      while (j < pairs->size() &&
             !((*pairs)[i].first < (*pairs)[j].first)) {
        ++j;
      }
      std::vector<V> values;
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        values.push_back(std::move((*pairs)[k].second));
      }
      fn((*pairs)[i].first, &values);
      i = j;
    }
  }

 private:
  int num_partitions_;
  PartitionFn partition_;
  CombineFn combiner_;
  WireSizeFn wire_size_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_SHUFFLE_H_

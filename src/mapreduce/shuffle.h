#ifndef PROGRES_MAPREDUCE_SHUFFLE_H_
#define PROGRES_MAPREDUCE_SHUFFLE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "mapreduce/fault.h"
#include "mapreduce/serde.h"
#include "mapreduce/spill.h"

namespace progres {

// The shuffle of one MapReduce job as a first-class component: it owns the
// partition function, the map-side KV block buffers (one chain per reduce
// partition), the optional combiner, the spill-to-disk path that keeps a
// map task inside its memory budget, and the reduce-side gather/merge.
// MapReduceJob composes a Shuffle with the task-attempt runner and the
// timing model; tests can exercise the shuffle in isolation.
//
// Records are stored *encoded*: Emit serializes (key, value) through the
// KvCodec for K and V (serde.h) into fixed-size blocks, replacing the old
// per-partition std::vector<std::pair<K, V>>. When SpillConfig::enabled and
// a map task's buffered bytes cross its budget share, every partition is
// decoded, sorted (stably, by key), combined, re-encoded and appended to a
// spill-run file (spill.h); GatherSorted then k-way merges the runs with
// the sorted in-memory tail. The merge's tie-break — (map task, run order,
// memory last) — reproduces exactly the stable_sort order of the all-in-
// memory path, so outputs are byte-identical with spilling off or forced
// on.
//
// The component also *accounts* for the data crossing it: MeasureVolume
// reports the post-combine record count of a map task's output, and — when
// a wire-size function is configured — the serialized byte volume (without
// one, the actual encoded bytes). The runtime exports these under the
// reserved "mr.shuffle.records" and "mr.shuffle.bytes" counters, and the
// spill machinery under "mr.spill.*" (see counters.h).
template <typename K, typename V>
class Shuffle {
  static_assert(SerdeEncodable<K>,
                "Shuffle key type has no KvCodec specialization (serde.h); "
                "the encoded data plane cannot carry it");
  static_assert(SerdeEncodable<V>,
                "Shuffle value type has no KvCodec specialization (serde.h); "
                "the encoded data plane cannot carry it");

 public:
  using KV = std::pair<K, V>;
  using PartitionFn = std::function<int(const K&, int num_partitions)>;
  // Combiner: reduces one map task's values for a key into replacement
  // pairs appended to `out` (local aggregation before the shuffle).
  using CombineFn =
      std::function<void(const K&, std::vector<V>*, std::vector<KV>*)>;
  // Wire size of one (key, value) pair under the job's serde encoding;
  // feeds the "mr.shuffle.bytes" accounting. Optional — without it the
  // accounting falls back to the codecs' actual encoded size.
  using WireSizeFn = std::function<int64_t(const K&, const V&)>;

  // Memory policy of the map-side buffers, set by MapReduceJob::Run from
  // ClusterConfig::shuffle_budget. Disabled (the default) means buffers
  // grow without spilling — the reference in-memory behaviour.
  struct SpillConfig {
    bool enabled = false;
    // One map task's in-memory bound: the job-wide budget divided across
    // map tasks, floored at one block.
    int64_t task_buffer_bytes = 0;
    int64_t block_bytes = 256 * 1024;
    std::string dir;  // resolved, writable spill directory
    // Optional secondary spill directory (resolved). A map task whose
    // primary dir becomes unusable — planned ENOSPC, or a write-retry
    // budget exhausted — fails over here for the rest of the attempt
    // instead of failing the job. Empty means no fallback.
    std::string fallback_dir;
  };

  // Merge accounting of one GatherSorted call, reconciled against the
  // "mr.spill.merge_passes" counter and kSpillMerge trace spans.
  struct GatherStats {
    int64_t runs_merged = 0;      // spill-run segments fed into the merge
    int64_t spilled_records = 0;  // records read back from those segments
    int64_t spilled_bytes = 0;    // their encoded bytes
    std::string error;            // non-empty on spill read/decode failure
  };

  explicit Shuffle(int num_partitions)
      : num_partitions_(std::max(1, num_partitions)),
        partition_([](const K& key, int r) {
          // FNV-1a over the encoded key: stable across standard libraries
          // and platforms, unlike std::hash. (MapOutput::Add hashes the
          // already-encoded key bytes instead of calling this, skipping
          // the second Encode; this lambda serves direct callers.)
          std::string encoded;
          KvCodec<K>::Encode(key, &encoded);
          return static_cast<int>(Fnv1a64(encoded) %
                                  static_cast<uint64_t>(r));
        }) {}

  int num_partitions() const { return num_partitions_; }
  bool has_combiner() const { return static_cast<bool>(combiner_); }

  void set_partitioner(PartitionFn fn) {
    partition_ = std::move(fn);
    default_partitioner_ = false;
  }
  void set_combiner(CombineFn fn) { combiner_ = std::move(fn); }
  void set_wire_size(WireSizeFn fn) { wire_size_ = std::move(fn); }
  void set_spill(SpillConfig config) { spill_ = std::move(config); }
  const SpillConfig& spill_config() const { return spill_; }

  // Map-side buffer of one map task: per-partition chains of encoded KV
  // blocks, spilled to sorted runs when the task's budget share fills.
  // Reset discards a failed attempt's pairs — and deletes its spill files —
  // so the retry starts from scratch. The destructor removes any remaining
  // run files (winning outputs live until the job's map contexts die).
  class MapOutput {
   public:
    // Storage-fault tallies of one map attempt's spill writes, merged into
    // the "mr.disk.*" counters from winning attempts only (Reset discards a
    // failed attempt's, like every other per-attempt artifact).
    struct DiskStats {
      int64_t write_errors = 0;     // failed write tries (injected or real)
      int64_t retries = 0;          // retried tries (== kSpillRetry spans)
      int64_t enospc = 0;           // planned full-disk discoveries
      int64_t torn_writes = 0;      // runs truncated after a "success"
      int64_t dir_failovers = 0;    // primary -> fallback switches
      double backoff_seconds = 0;   // modeled retry backoff, accumulated
    };

    MapOutput() = default;
    MapOutput(const MapOutput&) = delete;
    MapOutput& operator=(const MapOutput&) = delete;
    ~MapOutput() { DeleteSpillFiles(); }

    void Reset(const Shuffle& shuffle) { Reset(shuffle, task_); }
    void Reset(const Shuffle& shuffle, int task) {
      shuffle_ = &shuffle;
      task_ = task;
      DeleteSpillFiles();
      runs_.clear();
      buckets_.clear();
      buckets_.resize(static_cast<size_t>(shuffle.num_partitions_));
      spill_crc_.assign(static_cast<size_t>(shuffle.num_partitions_), 0);
      mem_bytes_ = 0;
      spilled_volume_ = {};
      spill_error_.clear();
      fault_plan_ = nullptr;
      generation_ = 0;
      use_fallback_ = false;
      disk_stats_ = {};
    }

    // Arms (or, with a null plan, disarms) storage-fault injection for the
    // attempt about to run. `generation` numbers this execution of the task
    // — attempt retries and barrier-triggered re-runs each bump it — so
    // every execution draws fresh fault decisions and names its run files
    // uniquely (no collision with a stale file from a killed attempt).
    // Call after Reset: Reset clears the fault context.
    void ConfigureSpill(const FaultPlan* plan, int generation) {
      fault_plan_ = plan != nullptr && plan->HasDiskFaults() ? plan : nullptr;
      generation_ = generation;
    }

    // Starts this execution directly on the fallback spill dir — the disk
    // circuit breaker's global failover (supervisor.h): once one task has
    // discovered the primary dir full, later tasks skip the per-task
    // ENOSPC discovery and go straight to the fallback. Counts as a
    // dir_failover like the discovery path (false with no fallback
    // configured, leaving the sticky spill_error_). Call after
    // ConfigureSpill; only meaningful under job supervision.
    bool StartOnFallback() {
      if (use_fallback_) return true;
      return FailOver();
    }

    // Routes one pair to its partition's block chain, encoded. Crossing the
    // task's budget share triggers a spill.
    void Add(K key, V value) {
      scratch_.clear();
      KvCodec<K>::Encode(key, &scratch_);
      // The default partitioner is FNV-1a over the encoded key — hash the
      // bytes just written instead of encoding the key a second time.
      const int r =
          shuffle_->default_partitioner_
              ? static_cast<int>(
                    Fnv1a64(scratch_) %
                    static_cast<uint64_t>(shuffle_->num_partitions_))
              : shuffle_->partition_(key, shuffle_->num_partitions_);
      Bucket& bucket = buckets_[static_cast<size_t>(r)];
      KvCodec<V>::Encode(value, &scratch_);
      AppendEncoded(&bucket, scratch_);
      ++bucket.records;
      bucket.wire_bytes += shuffle_->wire_size_
                               ? shuffle_->wire_size_(key, value)
                               : static_cast<int64_t>(scratch_.size());
      if (shuffle_->spill_.enabled && spill_error_.empty() &&
          mem_bytes_ >= shuffle_->spill_.task_buffer_bytes) {
        Spill();
      }
    }

    // The sorted runs this task has spilled so far (winning attempts only —
    // Reset removed any failed attempt's).
    const std::vector<SpillRun>& spill_runs() const { return runs_; }
    // Encoded bytes currently buffered in memory.
    int64_t buffered_bytes() const { return mem_bytes_; }
    // Non-empty after a spill write failed; the job fails with it at the
    // map barrier (the buffered data stayed in memory, but the budget
    // contract is broken and the configuration needs fixing, not retrying).
    const std::string& spill_error() const { return spill_error_; }
    // Storage-fault tallies of this attempt's spill writes so far.
    const DiskStats& disk_stats() const { return disk_stats_; }
    // This execution's generation number (set by ConfigureSpill).
    int generation() const { return generation_; }

   private:
    friend class Shuffle;

    // One partition's buffered records: sealed blocks of at most
    // block_bytes each (records never straddle blocks) plus running
    // post-combine tallies for the volume accounting.
    struct Bucket {
      std::vector<std::string> blocks;
      int64_t records = 0;
      int64_t wire_bytes = 0;
    };

    void AppendEncoded(Bucket* bucket, std::string_view record) {
      const size_t cap = static_cast<size_t>(
          std::max<int64_t>(1, shuffle_->spill_.block_bytes));
      if (bucket->blocks.empty() ||
          bucket->blocks.back().size() + record.size() > cap) {
        bucket->blocks.emplace_back();
        bucket->blocks.back().reserve(std::min(cap, record.size() + cap / 2));
      }
      bucket->blocks.back().append(record.data(), record.size());
      mem_bytes_ += static_cast<int64_t>(record.size());
    }

    // Sorts, combines and writes every partition's buffered records as one
    // spill run, then resets the in-memory chains. On I/O failure the run
    // is dropped, the buffers stay, and spill_error_ carries the label.
    void Spill() {
      std::vector<std::string> payloads(
          static_cast<size_t>(shuffle_->num_partitions_));
      std::vector<int64_t> records(
          static_cast<size_t>(shuffle_->num_partitions_), 0);
      std::vector<typename Shuffle::Volume> volumes(
          static_cast<size_t>(shuffle_->num_partitions_));
      for (int r = 0; r < shuffle_->num_partitions_; ++r) {
        Bucket& bucket = buckets_[static_cast<size_t>(r)];
        std::vector<KV> pairs;
        std::string error;
        shuffle_->DecodeBucket(bucket, &pairs, &error);
        if (!error.empty()) {
          spill_error_ = error;
          return;
        }
        shuffle_->SortAndCombine(&pairs);
        std::string& payload = payloads[static_cast<size_t>(r)];
        for (const KV& kv : pairs) {
          KvCodec<K>::Encode(kv.first, &payload);
          KvCodec<V>::Encode(kv.second, &payload);
          volumes[static_cast<size_t>(r)].bytes +=
              shuffle_->wire_size_
                  ? shuffle_->wire_size_(kv.first, kv.second)
                  : 0;
        }
        if (!shuffle_->wire_size_) {
          volumes[static_cast<size_t>(r)].bytes =
              static_cast<int64_t>(payload.size());
        }
        volumes[static_cast<size_t>(r)].records =
            static_cast<int64_t>(pairs.size());
        records[static_cast<size_t>(r)] = static_cast<int64_t>(pairs.size());
      }
      SpillRun run;
      if (!WriteRunWithFaults(payloads, records, &run)) return;
      for (int r = 0; r < shuffle_->num_partitions_; ++r) {
        spill_crc_[static_cast<size_t>(r)] =
            Crc32(payloads[static_cast<size_t>(r)],
                  spill_crc_[static_cast<size_t>(r)]);
        spilled_volume_.records += volumes[static_cast<size_t>(r)].records;
        spilled_volume_.bytes += volumes[static_cast<size_t>(r)].bytes;
      }
      runs_.push_back(std::move(run));
      buckets_.clear();
      buckets_.resize(static_cast<size_t>(shuffle_->num_partitions_));
      mem_bytes_ = 0;
    }

    // Writes the run under the storage-fault discipline: a planned ENOSPC
    // on the task's first primary write fails the whole attempt over to the
    // fallback dir; transient write errors (injected by the plan, or real)
    // are retried with modeled backoff up to the plan's budget, exhaustion
    // failing over too; with no fallback available the attempt keeps the
    // existing sticky spill_error_ behaviour. After a successful *primary*
    // write the plan may materialize a torn write (truncated tail) or a
    // flipped byte — silent here, caught by ValidateSpillRun at the map
    // barrier. Fallback-dir writes are injection-free, so re-runs converge.
    // False when spill_error_ was set (the run is dropped, buffers stay).
    bool WriteRunWithFaults(const std::vector<std::string>& payloads,
                            const std::vector<int64_t>& records,
                            SpillRun* run) {
      const int run_index = static_cast<int>(runs_.size());
      const FaultPlan* plan = fault_plan_;
      if (!use_fallback_ && plan != nullptr &&
          plan->SpillPrimaryFull(task_)) {
        ++disk_stats_.enospc;
        if (!FailOver()) return false;
      }
      const int max_retries =
          plan != nullptr ? plan->max_spill_retries() : 0;
      int tries = 0;
      for (;;) {
        const bool injected_error =
            !use_fallback_ && plan != nullptr &&
            plan->SpillWriteError(task_, run_index, generation_, tries);
        const bool ok =
            !injected_error &&
            WriteSpillRun(NextSpillPath(dir(), task_, generation_), payloads,
                          records, run);
        if (ok) break;
        ++disk_stats_.write_errors;
        if (tries < max_retries) {
          ++tries;
          ++disk_stats_.retries;
          if (plan != nullptr) {
            disk_stats_.backoff_seconds += plan->spill_retry_backoff_seconds();
          }
          continue;
        }
        // Retry budget exhausted: this directory is unusable.
        if (!use_fallback_ && plan != nullptr) {
          if (!FailOver()) return false;
          tries = 0;
          continue;
        }
        spill_error_ = "spill write failed in " + dir() + " (map task " +
                       std::to_string(task_) + ")";
        return false;
      }
      if (!use_fallback_ && plan != nullptr && run->bytes > 0) {
        if (plan->SpillTornWrite(task_, run_index, generation_)) {
          if (TruncateSpillFile(run->path, run->bytes - 1)) {
            ++disk_stats_.torn_writes;
          }
        } else if (plan->SpillCorrupted(task_, run_index, generation_)) {
          CorruptSpillByte(
              run->path,
              static_cast<int64_t>(plan->SpillCorruptOffset(
                  task_, run_index, generation_,
                  static_cast<uint64_t>(run->bytes))));
        }
      }
      return true;
    }

    // Switches this attempt's remaining spill writes to the fallback dir.
    // Without one configured, sets the labelled sticky spill_error_.
    bool FailOver() {
      if (shuffle_->spill_.fallback_dir.empty()) {
        spill_error_ = "spill dir " + shuffle_->spill_.dir +
                       " unusable and no fallback spill dir configured "
                       "(map task " + std::to_string(task_) + ")";
        return false;
      }
      use_fallback_ = true;
      ++disk_stats_.dir_failovers;
      return true;
    }

    // The directory this attempt's next spill write targets.
    const std::string& dir() const {
      return use_fallback_ ? shuffle_->spill_.fallback_dir
                           : shuffle_->spill_.dir;
    }

    void DeleteSpillFiles() {
      for (const SpillRun& run : runs_) RemoveSpillFile(run.path);
      runs_.clear();
    }

    const Shuffle* shuffle_ = nullptr;
    int task_ = 0;
    std::vector<Bucket> buckets_;
    std::vector<SpillRun> runs_;
    // Per-partition CRC32 chained over the spilled segments, in run order;
    // PartitionChecksum continues it over the in-memory blocks.
    std::vector<uint32_t> spill_crc_;
    int64_t mem_bytes_ = 0;
    struct Volume {
      int64_t records = 0;
      int64_t bytes = 0;
    };
    Volume spilled_volume_;
    std::string spill_error_;
    std::string scratch_;
    // Storage-fault context of the current execution (see ConfigureSpill).
    const FaultPlan* fault_plan_ = nullptr;
    int generation_ = 0;
    bool use_fallback_ = false;
    DiskStats disk_stats_;
  };

  // Applies the combiner to every partition's *in-memory* records of a
  // finished map attempt (spilled runs were already combined when written):
  // values are grouped by key locally and replaced by the combiner's
  // output, re-encoded. No-op without a combiner.
  void Combine(MapOutput* out) const {
    if (!combiner_) return;
    for (auto& bucket : out->buckets_) {
      std::vector<KV> pairs;
      std::string error;
      DecodeBucket(bucket, &pairs, &error);
      if (!error.empty()) {
        if (out->spill_error_.empty()) out->spill_error_ = error;
        return;
      }
      SortAndCombine(&pairs);
      out->mem_bytes_ -= BucketBytes(bucket);
      bucket = typename MapOutput::Bucket{};
      std::string encoded;
      for (const KV& kv : pairs) {
        encoded.clear();
        KvCodec<K>::Encode(kv.first, &encoded);
        KvCodec<V>::Encode(kv.second, &encoded);
        out->AppendEncoded(&bucket, encoded);
        ++bucket.records;
        bucket.wire_bytes += wire_size_
                                 ? wire_size_(kv.first, kv.second)
                                 : static_cast<int64_t>(encoded.size());
      }
    }
  }

  // Post-combine shuffle volume of one map task's output — what actually
  // crosses the map/reduce boundary, spilled runs included. `bytes` uses
  // the wire-size function when set, the encoded size otherwise.
  struct Volume {
    int64_t records = 0;
    int64_t bytes = 0;
  };
  Volume MeasureVolume(const MapOutput& out) const {
    Volume volume;
    volume.records = out.spilled_volume_.records;
    volume.bytes = out.spilled_volume_.bytes;
    for (const auto& bucket : out.buckets_) {
      volume.records += bucket.records;
      volume.bytes += bucket.wire_bytes;
    }
    return volume;
  }

  // CRC32 of partition `r` of a finished map output — the checksum shipped
  // alongside the partition so the consuming reduce task can verify its
  // fetch. With the encoded data plane the checksum covers the partition's
  // actual byte stream: the spilled segments (chained in write order) and
  // then the buffered blocks — exactly what a length-prefixed transfer
  // would put on the wire, detecting flipped payload bytes the same way
  // Hadoop's IFile checksum does.
  uint32_t PartitionChecksum(const MapOutput& out, int r) const {
    uint32_t crc = out.spill_crc_[static_cast<size_t>(r)];
    for (const std::string& block :
         out.buckets_[static_cast<size_t>(r)].blocks) {
      crc = Crc32(block, crc);
    }
    return crc;
  }

  // Reduce-side merge: partition `r` from every map output, sorted by key.
  // Without spills this decodes the buffered blocks in map-task order and
  // stable_sorts — the reference order, where equal keys keep (map task,
  // emission order). With spills it k-way merges each task's runs (in run
  // order, each already sorted and internally stable) with its sorted
  // in-memory tail, tie-breaking on source order — which reproduces the
  // reference order bit for bit, because a task's runs hold earlier
  // emissions than its memory tail. Decoding never consumes the underlying
  // blocks or files, so a failed attempt's retry simply gathers again —
  // move-only payloads included (the old copying gather silently returned
  // empty for those; the codec path has no copy to refuse).
  std::vector<KV> GatherSorted(const std::vector<MapOutput*>& maps, int r,
                               GatherStats* stats = nullptr) const {
    GatherStats local;
    GatherStats& gs = stats != nullptr ? *stats : local;
    gs = GatherStats{};
    bool any_runs = false;
    for (const MapOutput* m : maps) {
      if (!m->runs_.empty()) any_runs = true;
    }
    std::vector<KV> pairs;
    if (!any_runs) {
      // Fast path: the all-in-memory reference merge.
      size_t total = 0;
      for (const MapOutput* m : maps) {
        total += static_cast<size_t>(
            m->buckets_[static_cast<size_t>(r)].records);
      }
      pairs.reserve(total);
      for (const MapOutput* m : maps) {
        DecodeBucket(m->buckets_[static_cast<size_t>(r)], &pairs, &gs.error);
        if (!gs.error.empty()) return {};
      }
      std::stable_sort(pairs.begin(), pairs.end(),
                       [](const KV& a, const KV& b) {
                         return a.first < b.first;
                       });
      return pairs;
    }

    // External merge: one source per non-empty spill segment plus one per
    // task's in-memory tail, in (map task, run order, memory last) order.
    std::vector<std::unique_ptr<MergeSource>> sources;
    size_t total = 0;
    for (const MapOutput* m : maps) {
      for (const SpillRun& run : m->runs_) {
        const SpillSegment& segment = run.segments[static_cast<size_t>(r)];
        if (segment.bytes == 0) continue;
        auto source = std::make_unique<MergeSource>();
        source->reader = std::make_unique<SpillSegmentReader>(
            run.path, segment,
            static_cast<size_t>(std::max<int64_t>(1, spill_.block_bytes)));
        sources.push_back(std::move(source));
        total += static_cast<size_t>(segment.records);
        ++gs.runs_merged;
        gs.spilled_records += segment.records;
        gs.spilled_bytes += segment.bytes;
      }
      const auto& bucket = m->buckets_[static_cast<size_t>(r)];
      if (bucket.records > 0) {
        auto source = std::make_unique<MergeSource>();
        DecodeBucket(bucket, &source->mem, &gs.error);
        if (!gs.error.empty()) return {};
        std::stable_sort(source->mem.begin(), source->mem.end(),
                         [](const KV& a, const KV& b) {
                           return a.first < b.first;
                         });
        sources.push_back(std::move(source));
        total += static_cast<size_t>(bucket.records);
      }
    }
    for (size_t i = 0; i < sources.size(); ++i) {
      sources[i]->index = i;
      if (!AdvanceSource(sources[i].get(), &gs.error)) {
        if (!gs.error.empty()) return {};
      }
    }
    const auto after = [](const MergeSource* a, const MergeSource* b) {
      // True when `a` pops after `b`: larger key, or equal key from a later
      // source (the stability tie-break).
      if (b->current.first < a->current.first) return true;
      if (a->current.first < b->current.first) return false;
      return a->index > b->index;
    };
    std::priority_queue<MergeSource*, std::vector<MergeSource*>,
                        decltype(after)>
        heap(after);
    for (const auto& source : sources) {
      if (source->has) heap.push(source.get());
    }
    pairs.reserve(total);
    while (!heap.empty()) {
      MergeSource* source = heap.top();
      heap.pop();
      pairs.push_back(std::move(source->current));
      if (AdvanceSource(source, &gs.error)) {
        heap.push(source);
      } else if (!gs.error.empty()) {
        return {};
      }
    }
    return pairs;
  }

  // Invokes fn(key, &values) once per distinct key of the sorted `pairs`,
  // in key order, moving values out. Groups whose first pair sits at or
  // past `limit` are not visited — the injected-failure cutoff of a
  // failing reduce attempt.
  template <typename Fn>
  static void ForEachGroup(std::vector<KV>* pairs, size_t limit, Fn&& fn) {
    size_t i = 0;
    while (i < pairs->size()) {
      if (i >= limit) break;
      size_t j = i;
      while (j < pairs->size() &&
             !((*pairs)[i].first < (*pairs)[j].first)) {
        ++j;
      }
      std::vector<V> values;
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        values.push_back(std::move((*pairs)[k].second));
      }
      fn((*pairs)[i].first, &values);
      i = j;
    }
  }

 private:
  // One sorted stream feeding the k-way merge: a spill segment (buffered
  // file reads) or a task's decoded in-memory tail.
  struct MergeSource {
    std::unique_ptr<SpillSegmentReader> reader;
    std::vector<KV> mem;
    size_t mem_pos = 0;
    size_t index = 0;
    KV current;
    bool has = false;
  };

  // Pulls the next record into source->current. False at end of stream or
  // on error (`*error` then labels the corrupt/unreadable spill).
  static bool AdvanceSource(MergeSource* source, std::string* error) {
    if (source->reader == nullptr) {
      if (source->mem_pos >= source->mem.size()) {
        source->has = false;
        return false;
      }
      source->current = std::move(source->mem[source->mem_pos++]);
      source->has = true;
      return true;
    }
    SpillSegmentReader& reader = *source->reader;
    for (;;) {
      const std::string_view window = reader.window();
      size_t offset = 0;
      K key;
      V value;
      if (KvCodec<K>::Decode(window, &offset, &key) &&
          KvCodec<V>::Decode(window, &offset, &value)) {
        reader.Consume(offset);
        source->current = KV(std::move(key), std::move(value));
        source->has = true;
        return true;
      }
      // A failed decode mid-window means the record straddles the chunk
      // boundary: refill and retry. At end of segment, leftover bytes (or
      // an I/O error) mean corruption.
      if (!reader.Refill()) {
        source->has = false;
        if (!reader.ok()) {
          *error = "spill read failed";
        } else if (!reader.window().empty()) {
          *error = "corrupt spill record";
        }
        return false;
      }
    }
  }

  // Decodes every record of a bucket's block chain, appending to `*pairs`.
  // Blocks end at record boundaries, so a failed decode is a logic error
  // surfaced through `*error` rather than silently dropped data.
  void DecodeBucket(const typename MapOutput::Bucket& bucket,
                    std::vector<KV>* pairs, std::string* error) const {
    pairs->reserve(pairs->size() + static_cast<size_t>(bucket.records));
    for (const std::string& block : bucket.blocks) {
      const std::string_view view(block);
      size_t offset = 0;
      while (offset < view.size()) {
        K key;
        V value;
        if (!KvCodec<K>::Decode(view, &offset, &key) ||
            !KvCodec<V>::Decode(view, &offset, &value)) {
          *error = "corrupt in-memory shuffle block";
          return;
        }
        pairs->emplace_back(std::move(key), std::move(value));
      }
    }
  }

  // Stable sort by key, then local aggregation through the combiner (when
  // set) — shared by Combine and the spill writer.
  void SortAndCombine(std::vector<KV>* pairs) const {
    std::stable_sort(pairs->begin(), pairs->end(),
                     [](const KV& a, const KV& b) {
                       return a.first < b.first;
                     });
    if (!combiner_) return;
    std::vector<KV> combined;
    size_t i = 0;
    while (i < pairs->size()) {
      size_t j = i;
      while (j < pairs->size() && !((*pairs)[i].first < (*pairs)[j].first)) {
        ++j;
      }
      std::vector<V> values;
      values.reserve(j - i);
      for (size_t k = i; k < j; ++k) {
        values.push_back(std::move((*pairs)[k].second));
      }
      combiner_((*pairs)[i].first, &values, &combined);
      i = j;
    }
    *pairs = std::move(combined);
  }

  static int64_t BucketBytes(const typename MapOutput::Bucket& bucket) {
    int64_t bytes = 0;
    for (const std::string& block : bucket.blocks) {
      bytes += static_cast<int64_t>(block.size());
    }
    return bytes;
  }

  int num_partitions_;
  PartitionFn partition_;
  // True until set_partitioner replaces the FNV-1a default; lets Add hash
  // the encoded key bytes it just wrote rather than re-encoding the key.
  bool default_partitioner_ = true;
  CombineFn combiner_;
  WireSizeFn wire_size_;
  SpillConfig spill_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_SHUFFLE_H_

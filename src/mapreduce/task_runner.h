#ifndef PROGRES_MAPREDUCE_TASK_RUNNER_H_
#define PROGRES_MAPREDUCE_TASK_RUNNER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/counters.h"
#include "mapreduce/executor.h"
#include "mapreduce/fault.h"

namespace progres {

// Executes the attempt chains of one phase's tasks, encapsulating the
// retry/abort bookkeeping of the fault-tolerant runtime: per the FaultPlan,
// each task runs its failing attempts first (each one reset beforehand and
// reported to the abort hook afterwards, so external per-task state never
// double-counts), then the winning attempt. Per-attempt costs and doomed
// tasks are recorded for the attempt-aware timing model
// (ScheduleTaskAttempts) and the "mr." fault counters.
//
// With checkpointed recovery (checkpoint.h) the reset hook restores the
// task's last snapshot instead of clearing it, and the body reports the
// attempt's *incremental* cost (work past the restored boundary) so the
// timing model charges only the resumed portion.
class TaskAttemptRunner {
 public:
  // What the body callback receives for one attempt. `fail_point` is the
  // fraction of the attempt's input processed before the injected failure
  // fires; `hang_point` the fraction processed before a hung attempt's
  // heartbeat goes silent (both 1.0 when unused). At most one of `fails` /
  // `hangs` is set — the fault plan gives crashes precedence.
  struct Attempt {
    int task = 0;
    int attempt = 0;
    bool fails = false;
    double fail_point = 1.0;
    bool hangs = false;
    double hang_point = 1.0;
  };

  // What the body reports back: the cost units the attempt charged, and
  // whether a poison record crashed it mid-run (a *dynamic* failure the
  // fault plan cannot precompute — it depends on the quarantine state).
  struct BodyOutcome {
    double cost = 0.0;
    bool poison_crashed = false;
  };

  using ResetFn = std::function<void(int task)>;
  using BodyFn = std::function<BodyOutcome(const Attempt&)>;
  using AbortFn = std::function<void(TaskPhase phase, int task, int attempt)>;

  TaskAttemptRunner(TaskPhase phase, int num_tasks, const FaultPlan* plan)
      : phase_(phase),
        num_tasks_(num_tasks),
        plan_(plan),
        attempt_costs_(static_cast<size_t>(num_tasks)),
        attempt_hangs_(static_cast<size_t>(num_tasks)),
        doomed_(static_cast<size_t>(num_tasks), 0) {}

  // Per-task attempt caps from the supervisor's retry-budget ledger
  // (supervisor.h). Empty (the default) means every task gets the plan's
  // global max_attempts — the historical behaviour. A capped task that
  // exhausts its cap is doomed exactly like one exhausting max_attempts.
  void set_attempt_caps(std::vector<int> caps) { caps_ = std::move(caps); }

  // Attempt cap of task `t`: its ledger grant, or the global max_attempts.
  int EffectiveCap(int t) const {
    if (t >= 0 && t < static_cast<int>(caps_.size())) {
      return caps_[static_cast<size_t>(t)];
    }
    return plan_->max_attempts();
  }

  // Runs every task's attempt chain and waits for completion: one chain per
  // task concurrently on `pool` workers when `pool` is non-null (the
  // threaded backend), serially in task order on the calling thread when it
  // is null (the simulated backend's deterministic reference path — results
  // are identical either way because all cross-task state is merged after
  // the phase barrier). `wall`, if non-null, observes every attempt on the
  // wall clock. `abort` may be null. The chain cannot be precomputed from
  // the plan alone: a poison crash fails an attempt the plan scored as a
  // winner, and a quarantine later turns the same planned attempt into a
  // real winner — so the loop re-evaluates after every attempt.
  void RunAll(ThreadPool* pool, ThreadedExecutor* wall, const ResetFn& reset,
              const BodyFn& body, const AbortFn& abort) {
    const auto chain = [this, wall, &reset, &body, &abort](int t) {
      const int max_attempts = EffectiveCap(t);
      int attempt = 0;
      while (true) {
        Attempt a;
        a.task = t;
        a.attempt = attempt;
        a.fails = plan_->Fails(phase_, t, attempt);
        a.fail_point = a.fails ? plan_->FailurePoint(phase_, t, attempt) : 1.0;
        a.hangs = !a.fails && plan_->Hangs(phase_, t, attempt);
        a.hang_point = a.hangs ? plan_->HangPoint(phase_, t, attempt) : 1.0;
        reset(t);
        const size_t token =
            wall != nullptr ? wall->BeginAttempt(phase_, t, attempt) : 0;
        const BodyOutcome out = body(a);
        attempt_costs_[static_cast<size_t>(t)].push_back(out.cost);
        // A hang only materializes if the attempt survived to the hang
        // point (a poison record earlier in the input crashes it first).
        const bool hung = a.hangs && !out.poison_crashed;
        attempt_hangs_[static_cast<size_t>(t)].push_back(hung ? 1 : 0);
        const bool failed = a.fails || a.hangs || out.poison_crashed;
        if (wall != nullptr) wall->EndAttempt(token, failed, hung);
        if (!failed) break;  // the winner
        if (abort) abort(phase_, t, attempt);
        ++attempt;
        if (attempt >= max_attempts) {
          doomed_[static_cast<size_t>(t)] = 1;
          break;
        }
      }
    };
    if (pool == nullptr) {
      for (int t = 0; t < num_tasks_; ++t) chain(t);
      return;
    }
    for (int t = 0; t < num_tasks_; ++t) {
      pool->Submit([&chain, t] { chain(t); });
    }
    pool->Wait();
  }

  // Per-task cost of every executed attempt (failed attempts first, then
  // the winning one). Feeds the attempt-aware timing model.
  const std::vector<std::vector<double>>& attempt_costs() const {
    return attempt_costs_;
  }

  // Parallel to attempt_costs(): 1 where the attempt hung (stopped
  // heartbeating) instead of crashing. The timing model holds the slot for
  // the heartbeat timeout before killing such attempts.
  const std::vector<std::vector<char>>& attempt_hangs() const {
    return attempt_hangs_;
  }

  // Lowest-indexed task that exhausted max_attempts, or -1.
  int FirstDoomed() const {
    for (int t = 0; t < num_tasks_; ++t) {
      if (doomed_[static_cast<size_t>(t)]) return t;
    }
    return -1;
  }

  // Every task that exhausted its attempt cap, ascending — what quarantine
  // iterates under allow_degraded (a fail-fast job only needs FirstDoomed).
  std::vector<int> DoomedTasks() const {
    std::vector<int> tasks;
    for (int t = 0; t < num_tasks_; ++t) {
      if (doomed_[static_cast<size_t>(t)]) tasks.push_back(t);
    }
    return tasks;
  }

  // Error message for a doomed task's clean job failure. Reports the task's
  // effective cap — identical to the historical max_attempts message
  // whenever no ledger cap is installed.
  std::string DoomedError(int task) const {
    return std::string(phase_ == TaskPhase::kMap ? "map" : "reduce") +
           " task " + std::to_string(task) + " failed after " +
           std::to_string(EffectiveCap(task)) + " attempts";
  }

  // Attempt/failure totals for this phase under the reserved "mr." counter
  // prefix. Every attempt of a doomed task failed; otherwise the last
  // attempt of each chain is the winner.
  void MergeFaultCounters(Counters* counters) const {
    int64_t attempts = 0;
    int64_t failed = 0;
    for (size_t t = 0; t < attempt_costs_.size(); ++t) {
      const int64_t executed = static_cast<int64_t>(attempt_costs_[t].size());
      attempts += executed;
      failed += doomed_[t] ? executed : executed - 1;
    }
    counters->Increment("mr.attempts", attempts);
    counters->Increment("mr.failed_attempts", failed);
  }

 private:
  TaskPhase phase_;
  int num_tasks_;
  const FaultPlan* plan_;
  std::vector<std::vector<double>> attempt_costs_;
  std::vector<std::vector<char>> attempt_hangs_;
  std::vector<char> doomed_;
  std::vector<int> caps_;
};

// Machine-fault-domain and retry-hygiene totals of one phase's schedule,
// under the reserved "mr." counter prefix: attempts killed by machine loss,
// simulated retry-backoff delay, machines blacklisted for repeated attempt
// failures, and the cost re-executed because of machine kills (~ pair
// comparisons; see cost_clock.h).
inline void MergeRecoveryCounters(const AttemptScheduleOutcome& outcome,
                                  Counters* counters) {
  // Zero totals stay absent so a fault-free job's counter set is unchanged.
  if (outcome.machine_lost_attempts > 0) {
    counters->Increment("mr.faults.machine_lost",
                        outcome.machine_lost_attempts);
  }
  if (outcome.timeout_kills > 0) {
    counters->Increment("mr.faults.task_timeouts", outcome.timeout_kills);
  }
  if (outcome.machines_lost > 0) {
    counters->Increment("mr.faults.machines_dead", outcome.machines_lost);
  }
  if (outcome.machines_blacklisted > 0) {
    counters->Increment("mr.blacklist.machines",
                        outcome.machines_blacklisted);
  }
  if (outcome.backoff_seconds > 0.0) {
    counters->Increment(
        "mr.retry.backoff_seconds",
        static_cast<int64_t>(outcome.backoff_seconds + 0.5));
  }
  if (outcome.replayed_cost_units > 0.0) {
    counters->Increment(
        "mr.recovery.replayed_cost",
        static_cast<int64_t>(outcome.replayed_cost_units + 0.5));
  }
}

// Speculation totals for a finished job's timing, under the reserved "mr."
// counter prefix.
inline void MergeSpeculationCounters(const JobTiming& timing,
                                     Counters* counters) {
  int64_t launched = 0;
  int64_t wins = 0;
  for (const auto* phase : {&timing.map_attempts, &timing.reduce_attempts}) {
    for (const TaskAttemptTiming& attempt : *phase) {
      if (!attempt.speculative) continue;
      ++launched;
      if (attempt.won) ++wins;
    }
  }
  counters->Increment("mr.speculative_launched", launched);
  counters->Increment("mr.speculative_wins", wins);
}

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_TASK_RUNNER_H_

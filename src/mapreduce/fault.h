#ifndef PROGRES_MAPREDUCE_FAULT_H_
#define PROGRES_MAPREDUCE_FAULT_H_

#include <cstdint>
#include <vector>

namespace progres {

// Phase a simulated task attempt belongs to.
enum class TaskPhase { kMap = 0, kReduce = 1 };

// One explicitly injected failure: attempt `attempt` of the given task dies
// partway through its input. Attempts are numbered from 0; Hadoop would
// reschedule the task until mapred.<phase>.max.attempts is exhausted.
struct TaskFault {
  TaskPhase phase = TaskPhase::kMap;
  int task = 0;
  int attempt = 0;
};

// One explicitly injected hang: attempt `attempt` of the given task stops
// making progress after processing `hang_at_fraction` of its input — the
// process stays alive but its heartbeat goes silent, so only the tracker's
// task timeout (FaultConfig::task_timeout_seconds, Hadoop's
// mapred.task.timeout) can kill it. Fractions must lie in (0, 1].
struct TaskHangFault {
  TaskPhase phase = TaskPhase::kMap;
  int task = 0;
  int attempt = 0;
  double hang_at_fraction = 0.5;
};

// One machine-level failure: machine `machine` dies at simulated time
// `time` (seconds, absolute). Every attempt running on the machine's slots
// at that moment is killed and the machine's slots leave the cluster for
// good; orphaned tasks are re-queued on the survivors. Unlike task-attempt
// failures, a machine loss does not consume one of the task's
// max_attempts — the task was healthy, its machine was not.
struct MachineFault {
  int machine = 0;
  double time = 0.0;
};

// Deterministic fault-injection configuration for the simulated runtime.
// With `enabled` false the runtime behaves exactly as a fault-free cluster
// (single attempt per task, no retry bookkeeping in the timing model).
//
// Failures come from two sources, both reproducible:
//   * `injected`: explicit (phase, task, attempt) triples, independent of
//     the seed — the unit tests enumerate these;
//   * `map_failure_prob` / `reduce_failure_prob`: per-attempt failure
//     probabilities hashed from (`seed`, phase, task, attempt), so the same
//     seed always kills the same attempts regardless of thread interleaving.
struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 0;
  double map_failure_prob = 0.0;
  double reduce_failure_prob = 0.0;
  // Maximum attempts per task before the whole job fails (Hadoop's
  // mapred.map/reduce.max.attempts, default 4).
  int max_attempts = 4;
  std::vector<TaskFault> injected;

  // ---- Machine-level fault domain ----
  // Explicit machine losses, plus an optional seed-hashed source: each
  // machine independently dies with probability `machine_failure_prob`, at
  // a deterministic time hashed into [0, machine_failure_horizon_seconds).
  // Both sources are pure functions of the config; FaultPlan merges them
  // (earliest death per machine wins).
  std::vector<MachineFault> machine_failures;
  double machine_failure_prob = 0.0;
  double machine_failure_horizon_seconds = 0.0;

  // ---- Retry hygiene ----
  // Delay before re-dispatching a task whose attempt failed (task-attempt
  // failure or machine loss): the k-th failure of a task waits
  // retry_backoff_seconds * retry_backoff_factor^(k-1) on the simulated
  // clock. 0 re-queues immediately (the pre-backoff behaviour). Total delay
  // is exported as "mr.retry.backoff_seconds".
  double retry_backoff_seconds = 0.0;
  double retry_backoff_factor = 2.0;
  // A machine that hosts this many failed task attempts is blacklisted: no
  // new attempts start there (running ones finish). 0 disables. The last
  // healthy machine is never blacklisted. Exported as
  // "mr.blacklist.machines".
  int blacklist_failures = 0;

  // ---- Hangs & heartbeat timeouts ----
  // A hung attempt stops heartbeating partway through its input instead of
  // crashing: it holds its slot until the tracker's timeout expires, then is
  // killed and re-queued under the normal retry path (backoff, blacklist,
  // max_attempts). Sources mirror the crash sources: explicit injections
  // plus per-attempt seed-hashed probabilities. An attempt planned to
  // *crash* never also hangs — the crash fires first.
  std::vector<TaskHangFault> injected_hangs;
  double map_hang_prob = 0.0;
  double reduce_hang_prob = 0.0;
  // Heartbeat timeout in simulated seconds (Hadoop's mapred.task.timeout,
  // default 600s). A hung attempt occupies its slot for the work it did
  // before hanging plus this long. Timeout kills are exported as
  // "mr.faults.task_timeouts".
  double task_timeout_seconds = 600.0;

  // ---- Shuffle corruption ----
  // Each (map task, reduce task) partition fetch is independently corrupted
  // with this probability (seed-hashed per fetch attempt). A corrupt fetch
  // is detected by the partition's CRC32 checksum and re-fetched; after
  // `max_fetch_retries` consecutive corrupt re-fetches the runtime re-runs
  // the producing map task to regenerate the partition. Exported as
  // "mr.shuffle.checksum_errors" / "mr.shuffle.refetches" /
  // "mr.shuffle.map_reruns".
  double shuffle_corrupt_prob = 0.0;
  int max_fetch_retries = 3;

  // ---- Storage (spill I/O) faults ----
  // Disk faults hit the map-side spill path of the out-of-core shuffle.
  // The fault domain is each map task's local disk: every decision is a
  // pure function of (seed, map task, run index, generation, write try), so
  // the threaded backend reproduces the simulated one exactly. `generation`
  // counts the task's executions (retried attempts and barrier-time re-runs
  // both advance it), so a regenerated run eventually comes clean.
  //
  //   * spill_enospc_prob — per map task: its primary spill dir is "full";
  //     every write there fails until the task fails over to the secondary
  //     dir (ShuffleBudget::fallback_spill_dir). Without a fallback the job
  //     fails with the labelled spill error. "mr.disk.enospc".
  //   * spill_write_error_prob — per (task, run, try): a transient EIO; the
  //     write is retried with a flat backoff up to max_spill_retries times,
  //     then the task fails over (or errors). "mr.disk.write_errors" /
  //     "mr.disk.retries" / "mr.disk.retry_backoff_seconds".
  //   * spill_torn_write_prob — per (task, run, generation): the write
  //     "succeeds" but the file is truncated short; undetectable at write
  //     time, caught by the run's CRC at the map barrier.
  //     "mr.disk.torn_writes".
  //   * spill_corrupt_prob — per (task, run, generation): one byte of the
  //     written file is flipped at rest; caught by the CRC at the barrier.
  //
  // A run failing its barrier CRC check re-runs the producing map task
  // (mirroring the shuffle-corruption map re-run), "mr.disk.corrupt_runs" /
  // "mr.disk.map_reruns", up to max_attempts re-runs before the job fails.
  double spill_enospc_prob = 0.0;
  double spill_write_error_prob = 0.0;
  double spill_torn_write_prob = 0.0;
  double spill_corrupt_prob = 0.0;
  // Retries per spill-run write after a transient error, and the simulated
  // delay charged per retry.
  int max_spill_retries = 3;
  double spill_retry_backoff_seconds = 0.0;

  // ---- Poison records (Hadoop's skip-bad-records feature) ----
  // Global input-record indices that deterministically crash any map
  // attempt processing them. With `skip_bad_records` set, a record that has
  // crashed `max_attempts_before_skip` attempts of its task is quarantined:
  // the next attempt skips it (emitting it to the task's quarantine output,
  // Job::Result::quarantined) and continues — one bad record costs one
  // record, not the job. Without it the task crashes until max_attempts
  // dooms the job. Poison only fires in jobs that opted in via
  // MapReduceJob::set_poison_faults (the ones running user code a bad
  // record can crash). Exported as "mr.skipped.records".
  std::vector<int64_t> poison_records;
  bool skip_bad_records = false;
  int max_attempts_before_skip = 2;
};

// One record quarantined by the skip-bad-records machinery: map task `task`
// skipped global input record `record` after repeated poison crashes.
struct QuarantinedRecord {
  int task = 0;
  int64_t record = 0;
};

// Job-level supervision: deadline-driven graceful degradation. All fields
// default off; with every field at its default the runtime behaves exactly
// as before (byte-identical outputs, counters and traces).
//
//   * deadline_seconds — absolute simulated-clock deadline. A job whose
//     makespan would cross it is cut at the deadline: reduce tasks flush
//     the progressive output they had emitted by then (their latest
//     alpha-boundary checkpoint at or below the cut), later work is
//     cancelled. Deterministic: the cut is a pure function of
//     (seed, fault plan, deadline), identical on both backends.
//   * wall_deadline_seconds — real-time safety valve checked at the
//     map/reduce barrier; past it the reduce phase is skipped entirely.
//     Inherently nondeterministic (it races the host machine), so it is
//     excluded from golden fixtures and differential tests.
//   * allow_degraded — permanent task failures (retry exhaustion, sticky
//     spill errors, CRC-exhausted runs, unplaceable reduce tasks) are
//     quarantined instead of failing the job: the task contributes its
//     checkpointed partial output (or nothing) and the job finalizes
//     best-effort with Result::completeness reporting the damage. Without
//     it a deadline overrun is a hard, labelled failure.
//   * fault_budget — job-wide retry budget: planned retries (crashes and
//     hangs, walked in deterministic task order) are granted from this
//     ledger; once it runs dry the budget breaker trips and later tasks
//     get no retries. 0 = unlimited.
struct JobControl {
  double deadline_seconds = 0.0;       // 0 = no simulated deadline
  double wall_deadline_seconds = 0.0;  // 0 = no wall-clock deadline
  bool allow_degraded = false;
  int64_t fault_budget = 0;  // 0 = unlimited retries

  // Whether any supervision is configured — the runtime's gate for the
  // supervisor machinery (ledger, breakers, completeness reporting).
  bool active() const {
    return deadline_seconds > 0.0 || wall_deadline_seconds > 0.0 ||
           allow_degraded || fault_budget > 0;
  }
};

// Speculative execution (Hadoop's backup tasks) in the timing model. When a
// slot frees with no queued work and some task's remaining time exceeds
// `min_remaining_seconds`, a backup copy is launched on the free slot if it
// would finish before the original; the earlier finisher wins. On a
// homogeneous cluster a backup can never beat the original, so speculation
// is a no-op there — exactly the straggler-only behaviour intended.
struct SpeculationConfig {
  bool enabled = false;
  double min_remaining_seconds = 0.0;
};

// Deterministic per-attempt failure plan derived from a FaultConfig. All
// queries are pure functions of the config — the runtime consults the plan
// before running a task, so the set of failing attempts (and where inside
// the attempt each failure fires) is identical across runs and independent
// of the real thread schedule.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultConfig config);

  bool enabled() const { return config_.enabled; }
  int max_attempts() const;

  // Whether attempt `attempt` of the given task is planned to fail.
  bool Fails(TaskPhase phase, int task, int attempt) const;

  // Number of consecutive non-winning attempts (planned crashes or hangs)
  // starting at attempt 0, capped at `cap` (the runtime passes
  // max_attempts; a return value >= cap means the task — and therefore the
  // job — is doomed).
  int FailuresBeforeSuccess(TaskPhase phase, int task, int cap) const;

  // Fraction in [0, 1) of the attempt's input processed before the injected
  // failure fires. Deterministic per (seed, phase, task, attempt).
  double FailurePoint(TaskPhase phase, int task, int attempt) const;

  // Whether attempt `attempt` of the given task is planned to hang (stop
  // heartbeating without crashing). False whenever Fails() is true — a
  // crash pre-empts a hang on the same attempt.
  bool Hangs(TaskPhase phase, int task, int attempt) const;

  // Fraction in (0, 1] of the attempt's input processed before its
  // heartbeat goes silent. Injected hangs report their configured fraction;
  // hashed hangs a deterministic one.
  double HangPoint(TaskPhase phase, int task, int attempt) const;

  // Whether fetch attempt `fetch` (0 = the initial fetch) of map task
  // `map_task`'s partition for `reduce_task` delivers corrupted bytes.
  bool FetchCorrupted(int map_task, int reduce_task, int fetch) const;

  // Consecutive corrupted fetches of the (map_task, reduce_task) partition
  // starting at fetch 0, capped at `cap`. A return value >= cap means
  // re-fetching never succeeded within the retry budget.
  int CorruptFetches(int map_task, int reduce_task, int cap) const;

  // Whether any storage-fault probability is configured — the runtime's
  // gate for the spill-path injection and barrier CRC validation.
  bool HasDiskFaults() const;

  // Whether map task `task`'s primary spill directory is planned "full"
  // (ENOSPC on every write there). Per-task: a re-run of the task sees the
  // same full disk and fails over again.
  bool SpillPrimaryFull(int task) const;

  // Whether write try `try_index` (0 = the initial write) of spill run
  // `run` in the task's execution `generation` hits a transient error.
  bool SpillWriteError(int task, int run, int generation,
                       int try_index) const;

  // Consecutive transient write errors for the run starting at try 0,
  // capped at `cap`. >= cap means the retry budget never sufficed.
  int SpillWriteErrors(int task, int run, int generation, int cap) const;

  // Whether the run's write is planned torn (file truncated short although
  // the write reports success).
  bool SpillTornWrite(int task, int run, int generation) const;

  // Whether the run's file is planned bit-flipped at rest after a
  // successful write.
  bool SpillCorrupted(int task, int run, int generation) const;

  // Deterministic byte offset to corrupt in a `file_bytes`-long run file.
  uint64_t SpillCorruptOffset(int task, int run, int generation,
                              uint64_t file_bytes) const;

  int max_spill_retries() const;
  double spill_retry_backoff_seconds() const {
    return config_.spill_retry_backoff_seconds;
  }

  // Whether the global input record index is configured as poison.
  bool IsPoisonRecord(int64_t record) const;

  // Index of `record` in the sorted unique poison list, or -1. Stable
  // across runs — the runtime keys per-record crash counts on it.
  int PoisonIndex(int64_t record) const;
  int num_poison_records() const {
    return static_cast<int>(poison_sorted_.size());
  }

  // Machine-failure events for a cluster of `num_machines` machines, merged
  // from the injected list and the seed-hashed source, at most one per
  // machine (earliest wins), sorted by (time, machine). Empty when faults
  // are disabled.
  std::vector<MachineFault> MachineFailures(int num_machines) const;

 private:
  FaultConfig config_;
  // Sorted unique copy of config_.poison_records for O(log n) lookup.
  std::vector<int64_t> poison_sorted_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_FAULT_H_

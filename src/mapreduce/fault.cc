#include "mapreduce/fault.h"

#include <algorithm>
#include <utility>

namespace progres {

namespace {

// splitmix64: small, well-mixed, and stateless — ideal for hashing
// (seed, phase, task, attempt, salt) tuples into independent decisions.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashAttempt(uint64_t seed, TaskPhase phase, int task, int attempt,
                     uint64_t salt) {
  uint64_t h = SplitMix64(seed ^ salt);
  h = SplitMix64(h ^ (static_cast<uint64_t>(phase) + 1));
  h = SplitMix64(h ^ static_cast<uint64_t>(task));
  h = SplitMix64(h ^ static_cast<uint64_t>(attempt));
  return h;
}

// Uniform double in [0, 1) from the top 53 bits.
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kFailSalt = 0xfa117a5cULL;
constexpr uint64_t kPointSalt = 0x9017a11bULL;
constexpr uint64_t kMachineSalt = 0x3ac41fedULL;
constexpr uint64_t kMachineTimeSalt = 0x7139e0a1ULL;
constexpr uint64_t kHangSalt = 0x4a46c0deULL;
constexpr uint64_t kHangPointSalt = 0x51e9d2b7ULL;
constexpr uint64_t kFetchSalt = 0xc0221f7eULL;
constexpr uint64_t kDiskFullSalt = 0xe205bcf1ULL;
constexpr uint64_t kDiskWriteSalt = 0xe10aa3d7ULL;
constexpr uint64_t kDiskTornSalt = 0x70a2f9b3ULL;
constexpr uint64_t kDiskFlipSalt = 0xb17f11b5ULL;
constexpr uint64_t kDiskOffsetSalt = 0x0ff5e7c9ULL;

// Hash chain for per-(task, run, generation[, try]) spill decisions.
uint64_t HashSpill(uint64_t seed, uint64_t salt, int task, int run,
                   int generation) {
  uint64_t h = SplitMix64(seed ^ salt);
  h = SplitMix64(h ^ static_cast<uint64_t>(task));
  h = SplitMix64(h ^ static_cast<uint64_t>(run));
  h = SplitMix64(h ^ static_cast<uint64_t>(generation));
  return h;
}

uint64_t HashMachine(uint64_t seed, int machine, uint64_t salt) {
  uint64_t h = SplitMix64(seed ^ salt);
  h = SplitMix64(h ^ static_cast<uint64_t>(machine));
  return h;
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config) : config_(std::move(config)) {
  poison_sorted_ = config_.poison_records;
  std::sort(poison_sorted_.begin(), poison_sorted_.end());
  poison_sorted_.erase(
      std::unique(poison_sorted_.begin(), poison_sorted_.end()),
      poison_sorted_.end());
}

int FaultPlan::max_attempts() const {
  return std::max(1, config_.max_attempts);
}

bool FaultPlan::Fails(TaskPhase phase, int task, int attempt) const {
  if (!config_.enabled) return false;
  for (const TaskFault& fault : config_.injected) {
    if (fault.phase == phase && fault.task == task &&
        fault.attempt == attempt) {
      return true;
    }
  }
  const double prob = phase == TaskPhase::kMap ? config_.map_failure_prob
                                               : config_.reduce_failure_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return HashToUnit(HashAttempt(config_.seed, phase, task, attempt,
                                kFailSalt)) < prob;
}

int FaultPlan::FailuresBeforeSuccess(TaskPhase phase, int task,
                                     int cap) const {
  int failures = 0;
  while (failures < cap && (Fails(phase, task, failures) ||
                            Hangs(phase, task, failures))) {
    ++failures;
  }
  return failures;
}

double FaultPlan::FailurePoint(TaskPhase phase, int task, int attempt) const {
  return HashToUnit(HashAttempt(config_.seed, phase, task, attempt,
                                kPointSalt));
}

bool FaultPlan::Hangs(TaskPhase phase, int task, int attempt) const {
  if (!config_.enabled) return false;
  if (Fails(phase, task, attempt)) return false;  // the crash fires first
  for (const TaskHangFault& hang : config_.injected_hangs) {
    if (hang.phase == phase && hang.task == task &&
        hang.attempt == attempt) {
      return true;
    }
  }
  const double prob = phase == TaskPhase::kMap ? config_.map_hang_prob
                                               : config_.reduce_hang_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return HashToUnit(HashAttempt(config_.seed, phase, task, attempt,
                                kHangSalt)) < prob;
}

double FaultPlan::HangPoint(TaskPhase phase, int task, int attempt) const {
  for (const TaskHangFault& hang : config_.injected_hangs) {
    if (hang.phase == phase && hang.task == task &&
        hang.attempt == attempt) {
      return hang.hang_at_fraction;
    }
  }
  // Map [0, 1) onto (0, 1]: a hang at fraction 0 would be a dead-on-arrival
  // attempt, which the crash path already models.
  return 1.0 - HashToUnit(HashAttempt(config_.seed, phase, task, attempt,
                                      kHangPointSalt));
}

bool FaultPlan::FetchCorrupted(int map_task, int reduce_task,
                               int fetch) const {
  if (!config_.enabled) return false;
  const double prob = config_.shuffle_corrupt_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  uint64_t h = SplitMix64(config_.seed ^ kFetchSalt);
  h = SplitMix64(h ^ static_cast<uint64_t>(map_task));
  h = SplitMix64(h ^ static_cast<uint64_t>(reduce_task));
  h = SplitMix64(h ^ static_cast<uint64_t>(fetch));
  return HashToUnit(h) < prob;
}

int FaultPlan::CorruptFetches(int map_task, int reduce_task, int cap) const {
  int corrupt = 0;
  while (corrupt < cap && FetchCorrupted(map_task, reduce_task, corrupt)) {
    ++corrupt;
  }
  return corrupt;
}

bool FaultPlan::HasDiskFaults() const {
  return config_.enabled && (config_.spill_enospc_prob > 0.0 ||
                             config_.spill_write_error_prob > 0.0 ||
                             config_.spill_torn_write_prob > 0.0 ||
                             config_.spill_corrupt_prob > 0.0);
}

bool FaultPlan::SpillPrimaryFull(int task) const {
  if (!config_.enabled) return false;
  const double prob = config_.spill_enospc_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  uint64_t h = SplitMix64(config_.seed ^ kDiskFullSalt);
  h = SplitMix64(h ^ static_cast<uint64_t>(task));
  return HashToUnit(h) < prob;
}

bool FaultPlan::SpillWriteError(int task, int run, int generation,
                                int try_index) const {
  if (!config_.enabled) return false;
  const double prob = config_.spill_write_error_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  uint64_t h = HashSpill(config_.seed, kDiskWriteSalt, task, run, generation);
  h = SplitMix64(h ^ static_cast<uint64_t>(try_index));
  return HashToUnit(h) < prob;
}

int FaultPlan::SpillWriteErrors(int task, int run, int generation,
                                int cap) const {
  int errors = 0;
  while (errors < cap && SpillWriteError(task, run, generation, errors)) {
    ++errors;
  }
  return errors;
}

bool FaultPlan::SpillTornWrite(int task, int run, int generation) const {
  if (!config_.enabled) return false;
  const double prob = config_.spill_torn_write_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return HashToUnit(HashSpill(config_.seed, kDiskTornSalt, task, run,
                              generation)) < prob;
}

bool FaultPlan::SpillCorrupted(int task, int run, int generation) const {
  if (!config_.enabled) return false;
  const double prob = config_.spill_corrupt_prob;
  if (prob <= 0.0) return false;
  if (prob >= 1.0) return true;
  return HashToUnit(HashSpill(config_.seed, kDiskFlipSalt, task, run,
                              generation)) < prob;
}

uint64_t FaultPlan::SpillCorruptOffset(int task, int run, int generation,
                                       uint64_t file_bytes) const {
  if (file_bytes == 0) return 0;
  return HashSpill(config_.seed, kDiskOffsetSalt, task, run, generation) %
         file_bytes;
}

int FaultPlan::max_spill_retries() const {
  return std::max(0, config_.max_spill_retries);
}

bool FaultPlan::IsPoisonRecord(int64_t record) const {
  return config_.enabled &&
         std::binary_search(poison_sorted_.begin(), poison_sorted_.end(),
                            record);
}

int FaultPlan::PoisonIndex(int64_t record) const {
  const auto it = std::lower_bound(poison_sorted_.begin(),
                                   poison_sorted_.end(), record);
  if (it == poison_sorted_.end() || *it != record) return -1;
  return static_cast<int>(it - poison_sorted_.begin());
}

std::vector<MachineFault> FaultPlan::MachineFailures(int num_machines) const {
  std::vector<MachineFault> failures;
  if (!config_.enabled) return failures;
  // Earliest planned death per machine (or unset).
  std::vector<double> death(static_cast<size_t>(std::max(0, num_machines)),
                            -1.0);
  for (const MachineFault& fault : config_.machine_failures) {
    if (fault.machine < 0 || fault.machine >= num_machines) continue;
    double& d = death[static_cast<size_t>(fault.machine)];
    if (d < 0.0 || fault.time < d) d = fault.time;
  }
  if (config_.machine_failure_prob > 0.0 &&
      config_.machine_failure_horizon_seconds > 0.0) {
    for (int m = 0; m < num_machines; ++m) {
      const double u =
          HashToUnit(HashMachine(config_.seed, m, kMachineSalt));
      if (u >= config_.machine_failure_prob) continue;
      const double t =
          HashToUnit(HashMachine(config_.seed, m, kMachineTimeSalt)) *
          config_.machine_failure_horizon_seconds;
      double& d = death[static_cast<size_t>(m)];
      if (d < 0.0 || t < d) d = t;
    }
  }
  for (int m = 0; m < num_machines; ++m) {
    if (death[static_cast<size_t>(m)] >= 0.0) {
      failures.push_back({m, death[static_cast<size_t>(m)]});
    }
  }
  std::sort(failures.begin(), failures.end(),
            [](const MachineFault& a, const MachineFault& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.machine < b.machine;
            });
  return failures;
}

}  // namespace progres

#ifndef PROGRES_MAPREDUCE_EXECUTOR_H_
#define PROGRES_MAPREDUCE_EXECUTOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "mapreduce/fault.h"

namespace progres {

class ThreadPool;
class TraceRecorder;

// Which engine executes a job's task attempts.
//
//  * kSimulated — attempts run serially on the submitting thread, in task
//    order. This is the deterministic reference: simulated time from the
//    attempt-aware scheduler is the only clock, and the paper's figures are
//    reproduced on it.
//  * kThreaded — attempts run concurrently on ClusterConfig::execution_threads
//    thread-pool workers and a monotonic wall clock is measured alongside.
//    The MR contract guarantees results are byte-identical to kSimulated:
//    all algorithmic cost is charged to per-task CostClocks, counters are
//    merged in task order after each phase barrier, and the shuffle
//    gather-sort order is fixed — so only the wall-clock measurements
//    (JobTiming::wall, wall-stamped trace spans) differ between runs.
//
// The simulated timeline remains the job's "results clock" under both
// backends: event timestamps, recall curves and schedule-derived "mr."
// counters come from ScheduleTaskAttemptsOnCluster either way.
enum class ExecutionBackend { kSimulated = 0, kThreaded = 1 };

// "simulated" / "threaded".
const char* ToString(ExecutionBackend backend);

// Parses a backend name as printed by ToString. Returns false (leaving
// `*out` untouched) on anything else.
bool ParseExecutionBackend(const std::string& name, ExecutionBackend* out);

// One task attempt as executed on the wall clock by the threaded backend.
// Unlike TaskAttemptTiming (simulated, deterministic), these are real
// measurements: start/end are seconds since the executor's epoch and vary
// run to run. `worker` is the pool worker lane the attempt ran on.
struct WallAttempt {
  TaskPhase phase = TaskPhase::kMap;
  int task = 0;
  int attempt = 0;
  int worker = 0;
  double start = 0.0;
  double end = 0.0;
  bool failed = false;     // injected failure, hang or poison crash
  bool timed_out = false;  // hung attempt (killed by heartbeat timeout)
};

// The threaded backend's engine: owns the worker pool and records the
// wall-clock timeline of every attempt executed on it. Thread-safe — the
// Begin/EndAttempt hooks are called concurrently from pool workers.
class ThreadedExecutor {
 public:
  explicit ThreadedExecutor(int threads);
  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  int threads() const;
  ThreadPool* pool() { return pool_.get(); }

  // Monotonic wall seconds since construction.
  double Now() const { return epoch_.ElapsedSeconds(); }

  // Attempt observer: BeginAttempt stamps the start time and worker lane
  // and returns a token; EndAttempt stamps the end time and outcome.
  size_t BeginAttempt(TaskPhase phase, int task, int attempt);
  void EndAttempt(size_t token, bool failed, bool timed_out);

  // Marks the phase barrier (all of the phase's attempts have finished).
  void EndPhase(TaskPhase phase);
  double phase_end(TaskPhase phase) const;

  // Snapshot of every recorded attempt, in completion order.
  std::vector<WallAttempt> attempts() const;

  // The winning (last, non-failed) executed attempt of `task` in `phase`.
  // Returns false if the task never completed an attempt successfully.
  bool WinningAttempt(TaskPhase phase, int task, WallAttempt* out) const;

  // Stamps one kAttempt trace span per executed attempt into `trace`, on
  // wall-clock time. Worker lanes stand in for slots; there is no machine
  // fault domain on the wall clock, so machine is -1 and spans carry no
  // speculative flag (the threaded backend rejects speculation).
  void StampAttemptSpans(TraceRecorder* trace, int pid) const;

 private:
  Stopwatch epoch_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex mu_;
  std::vector<WallAttempt> attempts_;
  double map_end_ = 0.0;
  double reduce_end_ = 0.0;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_EXECUTOR_H_

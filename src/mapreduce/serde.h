#ifndef PROGRES_MAPREDUCE_SERDE_H_
#define PROGRES_MAPREDUCE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace progres {

// Minimal Hadoop-Writable-style wire encoding. The shuffle's KV blocks and
// spill runs store records in this form (see shuffle.h), so the codecs are
// load-bearing: a map output is encoded once on Emit and decoded by the
// reduce-side merge. The same helpers also account for shuffle byte volumes
// (the `shuffle.bytes` counters in the drivers).

// Appends `value` to `out` as a base-128 varint (LEB128).
void PutVarint64(uint64_t value, std::string* out);

// Reads a varint from `in` at `*offset`, advancing it. Returns false on
// truncated or malformed input: more than 10 bytes, or a 10th byte carrying
// bits past bit 63 (an encoding PutVarint64 never produces).
bool GetVarint64(std::string_view in, size_t* offset, uint64_t* value);

// ZigZag mapping so small negative integers stay small on the wire.
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Appends `value` length-prefixed.
void PutString(std::string_view value, std::string* out);

// Reads a length-prefixed string written by PutString. Returns false on a
// truncated prefix or when the prefix claims more bytes than `in` holds
// (including lengths that would overflow the offset).
bool GetString(std::string_view in, size_t* offset, std::string* value);

// Number of bytes PutVarint64 would append.
int VarintSize(uint64_t value);

// CRC-32 (IEEE, reflected polynomial 0xEDB88320 — the zlib/Hadoop checksum)
// of `data`, continuing from `crc` so multi-buffer streams can chain calls.
// Crc32("123456789") == 0xCBF43926. The shuffle checksums each map-output
// partition with this before the "wire" transfer.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

// FNV-1a over `data`, continuing from `hash` for multi-buffer streams. The
// shuffle's default partitioner hashes the *encoded* key with this: unlike
// std::hash, the function is pinned by this header, so partition assignment
// (and every golden fixture downstream of it) is identical across standard
// libraries and platforms.
inline constexpr uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1aPrime = 0x00000100000001b3ull;
inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t hash = kFnv1aOffsetBasis) {
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

// ---- KV codecs ----
//
// KvCodec<T> is the serde of one shuffle key or value type: Encode appends
// T's wire form to a buffer, Decode reads it back from `in` at `*offset`
// (advancing it; false on truncated/malformed bytes). The primary template
// is intentionally undefined — a type crossing the shuffle must either be
// one of the built-ins below (integers, bool, std::string) or provide an
// explicit specialization next to its definition (see the driver .cc files
// for StatsValue/SlideValue/ResolveValue).
template <typename T, typename Enable = void>
struct KvCodec;

// Integers travel as varints of their two's-complement bit pattern — the
// same `VarintSize(static_cast<uint64_t>(v))` form the drivers' wire-size
// accounting has always used. Callers with many small negatives should
// ZigZag inside their own codec.
template <typename T>
struct KvCodec<
    T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>> {
  static void Encode(const T& value, std::string* out) {
    PutVarint64(static_cast<uint64_t>(value), out);
  }
  static bool Decode(std::string_view in, size_t* offset, T* value) {
    uint64_t raw = 0;
    if (!GetVarint64(in, offset, &raw)) return false;
    *value = static_cast<T>(raw);
    return true;
  }
};

template <>
struct KvCodec<bool> {
  static void Encode(const bool& value, std::string* out) {
    out->push_back(value ? '\1' : '\0');
  }
  static bool Decode(std::string_view in, size_t* offset, bool* value) {
    if (*offset >= in.size()) return false;
    *value = in[*offset] != '\0';
    ++*offset;
    return true;
  }
};

template <>
struct KvCodec<std::string> {
  static void Encode(const std::string& value, std::string* out) {
    PutString(value, out);
  }
  static bool Decode(std::string_view in, size_t* offset, std::string* value) {
    return GetString(in, offset, value);
  }
};

// True when KvCodec<T> provides the Encode/Decode pair the shuffle needs.
// Shuffle<K, V> static_asserts this for both parameters, so a missing codec
// is a named compile-time error instead of a silently degraded data plane.
template <typename T>
concept SerdeEncodable = requires(const T& value, std::string* out,
                                  std::string_view in, size_t* offset,
                                  T* slot) {
  { KvCodec<T>::Encode(value, out) };
  { KvCodec<T>::Decode(in, offset, slot) } -> std::convertible_to<bool>;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_SERDE_H_

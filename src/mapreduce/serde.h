#ifndef PROGRES_MAPREDUCE_SERDE_H_
#define PROGRES_MAPREDUCE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace progres {

// Minimal Hadoop-Writable-style wire encoding. The in-process runtime moves
// typed values, so serialization is not needed for correctness; these
// helpers exist to (a) account for real shuffle byte volumes (the
// `shuffle.bytes` counters in the drivers) and (b) persist intermediate
// records in a compact binary form.

// Appends `value` to `out` as a base-128 varint (LEB128).
void PutVarint64(uint64_t value, std::string* out);

// Reads a varint from `in` at `*offset`, advancing it. Returns false on
// truncated or malformed (> 10 byte) input.
bool GetVarint64(std::string_view in, size_t* offset, uint64_t* value);

// ZigZag mapping so small negative integers stay small on the wire.
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Appends `value` length-prefixed.
void PutString(std::string_view value, std::string* out);

// Reads a length-prefixed string written by PutString.
bool GetString(std::string_view in, size_t* offset, std::string* value);

// Number of bytes PutVarint64 would append.
int VarintSize(uint64_t value);

// CRC-32 (IEEE, reflected polynomial 0xEDB88320 — the zlib/Hadoop checksum)
// of `data`, continuing from `crc` so multi-buffer streams can chain calls.
// Crc32("123456789") == 0xCBF43926. The shuffle checksums each map-output
// partition with this before the "wire" transfer.
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_SERDE_H_

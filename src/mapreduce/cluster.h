#ifndef PROGRES_MAPREDUCE_CLUSTER_H_
#define PROGRES_MAPREDUCE_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mapreduce/fault.h"

namespace progres {

// Configuration of the simulated Hadoop-style cluster. Mirrors the paper's
// setup (Sec. VI-A1): mu machines, at most two concurrent map and two
// concurrent reduce tasks per machine.
struct ClusterConfig {
  int machines = 10;
  int map_slots_per_machine = 2;
  int reduce_slots_per_machine = 2;

  // Conversion from abstract cost units to simulated seconds. The default
  // makes one million pair comparisons cost ~10 simulated seconds, in the
  // ballpark of the paper's edit-distance match function.
  double seconds_per_cost_unit = 1e-5;

  // Number of real threads used to execute simulated tasks. 0 means use
  // std::thread::hardware_concurrency().
  int execution_threads = 0;

  // Optional per-machine speed factors (1.0 = nominal). Homogeneous when
  // empty. A machine with speed 0.5 takes twice as long per cost unit —
  // models heterogeneous clusters and stragglers.
  std::vector<double> machine_speed;

  // Deterministic fault injection (task-attempt failures + retry) and
  // speculative execution of stragglers. Both default to off, in which case
  // the runtime is byte- and timing-identical to the pre-fault behaviour.
  FaultConfig fault;
  SpeculationConfig speculation;

  int map_slots() const { return machines * map_slots_per_machine; }
  int reduce_slots() const { return machines * reduce_slots_per_machine; }

  // Speed factor of machine `m` (1.0 when unspecified).
  double SpeedOfMachine(int m) const {
    if (m < static_cast<int>(machine_speed.size())) {
      return machine_speed[static_cast<size_t>(m)] > 0.0
                 ? machine_speed[static_cast<size_t>(m)]
                 : 1.0;
    }
    return 1.0;
  }

  // Per-slot speed factors for a phase with `slots_per_machine` slots.
  std::vector<double> SlotSpeeds(int slots_per_machine) const;
};

// One scheduled task attempt on the simulated cluster. Failed attempts hold
// the slot until their injected failure fires; the retry is re-queued at
// that moment (Hadoop reschedules failed attempts FIFO). Speculative
// attempts are backup copies launched on idle slots; exactly one attempt
// per task has `won` set — its output is the task's output, and its
// start/end are what the job timing reports.
struct TaskAttemptTiming {
  int task = 0;
  int attempt = 0;   // 0-based; speculative backups reuse the winning index
  int slot = 0;
  double start = 0.0;
  double end = 0.0;
  bool failed = false;       // ended by an injected failure
  bool speculative = false;  // backup copy from speculative execution
  bool won = false;          // produced the task's result
};

// Per-task execution statistics (winning attempt only).
struct TaskStats {
  double cost = 0.0;        // cost units charged by the task
  int64_t records_in = 0;   // map: input records; reduce: input values
  int64_t pairs_out = 0;    // map: emitted KVs; reduce: emitted KVs
};

// Timing of one job on the simulated cluster.
struct JobTiming {
  double start = 0.0;               // when the job was submitted (seconds)
  double map_end = 0.0;             // end of the map phase (barrier)
  std::vector<double> reduce_start; // per reduce task (winning attempt)
  double end = 0.0;                 // job completion (makespan)
  // Every scheduled attempt, including failed and speculative ones.
  std::vector<TaskAttemptTiming> map_attempts;
  std::vector<TaskAttemptTiming> reduce_attempts;
};

// FIFO-schedules tasks with the given `costs` (in cost units) onto `slots`
// parallel slots, all available from `start_time` (seconds). Task i is
// assigned, in index order, to the earliest-free slot — the behaviour of a
// Hadoop task scheduler within one job. Returns the start time of each task
// and stores the makespan end time in `*end_time`.
std::vector<double> ScheduleTasks(const std::vector<double>& costs,
                                  int slots, double start_time,
                                  double seconds_per_cost_unit,
                                  double* end_time);

// Heterogeneous variant: `slot_speeds` gives each slot's speed factor; task
// duration on a slot is cost * seconds_per_cost_unit / speed. Same FIFO
// earliest-free-slot policy.
std::vector<double> ScheduleTasksHeterogeneous(
    const std::vector<double>& costs, const std::vector<double>& slot_speeds,
    double start_time, double seconds_per_cost_unit, double* end_time);

// Attempt-aware scheduler used by MapReduceJob. `attempt_costs[i]` holds the
// cost of every executed attempt of task i in attempt order; all but the
// last failed (an empty vector means the task does not exist and is
// skipped). Attempts are dispatched FIFO — first attempts in task order,
// each retry re-queued the moment its predecessor fails — onto the slot
// that can start them earliest (ties to the lowest slot index).
//
// When `speculation.enabled`, slots that fall idle afterwards launch backup
// copies of still-running winning attempts: the candidate with the largest
// remaining time is backed up iff its remaining time exceeds
// `speculation.min_remaining_seconds` and the backup would finish strictly
// earlier; the earlier finisher wins (at most one backup per task, as in
// Hadoop). The makespan counts winning attempts only — a losing straggler
// attempt is killed when its backup completes.
//
// Returns every attempt (regular ones in dispatch order, then speculative
// ones in launch order). `*end_time` receives the makespan;
// `*winning_starts`, if non-null, the start time of each task's winning
// attempt. With single-attempt inputs and speculation off this degenerates
// to exactly ScheduleTasksHeterogeneous.
std::vector<TaskAttemptTiming> ScheduleTaskAttempts(
    const std::vector<std::vector<double>>& attempt_costs,
    const std::vector<double>& slot_speeds, double start_time,
    double seconds_per_cost_unit, const SpeculationConfig& speculation,
    double* end_time, std::vector<double>* winning_starts);

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_CLUSTER_H_

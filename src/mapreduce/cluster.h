#ifndef PROGRES_MAPREDUCE_CLUSTER_H_
#define PROGRES_MAPREDUCE_CLUSTER_H_

#include <cstddef>
#include <vector>

namespace progres {

// Configuration of the simulated Hadoop-style cluster. Mirrors the paper's
// setup (Sec. VI-A1): mu machines, at most two concurrent map and two
// concurrent reduce tasks per machine.
struct ClusterConfig {
  int machines = 10;
  int map_slots_per_machine = 2;
  int reduce_slots_per_machine = 2;

  // Conversion from abstract cost units to simulated seconds. The default
  // makes one million pair comparisons cost ~10 simulated seconds, in the
  // ballpark of the paper's edit-distance match function.
  double seconds_per_cost_unit = 1e-5;

  // Number of real threads used to execute simulated tasks. 0 means use
  // std::thread::hardware_concurrency().
  int execution_threads = 0;

  // Optional per-machine speed factors (1.0 = nominal). Homogeneous when
  // empty. A machine with speed 0.5 takes twice as long per cost unit —
  // models heterogeneous clusters and stragglers.
  std::vector<double> machine_speed;

  int map_slots() const { return machines * map_slots_per_machine; }
  int reduce_slots() const { return machines * reduce_slots_per_machine; }

  // Speed factor of machine `m` (1.0 when unspecified).
  double SpeedOfMachine(int m) const {
    if (m < static_cast<int>(machine_speed.size())) {
      return machine_speed[static_cast<size_t>(m)] > 0.0
                 ? machine_speed[static_cast<size_t>(m)]
                 : 1.0;
    }
    return 1.0;
  }

  // Per-slot speed factors for a phase with `slots_per_machine` slots.
  std::vector<double> SlotSpeeds(int slots_per_machine) const;
};

// FIFO-schedules tasks with the given `costs` (in cost units) onto `slots`
// parallel slots, all available from `start_time` (seconds). Task i is
// assigned, in index order, to the earliest-free slot — the behaviour of a
// Hadoop task scheduler within one job. Returns the start time of each task
// and stores the makespan end time in `*end_time`.
std::vector<double> ScheduleTasks(const std::vector<double>& costs,
                                  int slots, double start_time,
                                  double seconds_per_cost_unit,
                                  double* end_time);

// Heterogeneous variant: `slot_speeds` gives each slot's speed factor; task
// duration on a slot is cost * seconds_per_cost_unit / speed. Same FIFO
// earliest-free-slot policy.
std::vector<double> ScheduleTasksHeterogeneous(
    const std::vector<double>& costs, const std::vector<double>& slot_speeds,
    double start_time, double seconds_per_cost_unit, double* end_time);

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_CLUSTER_H_

#ifndef PROGRES_MAPREDUCE_CLUSTER_H_
#define PROGRES_MAPREDUCE_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/executor.h"
#include "mapreduce/fault.h"

namespace progres {

class TraceRecorder;

// Memory policy of the shuffle data plane (see shuffle.h). `max_bytes` is
// the job-wide budget for buffered map output: each map task may hold its
// share (max_bytes / num_map_tasks, floored at one block) of encoded KV
// blocks in memory before spilling a sorted run to `spill_dir`. 0 (the
// default) disables spilling — buffers grow without bound, the historical
// in-memory behaviour. `block_bytes` sizes the KV blocks (and the spill
// readers' chunks); `spill_dir` empty means the system temp directory.
// Outputs are byte-identical with spilling off or on — only memory
// footprint, the "mr.spill.*" counters and spill trace spans change.
struct ShuffleBudget {
  int64_t max_bytes = 0;
  int64_t block_bytes = 256 * 1024;
  std::string spill_dir;
  // Optional secondary spill directory. A map task whose primary dir
  // becomes unusable mid-attempt (ENOSPC, exhausted write retries) fails
  // over here instead of failing the job; empty means no fallback and the
  // historical sticky-spill-error behaviour.
  std::string fallback_spill_dir;
};

// Configuration of the simulated Hadoop-style cluster. Mirrors the paper's
// setup (Sec. VI-A1): mu machines, at most two concurrent map and two
// concurrent reduce tasks per machine.
struct ClusterConfig {
  int machines = 10;
  int map_slots_per_machine = 2;
  int reduce_slots_per_machine = 2;

  // Conversion from abstract cost units to simulated seconds. The default
  // makes one million pair comparisons cost ~10 simulated seconds, in the
  // ballpark of the paper's edit-distance match function.
  double seconds_per_cost_unit = 1e-5;

  // Which engine executes task attempts (see mapreduce/executor.h). The
  // simulated backend runs them serially — the deterministic reference; the
  // threaded backend runs them concurrently on `execution_threads` pool
  // workers and measures wall-clock time alongside. Outputs and counters
  // are byte-identical either way.
  ExecutionBackend backend = ExecutionBackend::kSimulated;

  // Worker threads of the threaded backend. Ignored by the simulated
  // backend (which is serial); the threaded backend requires >= 1, at most
  // the cluster's slot capacity — more workers than simulated slots would
  // give the wall clock concurrency the modeled cluster does not have.
  // 0 (the default) is only valid with the simulated backend; callers
  // selecting the threaded backend typically pass
  // std::thread::hardware_concurrency().
  int execution_threads = 0;

  // Optional per-machine speed factors (1.0 = nominal). Homogeneous when
  // empty. A machine with speed 0.5 takes twice as long per cost unit —
  // models heterogeneous clusters and stragglers.
  std::vector<double> machine_speed;

  // Deterministic fault injection (task-attempt failures + retry) and
  // speculative execution of stragglers. Both default to off, in which case
  // the runtime is byte- and timing-identical to the pre-fault behaviour.
  FaultConfig fault;
  SpeculationConfig speculation;

  // Job supervision: deadline-driven graceful degradation, the job-wide
  // retry-budget ledger and task quarantine (see mapreduce/supervisor.h).
  // Inactive by default — with `control.active()` false every run is byte-
  // and timing-identical to the unsupervised runtime.
  JobControl control;

  // Optional execution tracing (see mapreduce/trace.h). Strictly
  // observational: attaching a recorder never changes outputs, counters or
  // timings. Not owned; must outlive every job run with this config.
  TraceRecorder* trace = nullptr;

  // Out-of-core shuffle memory budget (spilling off by default).
  ShuffleBudget shuffle_budget;

  int map_slots() const { return machines * map_slots_per_machine; }
  int reduce_slots() const { return machines * reduce_slots_per_machine; }

  // Speed factor of machine `m` (1.0 for machines past the end of
  // `machine_speed`). Listed entries are returned verbatim — non-positive
  // speeds are a configuration error that ValidateClusterConfig rejects at
  // job submission, never silently coerced.
  double SpeedOfMachine(int m) const {
    if (m >= 0 && m < static_cast<int>(machine_speed.size())) {
      return machine_speed[static_cast<size_t>(m)];
    }
    return 1.0;
  }

  // Per-slot speed factors for a phase with `slots_per_machine` slots.
  std::vector<double> SlotSpeeds(int slots_per_machine) const;
};

// Validates a cluster configuration at job submission: machine and slot
// counts >= 1, failure/hang/corruption probabilities in [0, 1],
// max_attempts >= 1, speed factors and time conversions > 0,
// machine-failure events inside the cluster, backoff/blacklist knobs
// non-negative, task_timeout_seconds non-negative, injected hang fractions
// in (0, 1], fetch-retry and skip knobs within range, shuffle-budget bytes
// non-negative with a positive block size, supervisor deadlines and the
// fault budget non-negative. Job supervision (`control.active()`) rejects
// speculative execution: a deadline cut needs one unambiguous winning
// attempt per task to anchor the cut point, and a backup racing its
// original has two. The threaded backend additionally requires
// execution_threads in [1, slot capacity] and rejects speculation and
// machine failures (both live in the simulated timing model). Returns an
// empty string when valid, otherwise a labelled
// description of the first violation.
// MapReduceJob::Run fails cleanly (Result::failed) on a non-empty result
// instead of running with a silently "normalized" config.
std::string ValidateClusterConfig(const ClusterConfig& cluster);

// One scheduled task attempt on the simulated cluster. Failed attempts hold
// the slot until their injected failure fires; the retry is re-queued at
// that moment (Hadoop reschedules failed attempts FIFO). Speculative
// attempts are backup copies launched on idle slots; exactly one attempt
// per task has `won` set — its output is the task's output, and its
// start/end are what the job timing reports.
struct TaskAttemptTiming {
  int task = 0;
  int attempt = 0;   // 0-based; speculative backups reuse the winning index
  int slot = 0;
  double start = 0.0;
  double end = 0.0;
  bool failed = false;       // ended by an injected failure or machine loss
  bool speculative = false;  // backup copy from speculative execution
  bool won = false;          // produced the task's result
  // Killed because its machine died mid-run. The task re-runs the same
  // attempt index on a surviving machine (a machine loss does not count
  // against max_attempts), so one (task, attempt) pair may appear more than
  // once — every occurrence but the last is machine_lost.
  bool machine_lost = false;
  // Hung (heartbeat went silent) and was killed by the task timeout. Always
  // also `failed`; the occurrence held its slot for the work it finished
  // before hanging plus the timeout.
  bool timed_out = false;
};

// Per-task execution statistics (winning attempt only).
struct TaskStats {
  double cost = 0.0;        // cost units charged by the task
  int64_t records_in = 0;   // map: input records; reduce: input values
  int64_t pairs_out = 0;    // map: emitted KVs; reduce: emitted KVs
};

// Measured wall-clock timing of one job run. Unlike the simulated fields
// of JobTiming these are real, nondeterministic measurements — they vary
// run to run and across machines, and nothing downstream of the results
// clock (events, recall curves, counters, goldens) reads them. Benches
// report the two clocks side by side, never conflated.
struct JobWallTiming {
  int threads = 1;             // pool workers (1 = serial simulated backend)
  double map_seconds = 0.0;    // submission to the map/shuffle barrier
  double reduce_seconds = 0.0; // barrier to job completion
  double total_seconds = 0.0;  // submission to job completion
};

// Timing of one job on the simulated cluster, plus the measured wall clock.
struct JobTiming {
  double start = 0.0;               // when the job was submitted (seconds)
  double map_end = 0.0;             // end of the map phase (barrier)
  std::vector<double> reduce_start; // per reduce task (winning attempt)
  double end = 0.0;                 // job completion (makespan)
  // Every scheduled attempt, including failed and speculative ones.
  std::vector<TaskAttemptTiming> map_attempts;
  std::vector<TaskAttemptTiming> reduce_attempts;
  // Measured wall clock of the same run (filled by both backends).
  JobWallTiming wall;
};

// FIFO-schedules tasks with the given `costs` (in cost units) onto `slots`
// parallel slots, all available from `start_time` (seconds). Task i is
// assigned, in index order, to the earliest-free slot — the behaviour of a
// Hadoop task scheduler within one job. Returns the start time of each task
// and stores the makespan end time in `*end_time`.
std::vector<double> ScheduleTasks(const std::vector<double>& costs,
                                  int slots, double start_time,
                                  double seconds_per_cost_unit,
                                  double* end_time);

// Heterogeneous variant: `slot_speeds` gives each slot's speed factor; task
// duration on a slot is cost * seconds_per_cost_unit / speed. Same FIFO
// earliest-free-slot policy.
std::vector<double> ScheduleTasksHeterogeneous(
    const std::vector<double>& costs, const std::vector<double>& slot_speeds,
    double start_time, double seconds_per_cost_unit, double* end_time);

// Attempt-aware scheduler used by MapReduceJob. `attempt_costs[i]` holds the
// cost of every executed attempt of task i in attempt order; all but the
// last failed (an empty vector means the task does not exist and is
// skipped). Attempts are dispatched FIFO — first attempts in task order,
// each retry re-queued the moment its predecessor fails — onto the slot
// that can start them earliest (ties to the lowest slot index).
//
// When `speculation.enabled`, slots that fall idle afterwards launch backup
// copies of still-running winning attempts: the candidate with the largest
// remaining time is backed up iff its remaining time exceeds
// `speculation.min_remaining_seconds` and the backup would finish strictly
// earlier; the earlier finisher wins (at most one backup per task, as in
// Hadoop). The makespan counts winning attempts only — a losing straggler
// attempt is killed when its backup completes.
//
// Returns every attempt (regular ones in dispatch order, then speculative
// ones in launch order). `*end_time` receives the makespan;
// `*winning_starts`, if non-null, the start time of each task's winning
// attempt. With single-attempt inputs and speculation off this degenerates
// to exactly ScheduleTasksHeterogeneous.
std::vector<TaskAttemptTiming> ScheduleTaskAttempts(
    const std::vector<std::vector<double>>& attempt_costs,
    const std::vector<double>& slot_speeds, double start_time,
    double seconds_per_cost_unit, const SpeculationConfig& speculation,
    double* end_time, std::vector<double>* winning_starts);

// Inputs of the machine-aware scheduler beyond the attempt-cost chains.
// With no machine failures, zero backoff and blacklisting off, the schedule
// is bit-identical to ScheduleTaskAttempts.
struct AttemptScheduleOptions {
  std::vector<double> slot_speeds;
  // Slots [m*slots_per_machine, (m+1)*slots_per_machine) belong to machine
  // m — the fault domain of machine failures and blacklisting. 0 puts every
  // slot on machine 0.
  int slots_per_machine = 0;
  double start_time = 0.0;
  double seconds_per_cost_unit = 1.0;
  // Speculative backups are simulated only when `machine_failures` is empty
  // (losing a backup's machine mid-race is out of scope for the model).
  SpeculationConfig speculation;

  // Machine deaths at absolute simulated times. A machine dead at time T
  // runs nothing that starts at or after T; attempts running at T are
  // killed and re-queued on the survivors. A machine already dead before
  // `start_time` contributes no slots at all. If no machine can host a
  // pending task, the phase fails (`failed` below).
  std::vector<MachineFault> machine_failures;

  // Retry hygiene (see FaultConfig): the k-th failure of a task delays its
  // re-dispatch by retry_backoff_seconds * retry_backoff_factor^(k-1);
  // a machine hosting `blacklist_failures` failed attempts stops receiving
  // new ones (0 = off; the last healthy machine is never blacklisted).
  double retry_backoff_seconds = 0.0;
  double retry_backoff_factor = 2.0;
  int blacklist_failures = 0;

  // Recovery model for machine-killed attempts, in task-progress cost
  // units. `attempt_bases[t][a]` is the absolute progress at which planned
  // attempt `a` of task `t` starts (empty: all attempts restart from 0 —
  // the from-scratch model); `recovery_points[t]` holds the task's
  // checkpointed progress marks, ascending (empty: none). A kill at
  // progress p re-runs the same planned attempt from the highest recovery
  // point <= p (at least the attempt's own base); the progress between that
  // point and p is re-executed and accumulated into `replayed_cost_units`.
  std::vector<std::vector<double>> attempt_bases;
  std::vector<std::vector<double>> recovery_points;

  // Hang model: `hang_attempts[t][a]` is non-zero when planned attempt `a`
  // of task `t` hangs (its run cost covers only the progress before the
  // heartbeat stopped). A hung occurrence holds its slot for its run time
  // plus `task_timeout_seconds` before the tracker kills it; the kill goes
  // through the normal failure path (backoff, blacklist). A hung occurrence
  // killed earlier by its machine's death counts as machine-lost, not
  // timed-out; its re-run hangs again.
  std::vector<std::vector<char>> hang_attempts;
  double task_timeout_seconds = 600.0;

  // Shuffle-corruption recovery: extra seconds the *first dispatched
  // occurrence* of task `t` spends re-fetching corrupt partitions and
  // waiting for producing map tasks to re-run, before its processing
  // starts. Later occurrences re-use the repaired fetches. Empty = none.
  std::vector<double> fetch_stall_seconds;

  // Degraded-mode placement: when a task cannot be placed because every
  // machine is dead or blacklisted, record it in `unplaced_tasks` and keep
  // scheduling the remaining tasks instead of failing the phase. Off by
  // default — the historical fail-fast behaviour.
  bool tolerate_unplaced = false;

  // Optional trace sink: attempt spans (with nested checkpoint/backoff
  // children) and machine-death/blacklist instants are recorded under
  // `trace_pid` with `trace_phase` lanes. Purely observational.
  TraceRecorder* trace = nullptr;
  TaskPhase trace_phase = TaskPhase::kMap;
  int trace_pid = 0;
};

// Result of the machine-aware scheduler: the attempt timeline plus the
// fault-domain bookkeeping the runtime exports under "mr." counters.
struct AttemptScheduleOutcome {
  std::vector<TaskAttemptTiming> attempts;
  double end_time = 0.0;
  std::vector<double> winning_starts;
  // Some task could not be placed because every machine was dead or
  // blacklisted — the job must fail cleanly. Never set with
  // `tolerate_unplaced`, which routes such tasks to `unplaced_tasks`.
  bool failed = false;
  int failed_task = -1;
  // Tasks skipped under `tolerate_unplaced`, in dispatch order (each at
  // most once — an unplaced task is never re-queued). They have no winning
  // attempt; `winning_starts` keeps `start_time` for them.
  std::vector<int> unplaced_tasks;
  // Attempts killed by a machine death ("mr.faults.machine_lost").
  int64_t machine_lost_attempts = 0;
  // Hung attempts killed by the heartbeat timeout
  // ("mr.faults.task_timeouts").
  int64_t timeout_kills = 0;
  // Machines whose death fell before this phase's end.
  int machines_lost = 0;
  // Machines blacklisted during this phase ("mr.blacklist.machines").
  int machines_blacklisted = 0;
  // Total simulated re-dispatch delay ("mr.retry.backoff_seconds").
  double backoff_seconds = 0.0;
  // Progress re-executed because of machine kills, in cost units.
  double replayed_cost_units = 0.0;
};

// Machine-aware attempt scheduler: ScheduleTaskAttempts plus machine-level
// fault domains, exponential retry backoff, machine blacklisting and
// checkpoint-aware recovery of machine-killed attempts.
AttemptScheduleOutcome ScheduleTaskAttemptsOnCluster(
    const std::vector<std::vector<double>>& attempt_costs,
    const AttemptScheduleOptions& options);

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_CLUSTER_H_

#include "mapreduce/executor.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "mapreduce/trace.h"

namespace progres {

const char* ToString(ExecutionBackend backend) {
  switch (backend) {
    case ExecutionBackend::kSimulated:
      return "simulated";
    case ExecutionBackend::kThreaded:
      return "threaded";
  }
  return "simulated";
}

bool ParseExecutionBackend(const std::string& name, ExecutionBackend* out) {
  if (name == "simulated") {
    *out = ExecutionBackend::kSimulated;
    return true;
  }
  if (name == "threaded") {
    *out = ExecutionBackend::kThreaded;
    return true;
  }
  return false;
}

ThreadedExecutor::ThreadedExecutor(int threads)
    : pool_(new ThreadPool(std::max(1, threads))) {}

ThreadedExecutor::~ThreadedExecutor() = default;

int ThreadedExecutor::threads() const { return pool_->num_threads(); }

size_t ThreadedExecutor::BeginAttempt(TaskPhase phase, int task, int attempt) {
  WallAttempt record;
  record.phase = phase;
  record.task = task;
  record.attempt = attempt;
  record.worker = std::max(0, ThreadPool::CurrentWorker());
  record.start = Now();
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.push_back(record);
  return attempts_.size() - 1;
}

void ThreadedExecutor::EndAttempt(size_t token, bool failed, bool timed_out) {
  const double end = Now();
  std::lock_guard<std::mutex> lock(mu_);
  WallAttempt& record = attempts_[token];
  record.end = end;
  record.failed = failed;
  record.timed_out = timed_out;
}

void ThreadedExecutor::EndPhase(TaskPhase phase) {
  const double end = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (phase == TaskPhase::kMap) {
    map_end_ = end;
  } else {
    reduce_end_ = end;
  }
}

double ThreadedExecutor::phase_end(TaskPhase phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  return phase == TaskPhase::kMap ? map_end_ : reduce_end_;
}

std::vector<WallAttempt> ThreadedExecutor::attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_;
}

bool ThreadedExecutor::WinningAttempt(TaskPhase phase, int task,
                                      WallAttempt* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The winner is the task's only non-failed attempt (the runner stops the
  // chain at it), so a plain scan suffices.
  for (const WallAttempt& record : attempts_) {
    if (record.phase != phase || record.task != task) continue;
    if (record.failed) continue;
    *out = record;
    return true;
  }
  return false;
}

void ThreadedExecutor::StampAttemptSpans(TraceRecorder* trace, int pid) const {
  const std::vector<WallAttempt> snapshot = attempts();
  for (const WallAttempt& record : snapshot) {
    TraceSpan span;
    span.kind = SpanKind::kAttempt;
    span.phase = record.phase;
    span.pid = pid;
    span.task = record.task;
    span.attempt = record.attempt;
    span.machine = -1;  // no machine fault domain on the wall clock
    span.slot = record.worker;
    span.start = record.start;
    span.end = record.end;
    span.outcome = record.timed_out  ? SpanOutcome::kTimedOut
                   : record.failed  ? SpanOutcome::kFailed
                                    : SpanOutcome::kCompleted;
    trace->RecordSpan(span);
  }
}

}  // namespace progres

#ifndef PROGRES_MAPREDUCE_CHECKPOINT_H_
#define PROGRES_MAPREDUCE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mapreduce/counters.h"

namespace progres {

// Checkpointed progressive recovery for reduce tasks.
//
// A progressive reduce task emits its results every alpha cost units; a
// checkpoint snapshots the task's progress at exactly those emission
// boundaries — the point of the paper's progressiveness is that everything
// before the boundary has already been delivered, so a re-attempt that
// restores the snapshot and resumes mid-schedule loses nothing and repeats
// only the work since the last boundary. Without checkpoints a re-attempt
// replays the task from scratch (the abort-reset path the non-progressive
// drivers keep).
//
// A snapshot captures both halves of a task's state:
//   * the job-side context — cost clock, user counters, emitted outputs and
//     input-progress watermarks (group index / records consumed);
//   * the driver-side state — an opaque, type-erased copy produced by the
//     driver's save hook (for the progressive driver: the resolved-block
//     watermark, per-tree resolved-pair sets and buffered tree groups).
//
// The store also remembers every boundary's cost ("recovery points"): the
// timing model consults them to cost the replacement of an attempt killed
// by a machine failure (cluster.h, AttemptScheduleOptions::recovery_points).
//
// Each reduce task touches only its own slot, so the store needs no
// synchronization beyond the job's task barrier.

// One saved snapshot of a reduce task at an emission boundary.
struct TaskCheckpoint {
  double cost = 0.0;        // task clock (cost units) at the boundary
  int64_t groups = 0;       // reduce groups fully processed
  int64_t records_in = 0;   // input values consumed
  int64_t pairs_out = 0;    // pairs emitted
  size_t outputs = 0;       // length of the task's output vector
  Counters counters;        // user counters at the boundary
  std::shared_ptr<const void> driver_state;  // driver save-hook snapshot
};

// Per-job checkpoint store: the latest snapshot plus the boundary-cost
// history of every reduce task, and the save/restore tallies exported as
// "mr.checkpoint.saved" / "mr.checkpoint.restored".
class CheckpointStore {
 public:
  CheckpointStore() = default;

  // Drops all snapshots and tallies and resizes to `num_tasks` slots.
  // MapReduceJob::Run calls this at submission, so a store can be reused
  // across runs.
  void Reset(int num_tasks);

  int num_tasks() const { return static_cast<int>(slots_.size()); }

  // Latest snapshot of task `t`, or nullptr if none was saved yet.
  const TaskCheckpoint* Latest(int t) const;

  // Saves a snapshot of task `t`, replacing the previous one and appending
  // the boundary's cost to the task's recovery points. Snapshots must
  // advance: a save at or below the latest cost is ignored (a resumed
  // attempt re-crossing an already-saved boundary).
  void Save(int t, TaskCheckpoint checkpoint);

  // Records that a re-attempt of task `t` restored the latest snapshot.
  void NoteRestore(int t);

  // Ascending boundary costs of task `t` — the timing model's recovery
  // points for machine-killed attempts.
  const std::vector<double>& RecoveryPoints(int t) const;

  // Job-wide tallies.
  int64_t saved() const;
  int64_t restored() const;

 private:
  struct Slot {
    std::unique_ptr<TaskCheckpoint> latest;
    std::vector<double> points;
    int64_t saved = 0;
    int64_t restored = 0;
  };
  std::vector<Slot> slots_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_CHECKPOINT_H_

#ifndef PROGRES_MAPREDUCE_CHECKPOINT_H_
#define PROGRES_MAPREDUCE_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mapreduce/counters.h"

namespace progres {

// Checkpointed progressive recovery for reduce tasks.
//
// A progressive reduce task emits its results every alpha cost units; a
// checkpoint snapshots the task's progress at exactly those emission
// boundaries — the point of the paper's progressiveness is that everything
// before the boundary has already been delivered, so a re-attempt that
// restores the snapshot and resumes mid-schedule loses nothing and repeats
// only the work since the last boundary. Without checkpoints a re-attempt
// replays the task from scratch (the abort-reset path the non-progressive
// drivers keep).
//
// A snapshot captures both halves of a task's state:
//   * the job-side context — cost clock, user counters, emitted outputs and
//     input-progress watermarks (group index / records consumed);
//   * the driver-side state — an opaque, type-erased copy produced by the
//     driver's save hook (for the progressive driver: the resolved-block
//     watermark, per-tree resolved-pair sets and buffered tree groups).
//
// The store also remembers every boundary's cost ("recovery points"): the
// timing model consults them to cost the replacement of an attempt killed
// by a machine failure (cluster.h, AttemptScheduleOptions::recovery_points).
//
// Each reduce task touches only its own slot, so the store needs no
// synchronization beyond the job's task barrier.

// One saved snapshot of a reduce task at an emission boundary.
struct TaskCheckpoint {
  double cost = 0.0;        // task clock (cost units) at the boundary
  int64_t groups = 0;       // reduce groups fully processed
  int64_t records_in = 0;   // input values consumed
  int64_t pairs_out = 0;    // pairs emitted
  size_t outputs = 0;       // length of the task's output vector
  Counters counters;        // user counters at the boundary
  std::shared_ptr<const void> driver_state;  // driver save-hook snapshot
  // KvCodec-encoded copy of the task's output vector at the boundary.
  // Filled only when the store persists to disk (an in-process restore
  // reuses the live context's outputs); a resumed *process* decodes it to
  // rebuild the outputs a dead process can no longer hand over.
  std::string encoded_outputs;
};

// Per-job checkpoint store: the latest snapshot plus the boundary-cost
// history of every reduce task, and the save/restore tallies exported as
// "mr.checkpoint.saved" / "mr.checkpoint.restored".
class CheckpointStore {
 public:
  // Type-erased codec for the driver-state half of a snapshot. Installed by
  // the driver alongside its save/restore hooks; without one, persisted
  // snapshots carry an empty driver blob (jobs whose reduce state lives
  // entirely in the job-side context need none).
  using StateEncodeFn =
      std::function<std::string(const std::shared_ptr<const void>&)>;
  using StateDecodeFn =
      std::function<std::shared_ptr<const void>(std::string_view)>;

  CheckpointStore() = default;

  // Arms disk persistence: every accepted Save is also written atomically
  // (temp file + rename) to `dir`/`tag`-task<N>.ckpt, CRC-framed. With
  // `resume`, the next Reset loads the surviving files back — a process
  // killed mid-job can restart and replay only past the last persisted
  // boundary. Snapshots failing validation on load are ignored (and
  // tallied); the task simply replays from scratch. `crash_after_saves`
  // > 0 kills the process (std::_Exit) after that many persisted saves —
  // the deterministic crash hook behind the restart tests and the CLI's
  // --crash-after-checkpoints. Empty `dir` disarms persistence.
  void ConfigurePersistence(std::string dir, std::string tag, bool resume,
                            int crash_after_saves = 0);

  // Installs the driver-state codec used by persisted saves/loads.
  void SetStateCodec(StateEncodeFn encode, StateDecodeFn decode);

  bool persistent() const { return !dir_.empty(); }

  // Drops all snapshots and tallies and resizes to `num_tasks` slots.
  // MapReduceJob::Run calls this at submission, so a store can be reused
  // across runs. Persistence config survives; with resume armed, each
  // task's persisted snapshot (if any, and valid) is loaded back and
  // marked preloaded.
  void Reset(int num_tasks);

  int num_tasks() const { return static_cast<int>(slots_.size()); }

  // Latest snapshot of task `t`, or nullptr if none was saved yet.
  const TaskCheckpoint* Latest(int t) const;

  // Arms boundary-history retention: every accepted Save also keeps a copy
  // of the snapshot, so LatestAtOrBelow can cut a task back to *any*
  // crossed boundary — what deadline enforcement needs. Off by default
  // (only the latest snapshot is kept, the historical memory footprint).
  // Armed by MapReduceJob when job supervision is active; survives Reset.
  void set_keep_history(bool keep) { keep_history_ = keep; }
  bool keep_history() const { return keep_history_; }

  // Highest-cost retained snapshot of task `t` with cost <= `cost`, or
  // nullptr if no crossed boundary qualifies. Requires keep_history();
  // without it only the latest snapshot is consulted.
  const TaskCheckpoint* LatestAtOrBelow(int t, double cost) const;

  // Saves a snapshot of task `t`, replacing the previous one and appending
  // the boundary's cost to the task's recovery points. Snapshots must
  // advance: a save at or below the latest cost is ignored (a resumed
  // attempt re-crossing an already-saved boundary).
  void Save(int t, TaskCheckpoint checkpoint);

  // Records that a re-attempt of task `t` restored the latest snapshot.
  void NoteRestore(int t);

  // Ascending boundary costs of task `t` — the timing model's recovery
  // points for machine-killed attempts.
  const std::vector<double>& RecoveryPoints(int t) const;

  // True while task `t`'s latest snapshot is one loaded from disk by a
  // resume (no save from this process has replaced it yet) — the signal
  // job.h turns into "mr.restart.restored_tasks" and kRestartRestore spans.
  bool Preloaded(int t) const;

  // Job-wide tallies.
  int64_t saved() const;
  int64_t restored() const;
  // Persisted snapshots that failed validation on a resume load.
  int64_t corrupt_checkpoints() const { return corrupt_checkpoints_; }

  // Deletes this store's persisted files (called after a successful job —
  // a finished job must not be "resumed").
  void CleanupPersisted();

 private:
  struct Slot {
    std::unique_ptr<TaskCheckpoint> latest;
    // Every accepted snapshot in ascending cost order (keep_history only).
    std::vector<std::unique_ptr<TaskCheckpoint>> history;
    std::vector<double> points;
    int64_t saved = 0;
    int64_t restored = 0;
    bool preloaded = false;
  };

  std::string PersistPath(int t) const;
  void PersistSave(int t, const TaskCheckpoint& checkpoint);
  bool LoadPersisted(int t, TaskCheckpoint* checkpoint);

  std::vector<Slot> slots_;
  std::string dir_;
  std::string tag_;
  bool keep_history_ = false;
  bool resume_ = false;
  int crash_after_saves_ = 0;
  int64_t persisted_saves_ = 0;
  int64_t corrupt_checkpoints_ = 0;
  StateEncodeFn encode_state_;
  StateDecodeFn decode_state_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_CHECKPOINT_H_

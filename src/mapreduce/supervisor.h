#ifndef PROGRES_MAPREDUCE_SUPERVISOR_H_
#define PROGRES_MAPREDUCE_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/fault.h"

namespace progres {

// Job supervision: deadline-driven graceful degradation (JobControl in
// fault.h). The supervisor turns the runtime's hard failure modes into
// bounded, *reported* degradation:
//
//   * a job-wide retry-budget ledger — planned retries (crashes and hangs,
//     walked in deterministic task order: map tasks 0..M-1, then reduce
//     tasks 0..R-1) are granted from JobControl::fault_budget. A task whose
//     planned retries the ledger cannot fund gets a reduced attempt cap;
//     the first denial trips the budget circuit breaker. When the budget
//     funds every planned retry, every cap equals max_attempts and the run
//     is byte-identical to an unsupervised one. Dynamic failures the plan
//     cannot see (poison-record crashes) spend attempts outside the
//     ledger — the caps bound planned fault storms, not adversarial input;
//   * a disk circuit breaker — once the fault plan marks one map task's
//     primary spill dir full, later tasks skip the per-task ENOSPC
//     discovery and start directly on the fallback dir (one global
//     failover instead of a per-task retry storm). MapReduceJob arms it
//     only when a fallback dir is configured;
//   * completeness reporting — per-task outcomes (complete / cut /
//     cancelled / quarantined) with record coverage, aggregated into the
//     covered-pair fraction callers use to tell a 100% run from a 96% one.
//
// Everything here is a pure function of (JobControl, FaultPlan, task
// counts): both execution backends derive identical ledgers, caps and
// reports. The runtime exports the supervisor's activity under
// "mr.supervisor.*" counters, reconciled 1:1 against the
// kDeadlineCancel / kTaskQuarantine / kBreakerTrip trace spans.

// Fault domains of the retry-budget ledger and its circuit breakers. The
// enum values double as TraceSpan::domain indices.
enum class FaultDomain { kTask = 0, kMachine = 1, kDisk = 2, kData = 3 };

const char* FaultDomainName(FaultDomain domain);

// Outcome of one task in a supervised job.
enum class TaskOutcomeKind {
  kComplete = 0,     // full output delivered
  kCut = 1,          // deadline cut back to a checkpointed prefix
  kCancelled = 2,    // deadline/placement cancelled; no output delivered
  kQuarantined = 3,  // permanently failed; checkpointed prefix (or nothing)
};

const char* TaskOutcomeName(TaskOutcomeKind kind);

// Per-task completeness entry. Reports carry entries only for tasks whose
// outcome is not kComplete — a fully successful supervised run has none.
struct TaskReport {
  TaskPhase phase = TaskPhase::kReduce;
  int task = 0;
  TaskOutcomeKind kind = TaskOutcomeKind::kComplete;
  int64_t records_total = 0;    // input records/values of a full run
  int64_t records_covered = 0;  // records the delivered output covers
  double covered_fraction = 0.0;
};

// Job-level completeness report (Job::Result::completeness and
// ErRunResult::completeness). Inert — all fields zero/default — unless job
// supervision is active.
struct CompletenessReport {
  // True when any task delivered less than its full output. Degraded
  // success: the job's `failed` stays false, this flag tells callers the
  // result is partial.
  bool degraded = false;
  // Aggregate record coverage: records_covered / records_total across all
  // tasks (1.0 when nothing was lost or nothing was supervised).
  double covered_fraction = 1.0;
  int64_t records_total = 0;
  int64_t records_covered = 0;
  // Affected tasks only (kind != kComplete), map tasks before reduce
  // tasks, ascending task ids within a phase.
  std::vector<TaskReport> tasks;
  // Supervisor activity, mirroring the "mr.supervisor.*" counters.
  int64_t deadline_cancels = 0;
  int64_t quarantined_tasks = 0;
  int64_t breaker_trips = 0;
  int64_t retries_denied = 0;

  // Folds another stage's report into this one (multi-stage drivers run
  // one supervised job per stage). Sums record totals and activity,
  // re-derives the aggregate fraction, appends the tasks.
  void MergeFrom(const CompletenessReport& other);

  // Human-readable multi-line summary (the CLI's degraded report).
  std::string ToString() const;
};

// The per-job supervisor: precomputes the retry-budget ledger and the
// breaker state from the fault plan. Constructed (cheaply) by
// MapReduceJob::Run whenever JobControl::active().
class JobSupervisor {
 public:
  JobSupervisor(const JobControl& control, const FaultPlan* plan,
                int num_map_tasks, int num_reduce_tasks);

  bool active() const { return control_.active(); }
  const JobControl& control() const { return control_; }

  // Per-task attempt caps funded by the ledger, map tasks then reduce
  // tasks. Empty when no budget is configured or no faults are planned —
  // the global max_attempts applies unchanged.
  const std::vector<int>& map_attempt_caps() const { return map_caps_; }
  const std::vector<int>& reduce_attempt_caps() const { return reduce_caps_; }

  // Planned retries the ledger refused to fund, and whether that tripped
  // the budget breaker.
  int64_t retries_denied() const { return retries_denied_; }
  bool budget_breaker_tripped() const { return retries_denied_ > 0; }

  // Disk breaker: the lowest map task whose primary spill dir the plan
  // marks full (-1 when none), and whether map task `task` should skip the
  // ENOSPC discovery and start directly on the fallback dir.
  int first_full_task() const { return first_full_task_; }
  bool disk_breaker_tripped() const { return first_full_task_ >= 0; }
  bool StartOnFallback(int task) const {
    return first_full_task_ >= 0 && task > first_full_task_;
  }

 private:
  JobControl control_;
  std::vector<int> map_caps_;
  std::vector<int> reduce_caps_;
  int64_t retries_denied_ = 0;
  int first_full_task_ = -1;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_SUPERVISOR_H_

#include "mapreduce/pipeline.h"

#include <utility>

#include "common/stopwatch.h"
#include "mapreduce/trace.h"

namespace progres {

const StageReport* PipelineResult::Find(const std::string& name) const {
  for (const StageReport& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

void Pipeline::AddStage(std::string name, StageFn fn) {
  stages_.push_back(Stage{std::move(name), std::move(fn)});
}

void Pipeline::AddComputation(std::string name, ComputeFn fn) {
  AddStage(std::move(name), [fn = std::move(fn)](double submit_time) {
    StageResult result;
    Stopwatch watch;
    result.end_time = submit_time + fn(submit_time);
    result.wall_seconds = watch.ElapsedSeconds();
    return result;
  });
}

PipelineResult Pipeline::Run(double submit_time) const {
  PipelineResult result;
  result.start = submit_time;
  result.end = submit_time;
  double clock = submit_time;
  for (const Stage& stage : stages_) {
    StageReport report;
    report.name = stage.name;
    report.start = clock;
    if (trace_ != nullptr) trace_->BeginProcess(stage.name);
    report.result = stage.fn(clock);
    clock = report.result.end_time;
    result.end = clock;
    result.wall_seconds += report.result.wall_seconds;
    result.counters.MergeFrom(report.result.counters);
    const bool failed = report.result.failed;
    if (failed) {
      result.failed = true;
      result.error = report.result.error;
    }
    result.stages.push_back(std::move(report));
    if (failed) break;
  }
  return result;
}

}  // namespace progres

#include "mapreduce/checkpoint.h"

#include <algorithm>
#include <utility>

namespace progres {

void CheckpointStore::Reset(int num_tasks) {
  slots_.clear();
  slots_.resize(static_cast<size_t>(std::max(0, num_tasks)));
}

const TaskCheckpoint* CheckpointStore::Latest(int t) const {
  if (t < 0 || t >= num_tasks()) return nullptr;
  return slots_[static_cast<size_t>(t)].latest.get();
}

void CheckpointStore::Save(int t, TaskCheckpoint checkpoint) {
  if (t < 0 || t >= num_tasks()) return;
  Slot& slot = slots_[static_cast<size_t>(t)];
  if (slot.latest != nullptr && checkpoint.cost <= slot.latest->cost) {
    return;  // re-crossing an already-saved boundary on a resumed attempt
  }
  slot.points.push_back(checkpoint.cost);
  slot.latest = std::make_unique<TaskCheckpoint>(std::move(checkpoint));
  ++slot.saved;
}

void CheckpointStore::NoteRestore(int t) {
  if (t < 0 || t >= num_tasks()) return;
  ++slots_[static_cast<size_t>(t)].restored;
}

const std::vector<double>& CheckpointStore::RecoveryPoints(int t) const {
  static const std::vector<double> kEmpty;
  if (t < 0 || t >= num_tasks()) return kEmpty;
  return slots_[static_cast<size_t>(t)].points;
}

int64_t CheckpointStore::saved() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.saved;
  return total;
}

int64_t CheckpointStore::restored() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.restored;
  return total;
}

}  // namespace progres

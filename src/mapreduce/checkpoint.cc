#include "mapreduce/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>

#include "mapreduce/serde.h"

namespace progres {

namespace {

namespace fs = std::filesystem;

// Binary framing of one persisted snapshot: "PRGC" magic, a version word,
// the fixed fields (doubles as raw IEEE bits, so the round trip is exact),
// the counters, the encoded-outputs blob and the driver-state blob, then a
// CRC32 trailer over everything before it. Little-endian fixed-width
// fields; a reader that runs off the end or fails the CRC rejects the file.
constexpr char kMagic[4] = {'P', 'R', 'G', 'C'};
constexpr uint32_t kVersion = 1;

void AppendU32(std::string* out, uint32_t v) {
  char raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  out->append(raw, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  out->append(raw, sizeof(v));
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendBlob(std::string* out, std::string_view blob) {
  AppendU64(out, blob.size());
  out->append(blob.data(), blob.size());
}

// Bounds-checked sequential reader over a loaded snapshot file.
struct FrameReader {
  std::string_view data;
  size_t pos = 0;
  bool ok = true;

  bool Raw(void* into, size_t n) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(into, data.data() + pos, n);
    pos += n;
    return true;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double Double() {
    const uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string_view Blob() {
    const uint64_t n = U64();
    if (!ok || data.size() - pos < n) {
      ok = false;
      return {};
    }
    const std::string_view blob = data.substr(pos, n);
    pos += n;
    return blob;
  }
};

}  // namespace

void CheckpointStore::ConfigurePersistence(std::string dir, std::string tag,
                                           bool resume,
                                           int crash_after_saves) {
  dir_ = std::move(dir);
  tag_ = std::move(tag);
  resume_ = resume;
  crash_after_saves_ = crash_after_saves;
}

void CheckpointStore::SetStateCodec(StateEncodeFn encode,
                                    StateDecodeFn decode) {
  encode_state_ = std::move(encode);
  decode_state_ = std::move(decode);
}

void CheckpointStore::Reset(int num_tasks) {
  slots_.clear();
  slots_.resize(static_cast<size_t>(std::max(0, num_tasks)));
  persisted_saves_ = 0;
  corrupt_checkpoints_ = 0;
  if (!persistent() || !resume_) return;
  for (int t = 0; t < num_tasks; ++t) {
    TaskCheckpoint checkpoint;
    if (!LoadPersisted(t, &checkpoint)) continue;
    Slot& slot = slots_[static_cast<size_t>(t)];
    // Only the latest boundary survives a process death; it is the one
    // recovery point the resumed timing model can rely on.
    slot.points.push_back(checkpoint.cost);
    slot.latest = std::make_unique<TaskCheckpoint>(std::move(checkpoint));
    slot.preloaded = true;
    if (keep_history_) {
      slot.history.push_back(std::make_unique<TaskCheckpoint>(*slot.latest));
    }
  }
}

const TaskCheckpoint* CheckpointStore::Latest(int t) const {
  if (t < 0 || t >= num_tasks()) return nullptr;
  return slots_[static_cast<size_t>(t)].latest.get();
}

void CheckpointStore::Save(int t, TaskCheckpoint checkpoint) {
  if (t < 0 || t >= num_tasks()) return;
  Slot& slot = slots_[static_cast<size_t>(t)];
  if (slot.latest != nullptr && checkpoint.cost <= slot.latest->cost) {
    return;  // re-crossing an already-saved boundary on a resumed attempt
  }
  slot.points.push_back(checkpoint.cost);
  slot.latest = std::make_unique<TaskCheckpoint>(std::move(checkpoint));
  slot.preloaded = false;
  ++slot.saved;
  if (keep_history_) {
    slot.history.push_back(std::make_unique<TaskCheckpoint>(*slot.latest));
  }
  if (persistent()) PersistSave(t, *slot.latest);
}

const TaskCheckpoint* CheckpointStore::LatestAtOrBelow(int t,
                                                       double cost) const {
  if (t < 0 || t >= num_tasks()) return nullptr;
  const Slot& slot = slots_[static_cast<size_t>(t)];
  // History is ascending by cost (Save rejects non-advancing snapshots),
  // so the first qualifying entry from the back is the highest one.
  for (auto it = slot.history.rbegin(); it != slot.history.rend(); ++it) {
    if ((*it)->cost <= cost) return it->get();
  }
  if (slot.latest != nullptr && slot.latest->cost <= cost) {
    return slot.latest.get();
  }
  return nullptr;
}

void CheckpointStore::NoteRestore(int t) {
  if (t < 0 || t >= num_tasks()) return;
  ++slots_[static_cast<size_t>(t)].restored;
}

bool CheckpointStore::Preloaded(int t) const {
  if (t < 0 || t >= num_tasks()) return false;
  return slots_[static_cast<size_t>(t)].preloaded;
}

const std::vector<double>& CheckpointStore::RecoveryPoints(int t) const {
  static const std::vector<double> kEmpty;
  if (t < 0 || t >= num_tasks()) return kEmpty;
  return slots_[static_cast<size_t>(t)].points;
}

int64_t CheckpointStore::saved() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.saved;
  return total;
}

int64_t CheckpointStore::restored() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.restored;
  return total;
}

void CheckpointStore::CleanupPersisted() {
  if (!persistent()) return;
  std::error_code ec;
  for (int t = 0; t < num_tasks(); ++t) {
    fs::remove(PersistPath(t), ec);
  }
}

std::string CheckpointStore::PersistPath(int t) const {
  return (fs::path(dir_) / (tag_ + "-task" + std::to_string(t) + ".ckpt"))
      .string();
}

void CheckpointStore::PersistSave(int t, const TaskCheckpoint& checkpoint) {
  std::string frame(kMagic, sizeof(kMagic));
  AppendU32(&frame, kVersion);
  AppendU32(&frame, static_cast<uint32_t>(t));
  AppendDouble(&frame, checkpoint.cost);
  AppendU64(&frame, static_cast<uint64_t>(checkpoint.groups));
  AppendU64(&frame, static_cast<uint64_t>(checkpoint.records_in));
  AppendU64(&frame, static_cast<uint64_t>(checkpoint.pairs_out));
  AppendU64(&frame, static_cast<uint64_t>(checkpoint.outputs));
  AppendU64(&frame, checkpoint.counters.values().size());
  for (const auto& [name, value] : checkpoint.counters.values()) {
    AppendBlob(&frame, name);
    AppendU64(&frame, static_cast<uint64_t>(value));
  }
  AppendBlob(&frame, checkpoint.encoded_outputs);
  AppendBlob(&frame, encode_state_ && checkpoint.driver_state != nullptr
                         ? encode_state_(checkpoint.driver_state)
                         : std::string());
  AppendU32(&frame, Crc32(frame));

  // Atomic replace: a crash mid-write leaves either the previous snapshot
  // or none, never a torn one.
  const std::string path = PersistPath(t);
  const std::string temp = path + ".tmp";
  std::error_code ec;
  fs::create_directories(dir_, ec);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(frame.data(),
                           static_cast<std::streamsize>(frame.size()))) {
      fs::remove(temp, ec);
      return;  // persistence is best-effort; the in-memory snapshot stands
    }
    out.flush();
    if (!out) {
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, path, ec);
  if (ec) {
    fs::remove(temp, ec);
    return;
  }
  ++persisted_saves_;
  if (crash_after_saves_ > 0 && persisted_saves_ >= crash_after_saves_) {
    // The deterministic mid-job kill behind the restart tests: no unwind,
    // no atexit — the closest portable stand-in for a machine power-off.
    std::_Exit(17);
  }
}

bool CheckpointStore::LoadPersisted(int t, TaskCheckpoint* checkpoint) {
  std::ifstream in(PersistPath(t), std::ios::binary);
  if (!in) return false;  // no snapshot for this task: not an error
  std::string frame((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto corrupt = [this]() {
    ++corrupt_checkpoints_;
    return false;
  };
  if (frame.size() < sizeof(kMagic) + 2 * sizeof(uint32_t)) return corrupt();
  const size_t body = frame.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, frame.data() + body, sizeof(stored_crc));
  if (Crc32(std::string_view(frame).substr(0, body)) != stored_crc) {
    return corrupt();
  }
  FrameReader reader{std::string_view(frame).substr(0, body)};
  char magic[sizeof(kMagic)];
  if (!reader.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return corrupt();
  }
  if (reader.U32() != kVersion) return corrupt();
  if (reader.U32() != static_cast<uint32_t>(t)) return corrupt();
  checkpoint->cost = reader.Double();
  checkpoint->groups = static_cast<int64_t>(reader.U64());
  checkpoint->records_in = static_cast<int64_t>(reader.U64());
  checkpoint->pairs_out = static_cast<int64_t>(reader.U64());
  checkpoint->outputs = static_cast<size_t>(reader.U64());
  const uint64_t num_counters = reader.U64();
  for (uint64_t i = 0; reader.ok && i < num_counters; ++i) {
    const std::string_view name = reader.Blob();
    const int64_t value = static_cast<int64_t>(reader.U64());
    if (reader.ok) checkpoint->counters.Increment(std::string(name), value);
  }
  checkpoint->encoded_outputs = std::string(reader.Blob());
  const std::string_view state = reader.Blob();
  if (!reader.ok || reader.pos != reader.data.size()) return corrupt();
  checkpoint->driver_state =
      decode_state_ && !state.empty() ? decode_state_(state) : nullptr;
  if (!state.empty() && checkpoint->driver_state == nullptr) {
    return corrupt();  // the codec rejected the blob
  }
  return true;
}

}  // namespace progres

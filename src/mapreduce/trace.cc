#include "mapreduce/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

namespace progres {

namespace {

// Shortest round-trippable decimal form, matching the golden fixtures'
// number formatting.
std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string FormatFixed(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  return buffer;
}

// Simulated seconds -> trace_event microseconds.
std::string FormatTs(double seconds) { return FormatDouble(seconds * 1e6); }

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* PhaseName(TaskPhase phase) {
  return phase == TaskPhase::kMap ? "map" : "reduce";
}

const char* OutcomeName(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kCompleted:
      return "completed";
    case SpanOutcome::kFailed:
      return "failed";
    case SpanOutcome::kMachineLost:
      return "machine-lost";
    case SpanOutcome::kLostSpeculation:
      return "lost-speculation";
    case SpanOutcome::kTimedOut:
      return "timed-out";
    case SpanOutcome::kNone:
      break;
  }
  return "none";
}

const char* InstantName(InstantKind kind) {
  switch (kind) {
    case InstantKind::kMachineDeath:
      return "machine death";
    case InstantKind::kMachineBlacklisted:
      return "machine blacklisted";
    case InstantKind::kShuffleCorruption:
      return "shuffle corruption";
    case InstantKind::kRecordQuarantined:
      return "record quarantined";
  }
  return "instant";
}

// Args payload of an instant: machine-level kinds report the machine,
// data-plane kinds the tasks/record involved.
std::string InstantArgs(const TraceInstant& instant) {
  if (instant.kind == InstantKind::kShuffleCorruption) {
    return "{\"task\":" + std::to_string(instant.task) +
           ",\"map_task\":" + std::to_string(instant.peer_task) +
           ",\"phase\":\"" + PhaseName(instant.phase) + "\"}";
  }
  if (instant.kind == InstantKind::kRecordQuarantined) {
    return "{\"task\":" + std::to_string(instant.task) +
           ",\"record\":" + std::to_string(instant.record) +
           ",\"phase\":\"" + PhaseName(instant.phase) + "\"}";
  }
  return "{\"machine\":" + std::to_string(instant.machine) +
         ",\"phase\":\"" + std::string(PhaseName(instant.phase)) + "\"}";
}

// Fault-domain names of supervisor breaker spans (FaultDomain indices).
const char* DomainName(int domain) {
  switch (domain) {
    case 0:
      return "task";
    case 1:
      return "machine";
    case 2:
      return "disk";
    case 3:
      return "data";
    default:
      return "unknown";
  }
}

bool IsSupervisorSpan(SpanKind kind) {
  return kind == SpanKind::kDeadlineCancel ||
         kind == SpanKind::kTaskQuarantine || kind == SpanKind::kBreakerTrip;
}

int LaneOf(const TraceSpan& span) {
  if (span.kind == SpanKind::kRetryBackoff) {
    return BackoffLane(span.phase, span.task);
  }
  if (IsSupervisorSpan(span.kind)) return kClusterLane;
  return SlotLane(span.phase, span.slot);
}

int LaneOf(const AlphaEmission& emission) {
  return emission.slot >= 0 ? SlotLane(TaskPhase::kReduce, emission.slot)
                            : kClusterLane;
}

// Human name of an export lane, decoded from the id ranges in trace.h.
std::string LaneName(int lane) {
  if (lane == kClusterLane) return "cluster";
  if (lane >= 400000) return "reduce backoff task " + std::to_string(lane - 400000);
  if (lane >= 300000) return "map backoff task " + std::to_string(lane - 300000);
  if (lane >= 200000) return "reduce slot " + std::to_string(lane - 200000);
  return "map slot " + std::to_string(lane - 100000);
}

std::string SpanName(const TraceSpan& span) {
  switch (span.kind) {
    case SpanKind::kAttempt: {
      std::string name = std::string(PhaseName(span.phase)) + " task " +
                         std::to_string(span.task) + " attempt " +
                         std::to_string(span.attempt);
      if (span.speculative) name += " (speculative)";
      return name;
    }
    case SpanKind::kShuffle:
      return "shuffle task " + std::to_string(span.task);
    case SpanKind::kCheckpointSave:
      return "checkpoint save task " + std::to_string(span.task);
    case SpanKind::kCheckpointRestore:
      return "checkpoint restore task " + std::to_string(span.task);
    case SpanKind::kRetryBackoff:
      return "retry backoff task " + std::to_string(span.task);
    case SpanKind::kSpillWrite:
      return "spill run task " + std::to_string(span.task);
    case SpanKind::kSpillMerge:
      return "spill merge task " + std::to_string(span.task);
    case SpanKind::kSpillRetry:
      return "spill retry task " + std::to_string(span.task);
    case SpanKind::kRunCorrupt:
      return "corrupt spill run task " + std::to_string(span.task);
    case SpanKind::kRestartRestore:
      return "restart restore task " + std::to_string(span.task);
    case SpanKind::kDeadlineCancel:
      return "deadline cancel " + std::string(PhaseName(span.phase)) +
             " task " + std::to_string(span.task);
    case SpanKind::kTaskQuarantine:
      return "quarantine " + std::string(PhaseName(span.phase)) + " task " +
             std::to_string(span.task);
    case SpanKind::kBreakerTrip:
      return "breaker trip (" + std::string(DomainName(span.domain)) + ")";
  }
  return "span";
}

const char* SpanCategory(const TraceSpan& span) {
  switch (span.kind) {
    case SpanKind::kAttempt:
      return PhaseName(span.phase);
    case SpanKind::kShuffle:
      return "shuffle";
    case SpanKind::kCheckpointSave:
    case SpanKind::kCheckpointRestore:
      return "checkpoint";
    case SpanKind::kRetryBackoff:
      return "backoff";
    case SpanKind::kSpillWrite:
    case SpanKind::kSpillMerge:
      return "spill";
    case SpanKind::kSpillRetry:
    case SpanKind::kRunCorrupt:
      return "disk-fault";
    case SpanKind::kRestartRestore:
      return "restart";
    case SpanKind::kDeadlineCancel:
    case SpanKind::kTaskQuarantine:
    case SpanKind::kBreakerTrip:
      return "supervisor";
  }
  return "span";
}

std::string SpanArgs(const TraceSpan& span) {
  std::string args = "{\"task\":" + std::to_string(span.task) +
                     ",\"attempt\":" + std::to_string(span.attempt);
  if (span.kind == SpanKind::kAttempt) {
    args += ",\"machine\":" + std::to_string(span.machine);
    args += ",\"slot\":" + std::to_string(span.slot);
    args += ",\"outcome\":\"" + std::string(OutcomeName(span.outcome)) + "\"";
    args += ",\"speculative\":" + std::string(span.speculative ? "true"
                                                              : "false");
  }
  if (span.records_in >= 0) {
    args += ",\"records_in\":" + std::to_string(span.records_in);
  }
  if (span.bytes >= 0) {
    args += ",\"bytes\":" + std::to_string(span.bytes);
  }
  if (span.cost_units >= 0.0) {
    args += ",\"cost_units\":" + FormatDouble(span.cost_units);
  }
  if (span.domain >= 0) {
    args += ",\"domain\":\"" + std::string(DomainName(span.domain)) + "\"";
  }
  args += "}";
  return args;
}

}  // namespace

int TraceRecorder::BeginProcess(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  processes_.push_back(name);
  current_pid_ = static_cast<int>(processes_.size()) - 1;
  return current_pid_;
}

int TraceRecorder::current_pid() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_pid_;
}

int TraceRecorder::PidOf(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void TraceRecorder::RecordSpan(const TraceSpan& span) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

void TraceRecorder::RecordInstant(const TraceInstant& instant) {
  const std::lock_guard<std::mutex> lock(mu_);
  instants_.push_back(instant);
}

void TraceRecorder::RecordEmission(const AlphaEmission& emission) {
  const std::lock_guard<std::mutex> lock(mu_);
  emissions_.push_back(emission);
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instants_;
}

std::vector<AlphaEmission> TraceRecorder::emissions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emissions_;
}

std::vector<std::string> TraceRecorder::process_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return processes_;
}

bool TraceRecorder::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.empty() && instants_.empty() && emissions_.empty();
}

std::string TraceRecorder::ToChromeJson() const {
  std::vector<TraceSpan> spans;
  std::vector<TraceInstant> instants;
  std::vector<AlphaEmission> emissions;
  std::vector<std::string> processes;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    instants = instants_;
    emissions = emissions_;
    processes = processes_;
  }

  std::vector<std::string> events;

  // ---- Metadata: process names, then every used lane's thread name ----
  for (size_t pid = 0; pid < processes.size(); ++pid) {
    events.push_back("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                     std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
                     EscapeJson(processes[pid]) + "\"}}");
  }
  std::map<std::pair<int, int>, bool> lanes;  // ordered -> deterministic
  for (const TraceSpan& span : spans) lanes[{span.pid, LaneOf(span)}] = true;
  for (const TraceInstant& i : instants) lanes[{i.pid, kClusterLane}] = true;
  for (const AlphaEmission& e : emissions) lanes[{e.pid, LaneOf(e)}] = true;
  for (const auto& [lane, unused] : lanes) {
    (void)unused;
    events.push_back("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                     std::to_string(lane.first) + ",\"tid\":" +
                     std::to_string(lane.second) + ",\"args\":{\"name\":\"" +
                     EscapeJson(LaneName(lane.second)) + "\"}}");
  }

  // ---- Spans & instants in recorded (deterministic) order ----
  for (const TraceSpan& span : spans) {
    events.push_back(
        "{\"ph\":\"X\",\"name\":\"" + EscapeJson(SpanName(span)) +
        "\",\"cat\":\"" + SpanCategory(span) + "\",\"pid\":" +
        std::to_string(span.pid) + ",\"tid\":" + std::to_string(LaneOf(span)) +
        ",\"ts\":" + FormatTs(span.start) + ",\"dur\":" +
        FormatTs(span.end - span.start) + ",\"args\":" + SpanArgs(span) + "}");
  }
  for (const TraceInstant& instant : instants) {
    events.push_back(
        "{\"ph\":\"i\",\"s\":\"p\",\"name\":\"" +
        std::string(InstantName(instant.kind)) +
        "\",\"cat\":\"fault\",\"pid\":" + std::to_string(instant.pid) +
        ",\"tid\":" + std::to_string(kClusterLane) + ",\"ts\":" +
        FormatTs(instant.time) + ",\"args\":" + InstantArgs(instant) + "}");
  }
  for (const AlphaEmission& emission : emissions) {
    events.push_back(
        "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"alpha emission\",\"cat\":"
        "\"emission\",\"pid\":" +
        std::to_string(emission.pid) + ",\"tid\":" +
        std::to_string(LaneOf(emission)) + ",\"ts\":" +
        FormatTs(emission.time) + ",\"args\":{\"task\":" +
        std::to_string(emission.task) + ",\"pairs\":" +
        std::to_string(emission.pairs) + ",\"cumulative_pairs\":" +
        std::to_string(emission.cumulative_pairs) + "}}");
  }

  // ---- Recall-over-time for free: a per-process cumulative counter track
  // of pairs emitted, from the emission instants sorted by flush time ----
  std::vector<AlphaEmission> ordered = emissions;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const AlphaEmission& a, const AlphaEmission& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.task < b.task;
                   });
  std::map<int, int64_t> total_per_pid;
  for (const AlphaEmission& emission : ordered) {
    const int64_t total = total_per_pid[emission.pid] += emission.pairs;
    events.push_back(
        "{\"ph\":\"C\",\"name\":\"pairs emitted\",\"pid\":" +
        std::to_string(emission.pid) + ",\"tid\":" +
        std::to_string(kClusterLane) + ",\"ts\":" + FormatTs(emission.time) +
        ",\"args\":{\"pairs\":" + std::to_string(total) + "}}");
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    out += "\n";
    out += events[i];
    if (i + 1 < events.size()) out += ",";
  }
  out += "\n]}\n";
  return out;
}

std::string TraceRecorder::ToSlotTimeline() const {
  std::vector<TraceSpan> spans;
  std::vector<TraceInstant> instants;
  std::vector<AlphaEmission> emissions;
  std::vector<std::string> processes;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    instants = instants_;
    emissions = emissions_;
    processes = processes_;
  }

  // Group spans by (pid, lane), keeping recorded order inside a lane so
  // children print right after their attempt.
  std::map<std::pair<int, int>, std::vector<const TraceSpan*>> by_lane;
  std::vector<int> pids;
  for (const TraceSpan& span : spans) {
    by_lane[{span.pid, LaneOf(span)}].push_back(&span);
  }
  for (const auto& [key, unused] : by_lane) {
    (void)unused;
    if (pids.empty() || pids.back() != key.first) pids.push_back(key.first);
  }
  for (const TraceInstant& instant : instants) {
    if (std::find(pids.begin(), pids.end(), instant.pid) == pids.end()) {
      pids.push_back(instant.pid);
    }
  }
  for (const AlphaEmission& emission : emissions) {
    if (std::find(pids.begin(), pids.end(), emission.pid) == pids.end()) {
      pids.push_back(emission.pid);
    }
  }
  std::sort(pids.begin(), pids.end());

  std::string out;
  for (const int pid : pids) {
    const std::string name =
        pid >= 0 && pid < static_cast<int>(processes.size())
            ? processes[static_cast<size_t>(pid)]
            : std::string("(default)");
    out += "process " + std::to_string(pid) + " \"" + name + "\"\n";
    for (const auto& [key, lane_spans] : by_lane) {
      if (key.first != pid) continue;
      out += "  " + LaneName(key.second) + ":\n";
      for (const TraceSpan* span : lane_spans) {
        out += "    [" + FormatFixed(span->start) + ", " +
               FormatFixed(span->end) + ") " + SpanName(*span);
        if (span->kind == SpanKind::kAttempt) {
          out += " machine=" + std::to_string(span->machine) + " " +
                 OutcomeName(span->outcome);
        } else if (span->kind == SpanKind::kShuffle) {
          out += " records_in=" + std::to_string(span->records_in);
        } else if (span->kind == SpanKind::kSpillWrite ||
                   span->kind == SpanKind::kSpillMerge ||
                   span->kind == SpanKind::kRunCorrupt) {
          out += " records=" + std::to_string(span->records_in) +
                 " bytes=" + std::to_string(span->bytes);
        } else if (span->kind == SpanKind::kCheckpointSave ||
                   span->kind == SpanKind::kCheckpointRestore ||
                   span->kind == SpanKind::kRestartRestore) {
          out += " @" + FormatFixed(span->cost_units);
        } else if (span->kind == SpanKind::kDeadlineCancel &&
                   span->cost_units >= 0.0) {
          out += " cut@" + FormatFixed(span->cost_units);
        }
        out += "\n";
      }
    }
    bool header = false;
    for (const TraceInstant& instant : instants) {
      if (instant.pid != pid) continue;
      if (!header) {
        out += "  instants:\n";
        header = true;
      }
      if (instant.kind == InstantKind::kShuffleCorruption) {
        out += "    [" + FormatFixed(instant.time) + "] reduce task " +
               std::to_string(instant.task) +
               " corrupt fetch from map task " +
               std::to_string(instant.peer_task) + "\n";
      } else if (instant.kind == InstantKind::kRecordQuarantined) {
        out += "    [" + FormatFixed(instant.time) + "] map task " +
               std::to_string(instant.task) + " quarantined record " +
               std::to_string(instant.record) + "\n";
      } else {
        out += "    [" + FormatFixed(instant.time) + "] machine " +
               std::to_string(instant.machine) + " " +
               (instant.kind == InstantKind::kMachineDeath ? "death"
                                                           : "blacklisted") +
               " (" + PhaseName(instant.phase) + ")\n";
      }
    }
    header = false;
    for (const AlphaEmission& emission : emissions) {
      if (emission.pid != pid) continue;
      if (!header) {
        out += "  emissions:\n";
        header = true;
      }
      out += "    [" + FormatFixed(emission.time) + "] task " +
             std::to_string(emission.task) + " +" +
             std::to_string(emission.pairs) + " pairs (cumulative " +
             std::to_string(emission.cumulative_pairs) + ")\n";
    }
  }
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << ToChromeJson();
  return static_cast<bool>(out);
}

}  // namespace progres

#ifndef PROGRES_MAPREDUCE_PIPELINE_H_
#define PROGRES_MAPREDUCE_PIPELINE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/counters.h"

namespace progres {

// Outcome of one pipeline stage. MapReduce stages carry the job's timing,
// stats and counters; computation stages (driver-side work charged as clock
// time, e.g. schedule generation) carry only an end time.
struct StageResult {
  bool failed = false;
  std::string error;
  // Simulated completion time (seconds); the next stage is submitted here.
  double end_time = 0.0;
  // Measured wall-clock duration of the stage (seconds). A real
  // measurement, never on the simulated clock — reported alongside it,
  // never mixed into end_time.
  double wall_seconds = 0.0;
  Counters counters;
  JobTiming timing;
  std::vector<TaskStats> map_stats;
  std::vector<TaskStats> reduce_stats;
};

// Adapts a MapReduceJob<...>::Result into a StageResult. `error_prefix`
// labels the stage's failure ("basic job" -> "basic job: <runtime error>");
// empty keeps the error verbatim (for errors already labelled upstream).
template <typename JobResult>
StageResult StageResultFromJob(JobResult&& result,
                               const std::string& error_prefix) {
  StageResult stage;
  stage.failed = result.failed;
  stage.error = error_prefix.empty() || result.error.empty()
                    ? result.error
                    : error_prefix + ": " + result.error;
  stage.end_time = result.timing.end;
  stage.wall_seconds = result.timing.wall.total_seconds;
  stage.counters = std::move(result.counters);
  stage.timing = std::move(result.timing);
  stage.map_stats = std::move(result.map_stats);
  stage.reduce_stats = std::move(result.reduce_stats);
  return stage;
}

// One executed stage of a pipeline run.
struct StageReport {
  std::string name;
  double start = 0.0;  // simulated submit time of this stage
  StageResult result;
};

// Outcome of a Pipeline run.
struct PipelineResult {
  // Counters merged across every executed stage, including a failing one
  // (so the runtime's "mr." bookkeeping survives failures). The data-plane
  // fault tallies ("mr.disk.*", "mr.restart.*") merge like any other "mr."
  // counter: a pipeline whose statistics and resolution jobs both hit
  // injected disk faults reports their sum here, while the per-stage
  // reports keep the per-job values the trace spans reconcile against.
  Counters counters;
  std::vector<StageReport> stages;
  double start = 0.0;
  double end = 0.0;  // end of the last executed stage
  // Total measured wall-clock seconds across the executed stages.
  double wall_seconds = 0.0;
  bool failed = false;
  // Verbatim from the failing stage (stages label their own errors).
  std::string error;

  // Report of the stage named `name`, or nullptr if it did not execute.
  const StageReport* Find(const std::string& name) const;
};

// Chains multiple MapReduce jobs (and driver-side computations between
// them) on one simulated cluster: each stage is submitted at the previous
// stage's simulated end time, counters merge across stages, and the first
// failing stage stops the pipeline with its error. This is the multi-job
// structure every ER driver shares — MRSN runs one job per blocking-family
// pass, the progressive approach chains the statistics job, schedule
// generation and the resolution job.
class Pipeline {
 public:
  // Runs one stage submitted at `submit_time`; returns its outcome.
  using StageFn = std::function<StageResult(double submit_time)>;
  // Driver-side computation charged as simulated time; returns its
  // duration in seconds. Never fails.
  using ComputeFn = std::function<double(double submit_time)>;

  // Appends a MapReduce (or custom) stage.
  void AddStage(std::string name, StageFn fn);

  // Appends a computation stage: end_time = submit_time + fn(submit_time).
  void AddComputation(std::string name, ComputeFn fn);

  // Attaches a trace recorder: Run registers each stage as a trace process
  // (TraceRecorder::BeginProcess) right before executing it, so spans the
  // stage records group under a per-stage pid. Observational only.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  // Executes the stages in order, starting at `submit_time`. Stops after
  // the first failing stage; its report is still included and its counters
  // still merged.
  PipelineResult Run(double submit_time = 0.0) const;

 private:
  struct Stage {
    std::string name;
    StageFn fn;
  };
  std::vector<Stage> stages_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_PIPELINE_H_

#ifndef PROGRES_MAPREDUCE_SPILL_H_
#define PROGRES_MAPREDUCE_SPILL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace progres {

// File plumbing of the out-of-core shuffle (see shuffle.h). A map task
// whose in-memory KV blocks cross the task's share of the shuffle budget
// writes a *spill run*: one private file holding every partition's sorted
// (and combined) records back to back, with the per-partition byte ranges
// kept in memory. The reduce-side gather then k-way merges the runs with
// the in-memory tail through buffered segment readers, so peak memory stays
// bounded by the budget, not the data.

// Byte range of one partition inside a spill-run file.
struct SpillSegment {
  int64_t offset = 0;
  int64_t bytes = 0;
  int64_t records = 0;
};

// One spill run: the file plus its partition index and totals. `crc` is
// the CRC32 of the whole file as written; ValidateSpillRun re-reads the
// file against it to catch torn writes and at-rest corruption before the
// reduce-side merge trusts the bytes.
struct SpillRun {
  std::string path;
  std::vector<SpillSegment> segments;
  int64_t records = 0;  // across all partitions
  int64_t bytes = 0;    // file size as written
  uint32_t crc = 0;     // CRC32 over the file as written
};

// Resolves and prepares the spill directory: `dir` itself, or the system
// temporary directory when empty. Creates it if missing and probes
// writability with a throwaway file. On failure returns an empty string and
// sets `*error` to a labelled description; MapReduceJob::Run fails the job
// with it instead of discovering the problem mid-spill.
std::string ResolveSpillDir(const std::string& dir, std::string* error);

// A collision-free path for the next spill run of map task `task`'s
// execution `attempt`, under `dir`. Uniqueness combines the process id with
// a process-wide counter, so concurrent jobs (and map tasks on pool
// workers) never reuse a name; the attempt id keeps a re-run or speculative
// execution of the task from ever resolving to a stale run file left by a
// killed attempt.
std::string NextSpillPath(const std::string& dir, int task, int attempt = 0);

// Writes `partitions` (one encoded payload per partition, concatenated in
// partition order) to `path` and fills `*run` with the path, segment index
// and totals. `records_per_partition[r]` is the record count of payload r.
// False on I/O failure (the file is removed; `*run` is unspecified).
bool WriteSpillRun(const std::string& path,
                   const std::vector<std::string>& partitions,
                   const std::vector<int64_t>& records_per_partition,
                   SpillRun* run);

// Removes a spill-run file, ignoring errors (cleanup paths must not throw).
void RemoveSpillFile(const std::string& path);

// Re-reads the run's file and checks it against the size and CRC32 recorded
// at write time. False on a short/overlong file, a CRC mismatch, or any
// read error — the run cannot be trusted and its producer must re-run.
bool ValidateSpillRun(const SpillRun& run);

// Deterministic storage-fault materializers (spill fault injection).
// TruncateSpillFile shortens the file to `bytes` (a torn write: the writer
// saw success, the tail never hit the platter). CorruptSpillByte flips one
// bit of the byte at `offset` (at-rest corruption). Both return false when
// the file cannot be rewritten.
bool TruncateSpillFile(const std::string& path, int64_t bytes);
bool CorruptSpillByte(const std::string& path, int64_t offset);

// Buffered sequential reader over one segment of a spill-run file. The
// caller decodes records from window() and Consume()s them; when a decode
// fails because the window ends mid-record, Refill() appends the next chunk
// (false once the segment is fully buffered or on I/O error — see ok()).
class SpillSegmentReader {
 public:
  SpillSegmentReader(const std::string& path, const SpillSegment& segment,
                     size_t chunk_bytes);

  // False after an open/seek/read failure; the window is then unspecified.
  bool ok() const { return ok_; }

  // The unconsumed buffered bytes of the segment.
  std::string_view window() const {
    return std::string_view(buffer_).substr(pos_);
  }

  // Drops `n` decoded bytes from the front of the window.
  void Consume(size_t n) { pos_ += n; }

  // True when the window is empty and no segment bytes remain unread.
  bool exhausted() const { return pos_ >= buffer_.size() && remaining_ == 0; }

  // Reads the next chunk of the segment into the window. Returns false when
  // nothing more can be added (segment end, or an I/O error — check ok()).
  bool Refill();

 private:
  std::ifstream file_;
  std::string buffer_;
  size_t pos_ = 0;         // consumed prefix of buffer_
  int64_t remaining_ = 0;  // unread segment bytes past the buffer
  size_t chunk_bytes_;
  bool ok_ = true;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_SPILL_H_

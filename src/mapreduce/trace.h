#ifndef PROGRES_MAPREDUCE_TRACE_H_
#define PROGRES_MAPREDUCE_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mapreduce/fault.h"

namespace progres {

// Runtime tracing of the simulated cluster. A TraceRecorder collects typed
// spans and instant events on the *simulated* clock — per task-attempt
// spans with machine/slot placement and an outcome, nested phase marks
// (shuffle delivery, checkpoint save/restore, retry backoff) and instants
// for machine deaths, blacklistings and alpha-emission flushes — and
// exports them as Chrome trace_event JSON (loadable in chrome://tracing or
// https://ui.perfetto.dev) or as a plain-text per-slot timeline.
//
// Recording is strictly observational: a job run with a recorder attached
// (ClusterConfig::trace) produces byte-identical outputs, counters and
// timings to one without — tests/trace_test.cc and the golden fixtures
// enforce this. All recording during a simulated run happens on the
// driver's thread in deterministic schedule order, so the exports are
// byte-stable across runs; the recorder is nonetheless mutex-protected so
// concurrent producers (e.g. bench harnesses) may share one instance.
//
// Export identifiers: `pid` is the pipeline stage (one process per
// Pipeline stage, registered via BeginProcess), `tid` is a lane — slot
// lanes carry attempt spans and their nested children, per-task backoff
// lanes carry re-dispatch delays (the slot is reused while a task waits),
// and lane 0 is the per-process cluster lane for machine-level instants.

enum class SpanKind {
  kAttempt,            // one scheduled task-attempt occurrence
  kShuffle,            // reduce input delivered to the winning attempt
  kCheckpointSave,     // snapshot at an alpha-emission boundary
  kCheckpointRestore,  // attempt resumed from the latest snapshot
  kRetryBackoff,       // re-dispatch delay after a failure
  kSpillWrite,         // a map task wrote a sorted spill run to disk
  kSpillMerge,         // a reduce gather k-way merged spill runs
  kSpillRetry,         // a spill write failed transiently and was retried
  kRunCorrupt,         // a spill run failed CRC validation at the barrier
  kRestartRestore,     // a task resumed from a persisted checkpoint file
  // Job-supervisor events (see mapreduce/supervisor.h). Recorded on the
  // cluster lane; each reconciles 1:1 against an "mr.supervisor.*" counter.
  kDeadlineCancel,     // a task was cut or cancelled at the job deadline
  kTaskQuarantine,     // a permanently failing task was quarantined
  kBreakerTrip,        // a fault-domain circuit breaker tripped
};

// How an attempt span ended. Non-attempt spans keep kNone.
enum class SpanOutcome {
  kNone,
  kCompleted,        // ran to completion and produced the task's result
  kFailed,           // ended by an injected task-attempt failure
  kMachineLost,      // killed because its machine died mid-run
  kLostSpeculation,  // completed but lost the race against its backup copy
  kTimedOut,         // hung and was killed by the heartbeat timeout
};

struct TraceSpan {
  SpanKind kind = SpanKind::kAttempt;
  TaskPhase phase = TaskPhase::kMap;
  int pid = 0;
  int task = 0;
  int attempt = 0;
  int machine = -1;
  int slot = -1;  // -1 for backoff spans (they live on per-task lanes)
  double start = 0.0;  // simulated seconds
  double end = 0.0;
  bool speculative = false;
  SpanOutcome outcome = SpanOutcome::kNone;
  // Shuffle/spill spans: input values delivered to the reduce task, spill
  // records written, or spill records merged (-1 unset).
  int64_t records_in = -1;
  // Spill spans: encoded bytes written to / read back from spill runs
  // (-1 unset; unset fields are omitted from the exports, so traces
  // without spills are byte-identical to before the field existed).
  int64_t bytes = -1;
  // Checkpoint spans: the boundary's absolute task progress (-1 unset).
  double cost_units = -1.0;
  // Supervisor breaker spans: the fault domain that tripped, as an index
  // into {task, machine, disk, data} (FaultDomain in supervisor.h;
  // -1 unset and omitted from the exports).
  int domain = -1;
};

enum class InstantKind {
  kMachineDeath,
  kMachineBlacklisted,
  kShuffleCorruption,   // a reduce fetch failed its partition checksum
  kRecordQuarantined,   // skip-bad-records quarantined a poison record
};

struct TraceInstant {
  InstantKind kind = InstantKind::kMachineDeath;
  TaskPhase phase = TaskPhase::kMap;
  int pid = 0;
  int machine = 0;
  double time = 0.0;
  // Data-plane instants: the consuming/owning task, the producing map task
  // of a corrupt fetch, and the quarantined record index (-1 unset).
  int task = -1;
  int peer_task = -1;
  int64_t record = -1;
};

// One alpha-emission: a reduce task closed an incremental-output chunk.
struct AlphaEmission {
  int pid = 0;
  int task = 0;
  int slot = -1;  // slot of the winning reduce attempt (-1 unknown)
  double time = 0.0;
  int64_t pairs = 0;             // pairs in this chunk
  int64_t cumulative_pairs = 0;  // task-cumulative pairs at this flush
};

// Export thread-lane ids. The ranges keep map/reduce slots and per-task
// backoff lanes disjoint for any realistic cluster or task count.
inline constexpr int kClusterLane = 0;
inline int SlotLane(TaskPhase phase, int slot) {
  return (phase == TaskPhase::kMap ? 100000 : 200000) + slot;
}
inline int BackoffLane(TaskPhase phase, int task) {
  return (phase == TaskPhase::kMap ? 300000 : 400000) + task;
}

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Registers a new process (pipeline stage) and makes it current;
  // subsequent spans recorded with current_pid() group under it. Returns
  // the new pid. Without any BeginProcess call everything records under
  // the default pid 0.
  int BeginProcess(const std::string& name);
  int current_pid() const;

  // First registered process with `name`, or -1.
  int PidOf(const std::string& name) const;

  void RecordSpan(const TraceSpan& span);
  void RecordInstant(const TraceInstant& instant);
  void RecordEmission(const AlphaEmission& emission);

  // Snapshot accessors (copies taken under the lock).
  std::vector<TraceSpan> spans() const;
  std::vector<TraceInstant> instants() const;
  std::vector<AlphaEmission> emissions() const;
  std::vector<std::string> process_names() const;
  bool empty() const;

  // Chrome trace_event JSON ("X" complete spans, "i" instants, "C"
  // cumulative pairs-emitted counter tracks, "M" process/thread names);
  // timestamps are simulated microseconds. Deterministic byte-for-byte for
  // deterministic recording orders.
  std::string ToChromeJson() const;

  // Plain-text timeline: one line per span, grouped by process and lane.
  std::string ToSlotTimeline() const;

  // Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  int current_pid_ = 0;
  std::vector<std::string> processes_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::vector<AlphaEmission> emissions_;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_TRACE_H_

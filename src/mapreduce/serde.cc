#include "mapreduce/serde.h"

namespace progres {

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view in, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = *offset;
  while (i < in.size() && shift < 64) {
    const uint8_t byte = static_cast<uint8_t>(in[i]);
    // The 10th byte holds only bit 63: anything above is an overlong
    // encoding PutVarint64 never writes, not a wrapped value.
    if (shift == 63 && (byte & 0x7e) != 0) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    ++i;
    if ((byte & 0x80) == 0) {
      *offset = i;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or over-long
}

void PutString(std::string_view value, std::string* out) {
  PutVarint64(value.size(), out);
  out->append(value);
}

bool GetString(std::string_view in, size_t* offset, std::string* value) {
  uint64_t length = 0;
  if (!GetVarint64(in, offset, &length)) return false;
  // Compare against the remaining bytes, not `*offset + length`: a huge
  // claimed length must fail cleanly instead of overflowing the offset.
  if (length > in.size() - *offset) return false;
  value->assign(in.substr(*offset, length));
  *offset += length;
  return true;
}

int VarintSize(uint64_t value) {
  int size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

namespace {

// Byte-at-a-time CRC-32 lookup table, built once.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  const uint32_t* table = Crc32Table();
  uint32_t c = crc ^ 0xffffffffu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace progres

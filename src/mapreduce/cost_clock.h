#ifndef PROGRES_MAPREDUCE_COST_CLOCK_H_
#define PROGRES_MAPREDUCE_COST_CLOCK_H_

namespace progres {

// Deterministic task-local resolution-cost clock. Algorithm code charges
// abstract cost units (1 unit == one pair comparison; hint generation,
// sorting and entity reads are charged fractional units via the cost model).
// The cluster simulator converts per-task cost into execution time, which is
// the x-axis of every figure in the paper. Not thread-safe: each simulated
// task owns its clock.
class CostClock {
 public:
  void Charge(double units) { units_ += units; }
  double units() const { return units_; }
  void Reset() { units_ = 0.0; }

 private:
  double units_ = 0.0;
};

}  // namespace progres

#endif  // PROGRES_MAPREDUCE_COST_CLOCK_H_

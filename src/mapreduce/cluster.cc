#include "mapreduce/cluster.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

namespace progres {

namespace {

double SpeedOfSlot(const std::vector<double>& slot_speeds, int slot) {
  if (slot < static_cast<int>(slot_speeds.size()) &&
      slot_speeds[static_cast<size_t>(slot)] > 0.0) {
    return slot_speeds[static_cast<size_t>(slot)];
  }
  return 1.0;
}

}  // namespace

std::vector<double> ClusterConfig::SlotSpeeds(int slots_per_machine) const {
  std::vector<double> speeds;
  speeds.reserve(static_cast<size_t>(machines * slots_per_machine));
  for (int m = 0; m < machines; ++m) {
    for (int s = 0; s < slots_per_machine; ++s) {
      speeds.push_back(SpeedOfMachine(m));
    }
  }
  return speeds;
}

std::vector<TaskAttemptTiming> ScheduleTaskAttempts(
    const std::vector<std::vector<double>>& attempt_costs,
    const std::vector<double>& slot_speeds, double start_time,
    double seconds_per_cost_unit, const SpeculationConfig& speculation,
    double* end_time, std::vector<double>* winning_starts) {
  const int slots = std::max(1, static_cast<int>(slot_speeds.size()));
  std::vector<double> free_at(static_cast<size_t>(slots), start_time);

  const size_t n = attempt_costs.size();
  std::vector<double> win_start(n, start_time);
  std::vector<double> win_end(n, start_time);
  std::vector<int> win_index(n, -1);  // index into `attempts`

  // ---- Regular attempts: FIFO dispatch with failure re-queue ----
  struct Pending {
    int task;
    int attempt;
    double ready;
  };
  std::deque<Pending> queue;
  for (size_t i = 0; i < n; ++i) {
    if (!attempt_costs[i].empty()) {
      queue.push_back({static_cast<int>(i), 0, start_time});
    }
  }

  std::vector<TaskAttemptTiming> attempts;
  while (!queue.empty()) {
    const Pending p = queue.front();
    queue.pop_front();
    // Earliest-starting slot for this attempt (ties to the lowest index).
    int best = 0;
    double best_start = std::numeric_limits<double>::infinity();
    for (int s = 0; s < slots; ++s) {
      const double candidate = std::max(free_at[static_cast<size_t>(s)],
                                        p.ready);
      if (candidate < best_start) {
        best_start = candidate;
        best = s;
      }
    }
    const auto& chain = attempt_costs[static_cast<size_t>(p.task)];
    const double duration = chain[static_cast<size_t>(p.attempt)] *
                            seconds_per_cost_unit /
                            SpeedOfSlot(slot_speeds, best);
    const double finish = best_start + duration;
    free_at[static_cast<size_t>(best)] = finish;
    const bool failed =
        static_cast<size_t>(p.attempt) + 1 < chain.size();
    TaskAttemptTiming timing;
    timing.task = p.task;
    timing.attempt = p.attempt;
    timing.slot = best;
    timing.start = best_start;
    timing.end = finish;
    timing.failed = failed;
    timing.won = !failed;
    attempts.push_back(timing);
    if (failed) {
      queue.push_back({p.task, p.attempt + 1, finish});
    } else {
      win_start[static_cast<size_t>(p.task)] = best_start;
      win_end[static_cast<size_t>(p.task)] = finish;
      win_index[static_cast<size_t>(p.task)] =
          static_cast<int>(attempts.size()) - 1;
    }
  }

  // ---- Speculative execution on slots that fall idle ----
  if (speculation.enabled && !attempts.empty()) {
    // Min-heap of (free time, slot); a slot that cannot profitably back up
    // any task now never can later (remaining times only shrink), so it is
    // dropped instead of re-pushed.
    using Slot = std::pair<double, int>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> idle;
    for (int s = 0; s < slots; ++s) {
      idle.push({free_at[static_cast<size_t>(s)], s});
    }
    std::vector<bool> has_backup(n, false);
    while (!idle.empty()) {
      const auto [now, slot] = idle.top();
      idle.pop();
      const double slot_speed = SpeedOfSlot(slot_speeds, slot);
      int candidate = -1;
      double candidate_remaining = speculation.min_remaining_seconds;
      for (size_t i = 0; i < n; ++i) {
        if (has_backup[i] || win_index[i] < 0) continue;
        if (win_start[i] > now || win_end[i] <= now) continue;  // not running
        const double remaining = win_end[i] - now;
        const double backup_end =
            now + attempt_costs[i].back() * seconds_per_cost_unit / slot_speed;
        if (remaining > candidate_remaining && backup_end < win_end[i]) {
          candidate_remaining = remaining;
          candidate = static_cast<int>(i);
        }
      }
      if (candidate < 0) continue;  // slot stays idle for good
      const size_t c = static_cast<size_t>(candidate);
      const double backup_end =
          now + attempt_costs[c].back() * seconds_per_cost_unit / slot_speed;
      TaskAttemptTiming backup;
      backup.task = candidate;
      backup.attempt = attempts[static_cast<size_t>(win_index[c])].attempt;
      backup.slot = slot;
      backup.start = now;
      backup.end = backup_end;
      backup.speculative = true;
      backup.won = true;  // only profitable backups are launched
      attempts[static_cast<size_t>(win_index[c])].won = false;
      win_index[c] = static_cast<int>(attempts.size());
      win_start[c] = now;
      win_end[c] = backup_end;
      has_backup[c] = true;
      attempts.push_back(backup);
      idle.push({backup_end, slot});
    }
  }

  double makespan = start_time;
  for (size_t i = 0; i < n; ++i) {
    if (win_index[i] >= 0) makespan = std::max(makespan, win_end[i]);
  }
  if (end_time != nullptr) *end_time = makespan;
  if (winning_starts != nullptr) {
    *winning_starts = std::move(win_start);
  }
  return attempts;
}

std::vector<double> ScheduleTasksHeterogeneous(
    const std::vector<double>& costs, const std::vector<double>& slot_speeds,
    double start_time, double seconds_per_cost_unit, double* end_time) {
  std::vector<std::vector<double>> attempt_costs;
  attempt_costs.reserve(costs.size());
  for (double cost : costs) attempt_costs.push_back({cost});
  std::vector<double> starts;
  ScheduleTaskAttempts(attempt_costs, slot_speeds, start_time,
                       seconds_per_cost_unit, SpeculationConfig{}, end_time,
                       &starts);
  return starts;
}

std::vector<double> ScheduleTasks(const std::vector<double>& costs,
                                  int slots, double start_time,
                                  double seconds_per_cost_unit,
                                  double* end_time) {
  const std::vector<double> slot_speeds(
      static_cast<size_t>(std::max(1, slots)), 1.0);
  return ScheduleTasksHeterogeneous(costs, slot_speeds, start_time,
                                    seconds_per_cost_unit, end_time);
}

}  // namespace progres

#include "mapreduce/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <string>
#include <utility>

#include "mapreduce/trace.h"

namespace progres {

namespace {

double SpeedOfSlot(const std::vector<double>& slot_speeds, int slot) {
  if (slot < static_cast<int>(slot_speeds.size()) &&
      slot_speeds[static_cast<size_t>(slot)] > 0.0) {
    return slot_speeds[static_cast<size_t>(slot)];
  }
  return 1.0;
}

}  // namespace

std::vector<double> ClusterConfig::SlotSpeeds(int slots_per_machine) const {
  std::vector<double> speeds;
  speeds.reserve(static_cast<size_t>(machines * slots_per_machine));
  for (int m = 0; m < machines; ++m) {
    for (int s = 0; s < slots_per_machine; ++s) {
      speeds.push_back(SpeedOfMachine(m));
    }
  }
  return speeds;
}

std::string ValidateClusterConfig(const ClusterConfig& cluster) {
  if (cluster.machines < 1) {
    return "machines must be >= 1 (got " + std::to_string(cluster.machines) +
           ")";
  }
  if (cluster.map_slots_per_machine < 1) {
    return "map_slots_per_machine must be >= 1 (got " +
           std::to_string(cluster.map_slots_per_machine) + ")";
  }
  if (cluster.reduce_slots_per_machine < 1) {
    return "reduce_slots_per_machine must be >= 1 (got " +
           std::to_string(cluster.reduce_slots_per_machine) + ")";
  }
  if (!(cluster.seconds_per_cost_unit > 0.0)) {
    return "seconds_per_cost_unit must be > 0 (got " +
           std::to_string(cluster.seconds_per_cost_unit) + ")";
  }
  if (cluster.execution_threads < 0) {
    return "execution_threads must be >= 0 (got " +
           std::to_string(cluster.execution_threads) + ")";
  }
  if (cluster.backend == ExecutionBackend::kThreaded) {
    if (cluster.execution_threads < 1) {
      return "backend=threaded requires execution_threads >= 1 (got " +
             std::to_string(cluster.execution_threads) + ")";
    }
    const int slot_capacity =
        std::max(cluster.map_slots(), cluster.reduce_slots());
    if (cluster.execution_threads > slot_capacity) {
      return "backend=threaded: execution_threads must not exceed the "
             "cluster's slot capacity " +
             std::to_string(slot_capacity) + " (got " +
             std::to_string(cluster.execution_threads) + ")";
    }
    if (cluster.speculation.enabled) {
      return "backend=threaded does not support speculative execution "
             "(speculation lives in the simulated timing model)";
    }
    if (cluster.fault.enabled && (cluster.fault.machine_failure_prob > 0.0 ||
                                  !cluster.fault.machine_failures.empty())) {
      return "backend=threaded does not support machine failures "
             "(the machine fault domain lives in the simulated timing model)";
    }
  }
  for (size_t m = 0; m < cluster.machine_speed.size(); ++m) {
    if (!(cluster.machine_speed[m] > 0.0)) {
      return "machine_speed[" + std::to_string(m) + "] must be > 0 (got " +
             std::to_string(cluster.machine_speed[m]) + ")";
    }
  }
  if (cluster.speculation.min_remaining_seconds < 0.0) {
    return "speculation.min_remaining_seconds must be >= 0 (got " +
           std::to_string(cluster.speculation.min_remaining_seconds) + ")";
  }
  if (cluster.control.deadline_seconds < 0.0) {
    return "control.deadline_seconds must be >= 0 (got " +
           std::to_string(cluster.control.deadline_seconds) + ")";
  }
  if (cluster.control.wall_deadline_seconds < 0.0) {
    return "control.wall_deadline_seconds must be >= 0 (got " +
           std::to_string(cluster.control.wall_deadline_seconds) + ")";
  }
  if (cluster.control.fault_budget < 0) {
    return "control.fault_budget must be >= 0 (got " +
           std::to_string(cluster.control.fault_budget) + ")";
  }
  if (cluster.control.active() && cluster.speculation.enabled) {
    return "job supervision (deadline/allow_degraded/fault_budget) does not "
           "support speculative execution: a deadline cut needs exactly one "
           "winning attempt per task";
  }
  if (cluster.shuffle_budget.max_bytes < 0) {
    return "shuffle_budget.max_bytes must be >= 0 (got " +
           std::to_string(cluster.shuffle_budget.max_bytes) + ")";
  }
  if (cluster.shuffle_budget.block_bytes < 1) {
    return "shuffle_budget.block_bytes must be >= 1 (got " +
           std::to_string(cluster.shuffle_budget.block_bytes) + ")";
  }
  const FaultConfig& fault = cluster.fault;
  if (!fault.enabled) return "";
  if (fault.max_attempts < 1) {
    return "fault.max_attempts must be >= 1 (got " +
           std::to_string(fault.max_attempts) + ")";
  }
  if (fault.map_failure_prob < 0.0 || fault.map_failure_prob > 1.0) {
    return "fault.map_failure_prob must be in [0, 1] (got " +
           std::to_string(fault.map_failure_prob) + ")";
  }
  if (fault.reduce_failure_prob < 0.0 || fault.reduce_failure_prob > 1.0) {
    return "fault.reduce_failure_prob must be in [0, 1] (got " +
           std::to_string(fault.reduce_failure_prob) + ")";
  }
  if (fault.machine_failure_prob < 0.0 || fault.machine_failure_prob > 1.0) {
    return "fault.machine_failure_prob must be in [0, 1] (got " +
           std::to_string(fault.machine_failure_prob) + ")";
  }
  if (fault.machine_failure_horizon_seconds < 0.0) {
    return "fault.machine_failure_horizon_seconds must be >= 0 (got " +
           std::to_string(fault.machine_failure_horizon_seconds) + ")";
  }
  for (size_t i = 0; i < fault.machine_failures.size(); ++i) {
    const MachineFault& mf = fault.machine_failures[i];
    if (mf.machine < 0 || mf.machine >= cluster.machines) {
      return "fault.machine_failures[" + std::to_string(i) +
             "].machine must be in [0, " + std::to_string(cluster.machines) +
             ") (got " + std::to_string(mf.machine) + ")";
    }
    if (mf.time < 0.0) {
      return "fault.machine_failures[" + std::to_string(i) +
             "].time must be >= 0 (got " + std::to_string(mf.time) + ")";
    }
  }
  if (fault.retry_backoff_seconds < 0.0) {
    return "fault.retry_backoff_seconds must be >= 0 (got " +
           std::to_string(fault.retry_backoff_seconds) + ")";
  }
  if (fault.retry_backoff_factor < 1.0) {
    return "fault.retry_backoff_factor must be >= 1 (got " +
           std::to_string(fault.retry_backoff_factor) + ")";
  }
  if (fault.blacklist_failures < 0) {
    return "fault.blacklist_failures must be >= 0 (got " +
           std::to_string(fault.blacklist_failures) + ")";
  }
  if (fault.map_hang_prob < 0.0 || fault.map_hang_prob > 1.0) {
    return "fault.map_hang_prob must be in [0, 1] (got " +
           std::to_string(fault.map_hang_prob) + ")";
  }
  if (fault.reduce_hang_prob < 0.0 || fault.reduce_hang_prob > 1.0) {
    return "fault.reduce_hang_prob must be in [0, 1] (got " +
           std::to_string(fault.reduce_hang_prob) + ")";
  }
  if (fault.task_timeout_seconds < 0.0) {
    return "fault.task_timeout_seconds must be >= 0 (got " +
           std::to_string(fault.task_timeout_seconds) + ")";
  }
  for (size_t i = 0; i < fault.injected_hangs.size(); ++i) {
    const TaskHangFault& hang = fault.injected_hangs[i];
    if (!(hang.hang_at_fraction > 0.0) || hang.hang_at_fraction > 1.0) {
      return "fault.injected_hangs[" + std::to_string(i) +
             "].hang_at_fraction must be in (0, 1] (got " +
             std::to_string(hang.hang_at_fraction) + ")";
    }
  }
  if (fault.shuffle_corrupt_prob < 0.0 || fault.shuffle_corrupt_prob > 1.0) {
    return "fault.shuffle_corrupt_prob must be in [0, 1] (got " +
           std::to_string(fault.shuffle_corrupt_prob) + ")";
  }
  if (fault.max_fetch_retries < 0) {
    return "fault.max_fetch_retries must be >= 0 (got " +
           std::to_string(fault.max_fetch_retries) + ")";
  }
  if (fault.max_attempts_before_skip < 1) {
    return "fault.max_attempts_before_skip must be >= 1 (got " +
           std::to_string(fault.max_attempts_before_skip) + ")";
  }
  for (size_t i = 0; i < fault.poison_records.size(); ++i) {
    if (fault.poison_records[i] < 0) {
      return "fault.poison_records[" + std::to_string(i) +
             "] must be >= 0 (got " +
             std::to_string(fault.poison_records[i]) + ")";
    }
  }
  if (fault.spill_enospc_prob < 0.0 || fault.spill_enospc_prob > 1.0) {
    return "fault.spill_enospc_prob must be in [0, 1] (got " +
           std::to_string(fault.spill_enospc_prob) + ")";
  }
  if (fault.spill_write_error_prob < 0.0 ||
      fault.spill_write_error_prob > 1.0) {
    return "fault.spill_write_error_prob must be in [0, 1] (got " +
           std::to_string(fault.spill_write_error_prob) + ")";
  }
  if (fault.spill_torn_write_prob < 0.0 ||
      fault.spill_torn_write_prob > 1.0) {
    return "fault.spill_torn_write_prob must be in [0, 1] (got " +
           std::to_string(fault.spill_torn_write_prob) + ")";
  }
  if (fault.spill_corrupt_prob < 0.0 || fault.spill_corrupt_prob > 1.0) {
    return "fault.spill_corrupt_prob must be in [0, 1] (got " +
           std::to_string(fault.spill_corrupt_prob) + ")";
  }
  if (fault.max_spill_retries < 0) {
    return "fault.max_spill_retries must be >= 0 (got " +
           std::to_string(fault.max_spill_retries) + ")";
  }
  if (fault.spill_retry_backoff_seconds < 0.0) {
    return "fault.spill_retry_backoff_seconds must be >= 0 (got " +
           std::to_string(fault.spill_retry_backoff_seconds) + ")";
  }
  return "";
}

AttemptScheduleOutcome ScheduleTaskAttemptsOnCluster(
    const std::vector<std::vector<double>>& attempt_costs,
    const AttemptScheduleOptions& options) {
  AttemptScheduleOutcome outcome;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<double>& slot_speeds = options.slot_speeds;
  const int slots = std::max(1, static_cast<int>(slot_speeds.size()));
  const double spcu = options.seconds_per_cost_unit;
  const int spm =
      options.slots_per_machine > 0 ? options.slots_per_machine : slots;
  const int num_machines = (slots + spm - 1) / spm;

  // Per-machine death and blacklist times (inf = never).
  std::vector<double> dead_time(static_cast<size_t>(num_machines), kInf);
  for (const MachineFault& f : options.machine_failures) {
    if (f.machine >= 0 && f.machine < num_machines) {
      double& d = dead_time[static_cast<size_t>(f.machine)];
      d = std::min(d, f.time);
    }
  }
  std::vector<double> blacklist_time(static_cast<size_t>(num_machines), kInf);
  std::vector<int> machine_failed(static_cast<size_t>(num_machines), 0);

  std::vector<double> free_at(static_cast<size_t>(slots),
                              options.start_time);

  const size_t n = attempt_costs.size();
  std::vector<double> win_start(n, options.start_time);
  std::vector<double> win_end(n, options.start_time);
  std::vector<int> win_index(n, -1);  // index into `outcome.attempts`
  std::vector<int> task_failures(n, 0);

  // ---- Tracing (observational only; never feeds back into the schedule)
  // Child spans of an attempt are collected per dispatched occurrence in
  // `notes` (parallel to outcome.attempts) and flushed together with the
  // attempt spans once the final outcomes (incl. speculation) are known.
  TraceRecorder* const trace = options.trace;
  struct SpanNotes {
    bool restored = false;     // resumed from a checkpoint at dispatch
    double restore_base = 0.0; // absolute progress restored to
    // Checkpoint saves first crossed in this run: (sim time, progress).
    std::vector<std::pair<double, double>> saves;
  };
  std::vector<SpanNotes> notes;
  // Highest progress any earlier occurrence of the task reached — a
  // checkpoint save is attributed to the first occurrence crossing it.
  std::vector<double> max_progress(n, 0.0);
  std::vector<int> last_planned(n, -1);
  const auto note_dispatch = [&](int task, int attempt, double run_base,
                                 double plan_base, double best_start,
                                 double speed, double reached) {
    SpanNotes note;
    if (attempt != last_planned[static_cast<size_t>(task)]) {
      last_planned[static_cast<size_t>(task)] = attempt;
      if (plan_base > 0.0) {
        note.restored = true;
        note.restore_base = plan_base;
      }
    }
    if (static_cast<size_t>(task) < options.recovery_points.size()) {
      const double tol = 1e-9 + 1e-12 * std::abs(reached);
      for (const double point :
           options.recovery_points[static_cast<size_t>(task)]) {
        if (point > reached + tol) break;
        if (point <= max_progress[static_cast<size_t>(task)]) continue;
        note.saves.emplace_back(
            best_start + (point - run_base) * spcu / speed, point);
      }
    }
    double& high = max_progress[static_cast<size_t>(task)];
    high = std::max(high, reached);
    notes.push_back(std::move(note));
  };

  // Whether planned attempt `attempt` of `task` hangs (heartbeat stops; the
  // tracker kills it after the task timeout).
  const auto hang_of = [&options](int task, int attempt) {
    if (static_cast<size_t>(task) >= options.hang_attempts.size()) {
      return false;
    }
    const std::vector<char>& hangs =
        options.hang_attempts[static_cast<size_t>(task)];
    return static_cast<size_t>(attempt) < hangs.size() &&
           hangs[static_cast<size_t>(attempt)] != 0;
  };
  // Fetch-stall seconds charged to the task's first dispatched occurrence.
  const auto stall_of = [&options](int task) {
    return static_cast<size_t>(task) < options.fetch_stall_seconds.size()
               ? options.fetch_stall_seconds[static_cast<size_t>(task)]
               : 0.0;
  };
  std::vector<char> dispatched(n, 0);

  // Absolute progress at which a planned attempt starts (0 without a
  // recovery model — every attempt restarts from scratch).
  const auto base_of = [&options](int task, int attempt) {
    if (static_cast<size_t>(task) >= options.attempt_bases.size()) return 0.0;
    const std::vector<double>& bases =
        options.attempt_bases[static_cast<size_t>(task)];
    return static_cast<size_t>(attempt) < bases.size()
               ? bases[static_cast<size_t>(attempt)]
               : 0.0;
  };
  // Delay before the k-th (1-based) re-dispatch of a task.
  const auto backoff_delay = [&options](int k) {
    if (options.retry_backoff_seconds <= 0.0) return 0.0;
    double delay = options.retry_backoff_seconds;
    for (int i = 1; i < k; ++i) delay *= options.retry_backoff_factor;
    return delay;
  };

  // ---- Regular attempts: FIFO dispatch with failure re-queue ----
  // `base` is the absolute progress the run starts from: the planned
  // attempt's own base, or a later recovery point after a machine kill.
  struct Pending {
    int task;
    int attempt;
    double ready;
    double base;
  };
  std::deque<Pending> queue;
  for (size_t i = 0; i < n; ++i) {
    if (!attempt_costs[i].empty()) {
      queue.push_back({static_cast<int>(i), 0, options.start_time,
                       base_of(static_cast<int>(i), 0)});
    }
  }

  while (!queue.empty()) {
    const Pending p = queue.front();
    queue.pop_front();
    // Earliest-starting usable slot (ties to the lowest index). A slot is
    // unusable once its machine is dead or blacklisted at the start time.
    int best = -1;
    double best_start = kInf;
    for (int s = 0; s < slots; ++s) {
      const int m = s / spm;
      const double candidate = std::max(free_at[static_cast<size_t>(s)],
                                        p.ready);
      if (candidate >= dead_time[static_cast<size_t>(m)] ||
          candidate >= blacklist_time[static_cast<size_t>(m)]) {
        continue;
      }
      if (candidate < best_start) {
        best_start = candidate;
        best = s;
      }
    }
    if (best < 0) {
      // Every machine is dead or blacklisted: the phase cannot finish this
      // task. Fail fast, or — in degraded mode — skip the task and keep
      // placing the rest (it is never re-queued, so it is recorded once).
      if (options.tolerate_unplaced) {
        outcome.unplaced_tasks.push_back(p.task);
        continue;
      }
      outcome.failed = true;
      outcome.failed_task = p.task;
      break;
    }
    const auto& chain = attempt_costs[static_cast<size_t>(p.task)];
    const double plan_base = base_of(p.task, p.attempt);
    const double plan_cost = chain[static_cast<size_t>(p.attempt)];
    // Resuming from a recovery point past the attempt's base shortens the
    // run; the base==plan_base branch keeps the arithmetic bit-identical to
    // the recovery-free scheduler.
    const double run_cost =
        p.base == plan_base ? plan_cost
                            : std::max(0.0, plan_base + plan_cost - p.base);
    const int machine = best / spm;
    const double speed = SpeedOfSlot(slot_speeds, best);
    // A hung occurrence finishes its pre-hang work, then sits silent until
    // the tracker's heartbeat timeout kills it. A task's first dispatched
    // occurrence additionally pays its shuffle-fetch stall before any
    // processing. Both additions are exact no-ops when absent, keeping the
    // fault-free timeline bit-identical.
    const bool hangs = hang_of(p.task, p.attempt);
    double stall = 0.0;
    if (!dispatched[static_cast<size_t>(p.task)]) {
      dispatched[static_cast<size_t>(p.task)] = 1;
      stall = stall_of(p.task);
    }
    const double proc_start = stall > 0.0 ? best_start + stall : best_start;
    double duration = run_cost * spcu / speed;
    if (stall > 0.0) duration += stall;
    if (hangs) duration += options.task_timeout_seconds;
    const double finish = best_start + duration;

    const double death = dead_time[static_cast<size_t>(machine)];
    if (finish > death) {
      // The machine dies mid-run: the attempt is killed at the death time
      // and the task re-queued (with backoff) from its best recovery point.
      TaskAttemptTiming timing;
      timing.task = p.task;
      timing.attempt = p.attempt;
      timing.slot = best;
      timing.start = best_start;
      timing.end = death;
      timing.failed = true;
      timing.machine_lost = true;
      outcome.attempts.push_back(timing);
      ++outcome.machine_lost_attempts;
      free_at[static_cast<size_t>(best)] = death;
      // Progress stops at the hang point (run_cost) even though a hung
      // occurrence keeps its slot; the stall spends wall time without
      // advancing progress. Both clamps are exact no-ops in the plain
      // crash path, where 0 < elapsed work < run_cost by construction.
      double done = (death - proc_start) * speed / spcu;
      if (done < 0.0) done = 0.0;
      if (done > run_cost) done = run_cost;
      const double progress = p.base + done;
      if (trace != nullptr) {
        note_dispatch(p.task, p.attempt, p.base, plan_base, proc_start, speed,
                      progress);
      }
      double resume = plan_base;
      if (static_cast<size_t>(p.task) < options.recovery_points.size()) {
        for (const double point :
             options.recovery_points[static_cast<size_t>(p.task)]) {
          if (point > progress) break;
          if (point > resume) resume = point;
        }
      }
      outcome.replayed_cost_units += std::max(0.0, progress - resume);
      const int k = ++task_failures[static_cast<size_t>(p.task)];
      const double delay = backoff_delay(k);
      outcome.backoff_seconds += delay;
      if (trace != nullptr && delay > 0.0) {
        TraceSpan wait;
        wait.kind = SpanKind::kRetryBackoff;
        wait.phase = options.trace_phase;
        wait.pid = options.trace_pid;
        wait.task = p.task;
        wait.attempt = p.attempt;  // the occurrence being delayed
        wait.start = death;
        wait.end = death + delay;
        trace->RecordSpan(wait);
      }
      queue.push_back({p.task, p.attempt, death + delay, resume});
      continue;
    }

    free_at[static_cast<size_t>(best)] = finish;
    const bool failed = static_cast<size_t>(p.attempt) + 1 < chain.size();
    TaskAttemptTiming timing;
    timing.task = p.task;
    timing.attempt = p.attempt;
    timing.slot = best;
    timing.start = best_start;
    timing.end = finish;
    timing.failed = failed;
    // A hung attempt is killed by the heartbeat timeout, never a winner —
    // which is also why a hung original can only lose to its speculative
    // twin: winners are drawn from non-hung attempts alone.
    timing.timed_out = failed && hangs;
    timing.won = !failed;
    outcome.attempts.push_back(timing);
    if (timing.timed_out) ++outcome.timeout_kills;
    if (trace != nullptr) {
      note_dispatch(p.task, p.attempt, p.base, plan_base, proc_start, speed,
                    plan_base + plan_cost);
    }
    if (failed) {
      // Blacklist a machine that keeps killing attempts — unless it is the
      // last healthy one.
      if (options.blacklist_failures > 0 &&
          ++machine_failed[static_cast<size_t>(machine)] >=
              options.blacklist_failures &&
          blacklist_time[static_cast<size_t>(machine)] == kInf) {
        int healthy_others = 0;
        for (int m = 0; m < num_machines; ++m) {
          if (m == machine) continue;
          if (blacklist_time[static_cast<size_t>(m)] == kInf &&
              dead_time[static_cast<size_t>(m)] > finish) {
            ++healthy_others;
          }
        }
        if (healthy_others > 0) {
          blacklist_time[static_cast<size_t>(machine)] = finish;
          ++outcome.machines_blacklisted;
          if (trace != nullptr) {
            TraceInstant instant;
            instant.kind = InstantKind::kMachineBlacklisted;
            instant.phase = options.trace_phase;
            instant.pid = options.trace_pid;
            instant.machine = machine;
            instant.time = finish;
            trace->RecordInstant(instant);
          }
        }
      }
      const int k = ++task_failures[static_cast<size_t>(p.task)];
      const double delay = backoff_delay(k);
      outcome.backoff_seconds += delay;
      if (trace != nullptr && delay > 0.0) {
        TraceSpan wait;
        wait.kind = SpanKind::kRetryBackoff;
        wait.phase = options.trace_phase;
        wait.pid = options.trace_pid;
        wait.task = p.task;
        wait.attempt = p.attempt + 1;  // the attempt being delayed
        wait.start = finish;
        wait.end = finish + delay;
        trace->RecordSpan(wait);
      }
      queue.push_back({p.task, p.attempt + 1, finish + delay,
                       base_of(p.task, p.attempt + 1)});
    } else {
      // Winning starts report when *processing* starts (after any fetch
      // stall) — that is what progressive-emission times key off.
      win_start[static_cast<size_t>(p.task)] = proc_start;
      win_end[static_cast<size_t>(p.task)] = finish;
      win_index[static_cast<size_t>(p.task)] =
          static_cast<int>(outcome.attempts.size()) - 1;
    }
  }

  // ---- Speculative execution on slots that fall idle ----
  // Only simulated on a fault-domain-free timeline: racing a backup against
  // machine deaths is out of scope for the model.
  if (options.speculation.enabled && options.machine_failures.empty() &&
      !outcome.attempts.empty()) {
    // Min-heap of (free time, slot); a slot that cannot profitably back up
    // any task now never can later (remaining times only shrink), so it is
    // dropped instead of re-pushed.
    using Slot = std::pair<double, int>;
    std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> idle;
    for (int s = 0; s < slots; ++s) {
      idle.push({free_at[static_cast<size_t>(s)], s});
    }
    std::vector<bool> has_backup(n, false);
    while (!idle.empty()) {
      const auto [now, slot] = idle.top();
      idle.pop();
      const double slot_speed = SpeedOfSlot(slot_speeds, slot);
      int candidate = -1;
      double candidate_remaining = options.speculation.min_remaining_seconds;
      for (size_t i = 0; i < n; ++i) {
        if (has_backup[i] || win_index[i] < 0) continue;
        if (win_start[i] > now || win_end[i] <= now) continue;  // not running
        const double remaining = win_end[i] - now;
        const double backup_end =
            now + attempt_costs[i].back() * spcu / slot_speed;
        if (remaining > candidate_remaining && backup_end < win_end[i]) {
          candidate_remaining = remaining;
          candidate = static_cast<int>(i);
        }
      }
      if (candidate < 0) continue;  // slot stays idle for good
      const size_t c = static_cast<size_t>(candidate);
      const double backup_end =
          now + attempt_costs[c].back() * spcu / slot_speed;
      TaskAttemptTiming backup;
      backup.task = candidate;
      backup.attempt =
          outcome.attempts[static_cast<size_t>(win_index[c])].attempt;
      backup.slot = slot;
      backup.start = now;
      backup.end = backup_end;
      backup.speculative = true;
      backup.won = true;  // only profitable backups are launched
      outcome.attempts[static_cast<size_t>(win_index[c])].won = false;
      win_index[c] = static_cast<int>(outcome.attempts.size());
      win_start[c] = now;
      win_end[c] = backup_end;
      has_backup[c] = true;
      outcome.attempts.push_back(backup);
      idle.push({backup_end, slot});
    }
  }

  double makespan = options.start_time;
  for (size_t i = 0; i < n; ++i) {
    if (win_index[i] >= 0) makespan = std::max(makespan, win_end[i]);
  }
  if (outcome.failed) {
    // A failed phase still reports how far the timeline got.
    for (const TaskAttemptTiming& a : outcome.attempts) {
      makespan = std::max(makespan, a.end);
    }
  }
  outcome.end_time = makespan;
  for (const MachineFault& f : options.machine_failures) {
    if (f.machine >= 0 && f.machine < num_machines &&
        f.time >= options.start_time && f.time < makespan &&
        dead_time[static_cast<size_t>(f.machine)] == f.time) {
      ++outcome.machines_lost;
      if (trace != nullptr) {
        TraceInstant instant;
        instant.kind = InstantKind::kMachineDeath;
        instant.phase = options.trace_phase;
        instant.pid = options.trace_pid;
        instant.machine = f.machine;
        instant.time = f.time;
        trace->RecordInstant(instant);
      }
    }
  }
  // Flush the attempt spans last, once speculation has settled every
  // attempt's final outcome; checkpoint children follow their attempt.
  if (trace != nullptr) {
    for (size_t i = 0; i < outcome.attempts.size(); ++i) {
      const TaskAttemptTiming& a = outcome.attempts[i];
      TraceSpan span;
      span.kind = SpanKind::kAttempt;
      span.phase = options.trace_phase;
      span.pid = options.trace_pid;
      span.task = a.task;
      span.attempt = a.attempt;
      span.machine = a.slot / spm;
      span.slot = a.slot;
      span.start = a.start;
      span.end = a.end;
      span.speculative = a.speculative;
      span.outcome = a.machine_lost ? SpanOutcome::kMachineLost
                     : a.timed_out  ? SpanOutcome::kTimedOut
                     : a.failed     ? SpanOutcome::kFailed
                     : a.won        ? SpanOutcome::kCompleted
                                    : SpanOutcome::kLostSpeculation;
      trace->RecordSpan(span);
      if (i >= notes.size()) continue;  // speculative backups: no children
      const SpanNotes& note = notes[i];
      if (note.restored) {
        TraceSpan child = span;
        child.kind = SpanKind::kCheckpointRestore;
        child.end = child.start;
        child.outcome = SpanOutcome::kNone;
        child.cost_units = note.restore_base;
        trace->RecordSpan(child);
      }
      for (const auto& [when, point] : note.saves) {
        TraceSpan child = span;
        child.kind = SpanKind::kCheckpointSave;
        // Clamp into the attempt: the crossing tolerance can land a save
        // an epsilon past the attempt's end.
        child.start = std::min(std::max(when, span.start), span.end);
        child.end = child.start;
        child.outcome = SpanOutcome::kNone;
        child.cost_units = point;
        trace->RecordSpan(child);
      }
    }
  }
  outcome.winning_starts = std::move(win_start);
  return outcome;
}

std::vector<TaskAttemptTiming> ScheduleTaskAttempts(
    const std::vector<std::vector<double>>& attempt_costs,
    const std::vector<double>& slot_speeds, double start_time,
    double seconds_per_cost_unit, const SpeculationConfig& speculation,
    double* end_time, std::vector<double>* winning_starts) {
  AttemptScheduleOptions options;
  options.slot_speeds = slot_speeds;
  options.start_time = start_time;
  options.seconds_per_cost_unit = seconds_per_cost_unit;
  options.speculation = speculation;
  AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster(attempt_costs, options);
  if (end_time != nullptr) *end_time = outcome.end_time;
  if (winning_starts != nullptr) {
    *winning_starts = std::move(outcome.winning_starts);
  }
  return std::move(outcome.attempts);
}

std::vector<double> ScheduleTasksHeterogeneous(
    const std::vector<double>& costs, const std::vector<double>& slot_speeds,
    double start_time, double seconds_per_cost_unit, double* end_time) {
  std::vector<std::vector<double>> attempt_costs;
  attempt_costs.reserve(costs.size());
  for (double cost : costs) attempt_costs.push_back({cost});
  std::vector<double> starts;
  ScheduleTaskAttempts(attempt_costs, slot_speeds, start_time,
                       seconds_per_cost_unit, SpeculationConfig{}, end_time,
                       &starts);
  return starts;
}

std::vector<double> ScheduleTasks(const std::vector<double>& costs,
                                  int slots, double start_time,
                                  double seconds_per_cost_unit,
                                  double* end_time) {
  const std::vector<double> slot_speeds(
      static_cast<size_t>(std::max(1, slots)), 1.0);
  return ScheduleTasksHeterogeneous(costs, slot_speeds, start_time,
                                    seconds_per_cost_unit, end_time);
}

}  // namespace progres

#include "mapreduce/cluster.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace progres {

std::vector<double> ClusterConfig::SlotSpeeds(int slots_per_machine) const {
  std::vector<double> speeds;
  speeds.reserve(static_cast<size_t>(machines * slots_per_machine));
  for (int m = 0; m < machines; ++m) {
    for (int s = 0; s < slots_per_machine; ++s) {
      speeds.push_back(SpeedOfMachine(m));
    }
  }
  return speeds;
}

std::vector<double> ScheduleTasksHeterogeneous(
    const std::vector<double>& costs, const std::vector<double>& slot_speeds,
    double start_time, double seconds_per_cost_unit, double* end_time) {
  // Min-heap of (free time, slot index); ties resolve to the lowest slot.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> free_at;
  const int slots = std::max(1, static_cast<int>(slot_speeds.size()));
  for (int i = 0; i < slots; ++i) free_at.push({start_time, i});

  std::vector<double> starts(costs.size(), start_time);
  double makespan = start_time;
  for (size_t i = 0; i < costs.size(); ++i) {
    const auto [slot_free, slot] = free_at.top();
    free_at.pop();
    starts[i] = slot_free;
    const double speed = slot < static_cast<int>(slot_speeds.size()) &&
                                 slot_speeds[static_cast<size_t>(slot)] > 0.0
                             ? slot_speeds[static_cast<size_t>(slot)]
                             : 1.0;
    const double finish =
        slot_free + costs[i] * seconds_per_cost_unit / speed;
    free_at.push({finish, slot});
    makespan = std::max(makespan, finish);
  }
  if (end_time != nullptr) *end_time = makespan;
  return starts;
}

std::vector<double> ScheduleTasks(const std::vector<double>& costs,
                                  int slots, double start_time,
                                  double seconds_per_cost_unit,
                                  double* end_time) {
  slots = std::max(1, slots);
  // Min-heap of slot free times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> free_at;
  for (int i = 0; i < slots; ++i) free_at.push(start_time);

  std::vector<double> starts(costs.size(), start_time);
  double makespan = start_time;
  for (size_t i = 0; i < costs.size(); ++i) {
    const double slot_free = free_at.top();
    free_at.pop();
    starts[i] = slot_free;
    const double finish = slot_free + costs[i] * seconds_per_cost_unit;
    free_at.push(finish);
    makespan = std::max(makespan, finish);
  }
  if (end_time != nullptr) *end_time = makespan;
  return starts;
}

}  // namespace progres

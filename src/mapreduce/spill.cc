#include "mapreduce/spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <system_error>

#include "mapreduce/serde.h"

namespace progres {

namespace fs = std::filesystem;

std::string ResolveSpillDir(const std::string& dir, std::string* error) {
  std::error_code ec;
  fs::path path;
  if (dir.empty()) {
    path = fs::temp_directory_path(ec);
    if (ec) {
      *error = "no temporary directory available: " + ec.message();
      return std::string();
    }
  } else {
    path = dir;
  }
  fs::create_directories(path, ec);
  if (ec) {
    *error = "cannot create spill dir " + path.string() + ": " + ec.message();
    return std::string();
  }
  // Probe writability now, with a throwaway file, so a read-only directory
  // fails the job at submission instead of mid-spill.
  const fs::path probe = path / NextSpillPath(".", -1).substr(2);
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    if (!out || !(out << 'x')) {
      *error = "spill dir " + path.string() + " is not writable";
      fs::remove(probe, ec);
      return std::string();
    }
  }
  fs::remove(probe, ec);
  return path.string();
}

std::string NextSpillPath(const std::string& dir, int task, int attempt) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return (fs::path(dir) /
          ("progres-spill-" + std::to_string(::getpid()) + "-" +
           std::to_string(n) + "-map" + std::to_string(task) + "-a" +
           std::to_string(attempt) + ".run"))
      .string();
}

bool WriteSpillRun(const std::string& path,
                   const std::vector<std::string>& partitions,
                   const std::vector<int64_t>& records_per_partition,
                   SpillRun* run) {
  run->path = path;
  run->segments.clear();
  run->segments.reserve(partitions.size());
  run->records = 0;
  run->bytes = 0;
  run->crc = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  int64_t offset = 0;
  for (size_t r = 0; r < partitions.size(); ++r) {
    const std::string& payload = partitions[r];
    if (!payload.empty() &&
        !out.write(payload.data(),
                   static_cast<std::streamsize>(payload.size()))) {
      RemoveSpillFile(path);
      return false;
    }
    run->crc = Crc32(payload, run->crc);
    SpillSegment segment;
    segment.offset = offset;
    segment.bytes = static_cast<int64_t>(payload.size());
    segment.records = records_per_partition[r];
    run->segments.push_back(segment);
    offset += segment.bytes;
    run->records += segment.records;
    run->bytes += segment.bytes;
  }
  out.flush();
  if (!out) {
    RemoveSpillFile(path);
    return false;
  }
  return true;
}

void RemoveSpillFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

bool ValidateSpillRun(const SpillRun& run) {
  std::ifstream in(run.path, std::ios::binary);
  if (!in) return false;
  uint32_t crc = 0;
  int64_t bytes = 0;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    crc = Crc32(std::string_view(buffer, static_cast<size_t>(got)), crc);
    bytes += got;
    if (bytes > run.bytes) return false;  // overlong file: not what we wrote
    if (in.eof()) break;
    if (!in) return false;
  }
  return bytes == run.bytes && crc == run.crc;
}

bool TruncateSpillFile(const std::string& path, int64_t bytes) {
  std::error_code ec;
  fs::resize_file(path, static_cast<uintmax_t>(std::max<int64_t>(0, bytes)),
                  ec);
  return !ec;
}

bool CorruptSpillByte(const std::string& path, int64_t offset) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  if (!file || !file.seekg(offset)) return false;
  char byte = 0;
  if (!file.get(byte)) return false;
  byte = static_cast<char>(byte ^ 0x40);
  if (!file.seekp(offset) || !file.put(byte)) return false;
  file.flush();
  return static_cast<bool>(file);
}

SpillSegmentReader::SpillSegmentReader(const std::string& path,
                                       const SpillSegment& segment,
                                       size_t chunk_bytes)
    : file_(path, std::ios::binary),
      remaining_(segment.bytes),
      chunk_bytes_(chunk_bytes > 0 ? chunk_bytes : 1) {
  if (!file_ || !file_.seekg(segment.offset)) {
    ok_ = false;
    remaining_ = 0;
  }
}

bool SpillSegmentReader::Refill() {
  if (!ok_ || remaining_ == 0) return false;
  // Compact the consumed prefix before growing, keeping the buffer bounded
  // by the unconsumed tail plus one chunk.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t want = static_cast<size_t>(
      std::min<int64_t>(remaining_, static_cast<int64_t>(chunk_bytes_)));
  const size_t old_size = buffer_.size();
  buffer_.resize(old_size + want);
  if (!file_.read(buffer_.data() + old_size,
                  static_cast<std::streamsize>(want))) {
    buffer_.resize(old_size);
    ok_ = false;
    remaining_ = 0;
    return false;
  }
  remaining_ -= static_cast<int64_t>(want);
  return true;
}

}  // namespace progres

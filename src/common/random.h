#ifndef PROGRES_COMMON_RANDOM_H_
#define PROGRES_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace progres {

// Deterministic pseudo-random number generator (xoshiro256**) used across the
// library so that datasets, schedules, and benchmarks are reproducible from a
// single seed. Not thread-safe; create one instance per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Returns the next 64 uniformly distributed random bits.
  uint64_t NextU64();

  // Returns a uniformly distributed integer in [0, bound). `bound` must be
  // greater than zero.
  uint64_t UniformU64(uint64_t bound);

  // Returns a uniformly distributed integer in [lo, hi], inclusive on both
  // ends. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Returns a uniformly distributed double in [0, 1).
  double UniformDouble();

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Returns a value in [0, n) drawn from a Zipf distribution with exponent
  // `s` (s > 0). Smaller indexes are more likely. Uses an inverted-CDF table
  // built lazily per (n, s) pair, so repeated draws with the same parameters
  // are cheap.
  int64_t Zipf(int64_t n, double s);

 private:
  uint64_t state_[4];

  // Cached CDF for Zipf sampling: valid when zipf_n_ == n and zipf_s_ == s.
  int64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace progres

#endif  // PROGRES_COMMON_RANDOM_H_

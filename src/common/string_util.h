#ifndef PROGRES_COMMON_STRING_UTIL_H_
#define PROGRES_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace progres {

// Returns the first `n` characters of `s` (or all of `s` if shorter). This is
// the substring operation used by the paper's prefix blocking keys
// (Table II: e.g. title.sub(0, 3)).
std::string_view Prefix(std::string_view s, size_t n);

// Returns a copy of `s` with ASCII letters lower-cased.
std::string ToLowerAscii(std::string_view s);

// Splits `s` on `delim` without trimming; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, char delim);

// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace progres

#endif  // PROGRES_COMMON_STRING_UTIL_H_

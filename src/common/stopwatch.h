#ifndef PROGRES_COMMON_STOPWATCH_H_
#define PROGRES_COMMON_STOPWATCH_H_

#include <chrono>

namespace progres {

// Wall-clock stopwatch for coarse timing of pipeline phases. The figures in
// the reproduction use the deterministic cost clock instead (see
// mapreduce/cost_clock.h); this class backs the optional wall-clock counters.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Resets the stopwatch to zero.
  void Reset() { start_ = Clock::now(); }

  // Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace progres

#endif  // PROGRES_COMMON_STOPWATCH_H_

#include "common/tsv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace progres {

bool WriteTsv(const std::string& path,
              const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << '\t';
      out << row[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool ReadTsv(const std::string& path,
             std::vector<std::vector<std::string>>* rows) {
  std::ifstream in(path);
  if (!in) return false;
  rows->clear();
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> fields;
    for (std::string_view f : Split(line, '\t')) fields.emplace_back(f);
    rows->push_back(std::move(fields));
  }
  return true;
}

}  // namespace progres

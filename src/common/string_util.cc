#include "common/string_util.h"

namespace progres {

std::string_view Prefix(std::string_view s, size_t n) {
  return s.substr(0, std::min(n, s.size()));
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, char delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace progres

#ifndef PROGRES_COMMON_TSV_H_
#define PROGRES_COMMON_TSV_H_

#include <string>
#include <vector>

namespace progres {

// Minimal tab-separated-values reader/writer used to persist datasets and
// ground truth. Fields must not contain tabs or newlines; the datagen module
// sanitizes generated values accordingly.

// Writes `rows` to `path`, one row per line, fields joined by tabs. Returns
// false on I/O failure.
bool WriteTsv(const std::string& path,
              const std::vector<std::vector<std::string>>& rows);

// Reads `path` into rows of fields. Returns false on I/O failure. An empty
// file yields an empty vector.
bool ReadTsv(const std::string& path,
             std::vector<std::vector<std::string>>* rows);

}  // namespace progres

#endif  // PROGRES_COMMON_TSV_H_

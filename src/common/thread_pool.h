#ifndef PROGRES_COMMON_THREAD_POOL_H_
#define PROGRES_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace progres {

// Fixed-size pool of worker threads used by the MapReduce runtime to execute
// map/reduce tasks concurrently. Tasks are plain std::function<void()>;
// exceptions must not escape a task.
//
// Usage:
//   ThreadPool pool(8);
//   for (...) pool.Submit([&] { ... });
//   pool.Wait();  // blocks until all submitted tasks have finished
class ThreadPool {
 public:
  // Creates `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  // Waits for outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` for execution.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has completed. New tasks may be
  // submitted afterwards; the pool stays usable until destruction.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Index of the calling thread within its pool, in [0, num_threads), or -1
  // when called from a thread that is not a pool worker. Lets task code
  // attribute work to a worker lane without plumbing an id through every
  // callback.
  static int CurrentWorker();

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when work arrives or stop
  std::condition_variable idle_cv_;   // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace progres

#endif  // PROGRES_COMMON_THREAD_POOL_H_

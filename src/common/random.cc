#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace progres {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four words of xoshiro state with SplitMix64, as recommended by
  // the xoshiro authors, so that nearby seeds produce unrelated streams.
  uint64_t s = seed;
  for (uint64_t& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random bits scaled into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.assign(static_cast<size_t>(n), 0.0);
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[static_cast<size_t>(i)] = sum;
    }
    for (double& v : zipf_cdf_) v /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = UniformDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

}  // namespace progres

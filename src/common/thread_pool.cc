#include "common/thread_pool.h"

#include <algorithm>

namespace progres {

namespace {
// Worker index of the current thread, -1 off-pool. Thread-local so nested
// pools are impossible to confuse: each worker thread belongs to exactly
// one pool for its whole lifetime.
thread_local int current_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

int ThreadPool::CurrentWorker() { return current_worker_index; }

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  current_worker_index = worker_index;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace progres

#include "model/ground_truth.h"

#include <unordered_map>

#include "common/tsv.h"

namespace progres {

GroundTruth::GroundTruth(std::vector<int32_t> cluster_of)
    : cluster_of_(std::move(cluster_of)) {
  std::unordered_map<int32_t, int64_t> sizes;
  for (int32_t c : cluster_of_) ++sizes[c];
  for (const auto& [cluster, n] : sizes) {
    (void)cluster;
    num_duplicate_pairs_ += n * (n - 1) / 2;
  }
}

std::vector<PairKey> GroundTruth::AllDuplicatePairs() const {
  std::unordered_map<int32_t, std::vector<EntityId>> members;
  for (size_t i = 0; i < cluster_of_.size(); ++i) {
    members[cluster_of_[i]].push_back(static_cast<EntityId>(i));
  }
  std::vector<PairKey> pairs;
  pairs.reserve(static_cast<size_t>(num_duplicate_pairs_));
  for (const auto& [cluster, ids] : members) {
    (void)cluster;
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        pairs.push_back(MakePairKey(ids[i], ids[j]));
      }
    }
  }
  return pairs;
}

bool GroundTruth::SaveTsv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cluster_of_.size());
  for (size_t i = 0; i < cluster_of_.size(); ++i) {
    rows.push_back({std::to_string(i), std::to_string(cluster_of_[i])});
  }
  return WriteTsv(path, rows);
}

bool GroundTruth::LoadTsv(const std::string& path, GroundTruth* out) {
  std::vector<std::vector<std::string>> rows;
  if (!ReadTsv(path, &rows)) return false;
  std::vector<int32_t> cluster_of(rows.size(), 0);
  for (const auto& row : rows) {
    if (row.size() != 2) return false;
    const size_t id = static_cast<size_t>(std::stol(row[0]));
    if (id >= cluster_of.size()) return false;
    cluster_of[id] = static_cast<int32_t>(std::stol(row[1]));
  }
  *out = GroundTruth(std::move(cluster_of));
  return true;
}

}  // namespace progres

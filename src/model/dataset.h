#ifndef PROGRES_MODEL_DATASET_H_
#define PROGRES_MODEL_DATASET_H_

#include <string>
#include <vector>

#include "model/entity.h"

namespace progres {

// A named collection of entities sharing a schema. Entities are stored by id
// (entity(i).id == i), which the generators and TSV loader guarantee.
class Dataset {
 public:
  Dataset() = default;

  // Creates a dataset with the given attribute names.
  explicit Dataset(std::vector<std::string> schema) : schema_(std::move(schema)) {}

  // Appends `entity`, assigning it the next dense id. Returns the id.
  EntityId Add(std::vector<std::string> attributes);

  const Entity& entity(EntityId id) const {
    return entities_[static_cast<size_t>(id)];
  }
  const std::vector<Entity>& entities() const { return entities_; }
  int64_t size() const { return static_cast<int64_t>(entities_.size()); }

  const std::vector<std::string>& schema() const { return schema_; }

  // Returns the index of attribute `name`, or -1 if absent.
  int AttributeIndex(const std::string& name) const;

  // Persists the dataset as TSV (header row = schema, then one row per
  // entity). Returns false on I/O failure.
  bool SaveTsv(const std::string& path) const;

  // Loads a dataset previously written by SaveTsv. Returns false on failure.
  static bool LoadTsv(const std::string& path, Dataset* out);

 private:
  std::vector<std::string> schema_;
  std::vector<Entity> entities_;
};

}  // namespace progres

#endif  // PROGRES_MODEL_DATASET_H_

#ifndef PROGRES_MODEL_GROUND_TRUTH_H_
#define PROGRES_MODEL_GROUND_TRUTH_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "model/entity.h"

namespace progres {

// Ground truth for a dataset: the partition of entities into real-world
// objects. Built from a cluster id per entity; exposes the set of duplicate
// pairs (all intra-cluster pairs), which is what recall is computed against.
class GroundTruth {
 public:
  GroundTruth() = default;

  // `cluster_of[i]` is the real-world object id of entity i.
  explicit GroundTruth(std::vector<int32_t> cluster_of);

  // True if entities a and b refer to the same real-world object.
  bool IsDuplicate(EntityId a, EntityId b) const {
    return cluster_of_[static_cast<size_t>(a)] ==
           cluster_of_[static_cast<size_t>(b)];
  }

  // Total number of duplicate pairs N (the recall denominator; Eq. 1).
  int64_t num_duplicate_pairs() const { return num_duplicate_pairs_; }

  int64_t num_entities() const {
    return static_cast<int64_t>(cluster_of_.size());
  }

  int32_t cluster_of(EntityId id) const {
    return cluster_of_[static_cast<size_t>(id)];
  }

  // Enumerates every duplicate pair key. Intended for tests and evaluation
  // on laptop-scale datasets (pair count is O(sum of cluster_size^2)).
  std::vector<PairKey> AllDuplicatePairs() const;

  // Persists as TSV (entity_id, cluster_id). Returns false on I/O failure.
  bool SaveTsv(const std::string& path) const;
  static bool LoadTsv(const std::string& path, GroundTruth* out);

 private:
  std::vector<int32_t> cluster_of_;
  int64_t num_duplicate_pairs_ = 0;
};

}  // namespace progres

#endif  // PROGRES_MODEL_GROUND_TRUTH_H_

#include "model/dataset.h"

#include "common/tsv.h"

namespace progres {

EntityId Dataset::Add(std::vector<std::string> attributes) {
  Entity e;
  e.id = static_cast<EntityId>(entities_.size());
  e.attributes = std::move(attributes);
  entities_.push_back(std::move(e));
  return entities_.back().id;
}

int Dataset::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

bool Dataset::SaveTsv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(entities_.size() + 1);
  rows.push_back(schema_);
  for (const Entity& e : entities_) rows.push_back(e.attributes);
  return WriteTsv(path, rows);
}

bool Dataset::LoadTsv(const std::string& path, Dataset* out) {
  std::vector<std::vector<std::string>> rows;
  if (!ReadTsv(path, &rows) || rows.empty()) return false;
  *out = Dataset(rows.front());
  for (size_t i = 1; i < rows.size(); ++i) out->Add(std::move(rows[i]));
  return true;
}

}  // namespace progres

#ifndef PROGRES_MODEL_UNION_FIND_H_
#define PROGRES_MODEL_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace progres {

// Disjoint-set forest with union by rank and path compression. Used for the
// transitive-closure clustering step that turns resolved duplicate pairs into
// disjoint entity clusters (Sec. II-A).
class UnionFind {
 public:
  explicit UnionFind(int64_t n) : parent_(static_cast<size_t>(n)), rank_(static_cast<size_t>(n), 0) {
    for (size_t i = 0; i < parent_.size(); ++i) parent_[i] = static_cast<int64_t>(i);
  }

  // Returns the representative of `x`'s set.
  int64_t Find(int64_t x) {
    int64_t root = x;
    while (parent_[static_cast<size_t>(root)] != root) root = parent_[static_cast<size_t>(root)];
    while (parent_[static_cast<size_t>(x)] != root) {
      const int64_t next = parent_[static_cast<size_t>(x)];
      parent_[static_cast<size_t>(x)] = root;
      x = next;
    }
    return root;
  }

  // Merges the sets containing `a` and `b`. Returns true if they were
  // previously in different sets.
  bool Union(int64_t a, int64_t b) {
    int64_t ra = Find(a);
    int64_t rb = Find(b);
    if (ra == rb) return false;
    if (rank_[static_cast<size_t>(ra)] < rank_[static_cast<size_t>(rb)]) std::swap(ra, rb);
    parent_[static_cast<size_t>(rb)] = ra;
    if (rank_[static_cast<size_t>(ra)] == rank_[static_cast<size_t>(rb)]) ++rank_[static_cast<size_t>(ra)];
    return true;
  }

  bool Connected(int64_t a, int64_t b) { return Find(a) == Find(b); }

  int64_t size() const { return static_cast<int64_t>(parent_.size()); }

 private:
  std::vector<int64_t> parent_;
  std::vector<int8_t> rank_;
};

}  // namespace progres

#endif  // PROGRES_MODEL_UNION_FIND_H_

#ifndef PROGRES_MODEL_ENTITY_H_
#define PROGRES_MODEL_ENTITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace progres {

// Identifier of an entity within a dataset. Dense, starting at 0.
using EntityId = int32_t;

// Canonical 64-bit key of an unordered entity pair: the smaller id is stored
// in the high 32 bits. Used for duplicate sets and redundancy bookkeeping.
using PairKey = uint64_t;

// Returns the canonical key for the unordered pair {a, b}. Requires a != b.
inline PairKey MakePairKey(EntityId a, EntityId b) {
  const uint32_t lo = static_cast<uint32_t>(a < b ? a : b);
  const uint32_t hi = static_cast<uint32_t>(a < b ? b : a);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

// Returns the two entity ids of a pair key (first < second).
inline std::pair<EntityId, EntityId> PairKeyIds(PairKey key) {
  return {static_cast<EntityId>(key >> 32),
          static_cast<EntityId>(key & 0xffffffffULL)};
}

// A record to be resolved: an id plus one string value per schema attribute.
// Missing values are represented by empty strings.
struct Entity {
  EntityId id = -1;
  std::vector<std::string> attributes;

  // Returns the value of attribute `index`, or an empty view when the entity
  // has fewer attributes (treated as missing).
  std::string_view attribute(size_t index) const {
    return index < attributes.size() ? std::string_view(attributes[index])
                                     : std::string_view();
  }
};

}  // namespace progres

#endif  // PROGRES_MODEL_ENTITY_H_

#ifndef PROGRES_ESTIMATE_PROB_MODEL_H_
#define PROGRES_ESTIMATE_PROB_MODEL_H_

#include <cstdint>
#include <vector>

#include "blocking/blocking_function.h"
#include "model/dataset.h"
#include "model/ground_truth.h"

namespace progres {

// The duplicate-probability model of Sec. VI-A4: the probability that a pair
// of entities placed together in a block is a duplicate, learned from a
// training dataset as a function of the block's size fraction |X| / |D|.
// The fraction range [0, 1] is divided into variable-size (logarithmic)
// sub-ranges and one probability is learned per (family, level, sub-range),
// with coarser fallbacks for sub-ranges not seen during training.
class ProbabilityModel {
 public:
  // Builds the model from a labeled training dataset: forests are built over
  // `train`, each block's true duplicate-pair fraction is measured against
  // `truth`, and per-bucket ratios are aggregated.
  static ProbabilityModel Train(const Dataset& train, const GroundTruth& truth,
                                const BlockingConfig& config);

  // Returns the learned probability that a pair in a block of `block_size`
  // entities (from family `f`, level `level`, out of `dataset_size` total
  // entities) is a duplicate.
  double Probability(int f, int level, int64_t block_size,
                     int64_t dataset_size) const;

  // Number of fraction sub-ranges.
  static int num_buckets();

  // Index of the sub-range containing fraction `block_size / dataset_size`.
  static int BucketOf(int64_t block_size, int64_t dataset_size);

 private:
  struct Cell {
    double dup_pairs = 0.0;
    double total_pairs = 0.0;
  };

  // cells_[f][level-1][bucket]; fallback aggregates per bucket.
  std::vector<std::vector<std::vector<Cell>>> cells_;
  std::vector<Cell> global_;
};

}  // namespace progres

#endif  // PROGRES_ESTIMATE_PROB_MODEL_H_

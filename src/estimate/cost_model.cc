#include "estimate/cost_model.h"

#include <algorithm>
#include <cmath>

namespace progres {

int64_t WindowPairs(int64_t n, int w) {
  const int64_t d_max = std::min<int64_t>(w - 1, n - 1);
  if (d_max <= 0) return 0;
  // sum_{d=1..d_max} (n - d) = n*d_max - d_max*(d_max+1)/2
  return n * d_max - d_max * (d_max + 1) / 2;
}

double CostA(int64_t n, const MechanismCosts& costs) {
  if (n <= 0) return 0.0;
  const double log_n = n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
  return costs.read_per_entity * static_cast<double>(n) +
         costs.sort_per_entity_log2 * static_cast<double>(n) * log_n;
}

double CostP(double dup, double dis, const MechanismCosts& costs) {
  return costs.comparison * (dup + dis);
}

double CostF(int64_t n, int window, int64_t cov, const MechanismCosts& costs) {
  const int64_t pairs = WindowPairs(n, window);
  const double compared = static_cast<double>(std::min(pairs, cov));
  const double skipped = static_cast<double>(std::max<int64_t>(0, pairs - cov));
  return costs.comparison * compared + costs.skip * skipped;
}

}  // namespace progres

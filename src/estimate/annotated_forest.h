#ifndef PROGRES_ESTIMATE_ANNOTATED_FOREST_H_
#define PROGRES_ESTIMATE_ANNOTATED_FOREST_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/forest.h"
#include "estimate/cost_model.h"
#include "estimate/prob_model.h"
#include "mechanism/mechanism.h"

namespace progres {

// Per-level resolution policy and estimation parameters (Sec. VI-A5): root
// blocks are resolved fully with the largest window; leaf blocks most
// aggressively with the smallest window and fraction; everything in between
// uses the middle settings. Th(X) = |X| throughout, ensuring a block's
// termination value is smaller than its parent's.
struct EstimateParams {
  MechanismCosts costs;
  int window_root = 15;
  int window_middle = 10;
  int window_leaf = 5;
  double frac_leaf = 0.8;
  double frac_middle = 0.9;
  // Termination threshold scale: Th(X) = th_factor * |X| (the paper uses
  // factor 1). Lower values resolve non-root blocks more aggressively.
  double th_factor = 1.0;
  // d(X) = Prob * Cov(X) when true (Sec. IV-B defines d over covered pairs);
  // d(X) = Prob * Pairs(|X|) when false (the simpler form of Sec. VI-A4).
  bool dup_on_covered = true;
};

// One block annotated with the estimates of Sec. IV-B. The hierarchy
// (parent/children) never changes after elimination; tree membership does:
// splitting marks a block as tree_root, carving its subtree out of the
// enclosing tree.
struct AnnotatedBlock {
  BlockId id;
  int parent = -1;
  std::vector<int> children;
  int64_t size = 0;
  // Covered pairs. Reduced on ancestors when a subtree is split off (the
  // split tree resolves those pairs; Sec. IV-C2).
  int64_t cov = 0;
  bool tree_root = false;
  bool eliminated = false;

  // Resolution policy derived from the block's position.
  int window = 0;
  int64_t th = 0;
  double frac = 1.0;

  // When this block was eliminated by the equal-size collapse, the index of
  // the surviving block with the same entity set (-1 otherwise). Lets path
  // lookups resolve to the block that actually gets scheduled.
  int redirect = -1;

  // Estimates (Sec. IV-B).
  double d_value = 0.0;  // d(X): expected covered duplicate pairs
  double dup = 0.0;      // Dup(X), Eq. 2
  double remain = 0.0;   // Remain(X), Eq. 4
  double dis = 0.0;      // Dis(X)
  double cost = 0.0;     // Cost(X), Eq. 3 or Eq. 5
  double util = 0.0;     // Util(X) = Dup / Cost

  bool is_leaf() const { return children.empty(); }
};

// A family's forest annotated with duplicate/cost estimates, supporting the
// block-elimination cleanup and the tree-split operation of the schedule
// generator. All estimation follows Sec. IV-B with d(.) taken over covered
// pairs, which keeps Eqs. 2-5 consistent under splits (splitting moves a
// subtree's covered pairs out of its ancestors).
class AnnotatedForest {
 public:
  // Copies structure and sizes from `forest` (which must have uncov filled
  // in by ComputeUncoveredPairs) and runs elimination + a full estimation
  // pass.
  AnnotatedForest(const Forest& forest, const EstimateParams& params,
                  const ProbabilityModel& prob, int64_t dataset_size);

  int family() const { return family_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  AnnotatedBlock& block(int i) { return blocks_[static_cast<size_t>(i)]; }
  const AnnotatedBlock& block(int i) const {
    return blocks_[static_cast<size_t>(i)];
  }

  // Current tree roots (original roots plus split-off subtree roots), in
  // creation order. Eliminated blocks never appear.
  const std::vector<int>& tree_roots() const { return tree_roots_; }

  // Blocks of the tree rooted at `root` in bottom-up order (every child
  // before its parent), not descending into nested split-off trees.
  std::vector<int> TreeBlocks(int root) const;

  // Root of the tree currently containing `node`.
  int FindTreeRoot(int node) const;

  // Splits the subtree rooted at `node` into its own tree (Sec. IV-C2):
  // `node` becomes a fully-resolved root, its covered pairs leave every
  // ancestor, and both affected trees are re-estimated bottom-up.
  void SplitSubtree(int node);

  // Recomputes the estimates of the tree rooted at `root`, bottom-up.
  void ReestimateTree(int root);

  // Node index for a block path, or -1. Eliminated blocks resolve to the
  // surviving block that absorbed them (equal-size collapse) when possible.
  int Find(const std::string& path) const;

  const EstimateParams& params() const { return params_; }

 private:
  void EliminateSmallBlocks();
  void CollapseEqualSizeChains();
  void EstimateBlock(int n, double sum_child_frac_d, double sum_desc_dis,
                     double sum_desc_costp);

  int family_ = 0;
  int64_t dataset_size_ = 0;
  EstimateParams params_;
  const ProbabilityModel* prob_ = nullptr;
  std::vector<AnnotatedBlock> blocks_;
  std::vector<int> tree_roots_;
  std::unordered_map<std::string, int> by_path_;
};

// Builds one AnnotatedForest per family from the statistics forests.
std::vector<AnnotatedForest> AnnotateForests(const std::vector<Forest>& forests,
                                             const EstimateParams& params,
                                             const ProbabilityModel& prob,
                                             int64_t dataset_size);

}  // namespace progres

#endif  // PROGRES_ESTIMATE_ANNOTATED_FOREST_H_

#include "estimate/family_order.h"

#include <algorithm>
#include <unordered_map>

#include "blocking/forest.h"

namespace progres {

std::vector<FamilyQuality> MeasureFamilies(
    const std::vector<FamilySpec>& candidates, const Dataset& train,
    const GroundTruth& truth) {
  std::vector<FamilyQuality> out;
  out.reserve(candidates.size());
  for (size_t f = 0; f < candidates.size(); ++f) {
    // Measure the candidate in isolation: its root blocks over the sample.
    FamilySpec root_only = candidates[f];
    root_only.prefix_lens = {candidates[f].prefix_lens.front()};
    const BlockingConfig config({root_only});
    const std::vector<Forest> forests =
        BuildForests(train, config, /*keep_members=*/true);

    FamilyQuality quality;
    quality.family = static_cast<int>(f);
    for (const BlockNode& node : forests[0].nodes) {
      if (node.size < 2) continue;
      quality.total_pairs += PairsOf(node.size);
      std::unordered_map<int32_t, int64_t> cluster_sizes;
      for (EntityId id : node.entities) ++cluster_sizes[truth.cluster_of(id)];
      for (const auto& [cluster, n] : cluster_sizes) {
        (void)cluster;
        quality.duplicate_pairs += PairsOf(n);
      }
    }
    out.push_back(quality);
  }
  return out;
}

std::vector<FamilySpec> OrderFamiliesByDominance(
    const std::vector<FamilySpec>& candidates, const Dataset& train,
    const GroundTruth& truth) {
  const std::vector<FamilyQuality> qualities =
      MeasureFamilies(candidates, train, truth);
  std::vector<int> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&qualities](int a, int b) {
    return qualities[static_cast<size_t>(a)].ratio() >
           qualities[static_cast<size_t>(b)].ratio();
  });
  std::vector<FamilySpec> ordered;
  ordered.reserve(candidates.size());
  for (int i : order) ordered.push_back(candidates[static_cast<size_t>(i)]);
  return ordered;
}

}  // namespace progres

#ifndef PROGRES_ESTIMATE_FAMILY_ORDER_H_
#define PROGRES_ESTIMATE_FAMILY_ORDER_H_

#include <vector>

#include "blocking/blocking_function.h"
#include "model/dataset.h"
#include "model/ground_truth.h"

namespace progres {

// Automatic specification of the dominance relation on main blocking
// functions (Sec. IV-A): instead of a domain expert ordering the families,
// estimate for each candidate function the number of duplicate and total
// pairs in its blocks on a labeled training sample, and let X dominate Y
// when X's duplicate-pair ratio is higher — the adaptive-blocking recipe
// the paper cites from [20].

// Per-family diagnostics from the training sample.
struct FamilyQuality {
  int family = 0;             // index into the candidate list
  int64_t total_pairs = 0;    // pairs within the family's root blocks
  int64_t duplicate_pairs = 0;
  double ratio() const {
    return total_pairs > 0 ? static_cast<double>(duplicate_pairs) /
                                 static_cast<double>(total_pairs)
                           : 0.0;
  }
};

// Measures every candidate family on `train` / `truth`. Uses root blocks
// only (the dominance relation is defined on main blocking functions).
std::vector<FamilyQuality> MeasureFamilies(
    const std::vector<FamilySpec>& candidates, const Dataset& train,
    const GroundTruth& truth);

// Returns `candidates` reordered by non-increasing duplicate-pair ratio
// (ties keep the input order), i.e. the most dominating family first —
// ready to construct a BlockingConfig.
std::vector<FamilySpec> OrderFamiliesByDominance(
    const std::vector<FamilySpec>& candidates, const Dataset& train,
    const GroundTruth& truth);

}  // namespace progres

#endif  // PROGRES_ESTIMATE_FAMILY_ORDER_H_

#ifndef PROGRES_ESTIMATE_COST_MODEL_H_
#define PROGRES_ESTIMATE_COST_MODEL_H_

#include <cstdint>

#include "mechanism/mechanism.h"

namespace progres {

// Closed-form cost predictions matching what the mechanisms in src/mechanism
// actually charge (they share MechanismCosts), so the schedule generator's
// Cost(.) values (Eqs. 3 and 5) line up with execution.

// Number of pairs a sorted-neighborhood sweep with window `w` examines in a
// block of `n` entities: sum over distances d = 1..min(w-1, n-1) of (n - d).
int64_t WindowPairs(int64_t n, int w);

// Additional cost CostA: reading and sorting the block (Sec. IV-B).
double CostA(int64_t n, const MechanismCosts& costs);

// Cost of resolving `dup` duplicate and `dis` distinct pairs (CostP).
double CostP(double dup, double dis, const MechanismCosts& costs);

// Cost of resolving a block fully (CostF): all window pairs, of which at
// most `cov` are genuine comparisons and the remainder are redundancy skips.
double CostF(int64_t n, int window, int64_t cov, const MechanismCosts& costs);

}  // namespace progres

#endif  // PROGRES_ESTIMATE_COST_MODEL_H_

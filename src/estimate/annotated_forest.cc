#include "estimate/annotated_forest.h"

#include <algorithm>

namespace progres {

namespace {
constexpr double kMinCost = 1e-9;
}  // namespace

AnnotatedForest::AnnotatedForest(const Forest& forest,
                                 const EstimateParams& params,
                                 const ProbabilityModel& prob,
                                 int64_t dataset_size)
    : family_(forest.family),
      dataset_size_(dataset_size),
      params_(params),
      prob_(&prob),
      by_path_(forest.by_path) {
  blocks_.reserve(forest.nodes.size());
  for (const BlockNode& node : forest.nodes) {
    AnnotatedBlock b;
    b.id = node.id;
    b.parent = node.parent;
    b.children = node.children;
    b.size = node.size;
    b.cov = node.cov();
    blocks_.push_back(std::move(b));
  }
  for (int r : forest.roots) {
    blocks_[static_cast<size_t>(r)].tree_root = true;
    tree_roots_.push_back(r);
  }
  EliminateSmallBlocks();
  CollapseEqualSizeChains();
  for (int r : tree_roots_) ReestimateTree(r);
}

void AnnotatedForest::EliminateSmallBlocks() {
  // Blocks with fewer than two entities contain no pairs; resolving them is
  // pure overhead. Children of a small block are at most as large, so whole
  // chains disappear together.
  for (AnnotatedBlock& b : blocks_) {
    if (b.size < 2) b.eliminated = true;
  }
  for (AnnotatedBlock& b : blocks_) {
    std::erase_if(b.children, [this](int c) {
      return blocks_[static_cast<size_t>(c)].eliminated;
    });
  }
  std::erase_if(tree_roots_, [this](int r) {
    const bool gone = blocks_[static_cast<size_t>(r)].eliminated;
    if (gone) blocks_[static_cast<size_t>(r)].tree_root = false;
    return gone;
  });
}

void AnnotatedForest::CollapseEqualSizeChains() {
  // If a block has the same size as its parent, the two have identical
  // entity sets (children of a prefix block partition it), so resolving both
  // duplicates CostA for no new pairs. The deeper block survives: it keeps
  // the finer sub-blocking below it and inherits the parent's place.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < blocks_.size(); ++i) {
      AnnotatedBlock& child = blocks_[i];
      if (child.eliminated || child.parent < 0) continue;
      AnnotatedBlock& parent = blocks_[static_cast<size_t>(child.parent)];
      if (parent.eliminated || parent.size != child.size) continue;

      const int parent_index = child.parent;
      parent.eliminated = true;
      parent.redirect = static_cast<int>(i);
      child.parent = parent.parent;
      if (parent.parent >= 0) {
        std::vector<int>& siblings =
            blocks_[static_cast<size_t>(parent.parent)].children;
        std::replace(siblings.begin(), siblings.end(), parent_index,
                     static_cast<int>(i));
      }
      if (parent.tree_root) {
        parent.tree_root = false;
        child.tree_root = true;
        std::replace(tree_roots_.begin(), tree_roots_.end(), parent_index,
                     static_cast<int>(i));
      }
      changed = true;
    }
  }
}

std::vector<int> AnnotatedForest::TreeBlocks(int root) const {
  // Iterative post-order: children (that belong to this tree) before parents.
  std::vector<int> order;
  std::vector<std::pair<int, bool>> stack;  // (node, children_expanded)
  stack.emplace_back(root, false);
  while (!stack.empty()) {
    auto [n, expanded] = stack.back();
    stack.pop_back();
    const AnnotatedBlock& b = blocks_[static_cast<size_t>(n)];
    if (expanded) {
      order.push_back(n);
      continue;
    }
    stack.emplace_back(n, true);
    for (int c : b.children) {
      const AnnotatedBlock& cb = blocks_[static_cast<size_t>(c)];
      if (cb.eliminated || cb.tree_root) continue;  // split trees excluded
      stack.emplace_back(c, false);
    }
  }
  return order;
}

int AnnotatedForest::FindTreeRoot(int node) const {
  int n = node;
  while (!blocks_[static_cast<size_t>(n)].tree_root) {
    n = blocks_[static_cast<size_t>(n)].parent;
  }
  return n;
}

void AnnotatedForest::SplitSubtree(int node) {
  AnnotatedBlock& b = blocks_[static_cast<size_t>(node)];
  if (b.tree_root || b.eliminated) return;
  const int old_root = FindTreeRoot(node);
  b.tree_root = true;
  tree_roots_.push_back(node);
  // The split tree now resolves the subtree's covered pairs; remove them
  // from every ancestor up to the old root (Sec. IV-C2 decreases Cov of the
  // enclosing root).
  const int64_t moved_cov = b.cov;
  for (int a = b.parent;; a = blocks_[static_cast<size_t>(a)].parent) {
    AnnotatedBlock& ab = blocks_[static_cast<size_t>(a)];
    ab.cov = std::max<int64_t>(0, ab.cov - moved_cov);
    if (a == old_root) break;
  }
  ReestimateTree(node);
  ReestimateTree(old_root);
}

void AnnotatedForest::ReestimateTree(int root) {
  const std::vector<int> order = TreeBlocks(root);
  // Aggregates over in-tree descendants, filled bottom-up.
  std::unordered_map<int, double> desc_dis;
  std::unordered_map<int, double> desc_costp;
  for (int n : order) {
    const AnnotatedBlock& b = blocks_[static_cast<size_t>(n)];
    double sum_child_frac_d = 0.0;
    double sum_desc_dis = 0.0;
    double sum_desc_costp = 0.0;
    for (int c : b.children) {
      const AnnotatedBlock& cb = blocks_[static_cast<size_t>(c)];
      if (cb.eliminated || cb.tree_root) continue;
      sum_child_frac_d += cb.frac * cb.d_value;
      sum_desc_dis += cb.dis + desc_dis[c];
      sum_desc_costp += CostP(cb.dup, cb.dis, params_.costs) + desc_costp[c];
    }
    desc_dis[n] = sum_desc_dis;
    desc_costp[n] = sum_desc_costp;
    EstimateBlock(n, sum_child_frac_d, sum_desc_dis, sum_desc_costp);
  }
}

void AnnotatedForest::EstimateBlock(int n, double sum_child_frac_d,
                                    double sum_desc_dis,
                                    double sum_desc_costp) {
  AnnotatedBlock& b = blocks_[static_cast<size_t>(n)];
  const bool root = b.tree_root;
  bool leaf = true;
  for (int c : b.children) {
    const AnnotatedBlock& cb = blocks_[static_cast<size_t>(c)];
    if (!cb.eliminated && !cb.tree_root) {
      leaf = false;
      break;
    }
  }

  b.window = root ? params_.window_root
                  : (leaf ? params_.window_leaf : params_.window_middle);
  // Sec. VI-A5: Th(X) = |X|, scaled by the configurable factor.
  b.th = static_cast<int64_t>(params_.th_factor * static_cast<double>(b.size));
  b.frac = root ? 1.0 : (leaf ? params_.frac_leaf : params_.frac_middle);

  const double base_pairs =
      params_.dup_on_covered ? static_cast<double>(b.cov)
                             : static_cast<double>(PairsOf(b.size));
  const double p =
      prob_->Probability(family_, b.id.level, b.size, dataset_size_);
  b.d_value = p * base_pairs;

  // Eq. 2 over in-tree children (split subtrees took their covered pairs
  // with them, so they no longer contribute here).
  b.dup = std::max(0.0, b.frac * b.d_value - sum_child_frac_d);
  // Eq. 4.
  b.remain =
      std::max(0.0, static_cast<double>(b.cov) - b.d_value - sum_desc_dis);
  b.dis = root ? b.remain : std::min(static_cast<double>(b.th), b.remain);

  const double cost_a = CostA(b.size, params_.costs);
  if (root) {
    // Eq. 5.
    b.cost = cost_a + CostF(b.size, b.window, b.cov, params_.costs) -
             sum_desc_costp;
  } else {
    // Eq. 3.
    b.cost = cost_a + CostP(b.dup, b.dis, params_.costs);
  }
  b.cost = std::max({b.cost, cost_a, kMinCost});
  b.util = b.dup / b.cost;
}

int AnnotatedForest::Find(const std::string& path) const {
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return -1;
  int n = it->second;
  while (blocks_[static_cast<size_t>(n)].eliminated) {
    const int redirect = blocks_[static_cast<size_t>(n)].redirect;
    if (redirect < 0) return -1;
    n = redirect;
  }
  return n;
}

std::vector<AnnotatedForest> AnnotateForests(const std::vector<Forest>& forests,
                                             const EstimateParams& params,
                                             const ProbabilityModel& prob,
                                             int64_t dataset_size) {
  std::vector<AnnotatedForest> out;
  out.reserve(forests.size());
  for (const Forest& f : forests) {
    out.emplace_back(f, params, prob, dataset_size);
  }
  return out;
}

}  // namespace progres

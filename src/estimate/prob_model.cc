#include "estimate/prob_model.h"

#include <unordered_map>

#include "blocking/forest.h"

namespace progres {

namespace {

// Logarithmic fraction boundaries: bucket i holds fractions in
// (boundary[i-1], boundary[i]].
constexpr double kBoundaries[] = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0};
constexpr int kNumBuckets = static_cast<int>(std::size(kBoundaries));

}  // namespace

int ProbabilityModel::num_buckets() { return kNumBuckets; }

int ProbabilityModel::BucketOf(int64_t block_size, int64_t dataset_size) {
  const double fraction = dataset_size > 0
                              ? static_cast<double>(block_size) /
                                    static_cast<double>(dataset_size)
                              : 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (fraction <= kBoundaries[i]) return i;
  }
  return kNumBuckets - 1;
}

ProbabilityModel ProbabilityModel::Train(const Dataset& train,
                                         const GroundTruth& truth,
                                         const BlockingConfig& config) {
  ProbabilityModel model;
  model.cells_.resize(static_cast<size_t>(config.num_families()));
  for (int f = 0; f < config.num_families(); ++f) {
    model.cells_[static_cast<size_t>(f)].assign(
        static_cast<size_t>(config.family(f).levels()),
        std::vector<Cell>(static_cast<size_t>(kNumBuckets)));
  }
  model.global_.assign(static_cast<size_t>(kNumBuckets), Cell());

  const std::vector<Forest> forests = BuildForests(train, config,
                                                   /*keep_members=*/true);
  for (const Forest& forest : forests) {
    for (const BlockNode& node : forest.nodes) {
      if (node.size < 2) continue;
      // True duplicate pairs inside the block: group members by truth
      // cluster; every intra-cluster pair is a duplicate.
      std::unordered_map<int32_t, int64_t> cluster_sizes;
      for (EntityId id : node.entities) ++cluster_sizes[truth.cluster_of(id)];
      int64_t dup_pairs = 0;
      for (const auto& [cluster, n] : cluster_sizes) {
        (void)cluster;
        dup_pairs += PairsOf(n);
      }
      const int64_t total_pairs = PairsOf(node.size);
      const int bucket = BucketOf(node.size, train.size());
      Cell& cell = model.cells_[static_cast<size_t>(forest.family)]
                               [static_cast<size_t>(node.id.level - 1)]
                               [static_cast<size_t>(bucket)];
      cell.dup_pairs += static_cast<double>(dup_pairs);
      cell.total_pairs += static_cast<double>(total_pairs);
      Cell& global = model.global_[static_cast<size_t>(bucket)];
      global.dup_pairs += static_cast<double>(dup_pairs);
      global.total_pairs += static_cast<double>(total_pairs);
    }
  }
  return model;
}

double ProbabilityModel::Probability(int f, int level, int64_t block_size,
                                     int64_t dataset_size) const {
  const int bucket = BucketOf(block_size, dataset_size);
  // Most specific first: (family, level, bucket), then any level of the
  // family at that bucket, then the global bucket, then a small default.
  if (f >= 0 && f < static_cast<int>(cells_.size())) {
    const auto& levels = cells_[static_cast<size_t>(f)];
    if (level >= 1 && level <= static_cast<int>(levels.size())) {
      const Cell& cell =
          levels[static_cast<size_t>(level - 1)][static_cast<size_t>(bucket)];
      if (cell.total_pairs > 0.0) return cell.dup_pairs / cell.total_pairs;
    }
    for (const auto& per_level : levels) {
      const Cell& cell = per_level[static_cast<size_t>(bucket)];
      if (cell.total_pairs > 0.0) return cell.dup_pairs / cell.total_pairs;
    }
  }
  if (bucket < static_cast<int>(global_.size()) &&
      global_[static_cast<size_t>(bucket)].total_pairs > 0.0) {
    const Cell& cell = global_[static_cast<size_t>(bucket)];
    return cell.dup_pairs / cell.total_pairs;
  }
  return 0.01;
}

}  // namespace progres

#include "similarity/jaro_winkler.h"

#include <algorithm>
#include <vector>

namespace progres {

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;

  const size_t window =
      std::max<size_t>(std::max(la, lb) / 2, 1) - 1;
  std::vector<bool> matched_a(la, false);
  std::vector<bool> matched_b(lb, false);

  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = true;
      matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among the matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(la) + m / static_cast<double>(lb) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace progres

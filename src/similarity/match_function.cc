#include "similarity/match_function.h"

#include <algorithm>

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "similarity/jaro_winkler.h"
#include "similarity/levenshtein.h"

namespace progres {

MatchFunction::MatchFunction(std::vector<AttributeRule> rules, double threshold)
    : rules_(std::move(rules)), threshold_(threshold), total_weight_(0.0) {
  for (const AttributeRule& r : rules_) total_weight_ += r.weight;
  if (total_weight_ <= 0.0) total_weight_ = 1.0;
  eval_order_.resize(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    eval_order_[i] = static_cast<int>(i);
  }
  std::stable_sort(eval_order_.begin(), eval_order_.end(), [this](int a, int b) {
    return rules_[static_cast<size_t>(a)].weight >
           rules_[static_cast<size_t>(b)].weight;
  });
}

double MatchFunction::RuleSimilarity(const AttributeRule& r, const Entity& a,
                                     const Entity& b) const {
  std::string_view va = a.attribute(static_cast<size_t>(r.attribute_index));
  std::string_view vb = b.attribute(static_cast<size_t>(r.attribute_index));
  if (r.max_chars > 0) {
    va = Prefix(va, static_cast<size_t>(r.max_chars));
    vb = Prefix(vb, static_cast<size_t>(r.max_chars));
  }
  double sim = 0.0;
  switch (r.similarity) {
    case AttributeSimilarity::kEditDistance:
      sim = EditSimilarity(va, vb);
      break;
    case AttributeSimilarity::kExact:
      sim = (va == vb) ? 1.0 : 0.0;
      break;
    case AttributeSimilarity::kJaroWinkler:
      sim = JaroWinklerSimilarity(va, vb);
      break;
    case AttributeSimilarity::kNumeric: {
      char* end_a = nullptr;
      char* end_b = nullptr;
      const std::string sa(va);
      const std::string sb(vb);
      const double na = std::strtod(sa.c_str(), &end_a);
      const double nb = std::strtod(sb.c_str(), &end_b);
      const bool ok_a = end_a != sa.c_str() && *end_a == '\0' && !sa.empty();
      const bool ok_b = end_b != sb.c_str() && *end_b == '\0' && !sb.empty();
      if (!ok_a || !ok_b) {
        sim = (va == vb) ? 1.0 : 0.0;  // non-numeric: fall back to exact
      } else {
        const double scale = r.numeric_scale > 0.0 ? r.numeric_scale : 1.0;
        sim = std::max(0.0, 1.0 - std::abs(na - nb) / scale);
      }
      break;
    }
  }
  return r.weight * sim;
}

double MatchFunction::Similarity(const Entity& a, const Entity& b) const {
  double sum = 0.0;
  for (const AttributeRule& r : rules_) sum += RuleSimilarity(r, a, b);
  return sum / total_weight_;
}

bool MatchFunction::Resolve(const Entity& a, const Entity& b) const {
  comparisons_.fetch_add(1, std::memory_order_relaxed);
  const double need = threshold_ * total_weight_;
  double sum = 0.0;
  double remaining = total_weight_;
  for (int index : eval_order_) {
    const AttributeRule& r = rules_[static_cast<size_t>(index)];
    remaining -= r.weight;
    sum += RuleSimilarity(r, a, b);
    if (sum >= need) return true;              // decided: above threshold
    if (sum + remaining < need) return false;  // decided: unreachable
  }
  return sum >= need;
}

}  // namespace progres

#include "similarity/levenshtein.h"

#include <algorithm>
#include <vector>

namespace progres {

int64_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int64_t>(m);

  std::vector<int64_t> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = static_cast<int64_t>(i);
  for (size_t j = 1; j <= m; ++j) {
    int64_t diag = row[0];  // row[0] from the previous iteration
    row[0] = static_cast<int64_t>(j);
    for (size_t i = 1; i <= n; ++i) {
      const int64_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
    }
  }
  return row[n];
}

int64_t BoundedLevenshtein(std::string_view a, std::string_view b,
                           int64_t max_dist) {
  if (max_dist < 0) return 0;
  if (a.size() > b.size()) std::swap(a, b);
  const int64_t n = static_cast<int64_t>(a.size());
  const int64_t m = static_cast<int64_t>(b.size());
  if (m - n > max_dist) return max_dist + 1;
  if (n == 0) return m;

  // Banded DP: only cells with |i - j| <= max_dist can hold values
  // <= max_dist. kBig marks cells outside the band.
  const int64_t kBig = max_dist + 1;
  std::vector<int64_t> row(static_cast<size_t>(n) + 1, kBig);
  for (int64_t i = 0; i <= std::min(n, max_dist); ++i) row[static_cast<size_t>(i)] = i;

  for (int64_t j = 1; j <= m; ++j) {
    const int64_t lo = std::max<int64_t>(1, j - max_dist);
    const int64_t hi = std::min(n, j + max_dist);
    int64_t diag = (lo == 1) ? row[0] : kBig;
    // diag must be the value of cell (lo-1, j-1) before this row update.
    if (lo > 1) diag = row[static_cast<size_t>(lo - 1)];
    row[0] = (j <= max_dist) ? j : kBig;
    if (lo > 1) row[static_cast<size_t>(lo - 1)] = kBig;
    int64_t row_min = kBig;
    for (int64_t i = lo; i <= hi; ++i) {
      const int64_t subst =
          diag + (a[static_cast<size_t>(i - 1)] == b[static_cast<size_t>(j - 1)] ? 0 : 1);
      diag = row[static_cast<size_t>(i)];
      const int64_t del = (i < hi || hi == n) ? row[static_cast<size_t>(i)] + 1 : kBig;
      const int64_t ins = row[static_cast<size_t>(i - 1)] + 1;
      row[static_cast<size_t>(i)] = std::min({del, ins, subst, kBig});
      row_min = std::min(row_min, row[static_cast<size_t>(i)]);
    }
    if (hi < n) row[static_cast<size_t>(hi + 1)] = kBig;
    if (row_min > max_dist) return max_dist + 1;  // early exit: band exceeded
  }
  return std::min(row[static_cast<size_t>(n)], kBig);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const int64_t d = Levenshtein(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

}  // namespace progres

#ifndef PROGRES_SIMILARITY_JARO_WINKLER_H_
#define PROGRES_SIMILARITY_JARO_WINKLER_H_

#include <string_view>

namespace progres {

// Jaro similarity in [0, 1]: based on matching characters within half the
// longer string's length and the number of transpositions among them. The
// classic record-linkage measure for short name-like strings.
double JaroSimilarity(std::string_view a, std::string_view b);

// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
// prefix, scaled by `prefix_scale` (standard value 0.1, must keep the result
// within [0, 1], i.e. prefix_scale <= 0.25).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace progres

#endif  // PROGRES_SIMILARITY_JARO_WINKLER_H_

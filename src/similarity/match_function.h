#ifndef PROGRES_SIMILARITY_MATCH_FUNCTION_H_
#define PROGRES_SIMILARITY_MATCH_FUNCTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "model/entity.h"

namespace progres {

// How a single attribute's similarity is computed (Sec. VI-A2: the paper
// compares attributes with edit distance or exact matching).
enum class AttributeSimilarity {
  kEditDistance,  // normalized Levenshtein similarity
  kExact,         // 1.0 if equal, else 0.0
  kJaroWinkler,   // Jaro-Winkler similarity (short name-like strings)
  kNumeric,       // 1 - |a - b| / numeric_scale, clamped to [0, 1]
};

// One attribute's contribution to the weighted-sum match decision.
struct AttributeRule {
  int attribute_index = 0;
  AttributeSimilarity similarity = AttributeSimilarity::kEditDistance;
  double weight = 1.0;
  // If > 0, only the first `max_chars` characters are compared. The paper
  // truncates the abstract attribute to 350 characters (footnote 8).
  int max_chars = 0;
  // For kNumeric: the difference at which similarity reaches zero. Values
  // that fail to parse as numbers compare as kExact.
  double numeric_scale = 1.0;
};

// The compute-intensive resolve/match function: a weighted sum of
// per-attribute similarities compared against a threshold. Thread-safe for
// concurrent Resolve calls; the comparison counter is atomic so that reduce
// tasks running in parallel can share one instance.
class MatchFunction {
 public:
  MatchFunction(std::vector<AttributeRule> rules, double threshold);

  // Copyable: the comparison counter's current value is carried over (the
  // atomic itself prevents implicit copies).
  MatchFunction(const MatchFunction& other)
      : rules_(other.rules_),
        eval_order_(other.eval_order_),
        threshold_(other.threshold_),
        total_weight_(other.total_weight_),
        comparisons_(other.comparisons()) {}
  MatchFunction& operator=(const MatchFunction& other) {
    rules_ = other.rules_;
    eval_order_ = other.eval_order_;
    threshold_ = other.threshold_;
    total_weight_ = other.total_weight_;
    comparisons_.store(other.comparisons(), std::memory_order_relaxed);
    return *this;
  }

  // Returns true if `a` and `b` are declared duplicates, i.e. whether
  // Similarity(a, b) >= threshold. Missing values (empty strings on both
  // sides) contribute full similarity; a value missing on one side only
  // contributes zero.
  //
  // Attributes are evaluated heaviest-weight first and evaluation stops as
  // soon as the threshold decision is fixed (the remaining attributes can
  // only contribute [0, remaining_weight]); this skips the expensive
  // long-text comparisons for clearly distinct pairs.
  bool Resolve(const Entity& a, const Entity& b) const;

  // Returns the weighted similarity in [0, 1] without thresholding.
  double Similarity(const Entity& a, const Entity& b) const;

  // Number of Resolve() calls since construction or the last ResetCounter().
  int64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  void ResetCounter() { comparisons_.store(0, std::memory_order_relaxed); }

  double threshold() const { return threshold_; }
  const std::vector<AttributeRule>& rules() const { return rules_; }

 private:
  // Weighted similarity of one attribute rule.
  double RuleSimilarity(const AttributeRule& rule, const Entity& a,
                        const Entity& b) const;

  std::vector<AttributeRule> rules_;
  // Indexes of rules_ sorted by non-increasing weight (Resolve's evaluation
  // order; maximizes early-exit opportunities).
  std::vector<int> eval_order_;
  double threshold_;
  double total_weight_;
  mutable std::atomic<int64_t> comparisons_{0};
};

}  // namespace progres

#endif  // PROGRES_SIMILARITY_MATCH_FUNCTION_H_

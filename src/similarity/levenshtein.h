#ifndef PROGRES_SIMILARITY_LEVENSHTEIN_H_
#define PROGRES_SIMILARITY_LEVENSHTEIN_H_

#include <cstdint>
#include <string_view>

namespace progres {

// Computes the Levenshtein (edit) distance between `a` and `b` using the
// classic two-row dynamic program. O(|a|*|b|) time, O(min) space.
int64_t Levenshtein(std::string_view a, std::string_view b);

// Computes the Levenshtein distance if it is <= `max_dist`, otherwise returns
// max_dist + 1. Uses Ukkonen's banded dynamic program, O(max_dist * min(|a|,
// |b|)) time, which is what makes the edit-distance match function affordable
// inside the resolve loop.
int64_t BoundedLevenshtein(std::string_view a, std::string_view b,
                           int64_t max_dist);

// Normalized edit similarity in [0, 1]: 1 - dist / max(|a|, |b|). Two empty
// strings have similarity 1.
double EditSimilarity(std::string_view a, std::string_view b);

}  // namespace progres

#endif  // PROGRES_SIMILARITY_LEVENSHTEIN_H_

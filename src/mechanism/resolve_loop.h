#ifndef PROGRES_MECHANISM_RESOLVE_LOOP_H_
#define PROGRES_MECHANISM_RESOLVE_LOOP_H_

#include <vector>

#include "mechanism/mechanism.h"

namespace progres {
namespace mechanism_internal {

// Shared pair-processing loop used by the concrete mechanisms: applies the
// redundancy checks, charges costs, runs the match function, records the
// outcome, and evaluates the stopping conditions (termination threshold and
// popcorn scheme). Mechanisms own pair *enumeration order*; this class owns
// everything else.
class ResolveLoop {
 public:
  ResolveLoop(const ResolveRequest& request, const MechanismCosts& costs)
      : request_(request),
        costs_(costs),
        start_cost_(request.clock->units()),
        popcorn_hits_(request.options.popcorn_threshold > 0.0
                          ? static_cast<size_t>(request.options.popcorn_window)
                          : 0,
                      0) {}

  // Processes the unordered pair (a, b). Returns false when enumeration
  // should stop (a stopping condition fired).
  bool ProcessPair(const Entity& a, const Entity& b) {
    const PairKey key = MakePairKey(a.id, b.id);
    if (request_.resolved != nullptr && request_.resolved->count(key) > 0) {
      request_.clock->Charge(costs_.skip);
      ++outcome_.skipped;
      return true;
    }
    if (request_.should_resolve != nullptr &&
        !(*request_.should_resolve)(a, b)) {
      request_.clock->Charge(costs_.skip);
      ++outcome_.skipped;
      return true;
    }
    request_.clock->Charge(costs_.comparison);
    const bool is_duplicate = request_.match->Resolve(a, b);
    if (request_.resolved != nullptr) request_.resolved->insert(key);
    if (is_duplicate) {
      ++outcome_.duplicates;
      if (request_.on_duplicate) request_.on_duplicate(a.id, b.id);
    } else {
      ++outcome_.distinct;
    }
    return !ShouldStop(is_duplicate);
  }

  // Finalizes and returns the outcome; call exactly once.
  ResolveOutcome Finish() {
    outcome_.cost = request_.clock->units() - start_cost_;
    return outcome_;
  }

 private:
  bool ShouldStop(bool last_was_duplicate) {
    const ResolveOptions& opt = request_.options;
    if (opt.termination_distinct >= 0 &&
        outcome_.distinct > opt.termination_distinct) {
      outcome_.stopped_early = true;
      return true;
    }
    if (!popcorn_hits_.empty()) {
      // Sliding window over the last popcorn_window comparisons.
      popcorn_dups_ -= popcorn_hits_[popcorn_index_];
      popcorn_hits_[popcorn_index_] = last_was_duplicate ? 1 : 0;
      popcorn_dups_ += popcorn_hits_[popcorn_index_];
      popcorn_index_ = (popcorn_index_ + 1) % popcorn_hits_.size();
      const int64_t comparisons = outcome_.duplicates + outcome_.distinct;
      if (comparisons >= static_cast<int64_t>(popcorn_hits_.size())) {
        const double rate = static_cast<double>(popcorn_dups_) /
                            static_cast<double>(popcorn_hits_.size());
        if (rate < opt.popcorn_threshold) {
          outcome_.stopped_early = true;
          return true;
        }
      }
    }
    return false;
  }

  const ResolveRequest& request_;
  const MechanismCosts& costs_;
  ResolveOutcome outcome_;
  double start_cost_;

  // Popcorn state: ring buffer of duplicate hits over recent comparisons.
  std::vector<int8_t> popcorn_hits_;
  size_t popcorn_index_ = 0;
  int64_t popcorn_dups_ = 0;
};

// Pair-restriction view over ResolveOptions for sub-block match tasks (the
// BlockSplit/PairRange schedulers). Mechanisms consult it with each
// candidate pair's sorted positions (i, j) and its index in the canonical
// d-major enumeration; pairs it rejects belong to another match task and
// are passed over without charging any cost.
class PairRestriction {
 public:
  explicit PairRestriction(const ResolveOptions& options)
      : sub_(options.sub_a_hi >= 0),
        slice_(options.slice_end >= 0),
        options_(options) {}

  bool active() const { return sub_ || slice_; }

  bool Admits(int64_t i, int64_t j, int64_t index) const {
    if (sub_ && (i < options_.sub_a_lo || i >= options_.sub_a_hi ||
                 j < options_.sub_b_lo || j >= options_.sub_b_hi)) {
      return false;
    }
    if (slice_ &&
        (index < options_.slice_begin || index >= options_.slice_end)) {
      return false;
    }
    return true;
  }

  // True once no later enumeration index can be admitted, so the mechanism
  // may stop enumerating (the slice restriction is a contiguous range).
  bool Exhausted(int64_t index) const {
    return slice_ && index >= options_.slice_end;
  }

 private:
  bool sub_;
  bool slice_;
  const ResolveOptions& options_;
};

// Returns the indexes of `block` sorted by the given attribute value
// (ties broken by entity id for determinism).
std::vector<int> SortedOrder(const std::vector<const Entity*>& block,
                             int sort_attribute);

// Charges the additional cost CostA of reading and sorting a block of `n`
// entities.
void ChargeAdditionalCost(int64_t n, const MechanismCosts& costs,
                          CostClock* clock);

}  // namespace mechanism_internal
}  // namespace progres

#endif  // PROGRES_MECHANISM_RESOLVE_LOOP_H_

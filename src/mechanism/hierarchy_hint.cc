#include "mechanism/hierarchy_hint.h"

#include "mechanism/resolve_loop.h"

namespace progres {

ResolveOutcome HierarchyHintMechanism::Resolve(
    const ResolveRequest& request) const {
  using mechanism_internal::ResolveLoop;
  const std::vector<const Entity*>& block = *request.block;
  const int64_t n = static_cast<int64_t>(block.size());

  mechanism_internal::ChargeAdditionalCost(n, costs_, request.clock);
  ResolveLoop loop(request, costs_);
  if (n < 2) return loop.Finish();

  const std::vector<int> order =
      mechanism_internal::SortedOrder(block, request.sort_attribute);
  const int64_t max_distance =
      std::min<int64_t>(request.options.window - 1, n - 1);
  const auto entity_at = [&](int64_t rank) -> const Entity& {
    return *block[static_cast<size_t>(order[static_cast<size_t>(rank)])];
  };

  // Level 0: all pairs inside each finest partition, by rank distance.
  const int64_t leaf = leaf_size_;
  for (int64_t d = 1; d < leaf && d <= max_distance; ++d) {
    for (int64_t start = 0; start < n; start += leaf) {
      const int64_t end = std::min(start + leaf, n);
      for (int64_t i = start; i + d < end; ++i) {
        if (!loop.ProcessPair(entity_at(i), entity_at(i + d))) {
          return loop.Finish();
        }
      }
    }
  }

  // Coarser levels: each parent partition contributes only the pairs that
  // span its two children, in non-decreasing rank distance.
  for (int64_t p = leaf * 2; p / 2 < n; p *= 2) {
    const int64_t half = p / 2;
    for (int64_t d = 1; d <= max_distance; ++d) {
      for (int64_t start = 0; start < n; start += p) {
        const int64_t mid = start + half;
        if (mid >= n) continue;
        const int64_t end = std::min(start + p, n);
        // Pairs (i, i + d) with i in the left child and i + d in the right.
        const int64_t lo = std::max(start, mid - d);
        const int64_t hi = std::min(mid, end - d);
        for (int64_t i = lo; i < hi; ++i) {
          if (!loop.ProcessPair(entity_at(i), entity_at(i + d))) {
            return loop.Finish();
          }
        }
      }
    }
  }
  return loop.Finish();
}

}  // namespace progres

#ifndef PROGRES_MECHANISM_SORTED_NEIGHBOR_H_
#define PROGRES_MECHANISM_SORTED_NEIGHBOR_H_

#include "mechanism/mechanism.h"

namespace progres {

// The Sorted Neighbor algorithm [3] combined with the distance hint of
// "Pay-as-you-go entity resolution" [5] (Sec. II-B): the block's entities
// are sorted on the blocking attribute, and pairs are resolved in
// non-decreasing order of rank distance — distance-1 pairs first, then
// distance 2, and so on up to window - 1. Used for the CiteSeerX-style
// experiments in the paper.
class SortedNeighborMechanism : public ProgressiveMechanism {
 public:
  explicit SortedNeighborMechanism(MechanismCosts costs = {})
      : costs_(costs) {}

  std::string name() const override { return "SN"; }

  ResolveOutcome Resolve(const ResolveRequest& request) const override;

  const MechanismCosts& costs() const { return costs_; }

 private:
  MechanismCosts costs_;
};

}  // namespace progres

#endif  // PROGRES_MECHANISM_SORTED_NEIGHBOR_H_

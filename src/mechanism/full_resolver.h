#ifndef PROGRES_MECHANISM_FULL_RESOLVER_H_
#define PROGRES_MECHANISM_FULL_RESOLVER_H_

#include "mechanism/mechanism.h"

namespace progres {

// Exhaustive resolver: compares every pair of the block in id order. Not
// progressive — it serves as the quality oracle in tests and as the
// "traditional ER" curve of Figure 1. Ignores the window option; honours the
// termination/popcorn options so it can also act as a degenerate mechanism.
class FullResolverMechanism : public ProgressiveMechanism {
 public:
  explicit FullResolverMechanism(MechanismCosts costs = {}) : costs_(costs) {}

  std::string name() const override { return "Full"; }

  ResolveOutcome Resolve(const ResolveRequest& request) const override;

 private:
  MechanismCosts costs_;
};

}  // namespace progres

#endif  // PROGRES_MECHANISM_FULL_RESOLVER_H_

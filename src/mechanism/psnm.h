#ifndef PROGRES_MECHANISM_PSNM_H_
#define PROGRES_MECHANISM_PSNM_H_

#include "mechanism/mechanism.h"

namespace progres {

// The Progressive Sorted Neighborhood Method of "Progressive duplicate
// detection" [6], adapted to resolve one block (the paper uses it for the
// OL-Books experiments). Like SN-with-hint it grows the rank-distance window
// progressively, but it processes the sorted block in fixed-size partitions:
// for each distance d, partitions are swept one after another — the access
// pattern PSNM uses so that each partition fits in memory. Within a block
// this changes the discovery order (partition-major within a distance) but
// covers exactly the same pair set as SN.
class PsnmMechanism : public ProgressiveMechanism {
 public:
  explicit PsnmMechanism(MechanismCosts costs = {}, int partition_size = 512)
      : costs_(costs), partition_size_(partition_size > 1 ? partition_size : 2) {}

  std::string name() const override { return "PSNM"; }

  ResolveOutcome Resolve(const ResolveRequest& request) const override;

  int partition_size() const { return partition_size_; }
  const MechanismCosts& costs() const { return costs_; }

 private:
  MechanismCosts costs_;
  int partition_size_;
};

}  // namespace progres

#endif  // PROGRES_MECHANISM_PSNM_H_

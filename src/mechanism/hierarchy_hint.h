#ifndef PROGRES_MECHANISM_HIERARCHY_HINT_H_
#define PROGRES_MECHANISM_HIERARCHY_HINT_H_

#include "mechanism/mechanism.h"

namespace progres {

// The hierarchy-of-partitions hint of "Pay-as-you-go entity resolution" [5],
// which Sec. III-A cites as the inspiration for progressive blocking and
// explicitly allows as a mechanism M. The block's sorted order is divided
// into a binary hierarchy of partitions; pairs inside the finest partitions
// are resolved first (they are likeliest to be duplicates), then each
// coarser level resolves only the pairs spanning its two child partitions,
// in non-decreasing rank distance. The rank-distance window cap is honoured
// so that the pair set covered equals SN's, only the order differs.
class HierarchyHintMechanism : public ProgressiveMechanism {
 public:
  // `leaf_size` is the size of the finest partitions (>= 2).
  explicit HierarchyHintMechanism(MechanismCosts costs = {}, int leaf_size = 4)
      : costs_(costs), leaf_size_(leaf_size > 2 ? leaf_size : 2) {}

  std::string name() const override { return "HierarchyHint"; }

  ResolveOutcome Resolve(const ResolveRequest& request) const override;

  int leaf_size() const { return leaf_size_; }

 private:
  MechanismCosts costs_;
  int leaf_size_;
};

}  // namespace progres

#endif  // PROGRES_MECHANISM_HIERARCHY_HINT_H_

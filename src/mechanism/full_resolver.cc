#include "mechanism/full_resolver.h"

#include "mechanism/resolve_loop.h"

namespace progres {

ResolveOutcome FullResolverMechanism::Resolve(
    const ResolveRequest& request) const {
  using mechanism_internal::ResolveLoop;
  const std::vector<const Entity*>& block = *request.block;
  const int64_t n = static_cast<int64_t>(block.size());

  // No sort; charge read cost only.
  request.clock->Charge(costs_.read_per_entity * static_cast<double>(n));
  ResolveLoop loop(request, costs_);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      if (!loop.ProcessPair(*block[static_cast<size_t>(i)],
                            *block[static_cast<size_t>(j)])) {
        return loop.Finish();
      }
    }
  }
  return loop.Finish();
}

}  // namespace progres

#ifndef PROGRES_MECHANISM_MECHANISM_H_
#define PROGRES_MECHANISM_MECHANISM_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mapreduce/cost_clock.h"
#include "model/entity.h"
#include "similarity/match_function.h"

namespace progres {

// Cost-unit prices of the primitive operations a mechanism performs. One
// unit is one resolve/match invocation; everything else is priced relative
// to it. The estimation module (src/estimate) uses the same prices so that
// CostA/CostP/CostF predictions line up with what mechanisms actually charge.
struct MechanismCosts {
  double read_per_entity = 0.1;       // reading a block entity
  double sort_per_entity_log2 = 0.05; // sorting, per entity per log2(n)
  double comparison = 1.0;            // one resolve/match call
  double skip = 0.01;                 // skipping a pair (redundancy checks)
};

// Stopping parameters for resolving one block.
struct ResolveOptions {
  // Window size w: only pairs whose rank distance in the sorted block is
  // less than `window` are considered (Sec. II-B).
  int window = 15;
  // Termination threshold Th: stop once more than this many distinct
  // (non-duplicate) pairs have been resolved. -1 disables (resolve fully,
  // used for root blocks).
  int64_t termination_distinct = -1;
  // Popcorn scheme [5]: stop when the rate of newly identified duplicates
  // over the last `popcorn_window` comparisons drops below this threshold.
  // <= 0 disables.
  double popcorn_threshold = 0.0;
  int popcorn_window = 1000;

  // Sub-block restriction (the BlockSplit scheduler's single/cross match
  // tasks): only pairs whose sorted positions (i, j), i < j, satisfy
  // sub_a_lo <= i < sub_a_hi and sub_b_lo <= j < sub_b_hi are enumerated.
  // Excluded pairs cost nothing — they belong to another match task.
  // Disabled when sub_a_hi < 0.
  int64_t sub_a_lo = 0;
  int64_t sub_a_hi = -1;
  int64_t sub_b_lo = 0;
  int64_t sub_b_hi = -1;
  // Enumeration-slice restriction (the PairRange scheduler): only pairs
  // whose 0-based index in the mechanism's canonical d-major enumeration
  // falls in [slice_begin, slice_end). Disabled when slice_end < 0.
  int64_t slice_begin = 0;
  int64_t slice_end = -1;
};

// What happened while resolving one block.
struct ResolveOutcome {
  int64_t duplicates = 0;  // duplicate pairs found in this invocation
  int64_t distinct = 0;    // distinct pairs resolved in this invocation
  int64_t skipped = 0;     // pairs skipped (already resolved / not responsible)
  double cost = 0.0;       // cost units charged, including additional cost
  bool stopped_early = false;  // a stopping condition fired before the window
                               // enumeration was exhausted
};

// Everything a mechanism needs to resolve one block.
struct ResolveRequest {
  // The block's entities. Pointers remain owned by the caller's dataset.
  const std::vector<const Entity*>* block = nullptr;
  // Attribute index to sort on (the attribute blocking was performed on).
  int sort_attribute = 0;
  const MatchFunction* match = nullptr;
  ResolveOptions options;
  // Cost clock of the executing (simulated) task. Required.
  CostClock* clock = nullptr;
  // Responsibility predicate (Sec. V). Pairs for which it returns false are
  // skipped: another tree resolves them. May be null (always responsible).
  const std::function<bool(const Entity&, const Entity&)>* should_resolve =
      nullptr;
  // Pairs already resolved within this tree (incremental bottom-up
  // resolution, Sec. III-A). Pairs found here are skipped; newly resolved
  // pairs are inserted. May be null.
  std::unordered_set<PairKey>* resolved = nullptr;
  // Invoked for every duplicate found, after the comparison is charged, so
  // the callback can read `clock` for the event's task-local cost.
  std::function<void(EntityId, EntityId)> on_duplicate;
};

// A progressive mechanism M (Sec. II-B): an ER algorithm, possibly combined
// with a hint, that resolves a block's pairs most-promising-first until a
// stopping condition fires. Implementations must be stateless across
// Resolve calls (one instance is shared by concurrent reduce tasks).
class ProgressiveMechanism {
 public:
  virtual ~ProgressiveMechanism() = default;

  virtual std::string name() const = 0;

  // Resolves one block according to `request`. See ResolveRequest.
  virtual ResolveOutcome Resolve(const ResolveRequest& request) const = 0;
};

}  // namespace progres

#endif  // PROGRES_MECHANISM_MECHANISM_H_

#include "mechanism/psnm.h"

#include "mechanism/resolve_loop.h"

namespace progres {

ResolveOutcome PsnmMechanism::Resolve(const ResolveRequest& request) const {
  using mechanism_internal::ResolveLoop;
  const std::vector<const Entity*>& block = *request.block;
  const int64_t n = static_cast<int64_t>(block.size());

  mechanism_internal::ChargeAdditionalCost(n, costs_, request.clock);
  ResolveLoop loop(request, costs_);
  if (n < 2) return loop.Finish();

  const std::vector<int> order =
      mechanism_internal::SortedOrder(block, request.sort_attribute);

  const int64_t p = partition_size_;
  const mechanism_internal::PairRestriction restriction(request.options);
  int64_t index = -1;
  const int64_t max_distance =
      std::min<int64_t>(request.options.window - 1, n - 1);
  for (int64_t d = 1; d <= max_distance; ++d) {
    // Partition-major sweep: each partition covers the pairs (i, i+d) whose
    // left index falls inside it, including pairs that straddle into the
    // next partition (PSNM keeps two partitions loaded while sliding). The
    // left index still advances 0..n-d-1 within each d, so the enumeration
    // index matches the canonical d-major order the schedulers count.
    for (int64_t start = 0; start < n; start += p) {
      const int64_t end = std::min(start + p, n - d);
      for (int64_t i = start; i < end; ++i) {
        ++index;
        if (restriction.active()) {
          if (restriction.Exhausted(index)) return loop.Finish();
          if (!restriction.Admits(i, i + d, index)) continue;
        }
        const Entity& a =
            *block[static_cast<size_t>(order[static_cast<size_t>(i)])];
        const Entity& b =
            *block[static_cast<size_t>(order[static_cast<size_t>(i + d)])];
        if (!loop.ProcessPair(a, b)) return loop.Finish();
      }
    }
  }
  return loop.Finish();
}

}  // namespace progres

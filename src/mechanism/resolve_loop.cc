#include "mechanism/resolve_loop.h"

#include <algorithm>
#include <cmath>

namespace progres {
namespace mechanism_internal {

std::vector<int> SortedOrder(const std::vector<const Entity*>& block,
                             int sort_attribute) {
  std::vector<int> order(block.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::string_view va =
        block[static_cast<size_t>(a)]->attribute(static_cast<size_t>(sort_attribute));
    const std::string_view vb =
        block[static_cast<size_t>(b)]->attribute(static_cast<size_t>(sort_attribute));
    if (va != vb) return va < vb;
    return block[static_cast<size_t>(a)]->id < block[static_cast<size_t>(b)]->id;
  });
  return order;
}

void ChargeAdditionalCost(int64_t n, const MechanismCosts& costs,
                          CostClock* clock) {
  if (n <= 0) return;
  const double log_n = n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
  clock->Charge(costs.read_per_entity * static_cast<double>(n) +
                costs.sort_per_entity_log2 * static_cast<double>(n) * log_n);
}

}  // namespace mechanism_internal
}  // namespace progres

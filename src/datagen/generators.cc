#include "datagen/generators.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

namespace progres {

namespace {

// Builds `size` distinct pronounceable words (2-4 consonant-vowel syllables,
// optionally closed by a consonant). Deterministic given the rng state.
std::vector<std::string> BuildVocabulary(int size, Rng* rng) {
  constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
  constexpr char kVowels[] = "aeiou";
  std::unordered_set<std::string> seen;
  std::vector<std::string> vocabulary;
  vocabulary.reserve(static_cast<size_t>(size));
  while (static_cast<int>(vocabulary.size()) < size) {
    std::string word;
    const int syllables = static_cast<int>(2 + rng->UniformU64(3));
    for (int s = 0; s < syllables; ++s) {
      word.push_back(kConsonants[rng->UniformU64(19)]);
      word.push_back(kVowels[rng->UniformU64(5)]);
    }
    if (rng->Bernoulli(0.3)) word.push_back(kConsonants[rng->UniformU64(19)]);
    if (seen.insert(word).second) vocabulary.push_back(std::move(word));
  }
  return vocabulary;
}

// Draws `count` words: the first via a Zipf over the vocabulary (to induce
// skewed prefix blocks), the rest uniformly. With `mega_fraction` > 0 the
// first word is pinned to the vocabulary head word with that probability
// (the mega-block skew profile); the extra Bernoulli draw only happens when
// the knob is on, so the default draw sequence is unchanged.
std::string MakePhrase(const std::vector<std::string>& vocabulary,
                       double first_word_zipf, int count, Rng* rng,
                       double mega_fraction = 0.0) {
  std::string phrase;
  for (int i = 0; i < count; ++i) {
    if (i > 0) phrase.push_back(' ');
    size_t w;
    if (i > 0) {
      w = rng->UniformU64(vocabulary.size());
    } else if (mega_fraction > 0.0 && rng->Bernoulli(mega_fraction)) {
      w = 0;
    } else {
      w = static_cast<size_t>(rng->Zipf(
          static_cast<int64_t>(vocabulary.size()), first_word_zipf));
    }
    phrase += vocabulary[w];
  }
  return phrase;
}

std::string NumberString(Rng* rng, int64_t lo, int64_t hi) {
  return std::to_string(rng->UniformInt(lo, hi));
}

// Decides a duplicate-cluster size: 1 with probability 1 - duplicate_share,
// otherwise 2 plus a Zipf-skewed surplus.
int DrawClusterSize(double duplicate_share, double zipf, int max_size,
                    Rng* rng) {
  if (!rng->Bernoulli(duplicate_share)) return 1;
  return 2 + static_cast<int>(rng->Zipf(std::max(1, max_size - 1), zipf));
}

struct PendingEntity {
  std::vector<std::string> attributes;
  int32_t cluster = 0;
};

// Shuffles and materializes pending entities into a labeled dataset.
LabeledDataset Materialize(std::vector<std::string> schema,
                           std::vector<PendingEntity> pending, Rng* rng) {
  for (size_t i = pending.size(); i > 1; --i) {
    const size_t j = rng->UniformU64(i);
    std::swap(pending[i - 1], pending[j]);
  }
  LabeledDataset out;
  out.dataset = Dataset(std::move(schema));
  std::vector<int32_t> cluster_of;
  cluster_of.reserve(pending.size());
  for (PendingEntity& e : pending) {
    out.dataset.Add(std::move(e.attributes));
    cluster_of.push_back(e.cluster);
  }
  out.truth = GroundTruth(std::move(cluster_of));
  return out;
}

// Streams the publication workload into `sink` in generation order using
// `rng`, which must already be seeded. Both the batch and the streaming
// entry points run exactly this draw sequence, so they see the same
// entities; the batch path just shuffles afterwards.
void GeneratePublicationsInto(const PublicationConfig& config, Rng* rng,
                              const EntitySink& sink) {
  const std::vector<std::string> vocabulary =
      BuildVocabulary(config.vocabulary_size, rng);
  std::vector<std::string> venues;
  venues.reserve(static_cast<size_t>(config.num_venues));
  for (int i = 0; i < config.num_venues; ++i) {
    venues.push_back(MakePhrase(vocabulary, 1.0, 2, rng) + " conference");
  }

  // The share of base records that receive duplicates, chosen so that
  // roughly duplicate_fraction of *entities* live in multi-entity clusters.
  int64_t produced = 0;
  int32_t cluster = 0;
  while (produced < config.num_entities) {
    std::vector<std::string> base(3);
    base[kPubTitle] =
        MakePhrase(vocabulary, config.first_word_zipf,
                   static_cast<int>(4 + rng->UniformU64(4)), rng,
                   config.mega_block_fraction);
    base[kPubAbstract] =
        MakePhrase(vocabulary, config.first_word_zipf,
                   static_cast<int>(15 + rng->UniformU64(16)), rng);
    base[kPubVenue] = venues[rng->UniformU64(venues.size())];

    const int k = DrawClusterSize(config.duplicate_fraction / 2.0,
                                  config.cluster_zipf,
                                  config.max_cluster_size, rng);
    sink(base, cluster);
    ++produced;
    for (int c = 1; c < k && produced < config.num_entities; ++c) {
      std::vector<std::string> copy(3);
      for (size_t a = 0; a < base.size(); ++a) {
        copy[a] = CorruptValue(base[a], config.corruption, rng);
      }
      sink(std::move(copy), cluster);
      ++produced;
    }
    ++cluster;
  }
}

// Streaming core of the book workload; see GeneratePublicationsInto.
void GenerateBooksInto(const BookConfig& config, Rng* rng,
                       const EntitySink& sink) {
  const std::vector<std::string> vocabulary =
      BuildVocabulary(config.vocabulary_size, rng);
  std::vector<std::string> publishers;
  publishers.reserve(static_cast<size_t>(config.num_publishers));
  for (int i = 0; i < config.num_publishers; ++i) {
    publishers.push_back(MakePhrase(vocabulary, 1.0, 1, rng) + " press");
  }
  constexpr const char* kLanguages[] = {"english", "german",  "french",
                                        "spanish", "italian", "russian",
                                        "chinese", "japanese"};
  constexpr const char* kEditions[] = {"1st", "2nd", "3rd", "4th", "revised"};

  int64_t produced = 0;
  int32_t cluster = 0;
  while (produced < config.num_entities) {
    std::vector<std::string> base(8);
    base[kBookTitle] =
        MakePhrase(vocabulary, config.first_word_zipf,
                   static_cast<int>(3 + rng->UniformU64(4)), rng);
    base[kBookAuthors] = MakePhrase(vocabulary, config.first_word_zipf, 2,
                                    rng);
    base[kBookPublisher] = publishers[rng->UniformU64(publishers.size())];
    base[kBookYear] = NumberString(rng, 1950, 2020);
    base[kBookIsbn] = NumberString(rng, 1000000000000LL, 9999999999999LL);
    base[kBookPages] = NumberString(rng, 50, 1500);
    base[kBookLanguage] = kLanguages[rng->UniformU64(8)];
    base[kBookEdition] = kEditions[rng->UniformU64(5)];

    const int k = DrawClusterSize(config.duplicate_fraction / 2.0,
                                  config.cluster_zipf,
                                  config.max_cluster_size, rng);
    sink(base, cluster);
    ++produced;
    for (int c = 1; c < k && produced < config.num_entities; ++c) {
      std::vector<std::string> copy(8);
      // String attributes get edit-style corruption; numeric attributes are
      // occasionally perturbed; language/edition occasionally flip.
      copy[kBookTitle] =
          CorruptValue(base[kBookTitle], config.corruption, rng);
      copy[kBookAuthors] =
          CorruptValue(base[kBookAuthors], config.corruption, rng);
      copy[kBookPublisher] =
          CorruptValue(base[kBookPublisher], config.corruption, rng);
      copy[kBookYear] = rng->Bernoulli(0.05)
                            ? NumberString(rng, 1950, 2020)
                            : base[kBookYear];
      copy[kBookIsbn] =
          CorruptValue(base[kBookIsbn],
                       {.typo_rate = 0.005, .missing_rate = 0.05,
                        .truncate_rate = 0.0},
                       rng);
      copy[kBookPages] = rng->Bernoulli(0.05)
                             ? NumberString(rng, 50, 1500)
                             : base[kBookPages];
      copy[kBookLanguage] = rng->Bernoulli(0.02)
                                ? kLanguages[rng->UniformU64(8)]
                                : base[kBookLanguage];
      copy[kBookEdition] = rng->Bernoulli(0.05)
                               ? kEditions[rng->UniformU64(5)]
                               : base[kBookEdition];
      sink(std::move(copy), cluster);
      ++produced;
    }
    ++cluster;
  }
}

// Collects a streaming core's output for the batch entry points.
std::vector<PendingEntity> Collect(int64_t reserve,
                                   const std::function<void(
                                       const EntitySink&)>& generate) {
  std::vector<PendingEntity> pending;
  pending.reserve(static_cast<size_t>(reserve));
  generate([&pending](std::vector<std::string> attributes, int32_t cluster) {
    pending.push_back({std::move(attributes), cluster});
  });
  return pending;
}

}  // namespace

LabeledDataset GeneratePublications(const PublicationConfig& config) {
  Rng rng(config.seed);
  std::vector<PendingEntity> pending =
      Collect(config.num_entities, [&](const EntitySink& sink) {
        GeneratePublicationsInto(config, &rng, sink);
      });
  return Materialize(PublicationSchema(), std::move(pending), &rng);
}

LabeledDataset GenerateBooks(const BookConfig& config) {
  Rng rng(config.seed);
  std::vector<PendingEntity> pending =
      Collect(config.num_entities, [&](const EntitySink& sink) {
        GenerateBooksInto(config, &rng, sink);
      });
  return Materialize(BookSchema(), std::move(pending), &rng);
}

void StreamPublications(const PublicationConfig& config,
                        const EntitySink& sink) {
  Rng rng(config.seed);
  GeneratePublicationsInto(config, &rng, sink);
}

void StreamBooks(const BookConfig& config, const EntitySink& sink) {
  Rng rng(config.seed);
  GenerateBooksInto(config, &rng, sink);
}

std::vector<std::string> PublicationSchema() {
  return {"title", "abstract", "venue"};
}

std::vector<std::string> BookSchema() {
  return {"title", "authors", "publisher", "year", "isbn", "pages",
          "language", "edition"};
}

LabeledDataset GeneratePeopleToy() {
  LabeledDataset out;
  out.dataset = Dataset({"name", "state"});
  const std::vector<std::pair<std::vector<std::string>, int32_t>> rows = {
      {{"John Lopez", "HI"}, 0},      {{"John Lopez", "HI"}, 0},
      {{"John Lopez", "AZ"}, 0},      {{"Charles Andrews", "LA"}, 1},
      {{"Gharles Andrews", "LA"}, 1}, {{"Mary Gibson", "AZ"}, 2},
      {{"Chloe Matthew", "AZ"}, 3},   {{"William Martin", "AZ"}, 4},
      {{"Joey Brown", "LA"}, 5},
  };
  std::vector<int32_t> cluster_of;
  for (const auto& [attributes, cluster] : rows) {
    out.dataset.Add(attributes);
    cluster_of.push_back(cluster);
  }
  out.truth = GroundTruth(std::move(cluster_of));
  return out;
}

}  // namespace progres

#ifndef PROGRES_DATAGEN_GENERATORS_H_
#define PROGRES_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "datagen/corruption.h"
#include "model/dataset.h"
#include "model/ground_truth.h"

namespace progres {

// A dataset plus its ground truth (the duplicate clusters the generator
// injected).
struct LabeledDataset {
  Dataset dataset;
  GroundTruth truth;
};

// Synthetic substitute for the CiteSeerX publication dataset (Sec. VI-A2):
// entities with title / abstract / venue attributes. Duplicate clusters have
// Zipf-skewed sizes; copies are corrupted per `corruption`. Title and
// abstract first words are Zipf-distributed over the vocabulary and venues
// come from a small pool, reproducing the severe block-size skew the paper's
// scheduler must handle.
struct PublicationConfig {
  int64_t num_entities = 20000;
  // Fraction of entities that are duplicate copies of some base record.
  double duplicate_fraction = 0.4;
  // Zipf exponent for cluster sizes (larger = fewer big clusters).
  double cluster_zipf = 1.8;
  int max_cluster_size = 12;
  // Zipf exponent for the title's first word (controls block skew).
  double first_word_zipf = 1.1;
  // Head-heavy "mega-block" profile: with this probability a title's first
  // word is pinned to the vocabulary's head word, concentrating roughly
  // this fraction of entities in one title-prefix block while the rest
  // keep the Zipf tail. 0 disables and leaves the RNG draw sequence
  // byte-identical to before the knob existed.
  double mega_block_fraction = 0.0;
  int vocabulary_size = 2000;
  int num_venues = 24;
  CorruptionConfig corruption;
  uint64_t seed = 42;
};

// Attribute indexes of the publication schema.
enum PublicationAttribute { kPubTitle = 0, kPubAbstract = 1, kPubVenue = 2 };

LabeledDataset GeneratePublications(const PublicationConfig& config);

// Streaming generation for workloads too large to shuffle and hold in one
// LabeledDataset (the scale ablations run 1-30M entities). The sink
// receives each entity's attribute values plus its duplicate-cluster id the
// moment it is generated, so peak memory is one entity, not the dataset.
// Entities arrive in generation order — cluster members adjacent — unlike
// the batch Generate* functions, which Fisher-Yates-shuffle at the end; the
// RNG draw sequence up to that shuffle is shared, so a Stream* call sees
// exactly the entities of the equally-configured Generate* call.
using EntitySink =
    std::function<void(std::vector<std::string> attributes, int32_t cluster)>;

void StreamPublications(const PublicationConfig& config,
                        const EntitySink& sink);

// The publication schema, for building datasets around streamed entities.
std::vector<std::string> PublicationSchema();

// Synthetic substitute for the OL-Books dataset (Sec. VI-A2): eight
// attributes (title, authors, publisher, year, isbn, pages, language,
// edition), compared with edit distance or exact matching.
struct BookConfig {
  int64_t num_entities = 20000;
  double duplicate_fraction = 0.35;
  double cluster_zipf = 1.8;
  int max_cluster_size = 10;
  double first_word_zipf = 1.1;
  int vocabulary_size = 2500;
  int num_publishers = 30;
  CorruptionConfig corruption;
  uint64_t seed = 1337;
};

enum BookAttribute {
  kBookTitle = 0,
  kBookAuthors = 1,
  kBookPublisher = 2,
  kBookYear = 3,
  kBookIsbn = 4,
  kBookPages = 5,
  kBookLanguage = 6,
  kBookEdition = 7,
};

LabeledDataset GenerateBooks(const BookConfig& config);

// Streaming counterpart of GenerateBooks; see StreamPublications.
void StreamBooks(const BookConfig& config, const EntitySink& sink);

// The book schema, for building datasets around streamed entities.
std::vector<std::string> BookSchema();

// The toy people dataset of Table I (9 entities, attributes name / state;
// clusters {e1,e2,e3}, {e4,e5}, {e6}, {e7}, {e8}, {e9}).
LabeledDataset GeneratePeopleToy();

}  // namespace progres

#endif  // PROGRES_DATAGEN_GENERATORS_H_

#include "datagen/corruption.h"

namespace progres {

namespace {

constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";

char RandomLetter(Rng* rng) {
  return kAlphabet[rng->UniformU64(26)];
}

}  // namespace

std::string CorruptValue(const std::string& value,
                         const CorruptionConfig& config, Rng* rng) {
  if (rng->Bernoulli(config.missing_rate)) return "";

  std::string out;
  out.reserve(value.size() + 4);
  for (size_t i = 0; i < value.size(); ++i) {
    if (!rng->Bernoulli(config.typo_rate)) {
      out.push_back(value[i]);
      continue;
    }
    switch (rng->UniformU64(4)) {
      case 0:  // substitution
        out.push_back(RandomLetter(rng));
        break;
      case 1:  // deletion
        break;
      case 2:  // insertion (keeps the original character too)
        out.push_back(RandomLetter(rng));
        out.push_back(value[i]);
        break;
      default:  // transposition with the next character
        if (i + 1 < value.size()) {
          out.push_back(value[i + 1]);
          out.push_back(value[i]);
          ++i;
        } else {
          out.push_back(value[i]);
        }
        break;
    }
  }
  if (out.size() > 8 && rng->Bernoulli(config.truncate_rate)) {
    out.resize(out.size() / 2);
  }
  return out;
}

}  // namespace progres

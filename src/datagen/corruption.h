#ifndef PROGRES_DATAGEN_CORRUPTION_H_
#define PROGRES_DATAGEN_CORRUPTION_H_

#include <string>

#include "common/random.h"

namespace progres {

// Parameters of the attribute-corruption model used when generating
// duplicate records: each character independently suffers a typo with
// probability `typo_rate`; the whole value goes missing with probability
// `missing_rate`; string values are truncated with probability
// `truncate_rate`.
struct CorruptionConfig {
  double typo_rate = 0.015;
  double missing_rate = 0.012;
  double truncate_rate = 0.005;
};

// Returns a corrupted copy of `value`: typos are an even mix of character
// substitution, deletion, insertion, and adjacent transposition, the classic
// dirty-data edit operations. Deterministic given `rng`'s state.
std::string CorruptValue(const std::string& value,
                         const CorruptionConfig& config, Rng* rng);

}  // namespace progres

#endif  // PROGRES_DATAGEN_CORRUPTION_H_

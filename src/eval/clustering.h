#ifndef PROGRES_EVAL_CLUSTERING_H_
#define PROGRES_EVAL_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "model/entity.h"
#include "model/ground_truth.h"

namespace progres {

// Clustering techniques of Sec. II-A: after similarity computation, resolved
// duplicate pairs are grouped into disjoint clusters so that each cluster
// uniquely represents one real-world object.

// Transitive closure [1]: connected components over the duplicate pairs.
// Returns a cluster id per entity (ids are dense, starting at 0).
std::vector<int32_t> TransitiveClosure(int64_t num_entities,
                                       const std::vector<PairKey>& duplicates);

// Pivot-based correlation clustering [22] (the Ailon et al. KwikCluster
// scheme on the duplicate graph): entities are visited in a deterministic
// pivot order; each unclustered pivot grabs every unclustered entity it was
// directly matched with. Unlike transitive closure it does not chain through
// weak links, trading recall for precision.
std::vector<int32_t> CorrelationClustering(
    int64_t num_entities, const std::vector<PairKey>& duplicates);

// Pairwise quality of a clustering against the ground truth.
struct PairMetrics {
  int64_t true_positives = 0;   // intra-cluster pairs that are true dups
  int64_t false_positives = 0;  // intra-cluster pairs that are not
  int64_t false_negatives = 0;  // true dups split across clusters
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// Computes pairwise precision/recall/F1 of `cluster_of` against `truth`.
// O(sum of cluster sizes squared); intended for evaluation-scale data.
PairMetrics EvaluateClustering(const std::vector<int32_t>& cluster_of,
                               const GroundTruth& truth);

// Same metrics for a raw duplicate-pair set (no clustering step).
PairMetrics EvaluatePairs(const std::vector<PairKey>& duplicates,
                          const GroundTruth& truth);

}  // namespace progres

#endif  // PROGRES_EVAL_CLUSTERING_H_

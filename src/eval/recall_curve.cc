#include "eval/recall_curve.h"

#include <algorithm>
#include <unordered_set>

namespace progres {

RecallCurve RecallCurve::FromEvents(std::vector<DuplicateEvent> events,
                                    const GroundTruth& truth) {
  std::sort(events.begin(), events.end(),
            [](const DuplicateEvent& a, const DuplicateEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.pair < b.pair;
            });
  RecallCurve curve;
  const double n = static_cast<double>(truth.num_duplicate_pairs());
  if (n <= 0.0) return curve;

  std::unordered_set<PairKey> seen;
  seen.reserve(events.size());
  int64_t found = 0;
  for (const DuplicateEvent& event : events) {
    if (!seen.insert(event.pair).second) continue;
    const auto [a, b] = PairKeyIds(event.pair);
    if (!truth.IsDuplicate(a, b)) continue;
    ++found;
    curve.points_.push_back({event.time, static_cast<double>(found) / n});
  }
  return curve;
}

double RecallCurve::RecallAt(double t) const {
  // Last point with time <= t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const Point& p) { return value < p.time; });
  if (it == points_.begin()) return 0.0;
  return (it - 1)->recall;
}

double RecallCurve::TimeToRecall(double recall) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), recall,
      [](const Point& p, double value) { return p.recall < value; });
  if (it == points_.end()) return std::numeric_limits<double>::infinity();
  return it->time;
}

double Quality(const RecallCurve& curve, const std::vector<double>& times,
               const std::vector<double>& weights) {
  double quality = 0.0;
  double previous = 0.0;
  for (size_t i = 0; i < times.size() && i < weights.size(); ++i) {
    const double recall = curve.RecallAt(times[i]);
    quality += weights[i] * (recall - previous);
    previous = recall;
  }
  return quality;
}

}  // namespace progres

#ifndef PROGRES_EVAL_REPORT_H_
#define PROGRES_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/recall_curve.h"

namespace progres {

// Fixed-width text table for bench output (the "same rows the paper
// reports" format).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `precision` fractional digits.
std::string FormatDouble(double value, int precision);

// Renders a recall curve as "time recall" sample rows at `num_samples`
// evenly spaced times in [0, horizon]. Matches the series plotted in
// Figs. 8-10.
std::string FormatCurveSeries(const std::string& label,
                              const RecallCurve& curve, double horizon,
                              int num_samples);

}  // namespace progres

#endif  // PROGRES_EVAL_REPORT_H_

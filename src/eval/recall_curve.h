#ifndef PROGRES_EVAL_RECALL_CURVE_H_
#define PROGRES_EVAL_RECALL_CURVE_H_

#include <limits>
#include <vector>

#include "model/entity.h"
#include "model/ground_truth.h"

namespace progres {

// One duplicate-pair discovery, stamped with its global simulated time
// (seconds). Emitted by the drivers in src/core.
struct DuplicateEvent {
  double time = 0.0;
  PairKey pair = 0;
};

// Duplicate recall as a function of execution time (the y/x axes of
// Figs. 8-10): the ratio of correctly resolved duplicate pairs to the total
// number of duplicate pairs in the ground truth. Pairs are counted once (at
// their first discovery) and only if they are true duplicates.
class RecallCurve {
 public:
  static RecallCurve FromEvents(std::vector<DuplicateEvent> events,
                                const GroundTruth& truth);

  // Recall achieved by time `t` (inclusive).
  double RecallAt(double t) const;

  // Earliest time at which recall reaches `recall`, or +infinity if the run
  // never reaches it. Used for the speedup metric of Fig. 11.
  double TimeToRecall(double recall) const;

  double final_recall() const {
    return points_.empty() ? 0.0 : points_.back().recall;
  }
  double end_time() const {
    return points_.empty() ? 0.0 : points_.back().time;
  }

  struct Point {
    double time = 0.0;
    double recall = 0.0;
  };
  // Step points, one per counted duplicate, nondecreasing in both fields.
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

// The quality measure Qty(Result) of Eq. 1: sum over sampled times `c_i` of
// W(c_i) times the recall gained in (c_{i-1}, c_i]. `times` must be
// increasing and `weights` non-increasing with the same length. Returns a
// value in [0, 1].
double Quality(const RecallCurve& curve, const std::vector<double>& times,
               const std::vector<double>& weights);

}  // namespace progres

#endif  // PROGRES_EVAL_RECALL_CURVE_H_

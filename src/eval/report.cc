#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace progres {

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatCurveSeries(const std::string& label,
                              const RecallCurve& curve, double horizon,
                              int num_samples) {
  std::ostringstream out;
  out << "# series: " << label << "  (time_sec recall)\n";
  for (int i = 1; i <= num_samples; ++i) {
    const double t =
        horizon * static_cast<double>(i) / static_cast<double>(num_samples);
    out << FormatDouble(t, 1) << ' ' << FormatDouble(curve.RecallAt(t), 4)
        << '\n';
  }
  return out.str();
}

}  // namespace progres

#include "eval/clustering.h"

#include <unordered_map>
#include <unordered_set>

#include "model/union_find.h"

namespace progres {

std::vector<int32_t> TransitiveClosure(
    int64_t num_entities, const std::vector<PairKey>& duplicates) {
  UnionFind uf(num_entities);
  for (PairKey pair : duplicates) {
    const auto [a, b] = PairKeyIds(pair);
    uf.Union(a, b);
  }
  std::vector<int32_t> cluster_of(static_cast<size_t>(num_entities), -1);
  std::unordered_map<int64_t, int32_t> dense;
  for (int64_t i = 0; i < num_entities; ++i) {
    const int64_t root = uf.Find(i);
    const auto [it, inserted] =
        dense.try_emplace(root, static_cast<int32_t>(dense.size()));
    cluster_of[static_cast<size_t>(i)] = it->second;
  }
  return cluster_of;
}

std::vector<int32_t> CorrelationClustering(
    int64_t num_entities, const std::vector<PairKey>& duplicates) {
  // Adjacency of the duplicate graph.
  std::unordered_map<EntityId, std::vector<EntityId>> adjacent;
  for (PairKey pair : duplicates) {
    const auto [a, b] = PairKeyIds(pair);
    adjacent[a].push_back(b);
    adjacent[b].push_back(a);
  }
  std::vector<int32_t> cluster_of(static_cast<size_t>(num_entities), -1);
  int32_t next = 0;
  // Deterministic pivot order: entity id ascending.
  for (int64_t i = 0; i < num_entities; ++i) {
    if (cluster_of[static_cast<size_t>(i)] >= 0) continue;
    const int32_t cluster = next++;
    cluster_of[static_cast<size_t>(i)] = cluster;
    const auto it = adjacent.find(static_cast<EntityId>(i));
    if (it == adjacent.end()) continue;
    for (EntityId neighbor : it->second) {
      if (cluster_of[static_cast<size_t>(neighbor)] < 0) {
        cluster_of[static_cast<size_t>(neighbor)] = cluster;
      }
    }
  }
  return cluster_of;
}

namespace {

PairMetrics FinishMetrics(int64_t true_positives, int64_t declared_pairs,
                          int64_t truth_pairs) {
  PairMetrics m;
  m.true_positives = true_positives;
  m.false_positives = declared_pairs - true_positives;
  m.false_negatives = truth_pairs - true_positives;
  m.precision = declared_pairs > 0
                    ? static_cast<double>(true_positives) /
                          static_cast<double>(declared_pairs)
                    : 0.0;
  m.recall = truth_pairs > 0 ? static_cast<double>(true_positives) /
                                   static_cast<double>(truth_pairs)
                             : 0.0;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace

PairMetrics EvaluateClustering(const std::vector<int32_t>& cluster_of,
                               const GroundTruth& truth) {
  std::unordered_map<int32_t, std::vector<EntityId>> members;
  for (size_t i = 0; i < cluster_of.size(); ++i) {
    members[cluster_of[i]].push_back(static_cast<EntityId>(i));
  }
  int64_t declared = 0;
  int64_t true_positives = 0;
  for (const auto& [cluster, ids] : members) {
    (void)cluster;
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        ++declared;
        if (truth.IsDuplicate(ids[i], ids[j])) ++true_positives;
      }
    }
  }
  return FinishMetrics(true_positives, declared, truth.num_duplicate_pairs());
}

PairMetrics EvaluatePairs(const std::vector<PairKey>& duplicates,
                          const GroundTruth& truth) {
  std::unordered_set<PairKey> unique(duplicates.begin(), duplicates.end());
  int64_t true_positives = 0;
  for (PairKey pair : unique) {
    const auto [a, b] = PairKeyIds(pair);
    if (truth.IsDuplicate(a, b)) ++true_positives;
  }
  return FinishMetrics(true_positives, static_cast<int64_t>(unique.size()),
                       truth.num_duplicate_pairs());
}

}  // namespace progres

#ifndef PROGRES_BLOCKING_BLOCKING_FUNCTION_H_
#define PROGRES_BLOCKING_BLOCKING_FUNCTION_H_

#include <string>
#include <vector>

#include "model/entity.h"

namespace progres {

// One main blocking function together with its sub-blocking functions
// (Sec. III-A): level 1 is the main function X^1; level l > 1 is the
// sub-blocking function X^l applied to each level-(l-1) block. All levels of
// a family take a lower-cased prefix of one attribute, exactly like the
// functions of Table II (e.g. title.sub(0, 2) / title.sub(0, 4) /
// title.sub(0, 8) for CiteSeerX's X family).
struct FamilySpec {
  std::string name;               // e.g. "X", "Y", "Z"
  int attribute_index = 0;        // attribute the prefixes are taken from
  std::vector<int> prefix_lens;   // one per level; size() == 1 + N(X^1)
  // Attribute used to sort a block's entities inside the SN/PSNM mechanisms
  // (Sec. VI-A3 sorts on the attribute blocking was performed on). Defaults
  // to attribute_index when negative.
  int sort_attribute = -1;

  int levels() const { return static_cast<int>(prefix_lens.size()); }
};

// Identifies a block: which family's forest it belongs to, its depth, and its
// hierarchical key path (the keys of levels 1..level joined with '\x1f').
// Joining the whole path keeps the hierarchy well-defined even for
// sub-blocking functions that are not prefix-nested.
struct BlockId {
  int family = 0;
  int level = 1;       // 1 == root block
  std::string path;

  bool operator==(const BlockId& other) const {
    return family == other.family && level == other.level && path == other.path;
  }
};

// The full blocking configuration: the main blocking functions listed in
// dominance order, i.e. families[0] is the most dominating function (the
// paper's X^1 with Index(X^1) = 1).
class BlockingConfig {
 public:
  explicit BlockingConfig(std::vector<FamilySpec> families)
      : families_(std::move(families)) {}

  int num_families() const { return static_cast<int>(families_.size()); }
  const FamilySpec& family(int f) const {
    return families_[static_cast<size_t>(f)];
  }

  // Blocking key of `e` under family `f` at `level` (1-based): the
  // lower-cased prefix of the family's attribute.
  std::string Key(int f, int level, const Entity& e) const;

  // Hierarchical path of `e`'s block in family `f` at `level`: keys of levels
  // 1..level joined with '\x1f'.
  std::string Path(int f, int level, const Entity& e) const;

  // Index of the attribute that blocks of family `f` are sorted on.
  int SortAttribute(int f) const {
    const FamilySpec& spec = families_[static_cast<size_t>(f)];
    return spec.sort_attribute >= 0 ? spec.sort_attribute : spec.attribute_index;
  }

 private:
  std::vector<FamilySpec> families_;
};

// Key-path separator between levels.
inline constexpr char kPathSeparator = '\x1f';

}  // namespace progres

#endif  // PROGRES_BLOCKING_BLOCKING_FUNCTION_H_

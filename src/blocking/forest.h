#ifndef PROGRES_BLOCKING_FOREST_H_
#define PROGRES_BLOCKING_FOREST_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/blocking_function.h"
#include "model/dataset.h"

namespace progres {

// Number of unordered pairs among `n` entities (the paper's Pairs(n)).
inline int64_t PairsOf(int64_t n) { return n * (n - 1) / 2; }

// One block in a family's forest (Sec. III-A). Nodes are stored flat inside
// a Forest; tree edges are indexes into Forest::nodes.
struct BlockNode {
  BlockId id;
  int parent = -1;             // index into Forest::nodes; -1 for roots
  std::vector<int> children;   // indexes into Forest::nodes
  int64_t size = 0;            // |X_j^i|
  // Uncovered pairs (Sec. IV-A): pairs of this block also contained in a
  // common root block of a more dominating family. Zero for family 0.
  int64_t uncov = 0;
  // Entity members; populated when BuildForests is called with
  // keep_members=true (used by the library-level resolution path and tests).
  std::vector<EntityId> entities;

  // Covered pairs Cov(X) = Pairs(|X|) - Uncov(X).
  int64_t cov() const { return PairsOf(size) - uncov; }
  bool is_root() const { return parent < 0; }
  bool is_leaf() const { return children.empty(); }
};

// The forest of one main blocking function: one tree per root block, all
// nodes flattened into `nodes`.
struct Forest {
  int family = 0;
  std::vector<BlockNode> nodes;
  std::vector<int> roots;                          // indexes of root nodes
  std::unordered_map<std::string, int> by_path;    // block path -> node index

  const BlockNode& node(int i) const { return nodes[static_cast<size_t>(i)]; }

  // Returns the node index for `path`, or -1 if no such block exists.
  int Find(const std::string& path) const {
    const auto it = by_path.find(path);
    return it == by_path.end() ? -1 : it->second;
  }
};

// Applies every family's main and sub-blocking functions to `dataset` and
// materializes the forests. Logically this is the blocking half of the
// paper's first MR job; the MapReduce-based implementation in src/core
// produces the same structure (asserted by integration tests). When
// `keep_members` is true each node also stores its entity ids.
std::vector<Forest> BuildForests(const Dataset& dataset,
                                 const BlockingConfig& config,
                                 bool keep_members);

// Fills BlockNode::uncov for every node using the inclusion-exclusion
// computation of Sec. IV-A over the root blocks of dominating families.
// This is the statistics half of the first MR job.
void ComputeUncoveredPairs(const Dataset& dataset, const BlockingConfig& config,
                           std::vector<Forest>* forests);

// Separator between family root keys inside an overlap tuple (see
// UncoveredFromJointCounts).
inline constexpr char kTupleSeparator = '\x1e';

// Evaluates the inclusion-exclusion sum of Sec. IV-A from a block's joint
// overlap counts: `joint` maps each tuple of dominating-family root keys
// (joined with kTupleSeparator, `num_dominating` components) to the number
// of the block's entities carrying that tuple. Returns Uncov for the block.
int64_t UncoveredFromJointCounts(
    const std::unordered_map<std::string, int64_t>& joint, int num_dominating);

}  // namespace progres

#endif  // PROGRES_BLOCKING_FOREST_H_

#include "blocking/blocking_function.h"

#include "common/string_util.h"

namespace progres {

std::string BlockingConfig::Key(int f, int level, const Entity& e) const {
  const FamilySpec& spec = families_[static_cast<size_t>(f)];
  const std::string_view value =
      e.attribute(static_cast<size_t>(spec.attribute_index));
  const size_t len =
      static_cast<size_t>(spec.prefix_lens[static_cast<size_t>(level - 1)]);
  return ToLowerAscii(Prefix(value, len));
}

std::string BlockingConfig::Path(int f, int level, const Entity& e) const {
  std::string path;
  for (int l = 1; l <= level; ++l) {
    if (l > 1) path.push_back(kPathSeparator);
    path += Key(f, l, e);
  }
  return path;
}

}  // namespace progres

#ifndef PROGRES_BLOCKING_FOREST_IO_H_
#define PROGRES_BLOCKING_FOREST_IO_H_

#include <string>
#include <vector>

#include "blocking/forest.h"

namespace progres {

// Persistence for the statistics forests — in the paper's deployment the
// first MR job writes its statistics to HDFS and the second job's map-task
// setup reads them back; these helpers provide the same decoupling for
// offline pipelines (run the statistics job once, reuse the schedule inputs
// across experiments).
//
// Format: TSV with one row per block:
//   family  level  path  parent_path  size  uncov
// Paths embed the kPathSeparator control character, which TSV tolerates
// (fields are tab-delimited). Entity membership is not persisted: the
// second job recomputes membership from blocking keys, as in the paper.

// Writes `forests` to `path`. Returns false on I/O failure.
bool SaveForests(const std::string& path, const std::vector<Forest>& forests);

// Loads forests previously written by SaveForests. Returns false on I/O or
// format errors. The result is structurally equal to the saved input
// (asserted by tests).
bool LoadForests(const std::string& path, std::vector<Forest>* forests);

}  // namespace progres

#endif  // PROGRES_BLOCKING_FOREST_IO_H_

#include "blocking/forest.h"

#include <algorithm>

namespace progres {

namespace {

// Joins the elements of `parts` selected by `subset_mask` with
// kTupleSeparator. `parts` are the root keys of the dominating families.
std::string ProjectTuple(const std::vector<std::string_view>& parts,
                         uint32_t subset_mask) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if ((subset_mask >> i) & 1u) {
      if (!out.empty()) out.push_back(kTupleSeparator);
      out.append(parts[i]);
    }
  }
  return out;
}

}  // namespace

std::vector<Forest> BuildForests(const Dataset& dataset,
                                 const BlockingConfig& config,
                                 bool keep_members) {
  std::vector<Forest> forests(static_cast<size_t>(config.num_families()));
  for (int f = 0; f < config.num_families(); ++f) {
    Forest& forest = forests[static_cast<size_t>(f)];
    forest.family = f;
    const int levels = config.family(f).levels();
    for (const Entity& e : dataset.entities()) {
      std::string path;
      int parent = -1;
      for (int level = 1; level <= levels; ++level) {
        if (level > 1) path.push_back(kPathSeparator);
        path += config.Key(f, level, e);
        auto [it, inserted] = forest.by_path.try_emplace(
            path, static_cast<int>(forest.nodes.size()));
        if (inserted) {
          BlockNode node;
          node.id = {f, level, path};
          node.parent = parent;
          forest.nodes.push_back(std::move(node));
          if (parent >= 0) {
            forest.nodes[static_cast<size_t>(parent)].children.push_back(
                it->second);
          } else {
            forest.roots.push_back(it->second);
          }
        }
        BlockNode& node = forest.nodes[static_cast<size_t>(it->second)];
        ++node.size;
        if (keep_members) node.entities.push_back(e.id);
        parent = it->second;
      }
    }
  }
  return forests;
}

int64_t UncoveredFromJointCounts(
    const std::unordered_map<std::string, int64_t>& joint,
    int num_dominating) {
  if (num_dominating <= 0) return 0;
  int64_t uncov = 0;
  const uint32_t full = (1u << num_dominating) - 1u;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int k = __builtin_popcount(mask);
    // Project every tuple onto the subset and sum counts; blocks sharing all
    // subset families' roots contribute Pairs(count) overlapping pairs.
    std::unordered_map<std::string, int64_t> projected;
    for (const auto& [tuple, count] : joint) {
      std::vector<std::string_view> parts;
      parts.reserve(static_cast<size_t>(num_dominating));
      size_t start = 0;
      const std::string_view t(tuple);
      for (int d = 0; d < num_dominating; ++d) {
        size_t end = t.find(kTupleSeparator, start);
        if (end == std::string_view::npos) end = t.size();
        parts.push_back(t.substr(start, end - start));
        start = end + 1;
      }
      projected[ProjectTuple(parts, mask)] += count;
    }
    int64_t term = 0;
    for (const auto& [key, count] : projected) {
      (void)key;
      term += PairsOf(count);
    }
    uncov += (k % 2 == 1) ? term : -term;
  }
  return uncov;
}

void ComputeUncoveredPairs(const Dataset& dataset, const BlockingConfig& config,
                           std::vector<Forest>* forests) {
  const int num_families = config.num_families();
  if (num_families <= 1) return;

  // Root key (level-1 blocking key) of every entity under every family,
  // computed once. Root paths equal root keys because roots are level 1.
  std::vector<std::vector<std::string>> root_key(
      static_cast<size_t>(num_families));
  for (int f = 0; f < num_families; ++f) {
    root_key[static_cast<size_t>(f)].reserve(
        static_cast<size_t>(dataset.size()));
    for (const Entity& e : dataset.entities()) {
      root_key[static_cast<size_t>(f)].push_back(config.Key(f, 1, e));
    }
  }

  for (int f = 1; f < num_families; ++f) {
    Forest& forest = (*forests)[static_cast<size_t>(f)];
    // Per-node joint counts: tuple of dominating-family root keys -> number
    // of the node's entities carrying that tuple (the OLP(.) values of
    // Sec. IV-A at their finest granularity).
    std::vector<std::unordered_map<std::string, int64_t>> joint(
        forest.nodes.size());
    const int levels = config.family(f).levels();
    for (const Entity& e : dataset.entities()) {
      std::string tuple;
      for (int d = 0; d < f; ++d) {
        if (d > 0) tuple.push_back(kTupleSeparator);
        tuple += root_key[static_cast<size_t>(d)][static_cast<size_t>(e.id)];
      }
      std::string path;
      for (int level = 1; level <= levels; ++level) {
        if (level > 1) path.push_back(kPathSeparator);
        path += config.Key(f, level, e);
        const int node_index = forest.Find(path);
        ++joint[static_cast<size_t>(node_index)][tuple];
      }
    }
    for (size_t n = 0; n < forest.nodes.size(); ++n) {
      forest.nodes[n].uncov = UncoveredFromJointCounts(joint[n], f);
    }
  }
}

}  // namespace progres

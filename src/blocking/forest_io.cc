#include "blocking/forest_io.h"

#include <algorithm>

#include "common/tsv.h"

namespace progres {

bool SaveForests(const std::string& path,
                 const std::vector<Forest>& forests) {
  std::vector<std::vector<std::string>> rows;
  for (const Forest& forest : forests) {
    for (const BlockNode& node : forest.nodes) {
      const std::string parent_path =
          node.parent >= 0 ? forest.node(node.parent).id.path : std::string();
      rows.push_back({std::to_string(forest.family),
                      std::to_string(node.id.level), node.id.path,
                      parent_path, std::to_string(node.size),
                      std::to_string(node.uncov)});
    }
  }
  return WriteTsv(path, rows);
}

bool LoadForests(const std::string& path, std::vector<Forest>* forests) {
  std::vector<std::vector<std::string>> rows;
  if (!ReadTsv(path, &rows)) return false;

  struct Record {
    int family;
    int level;
    std::string block_path;
    std::string parent_path;
    int64_t size;
    int64_t uncov;
  };
  std::vector<Record> records;
  records.reserve(rows.size());
  int max_family = -1;
  for (const auto& row : rows) {
    if (row.size() != 6) return false;
    Record record;
    record.family = std::stoi(row[0]);
    record.level = std::stoi(row[1]);
    record.block_path = row[2];
    record.parent_path = row[3];
    record.size = std::stoll(row[4]);
    record.uncov = std::stoll(row[5]);
    max_family = std::max(max_family, record.family);
    records.push_back(std::move(record));
  }
  // Parents must exist before children: sort by (family, level, path).
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              if (a.family != b.family) return a.family < b.family;
              if (a.level != b.level) return a.level < b.level;
              return a.block_path < b.block_path;
            });

  forests->assign(static_cast<size_t>(max_family + 1), Forest());
  for (int f = 0; f <= max_family; ++f) {
    (*forests)[static_cast<size_t>(f)].family = f;
  }
  for (Record& record : records) {
    Forest& forest = (*forests)[static_cast<size_t>(record.family)];
    const int index = static_cast<int>(forest.nodes.size());
    forest.by_path.emplace(record.block_path, index);
    BlockNode node;
    node.id = {record.family, record.level, record.block_path};
    node.size = record.size;
    node.uncov = record.uncov;
    if (record.level == 1) {
      node.parent = -1;
      forest.roots.push_back(index);
    } else {
      const auto it = forest.by_path.find(record.parent_path);
      if (it == forest.by_path.end()) return false;  // malformed hierarchy
      node.parent = it->second;
      forest.nodes[static_cast<size_t>(it->second)].children.push_back(index);
    }
    forest.nodes.push_back(std::move(node));
  }
  return true;
}

}  // namespace progres

#ifndef PROGRES_REDUNDANCY_KOLB_H_
#define PROGRES_REDUNDANCY_KOLB_H_

#include "blocking/blocking_function.h"
#include "model/entity.h"

namespace progres {

// The redundancy-elimination strategy of Kolb et al. [14], used by the Basic
// baseline (Sec. II-C / VI-B1): a pair shared by several blocks is resolved
// only in the common block with the smallest blocking key value (keys are
// compared together with their function id, mirroring the paper's composite
// "key value followed by the function ID"). Returns true if the main block
// of family `family` (which must contain both entities) is that smallest
// common block.
bool KolbShouldResolve(const Entity& a, const Entity& b, int family,
                       const BlockingConfig& config);

}  // namespace progres

#endif  // PROGRES_REDUNDANCY_KOLB_H_

#include "redundancy/dominance.h"

namespace progres {

DominanceList BuildDominanceList(const Entity& e, int family, int node,
                                 const BlockingConfig& config,
                                 const std::vector<AnnotatedForest>& forests,
                                 const ProgressiveSchedule& schedule) {
  DominanceList list;
  const int n = config.num_families();
  list.values.reserve(static_cast<size_t>(n) + 1);

  for (int j = 0; j < n; ++j) {
    if (j == family) {
      // Dom(TreeOf(X^k_l)): the tree the emitted block currently belongs to
      // (split-aware).
      const int root = forests[static_cast<size_t>(j)].FindTreeRoot(node);
      list.values.push_back(schedule.dominance.at(BlockRefKey(j, root)));
    } else {
      // Dom(T(Y^1_h)) for the main block of family j containing e.
      const std::string path = config.Path(j, 1, e);
      const int main_node = forests[static_cast<size_t>(j)].Find(path);
      if (main_node < 0) {
        // The main block was eliminated (fewer than two entities): no other
        // entity shares it, so a unique per-entity sentinel is safe.
        list.values.push_back(-(e.id + 1));
      } else {
        const int root =
            forests[static_cast<size_t>(j)].FindTreeRoot(main_node);
        list.values.push_back(schedule.dominance.at(BlockRefKey(j, root)));
      }
    }
  }

  // Optional (n+1)st value: the highest (shallowest) descendant of the
  // emitted block that is the root of a split-off tree and contains e. When
  // two entities share it, their pair belongs to that split tree, not to the
  // emitted block.
  const AnnotatedForest& forest = forests[static_cast<size_t>(family)];
  const int block_level = forest.block(node).id.level;
  const int levels = config.family(family).levels();
  for (int level = block_level + 1; level <= levels; ++level) {
    const int descendant =
        forest.Find(config.Path(family, level, e));
    if (descendant < 0) break;  // e's chain ends here (eliminated below)
    if (descendant == node) continue;  // redirect landed on the block itself
    if (forest.block(descendant).tree_root) {
      list.values.push_back(
          schedule.dominance.at(BlockRefKey(family, descendant)));
      break;
    }
  }
  return list;
}

bool ShouldResolve(const DominanceList& a, const DominanceList& b, int index,
                   int n) {
  // A more dominant family whose tree contains both entities owns the pair.
  for (int m = 0; m < index - 1; ++m) {
    if (a.values[static_cast<size_t>(m)] == b.values[static_cast<size_t>(m)]) {
      return false;
    }
  }
  // A split tree nested below this block owns the pair.
  if (a.values.size() > static_cast<size_t>(n) &&
      b.values.size() > static_cast<size_t>(n) &&
      a.values[static_cast<size_t>(n)] == b.values[static_cast<size_t>(n)]) {
    return false;
  }
  return true;
}

}  // namespace progres

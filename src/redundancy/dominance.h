#ifndef PROGRES_REDUNDANCY_DOMINANCE_H_
#define PROGRES_REDUNDANCY_DOMINANCE_H_

#include <cstdint>
#include <vector>

#include "blocking/blocking_function.h"
#include "estimate/annotated_forest.h"
#include "model/entity.h"
#include "schedule/schedule.h"

namespace progres {

// The dominance list List(e, X^k_l) of Sec. V, attached to each entity
// emission: n values (one per main blocking function) plus an optional
// (n+1)st value. The jth value identifies the tree that would resolve the
// pair if it co-occurred under the jth family; equal values on two entities
// mean a more dominant (or nested split) tree owns their pair.
struct DominanceList {
  std::vector<int32_t> values;
};

// Builds List(e, block) for entity `e` emitted toward block `node` of family
// `family`. Entities whose main block in some family was eliminated (size
// < 2) get a unique per-entity sentinel there, which can never equal another
// entity's value (a singleton block cannot witness a shared pair).
DominanceList BuildDominanceList(const Entity& e, int family, int node,
                                 const BlockingConfig& config,
                                 const std::vector<AnnotatedForest>& forests,
                                 const ProgressiveSchedule& schedule);

// SHOULD-RESOLVE (Fig. 7): true if the block of family index `index`
// (1-based, i.e. Index(X^1)) is responsible for resolving the pair whose
// dominance lists are `a` and `b`. `n` is the number of main blocking
// functions.
bool ShouldResolve(const DominanceList& a, const DominanceList& b, int index,
                   int n);

}  // namespace progres

#endif  // PROGRES_REDUNDANCY_DOMINANCE_H_

#include "redundancy/kolb.h"

#include <string>
#include <utility>

namespace progres {

bool KolbShouldResolve(const Entity& a, const Entity& b, int family,
                       const BlockingConfig& config) {
  const std::string current_key = config.Key(family, 1, a);
  const std::pair<std::string, int> current{current_key, family};
  for (int g = 0; g < config.num_families(); ++g) {
    if (g == family) continue;
    const std::string key_a = config.Key(g, 1, a);
    if (key_a != config.Key(g, 1, b)) continue;  // not a common block
    const std::pair<std::string, int> other{key_a, g};
    if (other < current) return false;  // a smaller common block exists
  }
  return true;
}

}  // namespace progres

// Reproduces Figure 8 and Table III: our approach vs the Basic baseline on
// the publications workload with mu = 10 machines.
//
//   * Table III: final recall and total execution time of Basic for popcorn
//     thresholds {0.1 ... 0.00001, F} at window sizes w = 5 and w = 15.
//   * Fig. 8 (three sub-figures): duplicate recall vs execution time for
//     Basic (several thresholds) against our approach.
//
// Absolute times depend on the simulated cost scale; the paper's shape — our
// approach reaching high recall far earlier than any Basic configuration,
// and conservative popcorn thresholds trading rate for final recall — is
// what this bench demonstrates.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 20000;
constexpr int kMachines = 10;

struct Run {
  std::string label;
  RecallCurve curve;
  double total_time = 0.0;
};

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const ClusterConfig cluster = bench::MakeCluster(kMachines);
  const SortedNeighborMechanism sn;
  const BlockingConfig basic_blocking = bench::PublicationMainBlocking();

  std::printf("=== Fig. 8 / Table III: comparison with Basic ===\n");
  std::printf("publications=%lld machines=%d ground-truth pairs=%lld\n\n",
              static_cast<long long>(kEntities), kMachines,
              static_cast<long long>(setup.data.truth.num_duplicate_pairs()));

  // ---- Our approach ----
  ProgressiveErOptions options;
  options.cluster = cluster;
  const ProgressiveEr ours(setup.blocking, setup.match, sn, setup.prob,
                           options);
  const ErRunResult ours_result = ours.Run(setup.data.dataset);
  const RecallCurve ours_curve =
      RecallCurve::FromEvents(ours_result.events, setup.data.truth);

  // ---- Basic sweeps (Table III) ----
  const std::vector<double> thresholds = {0.1,   0.07,  0.04, 0.01, 0.007,
                                          0.004, 0.001, 0.00001, 0.0};
  TextTable table({"threshold", "w", "final_recall", "total_time_sec"});
  std::vector<Run> runs_w15;
  std::vector<Run> runs_w5;
  for (int window : {5, 15}) {
    for (double threshold : thresholds) {
      BasicErOptions basic_options;
      basic_options.cluster = cluster;
      basic_options.window = window;
      basic_options.popcorn_threshold = threshold;
      const BasicEr basic(basic_blocking, setup.match, sn, basic_options);
      const ErRunResult result = basic.Run(setup.data.dataset);
      const RecallCurve curve =
          RecallCurve::FromEvents(result.events, setup.data.truth);
      const std::string label =
          threshold > 0.0 ? "Basic " + FormatDouble(threshold, 5) : "Basic F";
      table.AddRow({threshold > 0.0 ? FormatDouble(threshold, 5) : "F",
                    std::to_string(window),
                    FormatDouble(curve.final_recall(), 2),
                    FormatDouble(result.total_time, 0)});
      (window == 15 ? runs_w15 : runs_w5)
          .push_back({label + " (w=" + std::to_string(window) + ")", curve,
                      result.total_time});
    }
  }

  std::printf("--- Table III: final recall and total execution time ---\n%s\n",
              table.ToString().c_str());
  std::printf("Our approach: final recall %.2f, total time %.0f sec\n\n",
              ours_curve.final_recall(), ours_result.total_time);

  // ---- Fig. 8 series: first part of the execution ----
  const double horizon = ours_result.total_time * 2.0;
  std::printf("--- Fig. 8 series (recall vs time, horizon %.0f sec) ---\n",
              horizon);
  std::printf("%s", FormatCurveSeries("Our Approach", ours_curve, horizon, 12)
                        .c_str());
  for (const Run& run : runs_w15) {
    std::printf("%s", FormatCurveSeries(run.label, run.curve, horizon, 12)
                          .c_str());
  }
  for (const Run& run : runs_w5) {
    std::printf("%s", FormatCurveSeries(run.label, run.curve, horizon, 12)
                          .c_str());
  }

  // Headline checks mirroring the paper's discussion.
  const double t_ours = ours_curve.TimeToRecall(0.6);
  double t_best_basic = std::numeric_limits<double>::infinity();
  for (const auto& runs : {runs_w15, runs_w5}) {
    for (const Run& run : runs) {
      t_best_basic = std::min(t_best_basic, run.curve.TimeToRecall(0.6));
    }
  }
  std::printf("\nTime to recall 0.6: ours %.0f sec, best Basic %.0f sec\n",
              t_ours, t_best_basic);
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

#ifndef PROGRES_BENCH_BENCH_UTIL_H_
#define PROGRES_BENCH_BENCH_UTIL_H_

// Shared setup for the figure/table reproduction benches: the synthetic
// CiteSeerX-like and OL-Books-like workloads (Sec. VI-A2), their blocking
// functions (Table II, scaled prefix lengths), match functions (Sec. VI-A2),
// and the simulated cluster.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "blocking/blocking_function.h"
#include "common/stopwatch.h"
#include "datagen/generators.h"
#include "estimate/prob_model.h"
#include "eval/recall_curve.h"
#include "mapreduce/cluster.h"
#include "mapreduce/trace.h"
#include "similarity/match_function.h"

namespace progres {
namespace bench {

// The paper's cluster: mu machines, two map and two reduce slots each.
inline ClusterConfig MakeCluster(int machines) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.map_slots_per_machine = 2;
  cluster.reduce_slots_per_machine = 2;
  cluster.seconds_per_cost_unit = 0.02;
  cluster.execution_threads = 0;  // use all hardware threads
  return cluster;
}

struct PublicationSetup {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
  ProbabilityModel prob;
};

// CiteSeerX-like workload: three main blocking functions on title (two
// sub-blocking functions), abstract, and venue (one each), X > Y > Z.
inline PublicationSetup MakePublicationSetup(int64_t n, uint64_t seed = 2017) {
  PublicationSetup setup;
  PublicationConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = seed + 1;
  setup.train = GeneratePublications(train_gen);
  PublicationConfig gen;
  gen.num_entities = n;
  gen.seed = seed;
  setup.data = GeneratePublications(gen);
  setup.blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                                   {"Y", kPubAbstract, {3, 5}, -1},
                                   {"Z", kPubVenue, {3, 5}, -1}});
  setup.match = MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  setup.prob =
      ProbabilityModel::Train(setup.train.dataset, setup.train.truth,
                              setup.blocking);
  return setup;
}

// Basic uses the main blocking functions only.
inline BlockingConfig PublicationMainBlocking() {
  return BlockingConfig({{"X", kPubTitle, {2}, -1},
                         {"Y", kPubAbstract, {3}, -1},
                         {"Z", kPubVenue, {3}, -1}});
}

struct BookSetup {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
  ProbabilityModel prob;
};

// OL-Books-like workload: title (two sub-blocking functions), authors and
// publisher (one each); eight attributes compared with edit distance or
// exact matching.
inline BookSetup MakeBookSetup(int64_t n, uint64_t seed = 1337) {
  BookSetup setup;
  BookConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = seed + 1;
  setup.train = GenerateBooks(train_gen);
  BookConfig gen;
  gen.num_entities = n;
  gen.seed = seed;
  setup.data = GenerateBooks(gen);
  setup.blocking = BlockingConfig({{"X", kBookTitle, {3, 5, 8}, -1},
                                   {"Y", kBookAuthors, {3, 5}, -1},
                                   {"Z", kBookPublisher, {3, 5}, -1}});
  setup.match = MatchFunction(
      {{kBookTitle, AttributeSimilarity::kEditDistance, 0.35, 0},
       {kBookAuthors, AttributeSimilarity::kEditDistance, 0.2, 0},
       {kBookPublisher, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookYear, AttributeSimilarity::kExact, 0.1, 0},
       {kBookIsbn, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookPages, AttributeSimilarity::kExact, 0.05, 0},
       {kBookLanguage, AttributeSimilarity::kExact, 0.05, 0},
       {kBookEdition, AttributeSimilarity::kExact, 0.05, 0}},
      0.75);
  setup.prob = ProbabilityModel::Train(setup.train.dataset, setup.train.truth,
                                       setup.blocking);
  return setup;
}

inline BlockingConfig BookMainBlocking() {
  return BlockingConfig({{"X", kBookTitle, {3}, -1},
                         {"Y", kBookAuthors, {3}, -1},
                         {"Z", kBookPublisher, {3}, -1}});
}

// Opt-in execution tracing for the benches: when the PROGRES_TRACE_OUT
// environment variable names a file, Attach wires the recorder into a
// cluster config and the destructor writes the collected Chrome trace_event
// JSON there. Without the variable everything is a no-op, so ablations can
// unconditionally create one of these.
class ScopedTrace {
 public:
  ScopedTrace() {
    const char* path = std::getenv("PROGRES_TRACE_OUT");
    if (path != nullptr && path[0] != '\0') path_ = path;
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() {
    if (path_.empty() || recorder_.empty()) return;
    if (recorder_.WriteChromeJson(path_)) {
      std::fprintf(stderr, "trace written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", path_.c_str());
    }
  }

  bool enabled() const { return !path_.empty(); }
  TraceRecorder* recorder() { return enabled() ? &recorder_ : nullptr; }
  void Attach(ClusterConfig* cluster) {
    if (enabled()) cluster->trace = &recorder_;
  }

 private:
  std::string path_;
  TraceRecorder recorder_;
};

// ---- BENCH_*.json performance reports ----
//
// A bench's --json mode writes BENCH_<name>.json: a flat list of named
// metrics, each living on exactly one of the runtime's two clocks —
//
//   * kind "sim"  — deterministic simulated-clock numbers (makespans,
//     shuffle volumes, time-to-recall milestones). Reproducible
//     bit-for-bit on any machine; tools/compare_bench.py holds them to
//     exact equality against the committed baseline, like a golden file.
//   * kind "wall" — real measurements from common/stopwatch.h (wall
//     seconds, pairs per wall second). Machine-dependent; the compare
//     script normalizes them by the run's own calibration score (below) —
//     durations multiply by it, rates divide by it — so a faster or
//     slower CI machine cancels out, then applies its >15% regression
//     tolerance.
//
// A metric is one kind or the other, never a mix — the same rule the text
// tables follow by keeping "sim_*" and "wall_*" in separate columns.
//
// `gated` opts a metric into the regression gate. Wall measurements that
// are inherently noisy on shared or oversubscribed hardware (e.g. an
// 8-worker pool on a small CI runner) set it false: the compare script
// still requires the metric to exist and prints its trend, but never fails
// on it. Serial wall measurements and all sim metrics stay gated.
struct BenchMetric {
  std::string name;
  std::string kind;  // "sim" or "wall"
  std::string unit;
  bool higher_is_better = false;
  bool gated = true;
  double value = 0.0;
};

// Score of this machine/build for normalizing wall metrics: iterations per
// second of a fixed xorshift loop (loop-carried dependency, so it measures
// scalar throughput rather than vectorizer luck). Best of three short reps.
inline double CalibrationScore() {
  constexpr int64_t kOps = int64_t{1} << 24;
  volatile uint64_t sink = 0;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    uint64_t x = 88172645463325252ull;
    for (int64_t i = 0; i < kOps; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    sink = sink + x;
    const double seconds = watch.ElapsedSeconds();
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(kOps) / seconds);
    }
  }
  return best;
}

class BenchReport {
 public:
  explicit BenchReport(std::string bench)
      : bench_(std::move(bench)), calibration_(CalibrationScore()) {}

  void AddSim(const std::string& name, const std::string& unit, double value,
              bool higher_is_better = false) {
    metrics_.push_back(
        {name, "sim", unit, higher_is_better, /*gated=*/true, value});
  }
  void AddWall(const std::string& name, const std::string& unit, double value,
               bool higher_is_better = false, bool gated = true) {
    metrics_.push_back({name, "wall", unit, higher_is_better, gated, value});
  }

  std::string ToJson() const {
    const auto number = [](double v) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", v);
      return std::string(buffer);
    };
    std::string out = "{\n";
    out += "  \"bench\": \"" + bench_ + "\",\n";
    out += "  \"schema\": 1,\n";
    out += "  \"calibration_ops_per_sec\": " + number(calibration_) + ",\n";
    out += "  \"metrics\": [\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const BenchMetric& m = metrics_[i];
      out += "    {\"name\": \"" + m.name + "\", \"kind\": \"" + m.kind +
             "\", \"unit\": \"" + m.unit + "\", \"higher_is_better\": " +
             (m.higher_is_better ? "true" : "false") +
             ", \"gated\": " + (m.gated ? "true" : "false") +
             ", \"value\": " + number(m.value) + "}";
      out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::string bench_;
  double calibration_ = 0.0;
  std::vector<BenchMetric> metrics_;
};

// Detects the benches' "--json[=path]" flag. Returns true when JSON mode is
// requested and sets *path to the override or to "BENCH_<bench>.json".
inline bool ParseJsonMode(int argc, char** argv, const std::string& bench,
                          std::string* path) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      *path = "BENCH_" + bench + ".json";
      return true;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      *path = argv[i] + 7;
      if (path->empty()) *path = "BENCH_" + bench + ".json";
      return true;
    }
  }
  return false;
}

// Quality (Eq. 1) with a 10-point uniform cost vector over [0, horizon] and
// linearly decaying weights.
inline double QualityOverHorizon(const RecallCurve& curve, double horizon) {
  std::vector<double> times;
  std::vector<double> weights;
  for (int i = 1; i <= 10; ++i) {
    times.push_back(horizon * i / 10.0);
    weights.push_back(1.0 - (i - 1) * 0.1);
  }
  return Quality(curve, times, weights);
}

}  // namespace bench
}  // namespace progres

#endif  // PROGRES_BENCH_BENCH_UTIL_H_

#ifndef PROGRES_BENCH_BENCH_UTIL_H_
#define PROGRES_BENCH_BENCH_UTIL_H_

// Shared setup for the figure/table reproduction benches: the synthetic
// CiteSeerX-like and OL-Books-like workloads (Sec. VI-A2), their blocking
// functions (Table II, scaled prefix lengths), match functions (Sec. VI-A2),
// and the simulated cluster.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blocking/blocking_function.h"
#include "datagen/generators.h"
#include "estimate/prob_model.h"
#include "eval/recall_curve.h"
#include "mapreduce/cluster.h"
#include "mapreduce/trace.h"
#include "similarity/match_function.h"

namespace progres {
namespace bench {

// The paper's cluster: mu machines, two map and two reduce slots each.
inline ClusterConfig MakeCluster(int machines) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.map_slots_per_machine = 2;
  cluster.reduce_slots_per_machine = 2;
  cluster.seconds_per_cost_unit = 0.02;
  cluster.execution_threads = 0;  // use all hardware threads
  return cluster;
}

struct PublicationSetup {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
  ProbabilityModel prob;
};

// CiteSeerX-like workload: three main blocking functions on title (two
// sub-blocking functions), abstract, and venue (one each), X > Y > Z.
inline PublicationSetup MakePublicationSetup(int64_t n, uint64_t seed = 2017) {
  PublicationSetup setup;
  PublicationConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = seed + 1;
  setup.train = GeneratePublications(train_gen);
  PublicationConfig gen;
  gen.num_entities = n;
  gen.seed = seed;
  setup.data = GeneratePublications(gen);
  setup.blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                                   {"Y", kPubAbstract, {3, 5}, -1},
                                   {"Z", kPubVenue, {3, 5}, -1}});
  setup.match = MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  setup.prob =
      ProbabilityModel::Train(setup.train.dataset, setup.train.truth,
                              setup.blocking);
  return setup;
}

// Basic uses the main blocking functions only.
inline BlockingConfig PublicationMainBlocking() {
  return BlockingConfig({{"X", kPubTitle, {2}, -1},
                         {"Y", kPubAbstract, {3}, -1},
                         {"Z", kPubVenue, {3}, -1}});
}

struct BookSetup {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
  ProbabilityModel prob;
};

// OL-Books-like workload: title (two sub-blocking functions), authors and
// publisher (one each); eight attributes compared with edit distance or
// exact matching.
inline BookSetup MakeBookSetup(int64_t n, uint64_t seed = 1337) {
  BookSetup setup;
  BookConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = seed + 1;
  setup.train = GenerateBooks(train_gen);
  BookConfig gen;
  gen.num_entities = n;
  gen.seed = seed;
  setup.data = GenerateBooks(gen);
  setup.blocking = BlockingConfig({{"X", kBookTitle, {3, 5, 8}, -1},
                                   {"Y", kBookAuthors, {3, 5}, -1},
                                   {"Z", kBookPublisher, {3, 5}, -1}});
  setup.match = MatchFunction(
      {{kBookTitle, AttributeSimilarity::kEditDistance, 0.35, 0},
       {kBookAuthors, AttributeSimilarity::kEditDistance, 0.2, 0},
       {kBookPublisher, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookYear, AttributeSimilarity::kExact, 0.1, 0},
       {kBookIsbn, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookPages, AttributeSimilarity::kExact, 0.05, 0},
       {kBookLanguage, AttributeSimilarity::kExact, 0.05, 0},
       {kBookEdition, AttributeSimilarity::kExact, 0.05, 0}},
      0.75);
  setup.prob = ProbabilityModel::Train(setup.train.dataset, setup.train.truth,
                                       setup.blocking);
  return setup;
}

inline BlockingConfig BookMainBlocking() {
  return BlockingConfig({{"X", kBookTitle, {3}, -1},
                         {"Y", kBookAuthors, {3}, -1},
                         {"Z", kBookPublisher, {3}, -1}});
}

// Opt-in execution tracing for the benches: when the PROGRES_TRACE_OUT
// environment variable names a file, Attach wires the recorder into a
// cluster config and the destructor writes the collected Chrome trace_event
// JSON there. Without the variable everything is a no-op, so ablations can
// unconditionally create one of these.
class ScopedTrace {
 public:
  ScopedTrace() {
    const char* path = std::getenv("PROGRES_TRACE_OUT");
    if (path != nullptr && path[0] != '\0') path_ = path;
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
  ~ScopedTrace() {
    if (path_.empty() || recorder_.empty()) return;
    if (recorder_.WriteChromeJson(path_)) {
      std::fprintf(stderr, "trace written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", path_.c_str());
    }
  }

  bool enabled() const { return !path_.empty(); }
  TraceRecorder* recorder() { return enabled() ? &recorder_ : nullptr; }
  void Attach(ClusterConfig* cluster) {
    if (enabled()) cluster->trace = &recorder_;
  }

 private:
  std::string path_;
  TraceRecorder recorder_;
};

// Quality (Eq. 1) with a 10-point uniform cost vector over [0, horizon] and
// linearly decaying weights.
inline double QualityOverHorizon(const RecallCurve& curve, double horizon) {
  std::vector<double> times;
  std::vector<double> weights;
  for (int i = 1; i <= 10; ++i) {
    times.push_back(horizon * i / 10.0);
    weights.push_back(1.0 - (i - 1) * 0.1);
  }
  return Quality(curve, times, weights);
}

}  // namespace bench
}  // namespace progres

#endif  // PROGRES_BENCH_BENCH_UTIL_H_

// Ablation: data-plane faults. Hangs (killed by the heartbeat timeout) and
// shuffle checksum corruption (re-fetched, escalating to map re-runs) slow
// the simulated timeline without changing a single resolved pair — the
// progressive emission curve shifts right but ends at the same recall.
// Two views:
//   1. the emission-rate curve (cumulative resolved pairs over simulated
//      time) with hangs+corruption on vs off;
//   2. a task-timeout sweep under hangs — Hadoop's mapred.task.timeout
//      trade-off: a short timeout kills hung attempts quickly (fast
//      recovery), a long one leaves slots pinned by silent tasks.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 8000;
constexpr int kMachines = 10;
constexpr uint64_t kFaultSeed = 1701;
constexpr double kHangProb = 0.1;
constexpr double kCorruptProb = 0.05;

struct Variant {
  const char* label;
  double hang_prob;
  double corrupt_prob;
};

ClusterConfig VariantCluster(const Variant& v, double timeout_seconds) {
  ClusterConfig cluster = bench::MakeCluster(kMachines);
  cluster.fault.enabled = v.hang_prob > 0.0 || v.corrupt_prob > 0.0;
  cluster.fault.seed = kFaultSeed;
  cluster.fault.map_hang_prob = v.hang_prob;
  cluster.fault.reduce_hang_prob = v.hang_prob;
  cluster.fault.task_timeout_seconds = timeout_seconds;
  cluster.fault.shuffle_corrupt_prob = v.corrupt_prob;
  cluster.fault.max_fetch_retries = 1;
  cluster.fault.max_attempts = 12;
  return cluster;
}

int64_t PairsBefore(const std::vector<DuplicateEvent>& events, double t) {
  int64_t pairs = 0;
  for (const DuplicateEvent& e : events) {
    if (e.time <= t) ++pairs;
  }
  return pairs;
}

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: data-plane faults (hangs + corruption) ===\n\n");

  const std::vector<Variant> variants = {
      {"clean", 0.0, 0.0},
      {"hangs", kHangProb, 0.0},
      {"corruption", 0.0, kCorruptProb},
      {"hangs+corruption", kHangProb, kCorruptProb},
  };

  std::vector<ErRunResult> runs;
  TextTable table({"variant", "timeouts", "chk_errors", "map_reruns",
                   "t(recall=0.6)_sec", "total_time_sec", "duplicates"});
  for (const Variant& v : variants) {
    ProgressiveErOptions options;
    options.cluster = VariantCluster(v, /*timeout_seconds=*/60.0);
    const ErRunResult run =
        ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
            .Run(setup.data.dataset);
    if (run.failed) {
      std::printf("run failed: %s\n", run.error.c_str());
      return;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    table.AddRow(
        {v.label, std::to_string(run.counters.Get("mr.faults.task_timeouts")),
         std::to_string(run.counters.Get("mr.shuffle.checksum_errors")),
         std::to_string(run.counters.Get("mr.shuffle.map_reruns")),
         FormatDouble(curve.TimeToRecall(0.6), 0),
         FormatDouble(run.total_time, 0),
         std::to_string(run.duplicate_count)});
    runs.push_back(run);
  }
  std::printf("%s", table.ToString().c_str());

  bool invariant_held = true;
  for (const ErRunResult& run : runs) {
    if (run.duplicates != runs.front().duplicates) invariant_held = false;
  }
  std::printf(
      "\nexactly-once invariant (identical resolved pairs across "
      "variants): %s\n\n",
      invariant_held ? "HELD" : "VIOLATED");

  // ---- Emission-rate curve: pairs resolved by time t ----
  double horizon = 0.0;
  for (const ErRunResult& run : runs) {
    horizon = std::max(horizon, run.total_time);
  }
  std::printf("--- emission curve (cumulative pairs at t) ---\n");
  TextTable curve_table({"t_sec", "clean", "hangs", "corruption",
                         "hangs+corruption"});
  for (int step = 1; step <= 8; ++step) {
    const double t = horizon * step / 8.0;
    std::vector<std::string> row = {FormatDouble(t, 0)};
    for (const ErRunResult& run : runs) {
      row.push_back(std::to_string(PairsBefore(run.events, t)));
    }
    curve_table.AddRow(row);
  }
  std::printf("%s", curve_table.ToString().c_str());

  // ---- Task-timeout sweep under hangs ----
  std::printf("\n--- task-timeout sweep (hang_prob=%.2f) ---\n", kHangProb);
  TextTable sweep({"timeout_sec", "timeouts", "t(recall=0.6)_sec",
                   "total_time_sec", "duplicates"});
  for (const double timeout : {10.0, 60.0, 300.0, 600.0}) {
    ProgressiveErOptions options;
    options.cluster = VariantCluster({"sweep", kHangProb, 0.0}, timeout);
    const ErRunResult run =
        ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
            .Run(setup.data.dataset);
    if (run.failed) {
      std::printf("run failed: %s\n", run.error.c_str());
      return;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    sweep.AddRow(
        {FormatDouble(timeout, 0),
         std::to_string(run.counters.Get("mr.faults.task_timeouts")),
         FormatDouble(curve.TimeToRecall(0.6), 0),
         FormatDouble(run.total_time, 0),
         std::to_string(run.duplicate_count)});
  }
  std::printf("%s", sweep.ToString().c_str());
  std::printf(
      "\na hung attempt holds its slot for the work done plus the timeout: "
      "shorter timeouts recover faster, identical outputs throughout.\n");
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Ablation: the tree-split batch size b (Sec. IV-C2). The paper argues the
// number of overflowed trees is low in practice, so a small b suffices; this
// bench sweeps b and reports quality plus the number of trees after
// splitting. Larger b re-sorts SL less often but splits on staler utility
// orders.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: split batch size b ===\n\n");
  TextTable table({"b", "trees_after_split", "quality", "final_recall"});
  double horizon = 0.0;

  for (int b : {1, 2, 4, 8, 16}) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    options.batch_size = b;
    const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                           options);
    const ProgressiveEr::Preprocessed pre = er.Preprocess(setup.data.dataset);
    size_t trees = 0;
    for (const AnnotatedForest& forest : pre.forests) {
      trees += forest.tree_roots().size();
    }
    const ErRunResult result = er.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time;
    table.AddRow({std::to_string(b), std::to_string(trees),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

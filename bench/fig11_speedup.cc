// Reproduces Figure 11: recall speedup of our approach relative to 5
// machines, for recall levels 0.1 .. 0.9 and mu in {5, 10, 15, 20, 25}.
//
// Expected shape (Sec. VI-B4): higher recall levels enjoy better speedup —
// low recall levels are dominated by the constant preprocessing cost (stats
// job + schedule generation), which does not shrink with more machines.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/psnm.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 18000;

void Main() {
  const bench::BookSetup setup = bench::MakeBookSetup(kEntities);
  const PsnmMechanism psnm;

  std::printf("=== Fig. 11: recall speedup (relative to 5 machines) ===\n");
  std::printf("books=%lld\n\n", static_cast<long long>(kEntities));

  const std::vector<int> machine_counts = {5, 10, 15, 20, 25};
  std::map<int, RecallCurve> curves;
  std::map<int, double> wall_seconds;
  for (int machines : machine_counts) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(machines);
    const ProgressiveEr er(setup.blocking, setup.match, psnm, setup.prob,
                           options);
    const ErRunResult result = er.Run(setup.data.dataset);
    curves.emplace(machines,
                   RecallCurve::FromEvents(result.events, setup.data.truth));
    wall_seconds.emplace(machines, result.wall_seconds);
  }

  std::vector<std::string> headers = {"recall"};
  for (int machines : machine_counts) {
    headers.push_back("mu=" + std::to_string(machines));
  }
  TextTable table(headers);
  for (int r = 1; r <= 9; ++r) {
    const double recall = r / 10.0;
    const double base = curves.at(5).TimeToRecall(recall);
    std::vector<std::string> row = {FormatDouble(recall, 1)};
    for (int machines : machine_counts) {
      const double t = curves.at(machines).TimeToRecall(recall);
      if (std::isinf(base) || std::isinf(t)) {
        row.push_back("-");
      } else {
        row.push_back(FormatDouble(base / t, 2));
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("--- speedup(recall, mu) = t_5(recall) / t_mu(recall) ---\n%s",
              table.ToString().c_str());
  // The speedups above are simulated-clock ratios; the measured wall time
  // of each driver run is a different clock, reported separately.
  std::printf("--- measured wall seconds per run (not simulated) ---\n");
  for (int machines : machine_counts) {
    std::printf("mu=%d: %.3f s%s", machines, wall_seconds.at(machines),
                machines == machine_counts.back() ? "\n" : "  ");
  }
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Ablation: deadline-driven graceful degradation. A job supervisor with a
// simulated-clock deadline cancels outstanding work at the cutoff and
// finalizes best-effort from the reduce tasks' alpha-boundary checkpoints.
// The sweep tightens the deadline from 25% to 100%+ of the fault-free
// makespan and reports the recall-vs-deadline curve; a fault-storm variant
// layers heavy attempt crashes over a small retry budget so the ledger
// denies retries and quarantines the doomed tasks instead of failing the
// job. Invariants printed as HELD/VIOLATED for the CI smoke grep:
//
//   * degraded runs resolve a subset of the clean run's pairs (degradation
//     truncates, it never invents),
//   * coverage and resolved pairs grow monotonically with the deadline,
//   * a deadline at/past the makespan changes nothing (byte-identical), and
//   * the supervisor counters agree with the per-task completeness report.
//
// "--json[=path]" writes a BENCH_ablation_degradation.json report for the
// CI regression gate (tools/compare_bench.py): coverage, recall, pair
// counts and the supervisor ledger are pure functions of the seed and the
// deadline, so they are gated exactly like golden numbers.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 6000;
constexpr int kMachines = 10;
constexpr uint64_t kFaultSeed = 777;

const std::vector<double>& DeadlineFractions() {
  static const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.5};
  return fractions;
}

ErRunResult RunWithDeadline(const bench::PublicationSetup& setup,
                            double deadline_seconds) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  if (deadline_seconds > 0.0) {
    options.cluster.control.deadline_seconds = deadline_seconds;
    options.cluster.control.allow_degraded = true;
  }
  return ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
      .Run(setup.data.dataset);
}

// Heavy attempt crashes over a small retry budget: the ledger funds the
// first retries, then the budget breaker trips and the remaining doomed
// tasks are quarantined instead of failing the job.
ErRunResult RunFaultStorm(const bench::PublicationSetup& setup,
                          int64_t fault_budget) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  options.cluster.fault.enabled = true;
  options.cluster.fault.seed = kFaultSeed;
  options.cluster.fault.map_failure_prob = 0.1;
  options.cluster.fault.reduce_failure_prob = 0.3;
  options.cluster.fault.max_attempts = 12;
  options.cluster.fault.retry_backoff_seconds = 0.5;
  options.cluster.control.allow_degraded = true;
  options.cluster.control.fault_budget = fault_budget;
  return ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
      .Run(setup.data.dataset);
}

// The supervisor counters must agree with the per-task completeness report:
// one deadline_cancels per task whose attempt the deadline cancelled —
// kCut when it delivered a checkpointed prefix, kCancelled when it had
// nothing — and one quarantined_tasks per kQuarantined task.
bool LedgerAgreesWithReport(const ErRunResult& run) {
  int64_t cancelled = 0;
  int64_t quarantined = 0;
  for (const TaskReport& task : run.completeness.tasks) {
    if (task.kind == TaskOutcomeKind::kCancelled ||
        task.kind == TaskOutcomeKind::kCut) {
      ++cancelled;
    }
    if (task.kind == TaskOutcomeKind::kQuarantined) ++quarantined;
  }
  return cancelled == run.counters.Get("mr.supervisor.deadline_cancels") &&
         quarantined == run.counters.Get("mr.supervisor.quarantined_tasks");
}

bool IsSubsetOfClean(const ErRunResult& run,
                     const std::vector<PairKey>& clean_sorted) {
  for (const PairKey pair : run.duplicates) {
    if (!std::binary_search(clean_sorted.begin(), clean_sorted.end(), pair)) {
      return false;
    }
  }
  return true;
}

void Main() {
  const bench::PublicationSetup setup = bench::MakePublicationSetup(kEntities);

  std::printf("=== Ablation: deadline-driven graceful degradation ===\n\n");

  const ErRunResult clean = RunWithDeadline(setup, 0.0);
  if (clean.failed) {
    std::printf("clean run failed: %s\n", clean.error.c_str());
    return;
  }
  std::vector<PairKey> clean_sorted = clean.duplicates;
  std::sort(clean_sorted.begin(), clean_sorted.end());
  const RecallCurve clean_curve =
      RecallCurve::FromEvents(clean.events, setup.data.truth);
  std::printf("fault-free makespan %.0f sim seconds, recall %.3f, "
              "%lld pairs\n\n",
              clean.total_time, clean_curve.final_recall(),
              static_cast<long long>(clean.duplicate_count));

  TextTable table({"deadline_%", "covered_%", "recall", "duplicates",
                   "cancels", "sim_total_s"});
  bool subset_held = true;
  bool monotone_held = true;
  bool ledger_held = true;
  bool noop_held = true;
  double prev_covered = -1.0;
  int64_t prev_pairs = -1;
  for (const double fraction : DeadlineFractions()) {
    const ErRunResult run =
        RunWithDeadline(setup, clean.total_time * fraction);
    if (run.failed) {
      std::printf("deadline run failed: %s\n", run.error.c_str());
      return;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    table.AddRow(
        {FormatDouble(fraction * 100.0, 0),
         FormatDouble(run.completeness.covered_fraction * 100.0, 1),
         FormatDouble(curve.final_recall(), 3),
         std::to_string(run.duplicate_count),
         std::to_string(run.counters.Get("mr.supervisor.deadline_cancels")),
         FormatDouble(run.total_time, 0)});
    subset_held = subset_held && IsSubsetOfClean(run, clean_sorted);
    monotone_held = monotone_held &&
                    run.completeness.covered_fraction >= prev_covered &&
                    run.duplicate_count >= prev_pairs;
    ledger_held = ledger_held && LedgerAgreesWithReport(run);
    prev_covered = run.completeness.covered_fraction;
    prev_pairs = run.duplicate_count;
    if (fraction >= 1.0) {
      noop_held = !run.completeness.degraded &&
                  run.duplicates == clean.duplicates;
    }
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\n--- fault storm under a retry-budget ledger ---\n");
  const ErRunResult storm = RunFaultStorm(setup, /*fault_budget=*/4);
  if (storm.failed) {
    std::printf("storm run failed: %s\n", storm.error.c_str());
    return;
  }
  std::printf(
      "budget 4: covered %.1f%%, quarantined %lld, retries denied %lld, "
      "breaker trips %lld, %lld pairs\n",
      storm.completeness.covered_fraction * 100.0,
      static_cast<long long>(
          storm.counters.Get("mr.supervisor.quarantined_tasks")),
      static_cast<long long>(
          storm.counters.Get("mr.supervisor.retries_denied")),
      static_cast<long long>(
          storm.counters.Get("mr.supervisor.breaker_trips")),
      static_cast<long long>(storm.duplicate_count));
  const ErRunResult funded = RunFaultStorm(setup, /*fault_budget=*/0);
  if (funded.failed) {
    std::printf("funded run failed: %s\n", funded.error.c_str());
    return;
  }
  const bool funded_held = !funded.completeness.degraded &&
                           funded.duplicates == clean.duplicates;
  subset_held = subset_held && IsSubsetOfClean(storm, clean_sorted);
  ledger_held = ledger_held && LedgerAgreesWithReport(storm);

  std::printf("\ndegraded pairs are a subset of the clean run's: %s\n",
              subset_held ? "HELD" : "VIOLATED");
  std::printf("coverage and pairs grow monotonically with the deadline: %s\n",
              monotone_held ? "HELD" : "VIOLATED");
  std::printf("deadline at/past the makespan changes nothing: %s\n",
              noop_held ? "HELD" : "VIOLATED");
  std::printf("supervisor counters agree with the completeness report: %s\n",
              ledger_held ? "HELD" : "VIOLATED");
  std::printf(
      "an unlimited retry budget absorbs the storm byte-identically: %s\n",
      funded_held ? "HELD" : "VIOLATED");
}

int JsonMain(const std::string& path) {
  const bench::PublicationSetup setup = bench::MakePublicationSetup(kEntities);
  bench::BenchReport report("ablation_degradation");

  const ErRunResult clean = RunWithDeadline(setup, 0.0);
  if (clean.failed) {
    std::fprintf(stderr, "clean run failed: %s\n", clean.error.c_str());
    return 1;
  }
  const RecallCurve clean_curve =
      RecallCurve::FromEvents(clean.events, setup.data.truth);
  report.AddSim("sim_total_seconds_clean", "sim_s", clean.total_time);
  report.AddSim("recall_clean", "recall", clean_curve.final_recall(),
                /*higher_is_better=*/true);
  report.AddSim("duplicates_clean", "pairs",
                static_cast<double>(clean.duplicate_count),
                /*higher_is_better=*/true);

  // Coverage, recall, pair counts and the supervisor ledger are pure
  // functions of the seed and the deadline: all sim metrics, gated exactly.
  for (const double fraction : DeadlineFractions()) {
    const ErRunResult run =
        RunWithDeadline(setup, clean.total_time * fraction);
    if (run.failed) {
      std::fprintf(stderr, "deadline run failed: %s\n", run.error.c_str());
      return 1;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    const std::string label = std::to_string(static_cast<int>(
        fraction * 100.0));
    report.AddSim("covered_fraction_" + label, "fraction",
                  run.completeness.covered_fraction,
                  /*higher_is_better=*/true);
    report.AddSim("recall_" + label, "recall", curve.final_recall(),
                  /*higher_is_better=*/true);
    report.AddSim("duplicates_" + label, "pairs",
                  static_cast<double>(run.duplicate_count),
                  /*higher_is_better=*/true);
    report.AddSim(
        "deadline_cancels_" + label, "tasks",
        static_cast<double>(
            run.counters.Get("mr.supervisor.deadline_cancels")));
    report.AddWall("wall_total_seconds_" + label, "wall_s", run.wall_seconds,
                   /*higher_is_better=*/false, /*gated=*/false);
  }

  const ErRunResult storm = RunFaultStorm(setup, /*fault_budget=*/4);
  if (storm.failed) {
    std::fprintf(stderr, "storm run failed: %s\n", storm.error.c_str());
    return 1;
  }
  report.AddSim("storm_covered_fraction", "fraction",
                storm.completeness.covered_fraction,
                /*higher_is_better=*/true);
  report.AddSim(
      "storm_quarantined_tasks", "tasks",
      static_cast<double>(
          storm.counters.Get("mr.supervisor.quarantined_tasks")));
  report.AddSim("storm_retries_denied", "retries",
                static_cast<double>(
                    storm.counters.Get("mr.supervisor.retries_denied")));
  report.AddSim("storm_breaker_trips", "trips",
                static_cast<double>(
                    storm.counters.Get("mr.supervisor.breaker_trips")));
  report.AddSim("storm_duplicates", "pairs",
                static_cast<double>(storm.duplicate_count),
                /*higher_is_better=*/true);

  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_degradation",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  progres::Main();
  return 0;
}

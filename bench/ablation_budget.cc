// Ablation: the budgeted variant (extended report): given a per-task
// resolution cost budget, the schedule keeps only the highest-utility blocks
// that fit, maximizing result quality within the budget. Sweeps the budget
// and reports achieved recall — the pay-as-you-go value proposition of the
// paper's introduction.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: per-task cost budget ===\n\n");

  // Reference: unlimited run.
  ProgressiveErOptions unlimited;
  unlimited.cluster = bench::MakeCluster(kMachines);
  const ErRunResult full =
      ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, unlimited)
          .Run(setup.data.dataset);
  double full_task_cost = 0.0;
  for (const ResultChunk& chunk : full.chunks) {
    full_task_cost = std::max(full_task_cost, chunk.cost_end);
  }
  const RecallCurve full_curve =
      RecallCurve::FromEvents(full.events, setup.data.truth);
  std::printf("unlimited: per-task cost %.0f units, recall %.3f, "
              "total %.0f sec\n\n",
              full_task_cost, full_curve.final_recall(), full.total_time);

  TextTable table({"budget_%", "comparisons_%", "recall", "recall_%_of_full",
                   "total_time_sec"});
  for (int pct : {5, 10, 25, 50, 75, 100}) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    options.per_task_cost_budget = full_task_cost * pct / 100.0;
    const ErRunResult result =
        ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
            .Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    table.AddRow(
        {std::to_string(pct),
         FormatDouble(100.0 * static_cast<double>(result.comparisons) /
                          static_cast<double>(full.comparisons), 1),
         FormatDouble(curve.final_recall(), 3),
         FormatDouble(100.0 * curve.final_recall() /
                          full_curve.final_recall(), 1),
         FormatDouble(result.total_time, 0)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

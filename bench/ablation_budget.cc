// Ablation: the budgeted variant (extended report): given a per-task
// resolution cost budget, the schedule keeps only the highest-utility blocks
// that fit, maximizing result quality within the budget. Sweeps the budget
// and reports achieved recall — the pay-as-you-go value proposition of the
// paper's introduction.
//
// "--json[=path]" writes a BENCH_ablation_budget.json report for the CI
// regression gate (tools/compare_bench.py): comparisons, recall and the
// simulated makespan at every budget point are deterministic, so they are
// gated exactly like golden numbers.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

const std::vector<int>& BudgetPercents() {
  static const std::vector<int> percents = {5, 10, 25, 50, 75, 100};
  return percents;
}

ErRunResult RunUnlimited(const bench::PublicationSetup& setup) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  return ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
      .Run(setup.data.dataset);
}

ErRunResult RunBudgeted(const bench::PublicationSetup& setup,
                        double per_task_cost_budget) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  options.per_task_cost_budget = per_task_cost_budget;
  return ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
      .Run(setup.data.dataset);
}

double MaxTaskCost(const ErRunResult& full) {
  double cost = 0.0;
  for (const ResultChunk& chunk : full.chunks) {
    cost = std::max(cost, chunk.cost_end);
  }
  return cost;
}

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);

  std::printf("=== Ablation: per-task cost budget ===\n\n");

  // Reference: unlimited run.
  const ErRunResult full = RunUnlimited(setup);
  const double full_task_cost = MaxTaskCost(full);
  const RecallCurve full_curve =
      RecallCurve::FromEvents(full.events, setup.data.truth);
  std::printf("unlimited: per-task cost %.0f units, recall %.3f, "
              "total %.0f sec\n\n",
              full_task_cost, full_curve.final_recall(), full.total_time);

  TextTable table({"budget_%", "comparisons_%", "recall", "recall_%_of_full",
                   "total_time_sec"});
  for (int pct : BudgetPercents()) {
    const ErRunResult result =
        RunBudgeted(setup, full_task_cost * pct / 100.0);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    table.AddRow(
        {std::to_string(pct),
         FormatDouble(100.0 * static_cast<double>(result.comparisons) /
                          static_cast<double>(full.comparisons), 1),
         FormatDouble(curve.final_recall(), 3),
         FormatDouble(100.0 * curve.final_recall() /
                          full_curve.final_recall(), 1),
         FormatDouble(result.total_time, 0)});
  }
  std::printf("%s", table.ToString().c_str());
}

int JsonMain(const std::string& path) {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  bench::BenchReport report("ablation_budget");

  const ErRunResult full = RunUnlimited(setup);
  if (full.failed) {
    std::fprintf(stderr, "unlimited run failed: %s\n", full.error.c_str());
    return 1;
  }
  const double full_task_cost = MaxTaskCost(full);
  const RecallCurve full_curve =
      RecallCurve::FromEvents(full.events, setup.data.truth);
  report.AddSim("per_task_cost_unlimited", "cost_units", full_task_cost);
  report.AddSim("recall_unlimited", "recall", full_curve.final_recall(),
                /*higher_is_better=*/true);
  report.AddSim("sim_total_seconds_unlimited", "sim_s", full.total_time);
  report.AddWall("wall_total_seconds_unlimited", "wall_s", full.wall_seconds,
                 /*higher_is_better=*/false, /*gated=*/false);

  // Every budget point is deterministic: comparisons, recall and makespan
  // are sim metrics, gated exactly.
  for (int pct : BudgetPercents()) {
    const ErRunResult result =
        RunBudgeted(setup, full_task_cost * pct / 100.0);
    if (result.failed) {
      std::fprintf(stderr, "budget %d%% run failed: %s\n", pct,
                   result.error.c_str());
      return 1;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    const std::string label = std::to_string(pct);
    report.AddSim("comparisons_" + label, "pairs",
                  static_cast<double>(result.comparisons));
    report.AddSim("recall_" + label, "recall", curve.final_recall(),
                  /*higher_is_better=*/true);
    report.AddSim("sim_total_seconds_" + label, "sim_s", result.total_time);
  }

  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_budget",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  progres::Main();
  return 0;
}

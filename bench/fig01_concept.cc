// Reproduces the conceptual Figure 1: quality of the cleaned data as a
// function of resolution cost for three styles of ER:
//   * traditional — results only after the entire dataset is resolved;
//   * incremental — a traditional algorithm configured to publish results
//     continuously (our Basic F baseline);
//   * progressive  — our approach, which maximizes the early rate.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/basic_er.h"
#include "core/mrsn_er.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 12000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const ClusterConfig cluster = bench::MakeCluster(kMachines);
  const SortedNeighborMechanism sn;

  std::printf("=== Fig. 1: progressive vs incremental vs traditional ===\n\n");

  // Incremental: Basic F publishing every duplicate as found.
  BasicErOptions basic_options;
  basic_options.cluster = cluster;
  const BasicEr basic(bench::PublicationMainBlocking(), setup.match, sn,
                      basic_options);
  const ErRunResult incremental = basic.Run(setup.data.dataset);
  const RecallCurve incremental_curve =
      RecallCurve::FromEvents(incremental.events, setup.data.truth);

  // Traditional: the same resolution, but results become visible only when
  // the whole job finishes.
  std::vector<DuplicateEvent> all_at_end;
  for (const DuplicateEvent& event : incremental.events) {
    all_at_end.push_back({incremental.total_time, event.pair});
  }
  const RecallCurve traditional_curve =
      RecallCurve::FromEvents(all_at_end, setup.data.truth);

  // Parallel multi-pass Sorted Neighborhood [8]: a fixed parallel ER
  // algorithm. Per the paper (Sec. VII), such algorithms "need to run to
  // completion before they can produce results": a Hadoop task's output is
  // committed only when the task finishes, so the published curve steps at
  // task completions (alpha = infinity), not at individual comparisons.
  MrsnOptions mrsn_options;
  mrsn_options.cluster = cluster;
  mrsn_options.alpha = 1e18;
  const MrsnEr mrsn(bench::PublicationMainBlocking(), setup.match,
                    mrsn_options);
  const ErRunResult mrsn_result = mrsn.Run(setup.data.dataset);
  const RecallCurve mrsn_curve = RecallCurve::FromEvents(
      EventsFromChunks(mrsn_result.chunks), setup.data.truth);

  // Progressive: our approach.
  ProgressiveErOptions options;
  options.cluster = cluster;
  const ProgressiveEr ours(setup.blocking, setup.match, sn, setup.prob,
                           options);
  const ErRunResult progressive = ours.Run(setup.data.dataset);
  const RecallCurve progressive_curve =
      RecallCurve::FromEvents(progressive.events, setup.data.truth);

  const double horizon = std::max(
      {incremental.total_time, progressive.total_time, mrsn_result.total_time});
  std::printf("%s", FormatCurveSeries("Progressive (ours)", progressive_curve,
                                      horizon, 15)
                        .c_str());
  std::printf("%s", FormatCurveSeries("Incremental (Basic F)",
                                      incremental_curve, horizon, 15)
                        .c_str());
  std::printf("%s", FormatCurveSeries("Traditional", traditional_curve,
                                      horizon, 15)
                        .c_str());
  std::printf("%s", FormatCurveSeries("Parallel SN [8]", mrsn_curve, horizon,
                                      15)
                        .c_str());

  TextTable table({"approach", "quality", "final_recall"});
  table.AddRow({"Progressive (ours)",
                FormatDouble(bench::QualityOverHorizon(progressive_curve,
                                                       horizon), 3),
                FormatDouble(progressive_curve.final_recall(), 3)});
  table.AddRow({"Incremental (Basic F)",
                FormatDouble(bench::QualityOverHorizon(incremental_curve,
                                                       horizon), 3),
                FormatDouble(incremental_curve.final_recall(), 3)});
  table.AddRow({"Traditional",
                FormatDouble(bench::QualityOverHorizon(traditional_curve,
                                                       horizon), 3),
                FormatDouble(traditional_curve.final_recall(), 3)});
  table.AddRow({"Parallel SN [8]",
                FormatDouble(bench::QualityOverHorizon(mrsn_curve, horizon),
                             3),
                FormatDouble(mrsn_curve.final_recall(), 3)});
  std::printf("\n%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Microbenchmarks of the similarity primitives: the resolve/match function
// dominates resolution cost, so its building blocks matter.

#include <string>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "similarity/levenshtein.h"
#include "similarity/match_function.h"

namespace progres {
namespace {

std::string RandomString(Rng* rng, size_t length) {
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>('a' + rng->UniformU64(26)));
  }
  return s;
}

void BM_Levenshtein(benchmark::State& state) {
  Rng rng(1);
  const size_t length = static_cast<size_t>(state.range(0));
  const std::string a = RandomString(&rng, length);
  const std::string b = RandomString(&rng, length);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(128)->Arg(350);

void BM_BoundedLevenshtein(benchmark::State& state) {
  Rng rng(2);
  const size_t length = static_cast<size_t>(state.range(0));
  const std::string a = RandomString(&rng, length);
  std::string b = a;
  b[length / 2] = '#';  // distance 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedLevenshtein(a, b, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(8)->Arg(32)->Arg(128)->Arg(350);

void BM_MatchFunctionResolve(benchmark::State& state) {
  Rng rng(3);
  Entity a;
  a.id = 0;
  a.attributes = {RandomString(&rng, 40), RandomString(&rng, 350),
                  RandomString(&rng, 20)};
  Entity b;
  b.id = 1;
  b.attributes = a.attributes;
  b.attributes[0][5] = '#';
  const MatchFunction match(
      {{0, AttributeSimilarity::kEditDistance, 0.5, 0},
       {1, AttributeSimilarity::kEditDistance, 0.3, 350},
       {2, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.Resolve(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchFunctionResolve);

}  // namespace
}  // namespace progres

BENCHMARK_MAIN();

// Ablation: checkpointed progressive recovery. Machine-level fault domains
// kill every attempt running on a dying machine and remove it from the
// cluster; plan-based attempt faults force reduce tasks to retry. The data
// plane stays exactly once in all variants — duplicates and recall are
// byte-identical — but a scratch retry replays every pair the failed
// attempt had already resolved, while a checkpointed retry resumes from the
// last alpha-emission snapshot and replays strictly fewer pairs, pulling
// every recall milestone earlier on the simulated clock.
//
// "--json[=path]" writes a BENCH_ablation_recovery.json report for the CI
// regression gate (tools/compare_bench.py): the fault ledger, replayed-pair
// counts and recall milestones are pure functions of the fault seed, so
// they are gated exactly like golden numbers.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 12000;
constexpr int kMachines = 10;
constexpr uint64_t kFaultSeed = 4242;

struct Variant {
  const char* label;
  bool faults;
  bool checkpoint;
};

const std::vector<Variant>& Variants() {
  static const std::vector<Variant> variants = {
      {"fault-free", false, false},
      {"faults+scratch", true, false},
      {"faults+resume", true, true},
  };
  return variants;
}

// A fault-free dry run fixes the timeline so the injected machine deaths
// land mid-resolution regardless of workload tweaks. Returns a negative
// total on failure.
double CleanTotal(const bench::PublicationSetup& setup) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  const ErRunResult dry =
      ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
          .Run(setup.data.dataset);
  if (dry.failed) {
    std::fprintf(stderr, "dry run failed: %s\n", dry.error.c_str());
    return -1.0;
  }
  return dry.total_time;
}

ErRunResult RunVariant(const bench::PublicationSetup& setup, const Variant& v,
                       double clean_total, bench::ScopedTrace* trace) {
  const SortedNeighborMechanism sn;
  ClusterConfig cluster = bench::MakeCluster(kMachines);
  if (v.faults) {
    cluster.fault.enabled = true;
    cluster.fault.seed = kFaultSeed;
    cluster.fault.reduce_failure_prob = 0.15;
    cluster.fault.max_attempts = 12;
    // Two machines die mid-resolution; their in-flight attempts are
    // killed and requeued on the eight survivors.
    cluster.fault.machine_failures = {{2, clean_total * 0.35},
                                      {7, clean_total * 0.55}};
  }
  ProgressiveErOptions options;
  options.cluster = cluster;
  if (trace != nullptr) trace->Attach(&options.cluster);
  options.checkpoint_recovery = v.checkpoint;
  return ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
      .Run(setup.data.dataset);
}

void Main() {
  const bench::PublicationSetup setup = bench::MakePublicationSetup(kEntities);

  std::printf("=== Ablation: machine faults & checkpointed recovery ===\n\n");

  const double clean_total = CleanTotal(setup);
  if (clean_total < 0.0) return;

  // With PROGRES_TRACE_OUT set, every variant records into one trace (the
  // pipeline stages repeat per variant, giving distinct process ids).
  bench::ScopedTrace trace;

  TextTable table({"variant", "failed", "machines_lost", "replayed_pairs",
                   "ckpt_saved", "ckpt_restored", "t(recall=0.6)_sec",
                   "total_time_sec", "duplicates"});
  int64_t baseline_duplicates = -1;
  bool invariant_held = true;
  int64_t scratch_replayed = -1;
  int64_t resumed_replayed = -1;
  double scratch_total = 0.0;
  double resumed_total = 0.0;
  for (const Variant& v : Variants()) {
    const ErRunResult run = RunVariant(setup, v, clean_total, &trace);
    if (run.failed) {
      std::printf("run failed: %s\n", run.error.c_str());
      return;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    const int64_t replayed = run.counters.Get("mr.recovery.replayed_pairs");
    table.AddRow(
        {v.label, std::to_string(run.counters.Get("mr.failed_attempts")),
         std::to_string(run.counters.Get("mr.faults.machines_dead")),
         std::to_string(replayed),
         std::to_string(run.counters.Get("mr.checkpoint.saved")),
         std::to_string(run.counters.Get("mr.checkpoint.restored")),
         FormatDouble(curve.TimeToRecall(0.6), 0),
         FormatDouble(run.total_time, 0),
         std::to_string(run.duplicate_count)});
    if (baseline_duplicates < 0) {
      baseline_duplicates = run.duplicate_count;
    } else if (run.duplicate_count != baseline_duplicates) {
      invariant_held = false;
    }
    if (v.faults && !v.checkpoint) {
      scratch_replayed = replayed;
      scratch_total = run.total_time;
    } else if (v.faults && v.checkpoint) {
      resumed_replayed = replayed;
      resumed_total = run.total_time;
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexactly-once invariant (identical duplicates across variants): %s\n",
      invariant_held ? "HELD" : "VIOLATED");
  std::printf(
      "checkpointed resume replays fewer pairs than scratch retry: %s "
      "(%lld vs %lld)\n",
      resumed_replayed < scratch_replayed ? "HELD" : "VIOLATED",
      static_cast<long long>(resumed_replayed),
      static_cast<long long>(scratch_replayed));
  std::printf("recovered wall-clock: scratch %.0f s, resumed %.0f s\n",
              scratch_total, resumed_total);
}

int JsonMain(const std::string& path) {
  const bench::PublicationSetup setup = bench::MakePublicationSetup(kEntities);
  bench::BenchReport report("ablation_recovery");

  const double clean_total = CleanTotal(setup);
  if (clean_total < 0.0) return 1;
  report.AddSim("sim_total_seconds_clean", "sim_s", clean_total);

  int64_t scratch_replayed = -1;
  int64_t resumed_replayed = -1;
  for (const Variant& v : Variants()) {
    const ErRunResult run =
        RunVariant(setup, v, clean_total, /*trace=*/nullptr);
    if (run.failed) {
      std::fprintf(stderr, "%s run failed: %s\n", v.label, run.error.c_str());
      return 1;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    const int64_t replayed = run.counters.Get("mr.recovery.replayed_pairs");
    // The fault ledger, replay accounting and recall milestones are pure
    // functions of the fault seed: sim metrics, gated exactly.
    std::string label = v.label;
    std::replace(label.begin(), label.end(), '+', '_');
    std::replace(label.begin(), label.end(), '-', '_');
    report.AddSim("failed_attempts_" + label, "attempts",
                  static_cast<double>(run.counters.Get("mr.failed_attempts")));
    report.AddSim(
        "machines_dead_" + label, "machines",
        static_cast<double>(run.counters.Get("mr.faults.machines_dead")));
    report.AddSim("replayed_pairs_" + label, "pairs",
                  static_cast<double>(replayed));
    report.AddSim(
        "checkpoints_restored_" + label, "snapshots",
        static_cast<double>(run.counters.Get("mr.checkpoint.restored")));
    report.AddSim("time_to_recall_60_" + label, "sim_s",
                  curve.TimeToRecall(0.6));
    report.AddSim("sim_total_seconds_" + label, "sim_s", run.total_time);
    report.AddSim("duplicates_" + label, "pairs",
                  static_cast<double>(run.duplicate_count),
                  /*higher_is_better=*/true);
    report.AddWall("wall_total_seconds_" + label, "wall_s", run.wall_seconds,
                   /*higher_is_better=*/false, /*gated=*/false);
    if (v.faults && !v.checkpoint) scratch_replayed = replayed;
    if (v.faults && v.checkpoint) resumed_replayed = replayed;
  }
  report.AddSim("resume_replays_fewer", "bool",
                resumed_replayed < scratch_replayed ? 1.0 : 0.0,
                /*higher_is_better=*/true);

  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_recovery",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  progres::Main();
  return 0;
}

// Ablation: per-level aggressiveness (Sec. III-A, VI-A5): window sizes and
// Frac values for leaf / middle / root blocks. The paper's settings resolve
// leaves most aggressively; this bench compares flatter and steeper
// policies.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

struct Policy {
  const char* name;
  int window_root;
  int window_middle;
  int window_leaf;
  double frac_leaf;
  double frac_middle;
  double th_factor;
};

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: per-level windows and Frac ===\n\n");
  const Policy policies[] = {
      {"paper (15/10/5, Th=|X|)", 15, 10, 5, 0.8, 0.9, 1.0},
      {"tight Th (Th=|X|/4)", 15, 10, 5, 0.8, 0.9, 0.25},
      {"loose Th (Th=4|X|)", 15, 10, 5, 0.8, 0.9, 4.0},
      {"aggressive leaves (15/8/3)", 15, 8, 3, 0.7, 0.85, 1.0},
      {"small root window (8/6/4)", 8, 6, 4, 0.8, 0.9, 1.0},
  };
  TextTable table({"policy", "comparisons", "quality", "final_recall"});
  double horizon = 0.0;
  for (const Policy& policy : policies) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    options.estimate.window_root = policy.window_root;
    options.estimate.window_middle = policy.window_middle;
    options.estimate.window_leaf = policy.window_leaf;
    options.estimate.frac_leaf = policy.frac_leaf;
    options.estimate.frac_middle = policy.frac_middle;
    options.estimate.th_factor = policy.th_factor;
    const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                           options);
    const ErRunResult result = er.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time * 1.5;
    table.AddRow({policy.name, std::to_string(result.comparisons),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Ablation: redundancy-free resolution (Sec. V and Sec. II-C(4)).
//   * our approach with / without dominance-list elimination;
//   * Basic with / without Kolb et al.'s smallest-key strategy.
// Reports comparisons performed, pairs skipped, quality, and final recall:
// elimination buys a large comparison reduction at a small recall cost
// (responsibility ignores window reach).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const ClusterConfig cluster = bench::MakeCluster(kMachines);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: redundancy-free resolution ===\n\n");
  TextTable table({"approach", "redundancy", "comparisons", "skipped",
                   "quality", "final_recall"});
  double horizon = 0.0;

  for (bool redundancy : {true, false}) {
    ProgressiveErOptions options;
    options.cluster = cluster;
    options.redundancy_elimination = redundancy;
    const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                           options);
    const ErRunResult result = er.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time * 1.5;
    table.AddRow({"Ours", redundancy ? "dominance lists" : "off",
                  std::to_string(result.comparisons),
                  std::to_string(result.skipped_count),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3)});
  }

  for (bool kolb : {true, false}) {
    BasicErOptions options;
    options.cluster = cluster;
    options.kolb_redundancy = kolb;
    const BasicEr basic(bench::PublicationMainBlocking(), setup.match, sn,
                        options);
    const ErRunResult result = basic.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    table.AddRow({"Basic F", kolb ? "Kolb smallest-key" : "off",
                  std::to_string(result.comparisons),
                  std::to_string(result.skipped_count),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Ablation: fault tolerance. Task attempts fail (or hang until the
// heartbeat timeout kills them) with a configurable probability and are
// retried (deterministically, from the fault seed); shuffle partitions are
// corrupted and re-fetched. The data plane is exactly once — duplicates,
// recall, and final counters are identical to the fault-free run — but
// retried attempts occupy slots and hung ones additionally sit out the
// timeout, so every recall milestone shifts later on the simulated clock.
// With speculative execution enabled on top, backup copies claw back part
// of the straggling retries.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;
constexpr uint64_t kFaultSeed = 4242;

struct Variant {
  const char* label;
  double failure_prob;
  bool speculate;
  double hang_prob = 0.0;
  double corrupt_prob = 0.0;
};

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: fault injection & speculation ===\n\n");
  const std::vector<Variant> variants = {
      {"fault-free", 0.0, false},
      {"p=0.05", 0.05, false},
      {"p=0.15", 0.15, false},
      {"p=0.15+spec", 0.15, true},
      {"hang=0.10", 0.0, false, 0.10},
      {"corrupt=0.05", 0.0, false, 0.0, 0.05},
      {"all", 0.05, false, 0.05, 0.05},
  };

  TextTable table({"variant", "attempts", "failed", "spec_wins", "timeouts",
                   "chk_errors", "t(recall=0.6)_sec", "total_time_sec",
                   "duplicates", "final_recall"});
  int64_t baseline_duplicates = -1;
  double baseline_recall = -1.0;
  bool invariant_held = true;
  for (const Variant& v : variants) {
    ClusterConfig cluster = bench::MakeCluster(kMachines);
    // A mildly heterogeneous cluster gives speculation room to win.
    cluster.machine_speed = {1.0, 1.0, 1.0, 1.0, 1.0,
                             1.0, 1.0, 1.0, 0.25, 0.25};
    cluster.fault.enabled =
        v.failure_prob > 0.0 || v.hang_prob > 0.0 || v.corrupt_prob > 0.0;
    cluster.fault.seed = kFaultSeed;
    cluster.fault.map_failure_prob = v.failure_prob;
    cluster.fault.reduce_failure_prob = v.failure_prob;
    cluster.fault.map_hang_prob = v.hang_prob;
    cluster.fault.reduce_hang_prob = v.hang_prob;
    cluster.fault.task_timeout_seconds = 30.0;
    cluster.fault.shuffle_corrupt_prob = v.corrupt_prob;
    cluster.fault.max_attempts = 12;
    cluster.speculation.enabled = v.speculate;

    ProgressiveErOptions options;
    options.cluster = cluster;
    const ErRunResult run =
        ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
            .Run(setup.data.dataset);
    if (run.failed) {
      std::printf("run failed: %s\n", run.error.c_str());
      return;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(run.events, setup.data.truth);
    table.AddRow({v.label, std::to_string(run.counters.Get("mr.attempts")),
                  std::to_string(run.counters.Get("mr.failed_attempts")),
                  std::to_string(run.counters.Get("mr.speculative_wins")),
                  std::to_string(run.counters.Get("mr.faults.task_timeouts")),
                  std::to_string(
                      run.counters.Get("mr.shuffle.checksum_errors")),
                  FormatDouble(curve.TimeToRecall(0.6), 0),
                  FormatDouble(run.total_time, 0),
                  std::to_string(run.duplicate_count),
                  FormatDouble(curve.final_recall(), 3)});
    if (baseline_duplicates < 0) {
      baseline_duplicates = run.duplicate_count;
      baseline_recall = curve.final_recall();
    } else if (run.duplicate_count != baseline_duplicates ||
               curve.final_recall() != baseline_recall) {
      invariant_held = false;
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nexactly-once invariant (identical duplicates/recall across "
      "variants): %s\n",
      invariant_held ? "HELD" : "VIOLATED");
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Reproduces Figure 9: the effectiveness of the tree-schedule generation
// algorithm against the NoSplit variant and the Longest Processing Time
// (LPT) load balancer, at mu = 10, 15 and 20 machines.
//
// Expected shape (Sec. VI-B2): Ours > NoSplit > LPT in duplicate-detection
// rate, with the Ours/NoSplit gap widening as machines are added (NoSplit
// leaves whole overflowed trees on single tasks, underutilizing the rest).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 20000;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Fig. 9: tree schedulers (Ours vs NoSplit vs LPT) ===\n");
  std::printf("publications=%lld\n\n", static_cast<long long>(kEntities));

  struct Variant {
    const char* name;
    TreeScheduler scheduler;
  };
  const std::vector<Variant> variants = {
      {"LPT", TreeScheduler::kLpt},
      {"NoSplit", TreeScheduler::kNoSplit},
      {"Our Algorithm", TreeScheduler::kOurs},
  };

  // Quality is measured over the first half of the horizon: the paper's
  // sub-figures plot exactly that early window, where scheduling matters.
  TextTable summary({"machines", "scheduler", "quality_early",
                     "t(recall=0.7)_sec", "final_recall"});
  for (int machines : {10, 15, 20}) {
    std::vector<std::pair<std::string, RecallCurve>> curves;
    double horizon = 0.0;
    for (const Variant& variant : variants) {
      ProgressiveErOptions options;
      options.cluster = bench::MakeCluster(machines);
      options.scheduler = variant.scheduler;
      const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                             options);
      const ErRunResult result = er.Run(setup.data.dataset);
      const RecallCurve curve =
          RecallCurve::FromEvents(result.events, setup.data.truth);
      horizon = std::max(horizon, result.total_time);
      curves.emplace_back(variant.name, curve);
    }
    for (const auto& [name, curve] : curves) {
      summary.AddRow(
          {std::to_string(machines), name,
           FormatDouble(bench::QualityOverHorizon(curve, horizon / 2.0), 3),
           FormatDouble(curve.TimeToRecall(0.7), 0),
           FormatDouble(curve.final_recall(), 3)});
    }
    std::printf("--- mu = %d (recall vs time) ---\n", machines);
    for (const auto& [name, curve] : curves) {
      std::printf("%s", FormatCurveSeries(name, curve, horizon, 12).c_str());
    }
    std::printf("\n");
  }
  std::printf("--- summary ---\n%s", summary.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Ablation: reduce-side schedulers on a head-heavy workload. The
// mega-block datagen profile concentrates ~30% of the entities in one
// title-prefix block, the skew regime the pair-level load balancers of
// Kolb/Thor/Rahm ("Load Balancing for MapReduce-based Entity Resolution")
// were designed for. All five schedulers run on the same workload:
// the three tree schedulers assign whole blocks or trees, BlockSplit
// carves the oversized block into single/cross sub-block match tasks, and
// PairRange slices the global pair enumeration into near-equal contiguous
// ranges. Reported per scheduler: simulated makespan, mean reduce-slot
// utilisation (from trace attempt spans), time to 70% recall, and the
// threaded backend's wall time. The resolved pairs must be identical
// across all five — scheduling decides when pairs are compared and where,
// never which.
//
// "--json[=path]" writes a BENCH_ablation_schedulers.json report for the
// CI regression gate (tools/compare_bench.py).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 6000;
constexpr int kMachines = 8;  // 16 reduce slots: the mega block overflows
                              // the per-task average and must be split
constexpr double kMegaFraction = 0.3;

struct Variant {
  const char* label;
  TreeScheduler scheduler;
};

const std::vector<Variant>& Variants() {
  static const std::vector<Variant> variants = {
      {"nosplit", TreeScheduler::kNoSplit},
      {"lpt", TreeScheduler::kLpt},
      {"ours", TreeScheduler::kOurs},
      {"blocksplit", TreeScheduler::kBlockSplit},
      {"pairrange", TreeScheduler::kPairRange},
  };
  return variants;
}

// The publication setup with the mega-block skew profile dialed in.
bench::PublicationSetup MakeMegaSetup() {
  bench::PublicationSetup setup;
  PublicationConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, kEntities / 5);
  train_gen.seed = 2018;
  setup.train = GeneratePublications(train_gen);
  PublicationConfig gen;
  gen.num_entities = kEntities;
  gen.seed = 2017;
  gen.mega_block_fraction = kMegaFraction;
  setup.data = GeneratePublications(gen);
  setup.blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                                   {"Y", kPubAbstract, {3, 5}, -1},
                                   {"Z", kPubVenue, {3, 5}, -1}});
  setup.match = MatchFunction(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  setup.prob = ProbabilityModel::Train(setup.train.dataset, setup.train.truth,
                                       setup.blocking);
  return setup;
}

struct VariantResult {
  ErRunResult simulated;
  double utilisation = 0.0;     // mean reduce-slot busy fraction
  double time_to_recall = 0.0;  // simulated seconds to 70% recall
  double threaded_wall = 0.0;   // threaded backend, real seconds
};

// Mean busy fraction of the resolution job's reduce slots over the reduce
// phase's extent, from the recorded attempt spans. Deterministic: the
// simulated timeline is a pure function of the inputs.
double ReduceSlotUtilisation(const TraceRecorder& trace, int machines) {
  const int pid = trace.PidOf("resolution job");
  if (pid < 0) return 0.0;
  double busy = 0.0;
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (const TraceSpan& span : trace.spans()) {
    if (span.pid != pid || span.kind != SpanKind::kAttempt ||
        span.phase != TaskPhase::kReduce || span.slot < 0) {
      continue;
    }
    busy += span.end - span.start;
    if (!any || span.start < lo) lo = span.start;
    if (!any || span.end > hi) hi = span.end;
    any = true;
  }
  const double slots = 2.0 * machines;
  return any && hi > lo ? busy / (slots * (hi - lo)) : 0.0;
}

VariantResult RunVariant(const bench::PublicationSetup& setup,
                         const Variant& v) {
  const SortedNeighborMechanism sn;
  VariantResult out;

  TraceRecorder trace;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  options.cluster.trace = &trace;
  options.scheduler = v.scheduler;
  const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                         options);
  out.simulated = er.Run(setup.data.dataset);
  if (out.simulated.failed) return out;
  out.utilisation = ReduceSlotUtilisation(trace, kMachines);
  const RecallCurve curve =
      RecallCurve::FromEvents(out.simulated.events, setup.data.truth);
  out.time_to_recall = curve.TimeToRecall(0.7);

  ProgressiveErOptions threaded_options;
  threaded_options.cluster = bench::MakeCluster(kMachines);
  threaded_options.cluster.backend = ExecutionBackend::kThreaded;
  threaded_options.cluster.execution_threads = 8;
  threaded_options.scheduler = v.scheduler;
  const ProgressiveEr threaded_er(setup.blocking, setup.match, sn, setup.prob,
                                  threaded_options);
  const ErRunResult threaded = threaded_er.Run(setup.data.dataset);
  if (threaded.failed) {
    out.simulated.failed = true;
    out.simulated.error = "threaded backend: " + threaded.error;
    return out;
  }
  if (threaded.duplicates != out.simulated.duplicates) {
    out.simulated.failed = true;
    out.simulated.error = "threaded backend diverged from simulated pairs";
    return out;
  }
  out.threaded_wall = threaded.wall_seconds;
  return out;
}

void Main() {
  const bench::PublicationSetup setup = MakeMegaSetup();

  std::printf(
      "=== Ablation: schedulers on the mega-block skew profile ===\n");
  std::printf(
      "publications=%lld mega_fraction=%.1f machines=%d (reduce slots=%d)\n\n",
      static_cast<long long>(kEntities), kMegaFraction, kMachines,
      2 * kMachines);

  std::vector<VariantResult> results;
  TextTable table({"scheduler", "sim_makespan_s", "slot_util",
                   "t(recall=0.7)_s", "wall_threaded_s", "comparisons",
                   "pairs"});
  for (const Variant& v : Variants()) {
    const VariantResult r = RunVariant(setup, v);
    if (r.simulated.failed) {
      std::printf("run failed: %s\n", r.simulated.error.c_str());
      return;
    }
    // "comparisons" exposes the pair-level schedulers' price: blocks span
    // tasks, so the per-tree incremental dedup no longer spans the whole
    // tree and window-nested pairs are re-compared. "pairs" is the final
    // deduplicated set — identical for all five.
    table.AddRow({v.label, FormatDouble(r.simulated.total_time, 1),
                  FormatDouble(r.utilisation, 3),
                  FormatDouble(r.time_to_recall, 1),
                  FormatDouble(r.threaded_wall, 2),
                  std::to_string(r.simulated.comparisons),
                  std::to_string(r.simulated.duplicates.size())});
    results.push_back(r);
  }
  std::printf("%s", table.ToString().c_str());

  bool identical_pairs = true;
  for (const VariantResult& r : results) {
    if (r.simulated.duplicates != results.front().simulated.duplicates) {
      identical_pairs = false;
    }
  }
  const double nosplit = results[0].simulated.total_time;
  const double blocksplit = results[3].simulated.total_time;
  const double pairrange = results[4].simulated.total_time;
  std::printf(
      "\nidentical resolved pairs across all schedulers: %s\n",
      identical_pairs ? "HELD" : "VIOLATED");
  std::printf("blocksplit makespan < nosplit (%.1f < %.1f): %s\n", blocksplit,
              nosplit, blocksplit < nosplit ? "HELD" : "VIOLATED");
  std::printf("pairrange makespan < nosplit (%.1f < %.1f): %s\n", pairrange,
              nosplit, pairrange < nosplit ? "HELD" : "VIOLATED");
  std::printf(
      "\nthe tree schedulers cannot divide the mega block: whichever task "
      "owns it runs long after every other slot drains. BlockSplit's "
      "single/cross sub-tasks and PairRange's contiguous enumeration ranges "
      "spread exactly that block, at the price of shipping its members to "
      "several reduce tasks (and, for PairRange, of giving up the "
      "utility-ordered progressive emission).\n");
}

int JsonMain(const std::string& path) {
  const bench::PublicationSetup setup = MakeMegaSetup();
  bench::BenchReport report("ablation_schedulers");

  std::vector<VariantResult> results;
  for (const Variant& v : Variants()) {
    const VariantResult r = RunVariant(setup, v);
    if (r.simulated.failed) {
      std::fprintf(stderr, "%s run failed: %s\n", v.label,
                   r.simulated.error.c_str());
      return 1;
    }
    const std::string label = v.label;
    report.AddSim("sim_makespan_" + label, "sim_s",
                  r.simulated.total_time);
    report.AddSim("slot_utilisation_" + label, "fraction", r.utilisation,
                  /*higher_is_better=*/true);
    report.AddSim("time_to_recall70_" + label, "sim_s", r.time_to_recall);
    report.AddSim("comparisons_" + label, "pairs",
                  static_cast<double>(r.simulated.comparisons));
    report.AddSim("final_pairs_" + label, "pairs",
                  static_cast<double>(r.simulated.duplicates.size()),
                  /*higher_is_better=*/true);
    report.AddWall("wall_threaded_seconds_" + label, "wall_s",
                   r.threaded_wall, /*higher_is_better=*/false,
                   /*gated=*/false);
    results.push_back(r);
  }

  bool identical_pairs = true;
  for (const VariantResult& r : results) {
    if (r.simulated.duplicates != results.front().simulated.duplicates) {
      identical_pairs = false;
    }
  }
  report.AddSim("identical_pairs_held", "bool", identical_pairs ? 1.0 : 0.0,
                /*higher_is_better=*/true);
  report.AddSim("blocksplit_beats_nosplit", "bool",
                results[3].simulated.total_time <
                        results[0].simulated.total_time
                    ? 1.0
                    : 0.0,
                /*higher_is_better=*/true);
  report.AddSim("pairrange_beats_nosplit", "bool",
                results[4].simulated.total_time <
                        results[0].simulated.total_time
                    ? 1.0
                    : 0.0,
                /*higher_is_better=*/true);

  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_schedulers",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  progres::Main();
  return 0;
}

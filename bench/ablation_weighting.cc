// Ablation: the weighting function W(.) and the cost vector C used by
// schedule generation (Eq. 1 / Sec. IV-C). Steeper weights push the
// scheduler to privilege the earliest intervals; longer cost vectors give it
// finer-grained buckets to balance.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"
#include "schedule/schedule.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: weighting function and cost vector ===\n\n");

  struct Variant {
    const char* name;
    int k;  // |C|
    std::vector<double> weights;
  };
  const std::vector<Variant> variants = {
      {"linear, |C|=10", 10, MakeLinearWeights(10)},
      {"linear, |C|=3", 3, MakeLinearWeights(3)},
      {"linear, |C|=25", 25, MakeLinearWeights(25)},
      {"exponential(0.5), |C|=10", 10, MakeExponentialWeights(10, 0.5)},
      {"step(30%), |C|=10", 10, MakeStepWeights(10, 0.3)},
  };

  TextTable table({"variant", "quality_early", "t(recall=0.7)_sec",
                   "final_recall"});
  double horizon = 0.0;
  for (const Variant& variant : variants) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    // The cost vector is auto-sized from the estimated total cost; override
    // only its length via an explicit uniform vector.
    ProgressiveEr probe(setup.blocking, setup.match, sn, setup.prob, options);
    const ProgressiveEr::Preprocessed pre =
        probe.Preprocess(setup.data.dataset);
    const double total = TotalEstimatedCost(pre.forests);
    options.cost_vector = MakeUniformCostVector(
        total, bench::MakeCluster(kMachines).reduce_slots(), variant.k);
    options.weights = variant.weights;
    const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                           options);
    const ErRunResult result = er.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time;
    table.AddRow({variant.name,
                  FormatDouble(bench::QualityOverHorizon(curve, horizon / 2.0),
                               3),
                  FormatDouble(curve.TimeToRecall(0.7), 0),
                  FormatDouble(curve.final_recall(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Microbenchmarks of the MapReduce runtime: shuffle + sort + group
// throughput at several task counts.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "mapreduce/job.h"

namespace progres {
namespace {

void BM_ShuffleThroughput(benchmark::State& state) {
  using Job = MapReduceJob<int64_t, int64_t, int64_t>;
  const int tasks = static_cast<int>(state.range(0));
  std::vector<int64_t> input;
  input.reserve(200000);
  for (int64_t i = 0; i < 200000; ++i) input.push_back(i * 2654435761 % 9973);

  ClusterConfig cluster;
  cluster.machines = tasks;
  cluster.map_slots_per_machine = 1;
  cluster.reduce_slots_per_machine = 1;
  for (auto _ : state) {
    Job job(tasks, tasks);
    const auto result = job.Run(
        input,
        [](const int64_t& record, Job::MapContext* ctx) {
          ctx->Emit(record % 1024, record);
        },
        [](const int64_t& key, std::vector<int64_t>* values,
           Job::ReduceContext* ctx) {
          int64_t sum = 0;
          for (int64_t v : *values) sum += v;
          ctx->Emit(key, sum);
        },
        cluster);
    benchmark::DoNotOptimize(result.outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_ShuffleThroughput)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace progres

BENCHMARK_MAIN();

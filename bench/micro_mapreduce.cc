// Microbenchmarks of the MapReduce runtime: shuffle + sort + group
// throughput at several task counts (google-benchmark mode), plus a
// "--json[=path]" mode that measures the same fixed workload on both
// execution backends and writes a BENCH_micro_mapreduce.json report for
// the CI regression gate (tools/compare_bench.py).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mapreduce/job.h"

namespace progres {
namespace {

void BM_ShuffleThroughput(benchmark::State& state) {
  using Job = MapReduceJob<int64_t, int64_t, int64_t>;
  const int tasks = static_cast<int>(state.range(0));
  std::vector<int64_t> input;
  input.reserve(200000);
  for (int64_t i = 0; i < 200000; ++i) input.push_back(i * 2654435761 % 9973);

  ClusterConfig cluster;
  cluster.machines = tasks;
  cluster.map_slots_per_machine = 1;
  cluster.reduce_slots_per_machine = 1;
  for (auto _ : state) {
    Job job(tasks, tasks);
    const auto result = job.Run(
        input,
        [](const int64_t& record, Job::MapContext* ctx) {
          ctx->Emit(record % 1024, record);
        },
        [](const int64_t& key, std::vector<int64_t>* values,
           Job::ReduceContext* ctx) {
          int64_t sum = 0;
          for (int64_t v : *values) sum += v;
          ctx->Emit(key, sum);
        },
        cluster);
    benchmark::DoNotOptimize(result.outputs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_ShuffleThroughput)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// ---- BENCH_micro_mapreduce.json ----

using JsonJob = MapReduceJob<int64_t, int64_t, int64_t>;

// The JSON-mode workload: 2M records shuffled into 16 map x 16 reduce
// tasks on a 4-machine cluster (8 slots per phase), so every measured
// thread count in {1, 4, 8} stays within the slot capacity and has more
// tasks than workers.
JsonJob::Result RunJsonWorkload(const std::vector<int64_t>& input,
                                ExecutionBackend backend, int threads) {
  ClusterConfig cluster;
  cluster.machines = 4;
  cluster.backend = backend;
  cluster.execution_threads = threads;
  JsonJob job(16, 16);
  return job.Run(
      input,
      [](const int64_t& record, JsonJob::MapContext* ctx) {
        ctx->Emit(record % 1024, record);
      },
      [](const int64_t& key, std::vector<int64_t>* values,
         JsonJob::ReduceContext* ctx) {
        int64_t sum = 0;
        for (int64_t v : *values) sum += v;
        ctx->Emit(key, sum);
      },
      cluster);
}

int JsonMain(const std::string& path) {
  // Larger than the google-benchmark workload: the regression gate needs
  // per-run wall times well above timer noise.
  constexpr int64_t kRecords = 2000000;
  std::vector<int64_t> input;
  input.reserve(kRecords);
  for (int64_t i = 0; i < kRecords; ++i) input.push_back(i * 2654435761 % 9973);
  const double pairs = static_cast<double>(input.size());

  struct Config {
    const char* label;
    ExecutionBackend backend;
    int threads;
  };
  const std::vector<Config> configs = {
      {"sim", ExecutionBackend::kSimulated, 0},
      {"t1", ExecutionBackend::kThreaded, 1},
      {"t4", ExecutionBackend::kThreaded, 4},
      {"t8", ExecutionBackend::kThreaded, 8},
  };

  bench::BenchReport report("micro_mapreduce");
  const JsonJob::Result reference =
      RunJsonWorkload(input, ExecutionBackend::kSimulated, 0);
  if (reference.failed) {
    std::fprintf(stderr, "reference run failed: %s\n",
                 reference.error.c_str());
    return 1;
  }
  // The simulated makespan and shuffle volume are results-clock facts,
  // identical for every backend — record them once, exactly.
  report.AddSim("sim_makespan_seconds", "sim_s", reference.timing.end);
  report.AddSim("shuffle_records", "records",
                static_cast<double>(
                    reference.counters.Get("mr.shuffle.records")));

  for (const Config& config : configs) {
    // Best of seven: the regression gate wants the build's capability;
    // taking the fastest rep sheds transient load on shared runners.
    JobWallTiming best;
    best.total_seconds = -1.0;
    for (int rep = 0; rep < 7; ++rep) {
      const JsonJob::Result result =
          RunJsonWorkload(input, config.backend, config.threads);
      if (result.failed) {
        std::fprintf(stderr, "%s run failed: %s\n", config.label,
                     result.error.c_str());
        return 1;
      }
      if (result.outputs != reference.outputs) {
        std::fprintf(stderr,
                     "%s run diverged from the simulated reference\n",
                     config.label);
        return 1;
      }
      if (best.total_seconds < 0.0 ||
          result.timing.wall.total_seconds < best.total_seconds) {
        best = result.timing.wall;
      }
    }
    const std::string label = config.label;
    // The serial backend's timings are reproducible enough to gate; the
    // threaded pool's depend on how many cores the host really has (an
    // oversubscribed 1-core runner swings them by tens of percent), so
    // they are recorded as ungated trend data.
    const bool gated = config.backend == ExecutionBackend::kSimulated;
    report.AddWall("pairs_per_sec_" + label, "pairs/s",
                   pairs / best.total_seconds, /*higher_is_better=*/true,
                   gated);
    report.AddWall("wall_map_seconds_" + label, "wall_s", best.map_seconds,
                   /*higher_is_better=*/false, gated);
    report.AddWall("wall_reduce_seconds_" + label, "wall_s",
                   best.reduce_seconds, /*higher_is_better=*/false, gated);
    report.AddWall("wall_total_seconds_" + label, "wall_s",
                   best.total_seconds, /*higher_is_better=*/false, gated);
  }

  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "micro_mapreduce",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

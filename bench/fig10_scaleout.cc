// Reproduces Figure 10: our approach vs Basic on the books workload (PSNM
// mechanism) while varying theta = entities / machines. The paper fixes the
// dataset (30M books) and uses 20, 10, and 5 machines; we do the same at a
// laptop-friendly scale.
//
// Expected shape (Sec. VI-B3): our approach wins everywhere; its advantage
// grows with theta; at the smallest theta Basic is competitive early because
// of our preprocessing (stats job + schedule generation) overhead.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/psnm.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 18000;

void Main() {
  const bench::BookSetup setup = bench::MakeBookSetup(kEntities);
  const PsnmMechanism psnm;
  const BlockingConfig basic_blocking = bench::BookMainBlocking();

  std::printf("=== Fig. 10: entities per machine (books, PSNM) ===\n");
  std::printf("books=%lld ground-truth pairs=%lld\n\n",
              static_cast<long long>(kEntities),
              static_cast<long long>(setup.data.truth.num_duplicate_pairs()));

  // sim_t(recall=0.6)_s is on the simulated clock; wall_s is the measured
  // run time of the whole driver — two different clocks, two columns.
  TextTable summary({"machines", "theta", "approach", "quality_early",
                     "sim_t(recall=0.6)_s", "final_recall", "wall_s"});
  for (int machines : {20, 10, 5}) {
    const ClusterConfig cluster = bench::MakeCluster(machines);
    std::vector<std::pair<std::string, RecallCurve>> curves;
    std::vector<double> wall_seconds;
    double horizon = 0.0;
    double ours_preprocessing = 0.0;

    ProgressiveErOptions options;
    options.cluster = cluster;
    const ProgressiveEr ours(setup.blocking, setup.match, psnm, setup.prob,
                             options);
    const ErRunResult ours_result = ours.Run(setup.data.dataset);
    ours_preprocessing = ours_result.preprocessing_end;
    horizon = std::max(horizon, ours_result.total_time);
    curves.emplace_back(
        "Our Approach",
        RecallCurve::FromEvents(ours_result.events, setup.data.truth));
    wall_seconds.push_back(ours_result.wall_seconds);

    for (double threshold : {0.0005, 0.005, 0.05}) {
      BasicErOptions basic_options;
      basic_options.cluster = cluster;
      basic_options.window = 15;
      basic_options.popcorn_threshold = threshold;
      const BasicEr basic(basic_blocking, setup.match, psnm, basic_options);
      const ErRunResult result = basic.Run(setup.data.dataset);
      horizon = std::max(horizon, result.total_time);
      curves.emplace_back(
          "Basic " + FormatDouble(threshold, 4),
          RecallCurve::FromEvents(result.events, setup.data.truth));
      wall_seconds.push_back(result.wall_seconds);
    }

    std::printf("--- mu = %d, theta = %lld (preprocessing ends at %.0f s) ---\n",
                machines, static_cast<long long>(kEntities / machines),
                ours_preprocessing);
    for (size_t i = 0; i < curves.size(); ++i) {
      const auto& [name, curve] = curves[i];
      std::printf("%s", FormatCurveSeries(name, curve, horizon, 12).c_str());
      summary.AddRow({std::to_string(machines),
                      std::to_string(kEntities / machines), name,
                      FormatDouble(
                          bench::QualityOverHorizon(curve, horizon / 2.0), 3),
                      FormatDouble(curve.TimeToRecall(0.6), 0),
                      FormatDouble(curve.final_recall(), 3),
                      FormatDouble(wall_seconds[i], 3)});
    }
    std::printf("\n");
  }
  std::printf("--- summary ---\n%s", summary.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

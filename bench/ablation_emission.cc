// Ablation: map-side emission strategy (footnote 5 of the paper). The naive
// implementation emits one key-value pair per (entity, block); the optimized
// one emits one per (entity, tree) and regroups on the reduce side. Shuffle
// volume drops by roughly the average scheduled tree depth while results are
// unchanged.
//
// "--json[=path]" writes a BENCH_ablation_emission.json report instead of
// the table: simulated-clock milestones (time-to-recall, makespan, shuffle
// volume) plus measured wall times, for the CI regression gate
// (tools/compare_bench.py).

#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

const char* EmissionLabel(MapEmission emission) {
  return emission == MapEmission::kPerBlock ? "perblock" : "pertree";
}

ErRunResult RunEmission(const bench::PublicationSetup& setup,
                        MapEmission emission) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  options.map_emission = emission;
  const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                         options);
  return er.Run(setup.data.dataset);
}

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);

  std::printf("=== Ablation: per-block vs per-tree map emission ===\n\n");
  // mr.shuffle.* are the runtime's own post-combine accounting at the
  // map/reduce boundary; map.emitted_pairs / shuffle.bytes are the driver's
  // map-side counters. With no combiner the record counts agree. The two
  // rightmost time columns are different clocks: sim_total_s is the
  // deterministic simulated makespan, wall_s the measured run time.
  TextTable table({"emission", "shuffled_pairs", "shuffled_bytes",
                   "mr.shuffle.records", "mr.shuffle.bytes", "comparisons",
                   "quality", "final_recall", "sim_total_s", "wall_s"});
  double horizon = 0.0;
  for (MapEmission emission :
       {MapEmission::kPerBlock, MapEmission::kPerTree}) {
    const ErRunResult result = RunEmission(setup, emission);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time * 1.5;
    table.AddRow({emission == MapEmission::kPerBlock ? "per-block (naive)"
                                                     : "per-tree (optimized)",
                  std::to_string(result.counters.Get("map.emitted_pairs")),
                  std::to_string(result.counters.Get("shuffle.bytes")),
                  std::to_string(result.counters.Get("mr.shuffle.records")),
                  std::to_string(result.counters.Get("mr.shuffle.bytes")),
                  std::to_string(result.comparisons),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3),
                  FormatDouble(result.total_time, 0),
                  FormatDouble(result.wall_seconds, 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

int JsonMain(const std::string& path) {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  bench::BenchReport report("ablation_emission");

  for (MapEmission emission :
       {MapEmission::kPerBlock, MapEmission::kPerTree}) {
    const ErRunResult result = RunEmission(setup, emission);
    if (result.failed) {
      std::fprintf(stderr, "%s run failed: %s\n", EmissionLabel(emission),
                   result.error.c_str());
      return 1;
    }
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    const std::string label = EmissionLabel(emission);
    report.AddSim(
        "shuffle_records_" + label, "records",
        static_cast<double>(result.counters.Get("mr.shuffle.records")));
    report.AddSim("comparisons_" + label, "pairs",
                  static_cast<double>(result.comparisons));
    report.AddSim("final_recall_" + label, "recall", curve.final_recall(),
                  /*higher_is_better=*/true);
    // Time-to-recall milestones, on the simulated clock (-1: never reached).
    for (double recall : {0.5, 0.8, 0.95}) {
      const double t = curve.TimeToRecall(recall);
      report.AddSim(
          "sim_t_recall" + std::to_string(static_cast<int>(recall * 100)) +
              "_" + label,
          "sim_s", std::isinf(t) ? -1.0 : t);
    }
    report.AddSim("sim_total_seconds_" + label, "sim_s", result.total_time);
    // Single-shot driver runs: too noisy on shared runners to gate, but
    // worth recording for trend inspection.
    report.AddWall("wall_total_seconds_" + label, "wall_s",
                   result.wall_seconds, /*higher_is_better=*/false,
                   /*gated=*/false);
    report.AddWall("pairs_per_sec_" + label, "pairs/s",
                   static_cast<double>(result.comparisons) /
                       result.wall_seconds,
                   /*higher_is_better=*/true, /*gated=*/false);
  }

  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_emission",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  progres::Main();
  return 0;
}

// Ablation: map-side emission strategy (footnote 5 of the paper). The naive
// implementation emits one key-value pair per (entity, block); the optimized
// one emits one per (entity, tree) and regroups on the reduce side. Shuffle
// volume drops by roughly the average scheduled tree depth while results are
// unchanged.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: per-block vs per-tree map emission ===\n\n");
  // mr.shuffle.* are the runtime's own post-combine accounting at the
  // map/reduce boundary; map.emitted_pairs / shuffle.bytes are the driver's
  // map-side counters. With no combiner the record counts agree.
  TextTable table({"emission", "shuffled_pairs", "shuffled_bytes",
                   "mr.shuffle.records", "mr.shuffle.bytes", "comparisons",
                   "quality", "final_recall"});
  double horizon = 0.0;
  for (MapEmission emission :
       {MapEmission::kPerBlock, MapEmission::kPerTree}) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    options.map_emission = emission;
    const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                           options);
    const ErRunResult result = er.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time * 1.5;
    table.AddRow({emission == MapEmission::kPerBlock ? "per-block (naive)"
                                                     : "per-tree (optimized)",
                  std::to_string(result.counters.Get("map.emitted_pairs")),
                  std::to_string(result.counters.Get("shuffle.bytes")),
                  std::to_string(result.counters.Get("mr.shuffle.records")),
                  std::to_string(result.counters.Get("mr.shuffle.bytes")),
                  std::to_string(result.comparisons),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Ablation: out-of-core scale. Runs the multi-pass MRSN resolver on the
// book workload at increasing entity counts under one fixed, deliberately
// tiny shuffle memory budget, showing that
//   1. the recall-vs-cost shape holds as the workload grows 20k -> 1M+
//      (recall stays flat, comparisons grow linearly in n for a fixed
//      window), and
//   2. the runtime crosses from all-in-memory into spilling sorted runs as
//      per-task map output outgrows the budget, without changing a single
//      resolved pair — the spill counters are the only difference.
//
// The workload is built with the streaming generator (StreamBooks), so
// datagen never holds a shuffled PendingEntity copy of the dataset; 1-30M
// entities stream straight into the Dataset.
//
// "--json[=path]" writes a BENCH_ablation_scale.json report at the two
// CI-sized scales; "--entities=N,M,..." overrides the scales in text mode
// (e.g. --entities=1000000 for the out-of-core acceptance run).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/mrsn_er.h"
#include "eval/report.h"

namespace progres {
namespace {

constexpr int kMachines = 10;
constexpr int kWindow = 4;

// The fixed budget: 512 KiB across the job, 16 KiB blocks. With 20 map
// tasks every task gets a ~26 KiB buffer — the book passes stay in memory
// at 20k entities (~10 KiB of map output per task) and must spill from
// ~100k entities up (~50 KiB per task and growing).
ShuffleBudget ScaleBudget() {
  ShuffleBudget budget;
  budget.max_bytes = 512 * 1024;
  budget.block_bytes = 16 * 1024;
  return budget;
}

// Book workload streamed straight into a dataset: no training sample and
// no Fisher-Yates pass over a pending copy, so setup memory is the dataset
// itself plus one in-flight entity.
struct ScaleWorkload {
  Dataset dataset;
  GroundTruth truth;
};

ScaleWorkload MakeWorkload(int64_t n) {
  ScaleWorkload workload;
  workload.dataset = Dataset(BookSchema());
  BookConfig config;
  config.num_entities = n;
  std::vector<int32_t> cluster_of;
  cluster_of.reserve(static_cast<size_t>(n));
  StreamBooks(config, [&](std::vector<std::string> attributes,
                          int32_t cluster) {
    workload.dataset.Add(std::move(attributes));
    cluster_of.push_back(cluster);
  });
  workload.truth = GroundTruth(std::move(cluster_of));
  return workload;
}

MatchFunction BookMatch() {
  return MatchFunction(
      {{kBookTitle, AttributeSimilarity::kEditDistance, 0.35, 0},
       {kBookAuthors, AttributeSimilarity::kEditDistance, 0.2, 0},
       {kBookPublisher, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookYear, AttributeSimilarity::kExact, 0.1, 0},
       {kBookIsbn, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookPages, AttributeSimilarity::kExact, 0.05, 0},
       {kBookLanguage, AttributeSimilarity::kExact, 0.05, 0},
       {kBookEdition, AttributeSimilarity::kExact, 0.05, 0}},
      0.75);
}

struct ScalePoint {
  int64_t entities = 0;
  double final_recall = 0.0;
  int64_t comparisons = 0;
  double sim_seconds = 0.0;
  int64_t spill_runs = 0;
  int64_t spill_records = 0;
  int64_t spill_bytes = 0;
  int64_t merge_passes = 0;
  double wall_seconds = 0.0;
  bool failed = false;
  std::string error;
};

ScalePoint RunAtScale(int64_t n) {
  ScalePoint point;
  point.entities = n;

  Stopwatch watch;
  const ScaleWorkload workload = MakeWorkload(n);

  MrsnOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  options.cluster.shuffle_budget = ScaleBudget();
  options.window = kWindow;
  const MrsnEr er(bench::BookMainBlocking(), BookMatch(),
                  std::move(options));
  const ErRunResult run = er.Run(workload.dataset);
  point.wall_seconds = watch.ElapsedSeconds();

  if (run.failed) {
    point.failed = true;
    point.error = run.error;
    return point;
  }
  const RecallCurve curve = RecallCurve::FromEvents(run.events,
                                                    workload.truth);
  point.final_recall = curve.final_recall();
  point.comparisons = run.comparisons;
  point.sim_seconds = run.total_time;
  point.spill_runs = run.counters.Get("mr.spill.runs");
  point.spill_records = run.counters.Get("mr.spill.records");
  point.spill_bytes = run.counters.Get("mr.spill.bytes");
  point.merge_passes = run.counters.Get("mr.spill.merge_passes");
  return point;
}

int TextMain(const std::vector<int64_t>& scales) {
  std::printf("=== Ablation: out-of-core scale (MRSN, window=%d, "
              "budget=%lld KiB) ===\n\n",
              kWindow,
              static_cast<long long>(ScaleBudget().max_bytes / 1024));

  TextTable table({"entities", "final_recall", "comparisons", "cmp/entity",
                   "sim_total_sec", "spill_runs", "spill_MB", "merges",
                   "wall_sec"});
  std::vector<ScalePoint> points;
  for (int64_t n : scales) {
    const ScalePoint point = RunAtScale(n);
    if (point.failed) {
      std::printf("run at n=%lld failed: %s\n",
                  static_cast<long long>(n), point.error.c_str());
      return 1;
    }
    table.AddRow({std::to_string(point.entities),
                  FormatDouble(point.final_recall, 4),
                  std::to_string(point.comparisons),
                  FormatDouble(static_cast<double>(point.comparisons) /
                                   static_cast<double>(point.entities),
                               2),
                  FormatDouble(point.sim_seconds, 0),
                  std::to_string(point.spill_runs),
                  FormatDouble(static_cast<double>(point.spill_bytes) /
                                   (1024.0 * 1024.0),
                               2),
                  std::to_string(point.merge_passes),
                  FormatDouble(point.wall_seconds, 1)});
    points.push_back(point);
  }
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\nthe fixed window keeps comparisons/entity flat and recall stable "
      "while the\nshuffle crosses from in-memory (spill_runs=0) into "
      "sorted on-disk runs under\nthe same %lld KiB budget.\n",
      static_cast<long long>(ScaleBudget().max_bytes / 1024));
  return 0;
}

int JsonMain(const std::string& path) {
  bench::BenchReport report("ablation_scale");
  for (const auto& [n, suffix] :
       std::vector<std::pair<int64_t, const char*>>{{20000, "20k"},
                                                    {100000, "100k"}}) {
    const ScalePoint point = RunAtScale(n);
    if (point.failed) {
      std::fprintf(stderr, "run at n=%lld failed: %s\n",
                   static_cast<long long>(n), point.error.c_str());
      return 1;
    }
    const std::string tag = std::string("_") + suffix;
    report.AddSim("final_recall" + tag, "recall", point.final_recall,
                  /*higher_is_better=*/true);
    report.AddSim("comparisons" + tag, "pairs",
                  static_cast<double>(point.comparisons));
    report.AddSim("sim_total_seconds" + tag, "sim_s", point.sim_seconds);
    report.AddSim("spill_runs" + tag, "runs",
                  static_cast<double>(point.spill_runs));
    report.AddSim("spill_records" + tag, "records",
                  static_cast<double>(point.spill_records));
    report.AddSim("spill_bytes" + tag, "bytes",
                  static_cast<double>(point.spill_bytes));
    report.AddSim("spill_merge_passes" + tag, "merges",
                  static_cast<double>(point.merge_passes));
    report.AddWall("wall_total_seconds" + tag, "wall_s", point.wall_seconds);
  }
  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

std::vector<int64_t> ParseScales(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) != 0) continue;
    std::vector<int64_t> scales;
    const std::string list = argv[i] + 11;
    size_t pos = 0;
    while (pos <= list.size()) {
      const size_t comma = std::min(list.find(',', pos), list.size());
      const std::string token = list.substr(pos, comma - pos);
      if (!token.empty()) scales.push_back(std::atoll(token.c_str()));
      pos = comma + 1;
    }
    if (!scales.empty()) return scales;
  }
  return {20000, 100000};
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_scale",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  return progres::TextMain(progres::ParseScales(argc, argv));
}

// Ablation: storage faults on the out-of-core data plane. The shuffle
// budget is capped at one byte so every map task spills sorted runs, then
// the storage fault plan injects the four disk fault families (transient
// EIO write errors, torn writes, bit-flip run corruption, ENOSPC on the
// primary spill dir). Retries, barrier-time CRC validation with map
// re-runs, and fallback-dir failover absorb all of them: the resolved
// pairs are identical across every variant, only the simulated timeline
// and the "mr.disk.*" counters move.
//
// "--json[=path]" writes a BENCH_ablation_diskfault.json report for the CI
// regression gate (tools/compare_bench.py): the injected-fault counters
// and the simulated makespan are pure functions of the fault seed, so they
// are gated exactly like golden numbers.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 6000;
constexpr int kMachines = 10;
constexpr uint64_t kFaultSeed = 20260808;

struct Variant {
  const char* label;
  double write_error_prob;
  double torn_prob;
  double corrupt_prob;
  double enospc_prob;
};

const std::vector<Variant>& Variants() {
  static const std::vector<Variant> variants = {
      {"clean", 0.0, 0.0, 0.0, 0.0},
      {"transient_eio", 0.05, 0.0, 0.0, 0.0},
      {"torn_corrupt", 0.0, 0.03, 0.03, 0.0},
      {"enospc_failover", 0.0, 0.0, 0.0, 0.5},
  };
  return variants;
}

std::filesystem::path SpillRoot() {
  return std::filesystem::temp_directory_path() / "progres_bench_diskfault";
}

// Both spill dirs, recreated empty so leftover-file checks are meaningful.
ShuffleBudget DiskBudget() {
  const std::filesystem::path root = SpillRoot();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root / "primary");
  std::filesystem::create_directories(root / "fallback");
  ShuffleBudget budget;
  budget.max_bytes = 1;  // force every map task through spill runs
  budget.block_bytes = 4096;
  budget.spill_dir = (root / "primary").string();
  budget.fallback_spill_dir = (root / "fallback").string();
  return budget;
}

bool SpillDirsEmpty() {
  const std::filesystem::path root = SpillRoot();
  for (const char* sub : {"primary", "fallback"}) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(root / sub, ec)) {
      (void)entry;
      return false;
    }
  }
  return true;
}

ErRunResult RunVariant(const bench::PublicationSetup& setup,
                       const Variant& v) {
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = bench::MakeCluster(kMachines);
  options.cluster.shuffle_budget = DiskBudget();
  options.cluster.fault.enabled =
      v.write_error_prob > 0.0 || v.torn_prob > 0.0 || v.corrupt_prob > 0.0 ||
      v.enospc_prob > 0.0;
  options.cluster.fault.seed = kFaultSeed;
  options.cluster.fault.spill_write_error_prob = v.write_error_prob;
  options.cluster.fault.spill_torn_write_prob = v.torn_prob;
  options.cluster.fault.spill_corrupt_prob = v.corrupt_prob;
  options.cluster.fault.spill_enospc_prob = v.enospc_prob;
  options.cluster.fault.spill_retry_backoff_seconds = 0.5;
  const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                         options);
  return er.Run(setup.data.dataset);
}

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);

  std::printf("=== Ablation: storage faults on the spill data plane ===\n\n");
  std::vector<ErRunResult> runs;
  bool dirs_clean = true;
  TextTable table({"variant", "spill_runs", "eio", "retries", "torn",
                   "corrupt_runs", "map_reruns", "enospc", "failovers",
                   "sim_total_s", "duplicates"});
  for (const Variant& v : Variants()) {
    const ErRunResult run = RunVariant(setup, v);
    if (run.failed) {
      std::printf("run failed: %s\n", run.error.c_str());
      return;
    }
    dirs_clean = dirs_clean && SpillDirsEmpty();
    table.AddRow({v.label,
                  std::to_string(run.counters.Get("mr.spill.runs")),
                  std::to_string(run.counters.Get("mr.disk.write_errors")),
                  std::to_string(run.counters.Get("mr.disk.retries")),
                  std::to_string(run.counters.Get("mr.disk.torn_writes")),
                  std::to_string(run.counters.Get("mr.disk.corrupt_runs")),
                  std::to_string(run.counters.Get("mr.disk.map_reruns")),
                  std::to_string(run.counters.Get("mr.disk.enospc")),
                  std::to_string(run.counters.Get("mr.disk.dir_failovers")),
                  FormatDouble(run.total_time, 0),
                  std::to_string(run.duplicate_count)});
    runs.push_back(run);
  }
  std::printf("%s", table.ToString().c_str());

  bool invariant_held = true;
  for (const ErRunResult& run : runs) {
    if (run.duplicates != runs.front().duplicates) invariant_held = false;
  }
  std::printf(
      "\nexactly-once invariant (identical resolved pairs across "
      "variants): %s\n",
      invariant_held ? "HELD" : "VIOLATED");
  std::printf("spill dirs empty after every run: %s\n",
              dirs_clean ? "HELD" : "VIOLATED");
  std::printf(
      "\nevery fault family is absorbed below the barrier: retries and "
      "failovers cost simulated backoff time, corrupt runs re-execute their "
      "map task, and the reduce side never sees a bad byte.\n");
  std::filesystem::remove_all(SpillRoot());
}

int JsonMain(const std::string& path) {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  bench::BenchReport report("ablation_diskfault");

  std::vector<ErRunResult> runs;
  for (const Variant& v : Variants()) {
    const ErRunResult run = RunVariant(setup, v);
    if (run.failed) {
      std::fprintf(stderr, "%s run failed: %s\n", v.label,
                   run.error.c_str());
      return 1;
    }
    const std::string label = v.label;
    // All injected-fault accounting is a pure function of the fault seed
    // and the (deterministic) spill-run structure, so every counter below
    // is a sim metric and gated exactly.
    report.AddSim("spill_runs_" + label, "runs",
                  static_cast<double>(run.counters.Get("mr.spill.runs")));
    report.AddSim(
        "disk_retries_" + label, "retries",
        static_cast<double>(run.counters.Get("mr.disk.retries")));
    report.AddSim(
        "corrupt_runs_" + label, "runs",
        static_cast<double>(run.counters.Get("mr.disk.corrupt_runs")));
    report.AddSim(
        "map_reruns_" + label, "tasks",
        static_cast<double>(run.counters.Get("mr.disk.map_reruns")));
    report.AddSim(
        "dir_failovers_" + label, "tasks",
        static_cast<double>(run.counters.Get("mr.disk.dir_failovers")));
    report.AddSim("sim_total_seconds_" + label, "sim_s", run.total_time);
    report.AddSim("duplicates_" + label, "pairs",
                  static_cast<double>(run.duplicate_count),
                  /*higher_is_better=*/true);
    report.AddWall("wall_total_seconds_" + label, "wall_s",
                   run.wall_seconds, /*higher_is_better=*/false,
                   /*gated=*/false);
    runs.push_back(run);
  }

  bool invariant_held = true;
  for (const ErRunResult& run : runs) {
    if (run.duplicates != runs.front().duplicates) invariant_held = false;
  }
  report.AddSim("exactly_once_held", "bool", invariant_held ? 1.0 : 0.0,
                /*higher_is_better=*/true);

  std::filesystem::remove_all(SpillRoot());
  if (!report.WriteJson(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  std::string json_path;
  if (progres::bench::ParseJsonMode(argc, argv, "ablation_diskfault",
                                    &json_path)) {
    return progres::JsonMain(json_path);
  }
  progres::Main();
  return 0;
}

// Ablation: cluster heterogeneity. The paper assumes homogeneous machines;
// this bench measures how the progressive schedule degrades when some
// machines run slower (the schedule is speed-oblivious, so slow machines
// stretch whatever was assigned to them) — and shows that the
// duplicate-aware prioritization still dominates Basic under the same
// conditions.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

std::vector<double> MakeSpeeds(int machines, int slow, double factor) {
  std::vector<double> speeds(static_cast<size_t>(machines), 1.0);
  for (int i = 0; i < slow && i < machines; ++i) {
    speeds[static_cast<size_t>(machines - 1 - i)] = factor;
  }
  return speeds;
}

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: heterogeneous cluster speeds ===\n\n");
  TextTable table({"slow_machines", "approach", "t(recall=0.6)_sec",
                   "total_time_sec", "final_recall"});
  for (int slow : {0, 2, 5}) {
    ClusterConfig cluster = bench::MakeCluster(kMachines);
    cluster.machine_speed = MakeSpeeds(kMachines, slow, 0.33);

    ProgressiveErOptions options;
    options.cluster = cluster;
    const ErRunResult ours =
        ProgressiveEr(setup.blocking, setup.match, sn, setup.prob, options)
            .Run(setup.data.dataset);
    const RecallCurve ours_curve =
        RecallCurve::FromEvents(ours.events, setup.data.truth);
    table.AddRow({std::to_string(slow), "Ours",
                  FormatDouble(ours_curve.TimeToRecall(0.6), 0),
                  FormatDouble(ours.total_time, 0),
                  FormatDouble(ours_curve.final_recall(), 3)});

    BasicErOptions basic_options;
    basic_options.cluster = cluster;
    const ErRunResult basic =
        BasicEr(bench::PublicationMainBlocking(), setup.match, sn,
                basic_options)
            .Run(setup.data.dataset);
    const RecallCurve basic_curve =
        RecallCurve::FromEvents(basic.events, setup.data.truth);
    const double t_basic = basic_curve.TimeToRecall(0.6);
    table.AddRow({std::to_string(slow), "Basic F",
                  t_basic < 1e17 ? FormatDouble(t_basic, 0) : "never",
                  FormatDouble(basic.total_time, 0),
                  FormatDouble(basic_curve.final_recall(), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

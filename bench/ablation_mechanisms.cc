// Ablation: the pluggable progressive mechanism M. The paper uses SN with
// the distance hint [5] for CiteSeerX and PSNM [6] for OL-Books, and notes
// the hierarchical partitioning hint [5] also qualifies. All three (plus the
// exhaustive resolver as an upper-bound on coverage) run here on the same
// workload and schedule.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/full_resolver.h"
#include "mechanism/hierarchy_hint.h"
#include "mechanism/psnm.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);

  std::printf("=== Ablation: progressive mechanism M ===\n\n");
  const SortedNeighborMechanism sn;
  const PsnmMechanism psnm;
  const HierarchyHintMechanism hierarchy;
  const FullResolverMechanism full;
  const ProgressiveMechanism* mechanisms[] = {&sn, &psnm, &hierarchy, &full};

  TextTable table({"mechanism", "comparisons", "quality", "final_recall",
                   "total_time_sec"});
  double horizon = 0.0;
  for (const ProgressiveMechanism* mechanism : mechanisms) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    const ProgressiveEr er(setup.blocking, setup.match, *mechanism,
                           setup.prob, options);
    const ErRunResult result = er.Run(setup.data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    if (horizon == 0.0) horizon = result.total_time * 1.5;
    table.AddRow({mechanism->name(), std::to_string(result.comparisons),
                  FormatDouble(bench::QualityOverHorizon(curve, horizon), 3),
                  FormatDouble(curve.final_recall(), 3),
                  FormatDouble(result.total_time, 0)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

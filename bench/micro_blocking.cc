// Microbenchmarks of the blocking substrate: forest construction, overlap
// statistics, estimation, and schedule generation throughput.

#include <benchmark/benchmark.h>

#include "blocking/forest.h"
#include "datagen/generators.h"
#include "estimate/annotated_forest.h"
#include "estimate/prob_model.h"
#include "schedule/schedule.h"

namespace progres {
namespace {

BlockingConfig PublicationBlocking() {
  return BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                         {"Y", kPubAbstract, {3, 5}, -1},
                         {"Z", kPubVenue, {3, 5}, -1}});
}

const LabeledDataset& SharedData(int64_t n) {
  static LabeledDataset* data = [] {
    PublicationConfig gen;
    gen.num_entities = 20000;
    gen.seed = 7;
    return new LabeledDataset(GeneratePublications(gen));
  }();
  (void)n;
  return *data;
}

void BM_BuildForests(benchmark::State& state) {
  const LabeledDataset& data = SharedData(state.range(0));
  const BlockingConfig config = PublicationBlocking();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildForests(data.dataset, config, /*keep_members=*/false));
  }
  state.SetItemsProcessed(state.iterations() * data.dataset.size());
}
BENCHMARK(BM_BuildForests)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_ComputeUncoveredPairs(benchmark::State& state) {
  const LabeledDataset& data = SharedData(state.range(0));
  const BlockingConfig config = PublicationBlocking();
  for (auto _ : state) {
    std::vector<Forest> forests =
        BuildForests(data.dataset, config, /*keep_members=*/false);
    ComputeUncoveredPairs(data.dataset, config, &forests);
    benchmark::DoNotOptimize(forests);
  }
  state.SetItemsProcessed(state.iterations() * data.dataset.size());
}
BENCHMARK(BM_ComputeUncoveredPairs)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_GenerateSchedule(benchmark::State& state) {
  const LabeledDataset& data = SharedData(state.range(0));
  const BlockingConfig config = PublicationBlocking();
  std::vector<Forest> raw =
      BuildForests(data.dataset, config, /*keep_members=*/false);
  ComputeUncoveredPairs(data.dataset, config, &raw);
  const ProbabilityModel prob =
      ProbabilityModel::Train(data.dataset, data.truth, config);
  const EstimateParams params;
  for (auto _ : state) {
    std::vector<AnnotatedForest> forests =
        AnnotateForests(raw, params, prob, data.dataset.size());
    ScheduleParams sp;
    sp.num_reduce_tasks = 20;
    benchmark::DoNotOptimize(GenerateSchedule(&forests, sp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateSchedule)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace progres

BENCHMARK_MAIN();

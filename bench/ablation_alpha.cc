// Ablation: the incremental output interval alpha (Sec. III-B). Results are
// published by merging completely written chunk files; a larger alpha delays
// visibility (lower quality) but writes fewer files.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/progressive_er.h"
#include "eval/report.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr int64_t kEntities = 16000;
constexpr int kMachines = 10;

void Main() {
  const bench::PublicationSetup setup =
      bench::MakePublicationSetup(kEntities);
  const SortedNeighborMechanism sn;

  std::printf("=== Ablation: incremental output interval alpha ===\n\n");
  TextTable table({"alpha_cost_units", "chunks", "quality_published",
                   "quality_instant"});
  double horizon = 0.0;
  for (double alpha : {500.0, 2000.0, 10000.0, 50000.0, 1e9}) {
    ProgressiveErOptions options;
    options.cluster = bench::MakeCluster(kMachines);
    options.alpha = alpha;
    const ProgressiveEr er(setup.blocking, setup.match, sn, setup.prob,
                           options);
    const ErRunResult result = er.Run(setup.data.dataset);
    if (horizon == 0.0) horizon = result.total_time * 1.5;
    const RecallCurve instant =
        RecallCurve::FromEvents(result.events, setup.data.truth);
    const RecallCurve published = RecallCurve::FromEvents(
        EventsFromChunks(result.chunks), setup.data.truth);
    table.AddRow({alpha >= 1e9 ? "inf" : FormatDouble(alpha, 0),
                  std::to_string(result.chunks.size()),
                  FormatDouble(bench::QualityOverHorizon(published, horizon), 3),
                  FormatDouble(bench::QualityOverHorizon(instant, horizon), 3)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace progres

int main() {
  progres::Main();
  return 0;
}

// Plugging a custom progressive mechanism M into the pipeline. The paper's
// approach is agnostic to M: anything that resolves a block's pairs
// most-promising-first behind the ProgressiveMechanism interface works. This
// example implements a "same sort key first" mechanism — resolve pairs with
// identical sort-attribute values before any others — and runs it next to
// the built-in Sorted Neighbor mechanism.
//
//   build/examples/custom_mechanism [num_entities]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"

namespace {

using namespace progres;

// Resolves exact sort-key ties first (cheap, high precision), then falls
// back to the usual rank-distance sweep for the remaining window pairs.
class TiesFirstMechanism : public ProgressiveMechanism {
 public:
  std::string name() const override { return "TiesFirst"; }

  ResolveOutcome Resolve(const ResolveRequest& request) const override {
    // Delegate bookkeeping to the SN mechanism twice: a window-1 "ties"
    // pass would not work (ties can sort apart only when equal), so order
    // the block ourselves and reuse SN for the second phase.
    const std::vector<const Entity*>& block = *request.block;
    ResolveOutcome total;

    // Phase 1: group identical sort values and resolve inside groups.
    std::vector<const Entity*> sorted = block;
    const int attr = request.sort_attribute;
    std::sort(sorted.begin(), sorted.end(),
              [attr](const Entity* a, const Entity* b) {
                const auto va = a->attribute(static_cast<size_t>(attr));
                const auto vb = b->attribute(static_cast<size_t>(attr));
                if (va != vb) return va < vb;
                return a->id < b->id;
              });
    size_t i = 0;
    while (i < sorted.size()) {
      size_t j = i;
      while (j < sorted.size() &&
             sorted[j]->attribute(static_cast<size_t>(attr)) ==
                 sorted[i]->attribute(static_cast<size_t>(attr))) {
        ++j;
      }
      if (j - i >= 2) {
        std::vector<const Entity*> group(sorted.begin() + static_cast<long>(i),
                                         sorted.begin() + static_cast<long>(j));
        ResolveRequest tie_request = request;
        tie_request.block = &group;
        const ResolveOutcome outcome = sn_.Resolve(tie_request);
        total.duplicates += outcome.duplicates;
        total.distinct += outcome.distinct;
        total.skipped += outcome.skipped;
        total.cost += outcome.cost;
        if (outcome.stopped_early) {
          total.stopped_early = true;
          return total;
        }
      }
      i = j;
    }

    // Phase 2: the regular sweep over the whole block. Pairs resolved in
    // phase 1 are skipped via the shared resolved set.
    const ResolveOutcome outcome = sn_.Resolve(request);
    total.duplicates += outcome.duplicates;
    total.distinct += outcome.distinct;
    total.skipped += outcome.skipped;
    total.cost += outcome.cost;
    total.stopped_early = outcome.stopped_early;
    return total;
  }

 private:
  SortedNeighborMechanism sn_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace progres;
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 8000;

  PublicationConfig gen;
  gen.num_entities = n;
  gen.seed = 12;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = 13;
  const LabeledDataset train = GeneratePublications(train_gen);

  const BlockingConfig blocking({{"X", kPubTitle, {2, 4, 8}, -1},
                                 {"Y", kPubAbstract, {3, 5}, -1},
                                 {"Z", kPubVenue, {3, 5}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);

  ProgressiveErOptions options;
  options.cluster.machines = 10;
  options.cluster.seconds_per_cost_unit = 0.02;

  const SortedNeighborMechanism sn;
  const TiesFirstMechanism ties_first;
  const ProgressiveMechanism* mechanisms[] = {&sn, &ties_first};
  for (const ProgressiveMechanism* mechanism : mechanisms) {
    const ProgressiveEr er(blocking, match, *mechanism, prob, options);
    const ErRunResult result = er.Run(data.dataset);
    const RecallCurve curve =
        RecallCurve::FromEvents(result.events, data.truth);
    std::printf("%-12s final recall %.3f after %.0f s (%lld comparisons)\n",
                mechanism->name().c_str(), curve.final_recall(),
                result.total_time,
                static_cast<long long>(result.comparisons));
  }
  return 0;
}

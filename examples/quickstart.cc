// Quickstart: resolve the paper's toy people dataset (Table I) end to end
// with the progressive approach, then print the duplicate pairs and the
// resulting entity clusters.
//
//   build/examples/quickstart

#include <cstdio>
#include <map>
#include <vector>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"
#include "model/union_find.h"

int main() {
  using namespace progres;

  // 1. The dataset: 9 people records, 6 real-world persons (Table I).
  const LabeledDataset toy = GeneratePeopleToy();
  std::printf("Input entities:\n");
  for (const Entity& e : toy.dataset.entities()) {
    std::printf("  e%d  %-16s %s\n", e.id + 1,
                std::string(e.attribute(0)).c_str(),
                std::string(e.attribute(1)).c_str());
  }

  // 2. Blocking functions: X = first two characters of the name (with a
  //    4-character sub-blocking function), Y = the state. X dominates Y.
  const BlockingConfig blocking({{"X", 0, {2, 4}, -1}, {"Y", 1, {2}, -1}});

  // 3. The resolve/match function: edit similarity of the name, exact state.
  const MatchFunction match(
      {{0, AttributeSimilarity::kEditDistance, 0.8, 0},
       {1, AttributeSimilarity::kExact, 0.2, 0}},
      0.75);

  // 4. The progressive mechanism M: Sorted Neighbor with the distance hint.
  const SortedNeighborMechanism sn;

  // 5. A probability model. Real deployments train on a labeled sample; the
  //    toy dataset trains on itself.
  const ProbabilityModel prob =
      ProbabilityModel::Train(toy.dataset, toy.truth, blocking);

  // 6. Run on a small simulated cluster.
  ProgressiveErOptions options;
  options.cluster.machines = 2;
  const ProgressiveEr er(blocking, match, sn, prob, options);
  const ErRunResult result = er.Run(toy.dataset);

  std::printf("\nDuplicate pairs found (%zu):\n", result.duplicates.size());
  for (PairKey pair : result.duplicates) {
    const auto [a, b] = PairKeyIds(pair);
    std::printf("  e%d <-> e%d\n", a + 1, b + 1);
  }

  // 7. Transitive closure into clusters.
  UnionFind clusters(toy.dataset.size());
  for (PairKey pair : result.duplicates) {
    const auto [a, b] = PairKeyIds(pair);
    clusters.Union(a, b);
  }
  std::map<int64_t, std::vector<EntityId>> members;
  for (EntityId id = 0; id < toy.dataset.size(); ++id) {
    members[clusters.Find(id)].push_back(id);
  }
  std::printf("\nClusters (%zu real-world objects):\n", members.size());
  for (const auto& [root, ids] : members) {
    (void)root;
    std::printf(" ");
    for (EntityId id : ids) std::printf(" e%d", id + 1);
    std::printf("\n");
  }

  const RecallCurve curve = RecallCurve::FromEvents(result.events, toy.truth);
  std::printf("\nRecall: %.2f (%lld of %lld true pairs)\n",
              curve.final_recall(),
              static_cast<long long>(
                  curve.final_recall() *
                  static_cast<double>(toy.truth.num_duplicate_pairs()) + 0.5),
              static_cast<long long>(toy.truth.num_duplicate_pairs()));
  return 0;
}

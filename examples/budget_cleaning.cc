// Budgeted cleaning: the cost-constrained enterprise scenario from the
// paper's introduction — a team that cannot afford to clean each dataset
// fully terminates the ER process once a satisfactory quality is reached.
// This example runs the progressive approach, then shows what terminating at
// several cost budgets would have delivered, and at which budget a target
// recall is first met.
//
//   build/examples/budget_cleaning [num_entities] [target_recall]

#include <cstdio>
#include <cstdlib>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"

int main(int argc, char** argv) {
  using namespace progres;
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 10000;
  const double target = argc > 2 ? std::atof(argv[2]) : 0.8;

  PublicationConfig gen;
  gen.num_entities = n;
  gen.seed = 5;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = 6;
  const LabeledDataset train = GeneratePublications(train_gen);

  const BlockingConfig blocking({{"X", kPubTitle, {2, 4, 8}, -1},
                                 {"Y", kPubAbstract, {3, 5}, -1},
                                 {"Z", kPubVenue, {3, 5}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  const SortedNeighborMechanism sn;
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);

  ProgressiveErOptions options;
  options.cluster.machines = 10;
  options.cluster.seconds_per_cost_unit = 0.02;
  const ProgressiveEr er(blocking, match, sn, prob, options);
  const ErRunResult result = er.Run(data.dataset);
  const RecallCurve curve = RecallCurve::FromEvents(result.events, data.truth);

  std::printf("Dataset: %lld publications; full run costs %.0f simulated "
              "seconds and reaches recall %.3f.\n\n",
              static_cast<long long>(n), result.total_time,
              curve.final_recall());

  std::printf("%-12s %-10s %-14s\n", "budget_%", "recall", "of_final_%");
  for (int pct : {10, 20, 30, 40, 50, 75, 100}) {
    const double budget = result.total_time * pct / 100.0;
    const double recall = curve.RecallAt(budget);
    std::printf("%-12d %-10.3f %-14.1f\n", pct, recall,
                100.0 * recall / curve.final_recall());
  }

  const double t_target = curve.TimeToRecall(target);
  if (t_target <= result.total_time) {
    std::printf("\nTarget recall %.2f reached after %.0f s = %.1f%% of the "
                "full-run cost; the remaining %.1f%% could be saved.\n",
                target, t_target, 100.0 * t_target / result.total_time,
                100.0 * (1.0 - t_target / result.total_time));
  } else {
    std::printf("\nTarget recall %.2f is beyond this run's final recall "
                "%.3f.\n", target, curve.final_recall());
  }
  return 0;
}

// Publications deduplication: the paper's CiteSeerX scenario at laptop
// scale. Resolves a synthetic publication dataset progressively and prints
// recall milestones against the Basic baseline, demonstrating the
// pay-as-you-go value of the approach: most duplicates arrive in the first
// fraction of the execution.
//
//   build/examples/publications_dedup [num_entities]

#include <cstdio>
#include <cstdlib>

#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/sorted_neighbor.h"

int main(int argc, char** argv) {
  using namespace progres;
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 10000;

  // Generate the workload plus a smaller labeled sample for training the
  // duplicate-probability model.
  PublicationConfig gen;
  gen.num_entities = n;
  gen.seed = 2017;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = 2018;
  const LabeledDataset train = GeneratePublications(train_gen);

  // Table II (CiteSeerX): title prefixes 2/4/8, abstract prefixes 3/5,
  // venue prefixes 3/5; X dominates Y dominates Z.
  const BlockingConfig blocking({{"X", kPubTitle, {2, 4, 8}, -1},
                                 {"Y", kPubAbstract, {3, 5}, -1},
                                 {"Z", kPubVenue, {3, 5}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
       {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
      0.75);
  const SortedNeighborMechanism sn;
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);

  ProgressiveErOptions options;
  options.cluster.machines = 10;
  options.cluster.seconds_per_cost_unit = 0.02;
  const ProgressiveEr ours(blocking, match, sn, prob, options);
  const ErRunResult ours_result = ours.Run(data.dataset);
  const RecallCurve ours_curve =
      RecallCurve::FromEvents(ours_result.events, data.truth);

  const BlockingConfig basic_blocking({{"X", kPubTitle, {2}, -1},
                                       {"Y", kPubAbstract, {3}, -1},
                                       {"Z", kPubVenue, {3}, -1}});
  BasicErOptions basic_options;
  basic_options.cluster.machines = 10;
  basic_options.cluster.seconds_per_cost_unit = 0.02;
  const BasicEr basic(basic_blocking, match, sn, basic_options);
  const ErRunResult basic_result = basic.Run(data.dataset);
  const RecallCurve basic_curve =
      RecallCurve::FromEvents(basic_result.events, data.truth);

  std::printf("Publications: %lld entities, %lld true duplicate pairs\n\n",
              static_cast<long long>(n),
              static_cast<long long>(data.truth.num_duplicate_pairs()));
  std::printf("%-10s %-22s %-22s\n", "recall", "progressive time (s)",
              "basic time (s)");
  for (double recall : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const double t_ours = ours_curve.TimeToRecall(recall);
    const double t_basic = basic_curve.TimeToRecall(recall);
    std::printf("%-10.1f %-22.0f %-22s\n", recall, t_ours,
                t_basic < 1e17 ? std::to_string((long long)t_basic).c_str()
                               : "never");
  }
  std::printf("\nFinal recall: progressive %.3f (%.0f s), basic %.3f (%.0f s)\n",
              ours_curve.final_recall(), ours_result.total_time,
              basic_curve.final_recall(), basic_result.total_time);
  std::printf("Comparisons:  progressive %lld, basic %lld\n",
              static_cast<long long>(ours_result.comparisons),
              static_cast<long long>(basic_result.comparisons));
  return 0;
}

// Books deduplication: the paper's OL-Books scenario — eight attributes,
// PSNM progressive mechanism, larger cluster. Shows incremental consumption
// of results: every alpha cost units each reduce task publishes a chunk, and
// this example polls the merged chunks at wall-clock checkpoints, exactly
// how a downstream analysis would consume a progressive ER run.
//
//   build/examples/books_dedup [num_entities]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "eval/recall_curve.h"
#include "mechanism/psnm.h"

int main(int argc, char** argv) {
  using namespace progres;
  const int64_t n = argc > 1 ? std::atoll(argv[1]) : 10000;

  BookConfig gen;
  gen.num_entities = n;
  const LabeledDataset data = GenerateBooks(gen);
  BookConfig train_gen;
  train_gen.num_entities = std::max<int64_t>(500, n / 5);
  train_gen.seed = gen.seed + 1;
  const LabeledDataset train = GenerateBooks(train_gen);

  const BlockingConfig blocking({{"X", kBookTitle, {3, 5, 8}, -1},
                                 {"Y", kBookAuthors, {3, 5}, -1},
                                 {"Z", kBookPublisher, {3, 5}, -1}});
  const MatchFunction match(
      {{kBookTitle, AttributeSimilarity::kEditDistance, 0.35, 0},
       {kBookAuthors, AttributeSimilarity::kEditDistance, 0.2, 0},
       {kBookPublisher, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookYear, AttributeSimilarity::kExact, 0.1, 0},
       {kBookIsbn, AttributeSimilarity::kEditDistance, 0.1, 0},
       {kBookPages, AttributeSimilarity::kExact, 0.05, 0},
       {kBookLanguage, AttributeSimilarity::kExact, 0.05, 0},
       {kBookEdition, AttributeSimilarity::kExact, 0.05, 0}},
      0.75);
  const PsnmMechanism psnm;
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);

  ProgressiveErOptions options;
  options.cluster.machines = 15;
  options.cluster.seconds_per_cost_unit = 0.02;
  options.alpha = 2000.0;  // publish a chunk every 2000 cost units
  const ProgressiveEr er(blocking, match, psnm, prob, options);
  const ErRunResult result = er.Run(data.dataset);

  std::printf("Books: %lld entities, %lld true duplicate pairs\n",
              static_cast<long long>(n),
              static_cast<long long>(data.truth.num_duplicate_pairs()));
  std::printf("Run: preprocessing %.0f s, total %.0f s, %zu result chunks\n\n",
              result.preprocessing_end, result.total_time,
              result.chunks.size());

  // Poll the published (chunk-merged) results at 10 checkpoints.
  std::printf("%-14s %-18s %-10s\n", "checkpoint_s", "published_pairs",
              "recall");
  const double n_pairs = static_cast<double>(data.truth.num_duplicate_pairs());
  for (int i = 1; i <= 10; ++i) {
    const double t = result.total_time * i / 10.0;
    std::unordered_set<PairKey> published;
    int64_t true_pairs = 0;
    for (const ResultChunk& chunk : result.chunks) {
      if (chunk.flush_time > t) continue;
      for (PairKey pair : chunk.pairs) {
        if (!published.insert(pair).second) continue;
        const auto [a, b] = PairKeyIds(pair);
        if (data.truth.IsDuplicate(a, b)) ++true_pairs;
      }
    }
    std::printf("%-14.0f %-18zu %-10.3f\n", t, published.size(),
                static_cast<double>(true_pairs) / n_pairs);
  }
  return 0;
}

#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against its committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--tolerance FRAC]

The report format (bench/bench_util.h, BenchReport) carries two metric
kinds, held to different standards:

  * "sim"  -- deterministic simulated-clock numbers. Reproducible
              bit-for-bit on any machine, so they are compared exactly
              (tiny relative epsilon for decimal round-tripping). Any
              drift means the schedule changed: regenerate the baseline
              deliberately, the way a golden file is regenerated.
  * "wall" -- real measured numbers (wall seconds, pairs per wall
              second). Machine-dependent, so each value is first
              normalized by its own file's calibration_ops_per_sec (a
              fixed scalar loop timed in the same process) to cancel
              machine speed: durations (lower-is-better) are MULTIPLIED
              by it (seconds x ops/s ~ machine-independent work units),
              rates (higher-is-better) are DIVIDED by it. Then the
              normalized value must not be worse than the baseline by
              more than --tolerance (default 0.15, the >15% regression
              gate). Improvements always pass.

Metrics with "gated": false (inherently noisy wall measurements, e.g. an
oversubscribed thread pool on a small runner) must still exist, and their
trend is printed, but they never fail the gate.

Exit status: 0 when every metric passes, 1 otherwise.
"""

import argparse
import json
import sys

SIM_EPSILON = 1e-9


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {report.get('schema')!r}")
    calibration = report.get("calibration_ops_per_sec", 0.0)
    if not calibration or calibration <= 0.0:
        sys.exit(f"{path}: missing or non-positive calibration_ops_per_sec")
    metrics = {}
    for m in report.get("metrics", []):
        name = m.get("name")
        if not name:
            sys.exit(f"{path}: metric entry without a \"name\": {m!r}")
        metrics[name] = m
    if not metrics:
        sys.exit(f"{path}: no metrics")
    return report, calibration, metrics


def malformed(metric):
    """Reason a metric entry cannot be compared, or None if it is fine.

    A hand-edited or truncated baseline can lack "kind" or "value"; the gate
    reports that as a per-metric failure instead of dying with a KeyError,
    so the rest of the report still prints.
    """
    if metric.get("kind") not in ("sim", "wall"):
        return f"bad kind {metric.get('kind')!r}"
    if not isinstance(metric.get("value"), (int, float)) or isinstance(
            metric.get("value"), bool):
        return f"bad value {metric.get('value')!r}"
    return None


def main():
    parser = argparse.ArgumentParser(
        description="BENCH_*.json regression gate")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional wall-metric regression "
                             "after calibration normalization "
                             "(default: 0.15)")
    args = parser.parse_args()

    base_report, base_cal, base_metrics = load(args.baseline)
    cur_report, cur_cal, cur_metrics = load(args.current)
    if base_report["bench"] != cur_report["bench"]:
        sys.exit(f"bench mismatch: baseline is {base_report['bench']!r}, "
                 f"current is {cur_report['bench']!r}")

    print(f"bench: {base_report['bench']}")
    print(f"calibration ops/s: baseline {base_cal:.3g}, "
          f"current {cur_cal:.3g} (x{cur_cal / base_cal:.2f})")
    header = (f"{'metric':44s} {'kind':5s} {'baseline':>14s} "
              f"{'current':>14s} {'delta':>9s}  status")
    print(header)
    print("-" * len(header))

    failures = 0
    for name, base in sorted(base_metrics.items()):
        cur = cur_metrics.get(name)
        broken = malformed(base)
        if broken:
            print(f"{name:44s} {'?':5s} {'-':>14s} {'-':>14s} {'-':>9s}  "
                  f"FAIL (baseline metric malformed: {broken})")
            failures += 1
            continue
        if cur is not None and malformed(cur):
            print(f"{name:44s} {base['kind']:5s} {base['value']:14.6g} "
                  f"{'-':>14s} {'-':>9s}  FAIL (current metric malformed: "
                  f"{malformed(cur)})")
            failures += 1
            continue
        if cur is None:
            print(f"{name:44s} {base['kind']:5s} {base['value']:14.6g} "
                  f"{'MISSING':>14s} {'-':>9s}  FAIL (metric disappeared)")
            failures += 1
            continue
        if cur["kind"] != base["kind"]:
            print(f"{name:44s} {base['kind']:5s} {base['value']:14.6g} "
                  f"{cur['value']:14.6g} {'-':>9s}  FAIL (kind changed to "
                  f"{cur['kind']!r})")
            failures += 1
            continue

        gated = base.get("gated", True)
        if base["kind"] == "sim":
            scale = max(abs(base["value"]), abs(cur["value"]), 1.0)
            drift = abs(cur["value"] - base["value"]) / scale
            ok = drift <= SIM_EPSILON
            status = "ok" if ok else "FAIL (sim drift: regenerate baseline)"
            delta = f"{drift:9.2e}"
        else:  # wall
            # A k-times-slower machine scales durations by k and the
            # calibration ops/s by 1/k: multiplying cancels the machine for
            # lower-is-better times, dividing cancels it for
            # higher-is-better rates. (Dividing a duration would square
            # the machine difference instead of cancelling it.)
            if base.get("higher_is_better"):
                base_norm = base["value"] / base_cal
                cur_norm = cur["value"] / cur_cal
            else:
                base_norm = base["value"] * base_cal
                cur_norm = cur["value"] * cur_cal
            if base_norm <= 0.0 or cur_norm <= 0.0:
                if gated:
                    status = "FAIL (non-positive wall value)"
                    failures += 1
                else:
                    status = "info (not gated)"
                print(f"{name:44s} {base['kind']:5s} {base['value']:14.6g} "
                      f"{cur['value']:14.6g} {'-':>9s}  {status}")
                continue
            if base.get("higher_is_better"):
                change = cur_norm / base_norm - 1.0  # <0 means worse
            else:
                change = base_norm / cur_norm - 1.0  # <0 means worse
            ok = change >= -args.tolerance
            status = "ok" if ok else (
                f"FAIL ({-change:.0%} regression > "
                f"{args.tolerance:.0%} tolerance)")
            delta = f"{change:+8.1%}"

        if not gated and not ok:
            ok = True
            status = "info (not gated)"
        print(f"{name:44s} {base['kind']:5s} {base['value']:14.6g} "
              f"{cur['value']:14.6g} {delta:>9s}  {status}")
        if not ok:
            failures += 1

    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(f"{name:44s} {cur_metrics[name]['kind']:5s} {'-':>14s} "
              f"{cur_metrics[name]['value']:14.6g} {'-':>9s}  "
              f"warn (new metric, not in baseline)")

    if failures:
        print(f"\n{failures} metric(s) failed")
        return 1
    print("\nall metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

# Drives progres_cli through the full pipeline and fails on any error.
file(MAKE_DIRECTORY ${WORK})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "progres_cli ${ARGN} failed (${code}): ${out}${err}")
  endif()
  message(STATUS "${out}")
endfunction()

run_cli(generate --kind=publications --entities=2000 --seed=7
        --out=${WORK}/data.tsv --truth=${WORK}/truth.tsv)
run_cli(generate --kind=publications --entities=500 --seed=8
        --out=${WORK}/train.tsv --truth=${WORK}/train_truth.tsv)
run_cli(stats --data=${WORK}/data.tsv --out=${WORK}/forests.tsv)
run_cli(resolve --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4
        --out=${WORK}/pairs.tsv)
run_cli(resolve --data=${WORK}/data.tsv --basic --machines=4
        --out=${WORK}/pairs_basic.tsv)
run_cli(explain --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4 --blocks=3)
run_cli(evaluate --pairs=${WORK}/pairs.tsv --truth=${WORK}/truth.tsv)

# Tracing is observational: a traced resolve writes both exports and the
# resolved pairs stay byte-identical to the untraced run.
run_cli(resolve --data=${WORK}/data.tsv --basic --machines=4
        --out=${WORK}/pairs_traced.tsv --trace-out=${WORK}/trace.json
        --trace-timeline=${WORK}/timeline.txt)
foreach(artifact trace.json timeline.txt)
  if(NOT EXISTS ${WORK}/${artifact})
    message(FATAL_ERROR "traced resolve did not write ${artifact}")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/pairs_basic.tsv ${WORK}/pairs_traced.tsv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "tracing changed the resolved pairs")
endif()

# An unwritable --trace-out must fail fast with a labelled error.
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv --basic
                --machines=4 --out=${WORK}/pairs_reject.tsv
                --trace-out=${WORK}/missing_dir/trace.json
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "unwritable --trace-out was accepted")
endif()
if(NOT err MATCHES "invalid trace config")
  message(FATAL_ERROR "unwritable --trace-out error not labelled: ${err}")
endif()
message(STATUS "unwritable --trace-out rejected: ${err}")

# Drives progres_cli through the full pipeline and fails on any error.
file(MAKE_DIRECTORY ${WORK})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "progres_cli ${ARGN} failed (${code}): ${out}${err}")
  endif()
  message(STATUS "${out}")
endfunction()

run_cli(generate --kind=publications --entities=2000 --seed=7
        --out=${WORK}/data.tsv --truth=${WORK}/truth.tsv)
run_cli(generate --kind=publications --entities=500 --seed=8
        --out=${WORK}/train.tsv --truth=${WORK}/train_truth.tsv)
run_cli(stats --data=${WORK}/data.tsv --out=${WORK}/forests.tsv)
run_cli(resolve --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4
        --out=${WORK}/pairs.tsv)
run_cli(resolve --data=${WORK}/data.tsv --basic --machines=4
        --out=${WORK}/pairs_basic.tsv)
run_cli(explain --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4 --blocks=3)
run_cli(evaluate --pairs=${WORK}/pairs.tsv --truth=${WORK}/truth.tsv)

# Drives progres_cli through the full pipeline and fails on any error.
file(MAKE_DIRECTORY ${WORK})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "progres_cli ${ARGN} failed (${code}): ${out}${err}")
  endif()
  message(STATUS "${out}")
endfunction()

run_cli(generate --kind=publications --entities=2000 --seed=7
        --out=${WORK}/data.tsv --truth=${WORK}/truth.tsv)
run_cli(generate --kind=publications --entities=500 --seed=8
        --out=${WORK}/train.tsv --truth=${WORK}/train_truth.tsv)
run_cli(stats --data=${WORK}/data.tsv --out=${WORK}/forests.tsv)
run_cli(resolve --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4
        --out=${WORK}/pairs.tsv)
run_cli(resolve --data=${WORK}/data.tsv --basic --machines=4
        --out=${WORK}/pairs_basic.tsv)
run_cli(explain --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4 --blocks=3)
run_cli(evaluate --pairs=${WORK}/pairs.tsv --truth=${WORK}/truth.tsv)

# Tracing is observational: a traced resolve writes both exports and the
# resolved pairs stay byte-identical to the untraced run.
run_cli(resolve --data=${WORK}/data.tsv --basic --machines=4
        --out=${WORK}/pairs_traced.tsv --trace-out=${WORK}/trace.json
        --trace-timeline=${WORK}/timeline.txt)
foreach(artifact trace.json timeline.txt)
  if(NOT EXISTS ${WORK}/${artifact})
    message(FATAL_ERROR "traced resolve did not write ${artifact}")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/pairs_basic.tsv ${WORK}/pairs_traced.tsv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "tracing changed the resolved pairs")
endif()

# An unwritable --trace-out must fail fast with a labelled error.
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv --basic
                --machines=4 --out=${WORK}/pairs_reject.tsv
                --trace-out=${WORK}/missing_dir/trace.json
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "unwritable --trace-out was accepted")
endif()
if(NOT err MATCHES "invalid trace config")
  message(FATAL_ERROR "unwritable --trace-out error not labelled: ${err}")
endif()
message(STATUS "unwritable --trace-out rejected: ${err}")

# An unwritable --spill-dir must be rejected up front, not at the first
# spill of a long run: point it at a regular file.
file(WRITE ${WORK}/spill_blocker "x")
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv --basic
                --machines=4 --out=${WORK}/pairs_reject.tsv
                --spill-dir=${WORK}/spill_blocker
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "unwritable --spill-dir was accepted")
endif()
if(NOT err MATCHES "invalid spill config")
  message(FATAL_ERROR "unwritable --spill-dir error not labelled: ${err}")
endif()
message(STATUS "unwritable --spill-dir rejected: ${err}")

# --resume without --checkpoint-dir is a config error.
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv
                --train=${WORK}/train.tsv --train-truth=${WORK}/train_truth.tsv
                --machines=4 --out=${WORK}/pairs_reject.tsv --resume
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "--resume without --checkpoint-dir was accepted")
endif()
if(NOT err MATCHES "invalid checkpoint config")
  message(FATAL_ERROR "--resume error not labelled: ${err}")
endif()
message(STATUS "--resume without --checkpoint-dir rejected: ${err}")

# Disk-fault smoke: forced spilling plus injected storage faults (transient
# write errors, torn writes, run corruption, ENOSPC onto a fallback dir)
# must leave the resolved pairs byte-identical to the fault-free run.
file(MAKE_DIRECTORY ${WORK}/spill_fallback)
execute_process(COMMAND ${CMAKE_COMMAND} -E env PROGRES_FORCE_SPILL=1
                ${CLI} resolve --data=${WORK}/data.tsv
                --train=${WORK}/train.tsv --train-truth=${WORK}/train_truth.tsv
                --machines=4 --out=${WORK}/pairs_diskfault.tsv
                --spill-fault-prob=0.05 --spill-enospc-prob=0.1
                --fallback-spill-dir=${WORK}/spill_fallback
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "disk-faulted resolve failed (${code}): ${out}${err}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/pairs.tsv ${WORK}/pairs_diskfault.tsv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "disk faults changed the resolved pairs")
endif()
message(STATUS "disk-faulted resolve is byte-identical")

# Cross-process restart: the crash hook kills the process (exit 17) after
# the first persisted checkpoint; the --resume rerun restores the dead
# process's snapshots and must resolve the exact same pairs as an
# uninterrupted run with the same flags.
run_cli(resolve --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4 --alpha=200
        --out=${WORK}/pairs_alpha.tsv)
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv
                --train=${WORK}/train.tsv --train-truth=${WORK}/train_truth.tsv
                --machines=4 --alpha=200 --out=${WORK}/pairs_crashed.tsv
                --checkpoint-dir=${WORK}/ckpt --crash-after-checkpoints=1
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 17)
  message(FATAL_ERROR
          "crash hook did not kill the process (exit ${code}): ${out}${err}")
endif()
file(GLOB leftover_ckpts ${WORK}/ckpt/*.ckpt)
if(NOT leftover_ckpts)
  message(FATAL_ERROR "killed process left no persisted checkpoints")
endif()
run_cli(resolve --data=${WORK}/data.tsv --train=${WORK}/train.tsv
        --train-truth=${WORK}/train_truth.tsv --machines=4 --alpha=200
        --out=${WORK}/pairs_resumed.tsv
        --checkpoint-dir=${WORK}/ckpt --resume)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/pairs_alpha.tsv ${WORK}/pairs_resumed.tsv
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "resumed run changed the resolved pairs")
endif()
file(GLOB leftover_ckpts ${WORK}/ckpt/*.ckpt)
if(leftover_ckpts)
  message(FATAL_ERROR "finished resume left checkpoints: ${leftover_ckpts}")
endif()
message(STATUS "crash + --resume round trip is byte-identical")

# Exit-code taxonomy for job supervision. A missed deadline without
# --allow-degraded is a hard failure: exit 1 with a labelled error. The
# pairs_alpha run above finishes near 199 simulated seconds, so a 100 s
# deadline always lands mid-run.
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv
                --train=${WORK}/train.tsv --train-truth=${WORK}/train_truth.tsv
                --machines=4 --alpha=200 --deadline=100
                --out=${WORK}/pairs_reject.tsv
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 1)
  message(FATAL_ERROR
          "hard deadline miss should exit 1, got ${code}: ${out}${err}")
endif()
if(NOT err MATCHES "job deadline exceeded")
  message(FATAL_ERROR "hard deadline miss not labelled: ${err}")
endif()
message(STATUS "hard deadline miss rejected: ${err}")

# With --allow-degraded the same deadline is a degraded success: exit 2,
# a completeness report on stdout, and a written prefix of the full run's
# pairs (every degraded pair appears in pairs_alpha.tsv).
execute_process(COMMAND ${CLI} resolve --data=${WORK}/data.tsv
                --train=${WORK}/train.tsv --train-truth=${WORK}/train_truth.tsv
                --machines=4 --alpha=200 --deadline=100 --allow-degraded
                --out=${WORK}/pairs_degraded.tsv
                RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 2)
  message(FATAL_ERROR
          "degraded resolve should exit 2, got ${code}: ${out}${err}")
endif()
if(NOT out MATCHES "completeness: degraded")
  message(FATAL_ERROR "degraded resolve printed no completeness report: ${out}")
endif()
if(NOT EXISTS ${WORK}/pairs_degraded.tsv)
  message(FATAL_ERROR "degraded resolve wrote no pairs file")
endif()
file(STRINGS ${WORK}/pairs_degraded.tsv degraded_pairs)
file(STRINGS ${WORK}/pairs_alpha.tsv full_pairs)
list(LENGTH degraded_pairs num_degraded)
list(LENGTH full_pairs num_full)
if(num_degraded EQUAL 0 OR NOT num_degraded LESS num_full)
  message(FATAL_ERROR "degraded run should write a non-empty strict subset "
          "of the full pairs (${num_degraded} vs ${num_full})")
endif()
foreach(pair ${degraded_pairs})
  list(FIND full_pairs "${pair}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "degraded pair not in the full run: ${pair}")
  endif()
endforeach()
message(STATUS "degraded resolve: exit 2, ${num_degraded}/${num_full} pairs")

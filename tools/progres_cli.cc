// progres_cli — command-line front end to the library. Lets a user run the
// whole pipeline on TSV files without writing C++:
//
//   progres_cli generate --kind=publications --entities=20000
//       --out=data.tsv --truth=truth.tsv [--seed=42]
//   progres_cli stats --data=data.tsv --out=forests.tsv
//   progres_cli resolve --data=data.tsv --train=train.tsv
//       --train-truth=train_truth.tsv --machines=10 --out=pairs.tsv
//       [--basic] [--budget=50000]
//       [--scheduler=ours|nosplit|lpt|blocksplit|pairrange]
//       [--backend=simulated|threaded] [--threads=N]
//       [--shuffle-max-mem=256] [--spill-dir=/tmp/spills]
//       [--fallback-spill-dir=/mnt/spare]
//       [--fault-prob=0.1] [--fault-seed=1] [--max-attempts=4]
//       [--hang-prob=0.05] [--task-timeout=600]
//       [--shuffle-corrupt-prob=0.01] [--poison-records=3,17,90]
//       [--skip-bad-records] [--checkpoint-recovery]
//       [--spill-fault-prob=0.01] [--spill-enospc-prob=0.5]
//       [--checkpoint-dir=/tmp/ckpt] [--resume]
//       [--crash-after-checkpoints=N]
//       [--deadline=120] [--wall-deadline=30] [--allow-degraded]
//       [--fault-budget=8]
//       [--trace-out=trace.json] [--trace-timeline=timeline.txt]
//   progres_cli explain --data=data.tsv --train=train.tsv
//       --train-truth=train_truth.tsv [--machines=10] [--blocks=5]
//   progres_cli evaluate --pairs=pairs.tsv --truth=truth.tsv
// (flags are one logical command line; wrapped here for width)
//
// The built-in blocking/match configurations follow the bench setup for the
// two synthetic workloads (publications: title/abstract/venue; books: eight
// attributes). Datasets are TSV files whose header row names the schema.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "blocking/forest_io.h"
#include "common/tsv.h"
#include "core/basic_er.h"
#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "estimate/prob_model.h"
#include "eval/clustering.h"
#include "eval/recall_curve.h"
#include "mapreduce/trace.h"
#include "mechanism/sorted_neighbor.h"
#include "schedule/schedule.h"

namespace progres {
namespace {

// ---------------------------------------------------------------- flags

// Parses --key=value arguments into a map; positional args are rejected.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "true";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string GetFlag(const std::map<std::string, std::string>& flags,
                    const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

std::string RequireFlag(const std::map<std::string, std::string>& flags,
                        const std::string& name) {
  const auto it = flags.find(name);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
    std::exit(2);
  }
  return it->second;
}

// ---------------------------------------------------------------- config

// Built-in blocking + match configuration keyed by the dataset schema.
struct PipelineConfig {
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
};

bool ConfigForSchema(const Dataset& dataset, PipelineConfig* out) {
  if (dataset.AttributeIndex("abstract") >= 0) {  // publications
    out->blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                                    {"Y", kPubAbstract, {3, 5}, -1},
                                    {"Z", kPubVenue, {3, 5}, -1}});
    out->match = MatchFunction(
        {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
         {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
         {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
        0.75);
    return true;
  }
  if (dataset.AttributeIndex("isbn") >= 0) {  // books
    out->blocking = BlockingConfig({{"X", kBookTitle, {3, 5, 8}, -1},
                                    {"Y", kBookAuthors, {3, 5}, -1},
                                    {"Z", kBookPublisher, {3, 5}, -1}});
    out->match = MatchFunction(
        {{kBookTitle, AttributeSimilarity::kEditDistance, 0.35, 0},
         {kBookAuthors, AttributeSimilarity::kEditDistance, 0.2, 0},
         {kBookPublisher, AttributeSimilarity::kEditDistance, 0.1, 0},
         {kBookYear, AttributeSimilarity::kExact, 0.1, 0},
         {kBookIsbn, AttributeSimilarity::kEditDistance, 0.1, 0},
         {kBookPages, AttributeSimilarity::kExact, 0.05, 0},
         {kBookLanguage, AttributeSimilarity::kExact, 0.05, 0},
         {kBookEdition, AttributeSimilarity::kExact, 0.05, 0}},
        0.75);
    return true;
  }
  return false;
}

// Fails fast on an unwritable trace destination (missing directory, no
// permission) instead of discovering it after a long resolve run. The probe
// leaves an empty file behind, which the real export then overwrites.
bool ProbeWritable(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return static_cast<bool>(out);
}

// Same fail-fast probe for a directory (spill or checkpoint dir): creates
// and removes a probe file, so a missing directory, a plain file passed as
// one, or a permission problem surfaces before the run instead of at the
// first spill or checkpoint save.
bool ProbeWritableDir(const std::string& dir) {
  const std::string probe = dir + "/.progres-probe";
  std::ofstream out(probe, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.close();
  std::remove(probe.c_str());
  return true;
}

// Creates the directory if missing (mkdir -p), then probes it: a fresh
// --checkpoint-dir path is a request, not an error.
bool EnsureWritableDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return ProbeWritableDir(dir);
}

bool SavePairs(const std::string& path, const std::vector<PairKey>& pairs) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(pairs.size());
  for (PairKey pair : pairs) {
    const auto [a, b] = PairKeyIds(pair);
    rows.push_back({std::to_string(a), std::to_string(b)});
  }
  return WriteTsv(path, rows);
}

bool LoadPairs(const std::string& path, std::vector<PairKey>* pairs) {
  std::vector<std::vector<std::string>> rows;
  if (!ReadTsv(path, &rows)) return false;
  pairs->clear();
  for (const auto& row : rows) {
    if (row.size() != 2) return false;
    pairs->push_back(MakePairKey(std::stoi(row[0]), std::stoi(row[1])));
  }
  return true;
}

// ---------------------------------------------------------------- commands

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string kind = GetFlag(flags, "kind", "publications");
  const int64_t entities = std::atoll(GetFlag(flags, "entities", "10000").c_str());
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(GetFlag(flags, "seed", "42").c_str()));
  LabeledDataset data;
  if (kind == "publications") {
    PublicationConfig config;
    config.num_entities = entities;
    config.seed = seed;
    data = GeneratePublications(config);
  } else if (kind == "books") {
    BookConfig config;
    config.num_entities = entities;
    config.seed = seed;
    data = GenerateBooks(config);
  } else if (kind == "people") {
    data = GeneratePeopleToy();
  } else {
    std::fprintf(stderr, "unknown --kind=%s\n", kind.c_str());
    return 2;
  }
  if (!data.dataset.SaveTsv(RequireFlag(flags, "out"))) {
    std::fprintf(stderr, "failed to write dataset\n");
    return 1;
  }
  if (flags.count("truth") && !data.truth.SaveTsv(flags.at("truth"))) {
    std::fprintf(stderr, "failed to write ground truth\n");
    return 1;
  }
  std::printf("wrote %lld entities (%lld duplicate pairs)\n",
              static_cast<long long>(data.dataset.size()),
              static_cast<long long>(data.truth.num_duplicate_pairs()));
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  Dataset dataset;
  if (!Dataset::LoadTsv(RequireFlag(flags, "data"), &dataset)) {
    std::fprintf(stderr, "failed to read --data\n");
    return 1;
  }
  PipelineConfig config;
  if (!ConfigForSchema(dataset, &config)) {
    std::fprintf(stderr, "unrecognized schema\n");
    return 1;
  }
  std::vector<Forest> forests =
      BuildForests(dataset, config.blocking, /*keep_members=*/false);
  ComputeUncoveredPairs(dataset, config.blocking, &forests);
  if (!SaveForests(RequireFlag(flags, "out"), forests)) {
    std::fprintf(stderr, "failed to write forests\n");
    return 1;
  }
  int64_t blocks = 0;
  for (const Forest& forest : forests) {
    blocks += static_cast<int64_t>(forest.nodes.size());
  }
  std::printf("wrote statistics for %lld blocks across %zu families\n",
              static_cast<long long>(blocks), forests.size());
  return 0;
}

int CmdResolve(const std::map<std::string, std::string>& flags) {
  Dataset dataset;
  if (!Dataset::LoadTsv(RequireFlag(flags, "data"), &dataset)) {
    std::fprintf(stderr, "failed to read --data\n");
    return 1;
  }
  PipelineConfig config;
  if (!ConfigForSchema(dataset, &config)) {
    std::fprintf(stderr, "unrecognized schema\n");
    return 1;
  }
  ClusterConfig cluster;
  cluster.machines = std::atoi(GetFlag(flags, "machines", "10").c_str());
  cluster.seconds_per_cost_unit = 0.02;
  const std::string backend_name = GetFlag(flags, "backend", "simulated");
  if (!ParseExecutionBackend(backend_name, &cluster.backend)) {
    std::fprintf(stderr,
                 "invalid cluster config: backend must be \"simulated\" or "
                 "\"threaded\" (got %s)\n",
                 backend_name.c_str());
    return 1;
  }
  if (flags.count("threads")) {
    cluster.execution_threads = std::atoi(flags.at("threads").c_str());
  } else if (cluster.backend == ExecutionBackend::kThreaded) {
    // Default the threaded backend to the hardware, capped at the slot
    // capacity ValidateClusterConfig enforces.
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    cluster.execution_threads = std::max(
        1, std::min(hw, std::max(cluster.map_slots(),
                                 cluster.reduce_slots())));
  }
  // Shuffle memory budget: --shuffle-max-mem=MB caps the in-memory map
  // output per job; overflow spills to sorted runs under --spill-dir (or
  // the system temp directory). 0 or absent = unbounded, never spill.
  if (flags.count("shuffle-max-mem")) {
    const long long mb = std::atoll(flags.at("shuffle-max-mem").c_str());
    cluster.shuffle_budget.max_bytes = static_cast<int64_t>(mb) * 1024 * 1024;
  }
  cluster.shuffle_budget.spill_dir = GetFlag(flags, "spill-dir", "");
  cluster.shuffle_budget.fallback_spill_dir =
      GetFlag(flags, "fallback-spill-dir", "");
  // Fail fast on an unusable spill directory (same pattern as --trace-out):
  // a long resolve run must not discover it at the first spill.
  if (!cluster.shuffle_budget.spill_dir.empty() &&
      !ProbeWritableDir(cluster.shuffle_budget.spill_dir)) {
    std::fprintf(stderr,
                 "invalid spill config: spill-dir is not writable (got %s)\n",
                 cluster.shuffle_budget.spill_dir.c_str());
    return 1;
  }
  if (!cluster.shuffle_budget.fallback_spill_dir.empty() &&
      !ProbeWritableDir(cluster.shuffle_budget.fallback_spill_dir)) {
    std::fprintf(
        stderr,
        "invalid spill config: fallback-spill-dir is not writable (got %s)\n",
        cluster.shuffle_budget.fallback_spill_dir.c_str());
    return 1;
  }
  // Any fault knob turns the fault machinery on; ValidateClusterConfig then
  // rejects out-of-range values with a labelled message.
  const bool any_fault_flag =
      flags.count("fault-prob") || flags.count("hang-prob") ||
      flags.count("task-timeout") || flags.count("shuffle-corrupt-prob") ||
      flags.count("poison-records") || flags.count("skip-bad-records") ||
      flags.count("max-attempts") || flags.count("spill-fault-prob") ||
      flags.count("spill-enospc-prob");
  if (any_fault_flag) {
    cluster.fault.enabled = true;
    cluster.fault.seed =
        static_cast<uint64_t>(std::atoll(GetFlag(flags, "fault-seed", "1")
                                             .c_str()));
    if (flags.count("fault-prob")) {
      const double prob = std::atof(flags.at("fault-prob").c_str());
      cluster.fault.map_failure_prob = prob;
      cluster.fault.reduce_failure_prob = prob;
    }
    if (flags.count("hang-prob")) {
      const double prob = std::atof(flags.at("hang-prob").c_str());
      cluster.fault.map_hang_prob = prob;
      cluster.fault.reduce_hang_prob = prob;
    }
    if (flags.count("task-timeout")) {
      cluster.fault.task_timeout_seconds =
          std::atof(flags.at("task-timeout").c_str());
    }
    if (flags.count("shuffle-corrupt-prob")) {
      cluster.fault.shuffle_corrupt_prob =
          std::atof(flags.at("shuffle-corrupt-prob").c_str());
    }
    if (flags.count("max-attempts")) {
      cluster.fault.max_attempts = std::atoi(flags.at("max-attempts").c_str());
    }
    if (flags.count("poison-records")) {
      // Comma-separated global input-record indices.
      const std::string& list = flags.at("poison-records");
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = std::min(list.find(',', pos), list.size());
        const std::string token = list.substr(pos, comma - pos);
        char* end = nullptr;
        const long long value = std::strtoll(token.c_str(), &end, 10);
        if (token.empty() || end == nullptr || *end != '\0') {
          std::fprintf(stderr,
                       "invalid --poison-records: expected comma-separated "
                       "record indices (got \"%s\")\n",
                       token.c_str());
          return 2;
        }
        cluster.fault.poison_records.push_back(value);
        pos = comma + 1;
      }
    }
    if (flags.count("spill-fault-prob")) {
      // One knob covers the three recoverable storage faults; ENOSPC (which
      // needs a fallback dir to survive) stays on its own flag.
      const double prob = std::atof(flags.at("spill-fault-prob").c_str());
      cluster.fault.spill_write_error_prob = prob;
      cluster.fault.spill_torn_write_prob = prob;
      cluster.fault.spill_corrupt_prob = prob;
    }
    if (flags.count("spill-enospc-prob")) {
      cluster.fault.spill_enospc_prob =
          std::atof(flags.at("spill-enospc-prob").c_str());
    }
    cluster.fault.skip_bad_records = flags.count("skip-bad-records") > 0;
  }
  // Job-supervision flags. Independent of fault injection: a deadline can
  // degrade a fault-free run too.
  if (flags.count("deadline")) {
    cluster.control.deadline_seconds = std::atof(flags.at("deadline").c_str());
  }
  if (flags.count("wall-deadline")) {
    cluster.control.wall_deadline_seconds =
        std::atof(flags.at("wall-deadline").c_str());
  }
  cluster.control.allow_degraded = flags.count("allow-degraded") > 0;
  if (flags.count("fault-budget")) {
    cluster.control.fault_budget =
        std::atoll(flags.at("fault-budget").c_str());
  }
  const std::string cluster_error = ValidateClusterConfig(cluster);
  if (!cluster_error.empty()) {
    std::fprintf(stderr, "invalid cluster config: %s\n",
                 cluster_error.c_str());
    return 1;
  }
  // Cross-process restart flags (progressive resolve only): checkpoints
  // persist under --checkpoint-dir and --resume restores them after a kill.
  const std::string checkpoint_dir = GetFlag(flags, "checkpoint-dir", "");
  if (!checkpoint_dir.empty() && !EnsureWritableDir(checkpoint_dir)) {
    std::fprintf(
        stderr,
        "invalid checkpoint config: checkpoint-dir is not writable (got "
        "%s)\n",
        checkpoint_dir.c_str());
    return 1;
  }
  if ((flags.count("resume") || flags.count("crash-after-checkpoints")) &&
      checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "invalid checkpoint config: --resume and "
                 "--crash-after-checkpoints require --checkpoint-dir\n");
    return 1;
  }
  const std::string trace_out = GetFlag(flags, "trace-out", "");
  const std::string trace_timeline = GetFlag(flags, "trace-timeline", "");
  if (!trace_out.empty() && !ProbeWritable(trace_out)) {
    std::fprintf(stderr,
                 "invalid trace config: trace-out is not writable (got %s)\n",
                 trace_out.c_str());
    return 1;
  }
  if (!trace_timeline.empty() && !ProbeWritable(trace_timeline)) {
    std::fprintf(
        stderr,
        "invalid trace config: trace-timeline is not writable (got %s)\n",
        trace_timeline.c_str());
    return 1;
  }
  TraceRecorder trace;
  if (!trace_out.empty() || !trace_timeline.empty()) {
    cluster.trace = &trace;
  }
  const SortedNeighborMechanism sn;

  ErRunResult result;
  if (flags.count("basic")) {
    // Basic uses the main blocking functions only.
    std::vector<FamilySpec> mains;
    for (int f = 0; f < config.blocking.num_families(); ++f) {
      FamilySpec spec = config.blocking.family(f);
      spec.prefix_lens = {spec.prefix_lens.front()};
      mains.push_back(std::move(spec));
    }
    const BlockingConfig basic_blocking(mains);
    BasicErOptions options;
    options.cluster = cluster;
    options.popcorn_threshold =
        std::atof(GetFlag(flags, "popcorn", "0").c_str());
    const BasicEr basic(basic_blocking, config.match, sn, options);
    result = basic.Run(dataset);
  } else {
    Dataset train;
    GroundTruth train_truth;
    if (!Dataset::LoadTsv(RequireFlag(flags, "train"), &train) ||
        !GroundTruth::LoadTsv(RequireFlag(flags, "train-truth"),
                              &train_truth)) {
      std::fprintf(stderr, "failed to read training data\n");
      return 1;
    }
    const ProbabilityModel prob =
        ProbabilityModel::Train(train, train_truth, config.blocking);
    ProgressiveErOptions options;
    options.cluster = cluster;
    options.checkpoint_recovery = flags.count("checkpoint-recovery") > 0;
    if (flags.count("alpha")) {
      options.alpha = std::atof(flags.at("alpha").c_str());
    }
    options.checkpoint_dir = checkpoint_dir;
    options.resume = flags.count("resume") > 0;
    options.crash_after_checkpoints =
        std::atoi(GetFlag(flags, "crash-after-checkpoints", "0").c_str());
    options.per_task_cost_budget =
        std::atof(GetFlag(flags, "budget", "0").c_str());
    const std::string scheduler = GetFlag(flags, "scheduler", "ours");
    if (scheduler == "ours") {
      options.scheduler = TreeScheduler::kOurs;
    } else if (scheduler == "nosplit") {
      options.scheduler = TreeScheduler::kNoSplit;
    } else if (scheduler == "lpt") {
      options.scheduler = TreeScheduler::kLpt;
    } else if (scheduler == "blocksplit") {
      options.scheduler = TreeScheduler::kBlockSplit;
    } else if (scheduler == "pairrange") {
      options.scheduler = TreeScheduler::kPairRange;
    } else {
      std::fprintf(stderr,
                   "invalid scheduler config: unknown --scheduler=%s "
                   "(expected ours|nosplit|lpt|blocksplit|pairrange)\n",
                   scheduler.c_str());
      return 1;
    }
    const ProgressiveEr er(config.blocking, config.match, sn, prob, options);
    result = er.Run(dataset);
  }

  if (result.failed) {
    std::fprintf(stderr, "resolution failed: %s\n", result.error.c_str());
    return 1;
  }
  if (!SavePairs(RequireFlag(flags, "out"), result.duplicates)) {
    std::fprintf(stderr, "failed to write pairs\n");
    return 1;
  }
  if (!trace_out.empty()) {
    if (!trace.WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("trace written to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (!trace_timeline.empty()) {
    std::ofstream timeline(trace_timeline, std::ios::binary | std::ios::trunc);
    timeline << trace.ToSlotTimeline();
    if (!timeline) {
      std::fprintf(stderr, "failed to write timeline to %s\n",
                   trace_timeline.c_str());
      return 1;
    }
    std::printf("timeline written to %s\n", trace_timeline.c_str());
  }
  if (!result.quarantined_ids.empty()) {
    std::printf("%zu poison record(s) quarantined by skip-bad-records:",
                result.quarantined_ids.size());
    for (EntityId id : result.quarantined_ids) {
      std::printf(" %d", static_cast<int>(id));
    }
    std::printf("\n");
  }
  // The two clocks stay separate: simulated seconds are the paper's
  // deterministic results clock, wall seconds the measured run time.
  std::printf("resolved %lld comparisons in %.0f simulated seconds "
              "(%.3f wall seconds, %s backend); "
              "%zu duplicate pairs written\n",
              static_cast<long long>(result.comparisons), result.total_time,
              result.wall_seconds, ToString(cluster.backend),
              result.duplicates.size());
  if (result.completeness.degraded) {
    // Degraded success: the pairs were written but coverage is partial.
    // Exit 2 so scripts can tell it from a hard failure (1).
    std::printf("%s\n", result.completeness.ToString().c_str());
    return 2;
  }
  return 0;
}

// Prints the generated progressive schedule for inspection.
int CmdExplain(const std::map<std::string, std::string>& flags) {
  Dataset dataset;
  if (!Dataset::LoadTsv(RequireFlag(flags, "data"), &dataset)) {
    std::fprintf(stderr, "failed to read --data\n");
    return 1;
  }
  PipelineConfig config;
  if (!ConfigForSchema(dataset, &config)) {
    std::fprintf(stderr, "unrecognized schema\n");
    return 1;
  }
  Dataset train;
  GroundTruth train_truth;
  if (!Dataset::LoadTsv(RequireFlag(flags, "train"), &train) ||
      !GroundTruth::LoadTsv(RequireFlag(flags, "train-truth"), &train_truth)) {
    std::fprintf(stderr, "failed to read training data\n");
    return 1;
  }
  const ProbabilityModel prob =
      ProbabilityModel::Train(train, train_truth, config.blocking);
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster.machines = std::atoi(GetFlag(flags, "machines", "10").c_str());
  const std::string cluster_error = ValidateClusterConfig(options.cluster);
  if (!cluster_error.empty()) {
    std::fprintf(stderr, "invalid cluster config: %s\n",
                 cluster_error.c_str());
    return 1;
  }
  const ProgressiveEr er(config.blocking, config.match, sn, prob, options);
  const ProgressiveEr::Preprocessed pre = er.Preprocess(dataset);
  if (pre.failed) {
    std::fprintf(stderr, "preprocessing failed: %s\n", pre.error.c_str());
    return 1;
  }
  std::printf("%s", DescribeSchedule(pre.schedule, pre.forests,
                                     std::atoi(GetFlag(flags, "blocks", "5")
                                                   .c_str()))
                        .c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  std::vector<PairKey> pairs;
  if (!LoadPairs(RequireFlag(flags, "pairs"), &pairs)) {
    std::fprintf(stderr, "failed to read --pairs\n");
    return 1;
  }
  GroundTruth truth;
  if (!GroundTruth::LoadTsv(RequireFlag(flags, "truth"), &truth)) {
    std::fprintf(stderr, "failed to read --truth\n");
    return 1;
  }
  const PairMetrics pair_metrics = EvaluatePairs(pairs, truth);
  std::printf("pairs:      precision %.4f  recall %.4f  f1 %.4f\n",
              pair_metrics.precision, pair_metrics.recall, pair_metrics.f1);
  const std::vector<int32_t> clusters =
      TransitiveClosure(truth.num_entities(), pairs);
  const PairMetrics cluster_metrics = EvaluateClustering(clusters, truth);
  std::printf("clustered:  precision %.4f  recall %.4f  f1 %.4f\n",
              cluster_metrics.precision, cluster_metrics.recall,
              cluster_metrics.f1);
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: progres_cli <generate|stats|resolve|explain|evaluate> "
      "[--flag=value ...]\n"
      "\n"
      "resolve execution-backend flags:\n"
      "  --backend=B               simulated (serial, deterministic "
      "reference; default)\n"
      "                            or threaded (concurrent on a thread "
      "pool, measures wall time)\n"
      "  --threads=N               threaded-backend worker threads "
      "(default: hardware concurrency,\n"
      "                            capped at the cluster's slot capacity)\n"
      "\n"
      "resolve shuffle-budget flags:\n"
      "  --shuffle-max-mem=MB      cap on buffered map output per job; "
      "overflow spills to\n"
      "                            sorted on-disk runs (default: unbounded, "
      "never spill)\n"
      "  --spill-dir=DIR           directory for spill runs (default: "
      "system temp dir)\n"
      "  --fallback-spill-dir=DIR  secondary spill directory the job fails "
      "over to when the\n"
      "                            primary becomes unusable (ENOSPC, "
      "exhausted retries)\n"
      "\n"
      "resolve fault-injection flags (any of them enables fault "
      "simulation):\n"
      "  --fault-prob=P            per-attempt crash probability in [0, 1]\n"
      "  --fault-seed=S            seed of all hashed fault decisions\n"
      "  --max-attempts=N          attempts per task before the job fails "
      "(default 4)\n"
      "  --hang-prob=P             per-attempt hang probability in [0, 1]\n"
      "  --task-timeout=T          heartbeat timeout in simulated seconds "
      "(default 600)\n"
      "  --shuffle-corrupt-prob=P  per-fetch partition corruption "
      "probability in [0, 1]\n"
      "  --poison-records=I,J,...  input records that crash map attempts\n"
      "  --skip-bad-records        quarantine poison records instead of "
      "failing the job\n"
      "  --checkpoint-recovery     resume reduce retries from "
      "alpha-boundary checkpoints\n"
      "  --spill-fault-prob=P      per-run spill-write fault probability "
      "in [0, 1] (transient\n"
      "                            write errors, torn writes, bit-flip "
      "corruption)\n"
      "  --spill-enospc-prob=P     per-task probability the primary spill "
      "dir is full in [0, 1]\n"
      "\n"
      "resolve cross-process restart flags (progressive resolve only):\n"
      "  --alpha=COST              incremental-output interval in cost "
      "units (default 5000);\n"
      "                            also the checkpoint boundary spacing\n"
      "  --checkpoint-dir=DIR      persist reduce-task checkpoints here "
      "(CRC-framed files)\n"
      "  --resume                  restore persisted checkpoints from "
      "--checkpoint-dir and\n"
      "                            replay only past them (byte-identical "
      "output)\n"
      "  --crash-after-checkpoints=N  kill the process (exit 17) after N "
      "persisted saves —\n"
      "                            deterministic mid-run crash for restart "
      "testing\n"
      "\n"
      "resolve job-supervision flags (degraded success exits with code 2 "
      "and prints a\n"
      "completeness report; hard failures stay exit code 1):\n"
      "  --deadline=T              simulated-seconds job deadline; "
      "deterministic cut of\n"
      "                            reduce output at checkpointed "
      "alpha boundaries\n"
      "  --wall-deadline=T         wall-clock safety valve checked at the "
      "map/reduce barrier\n"
      "  --allow-degraded          quarantine permanently-failing tasks and "
      "finalize\n"
      "                            best-effort instead of failing the job\n"
      "  --fault-budget=N          job-wide retry budget; once spent, the "
      "budget breaker\n"
      "                            trips and later tasks get no retries "
      "(0 = unlimited)\n");
  return 2;
}

}  // namespace
}  // namespace progres

int main(int argc, char** argv) {
  using namespace progres;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "resolve") return CmdResolve(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  return Usage();
}

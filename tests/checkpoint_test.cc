// Checkpointed progressive recovery: reduce tasks snapshot at each
// alpha-emission boundary, re-attempts restore the latest snapshot and
// resume mid-schedule, outputs stay byte-identical to a fault-free run, and
// the replayed work (pairs and simulated time) is strictly smaller than
// with from-scratch retries.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/checkpoint.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;

// ---- CheckpointStore unit tests ----

TEST(CheckpointStoreTest, SavesLatestAndKeepsRecoveryPoints) {
  CheckpointStore store;
  store.Reset(2);
  EXPECT_EQ(store.num_tasks(), 2);
  EXPECT_EQ(store.Latest(0), nullptr);

  TaskCheckpoint first;
  first.cost = 10.0;
  first.groups = 2;
  store.Save(0, first);
  TaskCheckpoint second;
  second.cost = 25.0;
  second.groups = 5;
  store.Save(0, second);

  ASSERT_NE(store.Latest(0), nullptr);
  EXPECT_DOUBLE_EQ(store.Latest(0)->cost, 25.0);
  EXPECT_EQ(store.Latest(0)->groups, 5);
  EXPECT_EQ(store.Latest(1), nullptr);
  const std::vector<double>& points = store.RecoveryPoints(0);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0], 10.0);
  EXPECT_DOUBLE_EQ(points[1], 25.0);
  EXPECT_EQ(store.saved(), 2);
}

TEST(CheckpointStoreTest, IgnoresNonAdvancingSaves) {
  CheckpointStore store;
  store.Reset(1);
  TaskCheckpoint checkpoint;
  checkpoint.cost = 10.0;
  store.Save(0, checkpoint);
  // A resumed attempt re-crossing the same boundary must not duplicate it.
  TaskCheckpoint stale;
  stale.cost = 10.0;
  store.Save(0, stale);
  stale.cost = 5.0;
  store.Save(0, stale);
  EXPECT_EQ(store.saved(), 1);
  EXPECT_EQ(store.RecoveryPoints(0).size(), 1u);
  EXPECT_DOUBLE_EQ(store.Latest(0)->cost, 10.0);
}

TEST(CheckpointStoreTest, ResetClearsSnapshotsAndTallies) {
  CheckpointStore store;
  store.Reset(1);
  TaskCheckpoint checkpoint;
  checkpoint.cost = 3.0;
  store.Save(0, checkpoint);
  store.NoteRestore(0);
  store.Reset(3);
  EXPECT_EQ(store.num_tasks(), 3);
  EXPECT_EQ(store.Latest(0), nullptr);
  EXPECT_EQ(store.saved(), 0);
  EXPECT_EQ(store.restored(), 0);
  EXPECT_TRUE(store.RecoveryPoints(0).empty());
}

TEST(CheckpointStoreTest, OutOfRangeTasksAreSafe) {
  CheckpointStore store;
  store.Reset(1);
  TaskCheckpoint checkpoint;
  store.Save(-1, checkpoint);
  store.Save(7, checkpoint);
  store.NoteRestore(9);
  EXPECT_EQ(store.Latest(-1), nullptr);
  EXPECT_EQ(store.Latest(7), nullptr);
  EXPECT_TRUE(store.RecoveryPoints(7).empty());
  EXPECT_EQ(store.saved(), 0);
  EXPECT_EQ(store.restored(), 0);
}

// ---- Job-level checkpointed recovery ----

constexpr int kMapTasks = 4;
constexpr int kReduceTasks = 3;

ClusterConfig TestCluster(FaultConfig fault = FaultConfig()) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  cluster.fault = std::move(fault);
  return cluster;
}

using Job = MapReduceJob<int, int, int>;

// Reduce tasks see ~4 groups each, every group costing its value count; a
// small alpha yields several checkpoints per task.
Job::Result RunJob(const ClusterConfig& cluster, CheckpointStore* store,
                   double alpha) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);
  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  job.set_reduce_cleanup([](Job::ReduceContext* ctx) {
    ctx->clock().Charge(2.0);
    ctx->Emit(-1, ctx->task_id());
  });
  if (store != nullptr) {
    job.set_checkpointing(alpha, store, nullptr, nullptr);
  }
  return job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("map.records");
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->counters().Increment("reduce.values",
                                  static_cast<int64_t>(values->size()));
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

FaultConfig ReduceFaults() {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 6;
  for (int task = 0; task < kReduceTasks; ++task) {
    fault.injected.push_back({TaskPhase::kReduce, task, 0});
    fault.injected.push_back({TaskPhase::kReduce, task, 1});
  }
  return fault;
}

TEST(JobCheckpointTest, FaultFreeCheckpointingOnlySavesSnapshots) {
  const Job::Result baseline = RunJob(TestCluster(), nullptr, 0.0);
  CheckpointStore store;
  const Job::Result checkpointed = RunJob(TestCluster(), &store, 10.0);
  ASSERT_FALSE(checkpointed.failed);
  EXPECT_EQ(checkpointed.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(checkpointed.counters),
            CountersMinusMr(baseline.counters));
  EXPECT_GT(checkpointed.counters.Get("mr.checkpoint.saved"), 0);
  EXPECT_EQ(checkpointed.counters.Get("mr.checkpoint.restored"), 0);
  // Fault-free: nothing re-executed, identical timeline.
  EXPECT_EQ(checkpointed.counters.values().count("mr.recovery.replayed_pairs"),
            0u);
  EXPECT_DOUBLE_EQ(checkpointed.timing.end, baseline.timing.end);
}

TEST(JobCheckpointTest, ResumedRetriesMatchScratchOutputs) {
  const Job::Result baseline = RunJob(TestCluster(), nullptr, 0.0);
  ASSERT_FALSE(baseline.failed);

  const Job::Result scratch = RunJob(TestCluster(ReduceFaults()), nullptr,
                                     0.0);
  ASSERT_FALSE(scratch.failed) << scratch.error;
  CheckpointStore store;
  const Job::Result resumed =
      RunJob(TestCluster(ReduceFaults()), &store, 10.0);
  ASSERT_FALSE(resumed.failed) << resumed.error;

  // Data plane byte-identical across all three runs.
  EXPECT_EQ(scratch.outputs, baseline.outputs);
  EXPECT_EQ(resumed.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(resumed.counters),
            CountersMinusMr(baseline.counters));
  for (size_t t = 0; t < baseline.reduce_stats.size(); ++t) {
    EXPECT_DOUBLE_EQ(resumed.reduce_stats[t].cost,
                     baseline.reduce_stats[t].cost);
    EXPECT_EQ(resumed.reduce_stats[t].records_in,
              baseline.reduce_stats[t].records_in);
  }

  // Checkpoints were saved and restored...
  EXPECT_GT(resumed.counters.Get("mr.checkpoint.saved"), 0);
  EXPECT_GT(resumed.counters.Get("mr.checkpoint.restored"), 0);
  // ...and the retries re-processed strictly fewer input values than the
  // from-scratch runs of the same fault plan.
  const int64_t scratch_replayed =
      scratch.counters.Get("mr.recovery.replayed_pairs");
  const int64_t resumed_replayed =
      resumed.counters.Get("mr.recovery.replayed_pairs");
  EXPECT_GT(scratch_replayed, 0);
  EXPECT_LT(resumed_replayed, scratch_replayed);
  // Shorter re-runs can only shrink the simulated makespan.
  EXPECT_LE(resumed.timing.end, scratch.timing.end);
}

TEST(JobCheckpointTest, DriverStateHooksRoundTrip) {
  // External per-task state mirroring what the ER drivers keep: the job's
  // save hook snapshots it at each boundary, the restore hook rewinds it,
  // and after a faulty run it must match a clean run exactly.
  struct TaskState {
    std::vector<int> sums;
  };
  const auto run = [](const ClusterConfig& cluster, CheckpointStore* store,
                      std::vector<TaskState>* states) {
    std::vector<int> input;
    for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);
    Job job(kMapTasks, kReduceTasks);
    job.set_map_cost_per_record(0.5);
    job.set_partitioner([](const int& key, int r) { return key % r; });
    states->assign(kReduceTasks, {});
    if (store != nullptr) {
      job.set_checkpointing(
          10.0, store,
          [states](int task_id) -> std::shared_ptr<const void> {
            return std::make_shared<const TaskState>(
                (*states)[static_cast<size_t>(task_id)]);
          },
          [states](int task_id, const void* snapshot) {
            TaskState& state = (*states)[static_cast<size_t>(task_id)];
            state = snapshot == nullptr
                        ? TaskState()
                        : *static_cast<const TaskState*>(snapshot);
          });
    }
    return job.Run(
        input,
        [](const int& record, Job::MapContext* ctx) {
          ctx->Emit(record % 11, record);
        },
        [states](const int& key, std::vector<int>* values,
                 Job::ReduceContext* ctx) {
          int sum = 0;
          for (int v : *values) sum += v;
          ctx->clock().Charge(static_cast<double>(values->size()));
          (*states)[static_cast<size_t>(ctx->task_id())].sums.push_back(sum);
          ctx->Emit(key, sum);
        },
        cluster);
  };

  std::vector<TaskState> clean_states;
  const Job::Result clean = run(TestCluster(), nullptr, &clean_states);
  ASSERT_FALSE(clean.failed);

  std::vector<TaskState> faulty_states;
  CheckpointStore store;
  const Job::Result faulty =
      run(TestCluster(ReduceFaults()), &store, &faulty_states);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  EXPECT_EQ(faulty.outputs, clean.outputs);
  ASSERT_EQ(faulty_states.size(), clean_states.size());
  for (size_t t = 0; t < clean_states.size(); ++t) {
    EXPECT_EQ(faulty_states[t].sums, clean_states[t].sums) << "task " << t;
  }
  EXPECT_GT(faulty.counters.Get("mr.checkpoint.restored"), 0);
}

TEST(JobCheckpointTest, StoreIsReusableAcrossRuns) {
  CheckpointStore store;
  const Job::Result first = RunJob(TestCluster(ReduceFaults()), &store, 10.0);
  const Job::Result second = RunJob(TestCluster(ReduceFaults()), &store, 10.0);
  ASSERT_FALSE(first.failed);
  ASSERT_FALSE(second.failed);
  EXPECT_EQ(second.outputs, first.outputs);
  EXPECT_EQ(second.counters.Get("mr.checkpoint.saved"),
            first.counters.Get("mr.checkpoint.saved"));
  EXPECT_EQ(second.counters.Get("mr.checkpoint.restored"),
            first.counters.Get("mr.checkpoint.restored"));
}

}  // namespace
}  // namespace progres

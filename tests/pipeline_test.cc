// Pipeline layer: counter merging across stages, cross-job timing
// carry-over on the simulated clock, and failure propagation from a doomed
// stage, all on top of real MapReduceJob stages.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/job.h"
#include "mapreduce/pipeline.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::ValidateAttemptSchedule;

ClusterConfig TestCluster() {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  return cluster;
}

using Job = MapReduceJob<int, int, int>;

// A counting job: every map task increments "stage.maps" per record, every
// reduce call increments "stage.groups".
StageResult RunCountingJob(const std::vector<int>& input,
                           const ClusterConfig& cluster, double submit_time,
                           const std::string& error_prefix) {
  Job job(2, 2);
  Job::Result run = job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("stage.maps");
        ctx->clock().Charge(1.0);
        ctx->Emit(record % 2, record);
      },
      [](const int&, std::vector<int>* values, Job::ReduceContext* ctx) {
        ctx->counters().Increment("stage.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
      },
      cluster, submit_time);
  return StageResultFromJob(std::move(run), error_prefix);
}

TEST(PipelineTest, TimingCarriesOverBetweenJobs) {
  const std::vector<int> input = {1, 2, 3, 4, 5, 6, 7, 8};
  Pipeline pipe;
  pipe.AddStage("first", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "first");
  });
  pipe.AddStage("second", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "second");
  });
  const PipelineResult result = pipe.Run(/*submit_time=*/3.0);

  ASSERT_FALSE(result.failed);
  ASSERT_EQ(result.stages.size(), 2u);
  const StageReport& first = result.stages[0];
  const StageReport& second = result.stages[1];
  EXPECT_DOUBLE_EQ(result.start, 3.0);
  EXPECT_DOUBLE_EQ(first.start, 3.0);
  EXPECT_DOUBLE_EQ(first.result.timing.start, 3.0);
  // The second job is submitted exactly when the first one ends...
  EXPECT_GT(first.result.end_time, first.start);
  EXPECT_DOUBLE_EQ(second.start, first.result.end_time);
  EXPECT_DOUBLE_EQ(second.result.timing.start, first.result.end_time);
  // ...and the pipeline ends with the last stage.
  EXPECT_DOUBLE_EQ(result.end, second.result.end_time);

  // Both stages' attempt schedules hold the structural invariants relative
  // to their own (carried-over) submit times.
  for (const StageReport& stage : result.stages) {
    ValidateAttemptSchedule(stage.result.timing.map_attempts, 2, stage.start,
                            stage.result.timing.map_end);
    ValidateAttemptSchedule(stage.result.timing.reduce_attempts, 2,
                            stage.result.timing.map_end,
                            stage.result.timing.end);
  }
}

TEST(PipelineTest, CountersMergeAcrossStages) {
  const std::vector<int> input = {1, 2, 3, 4, 5, 6};
  Pipeline pipe;
  pipe.AddStage("first", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "first");
  });
  pipe.AddComputation("think", [](double) { return 2.5; });
  pipe.AddStage("second", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "second");
  });
  const PipelineResult result = pipe.Run();

  ASSERT_FALSE(result.failed);
  // Two counting jobs over 6 records each.
  EXPECT_EQ(result.counters.Get("stage.maps"), 12);
  EXPECT_EQ(result.counters.Get("stage.groups"), 4);
  // The runtime's bookkeeping merges too: 4 tasks per job, no failures.
  EXPECT_EQ(result.counters.Get("mr.attempts"), 8);
  EXPECT_EQ(result.counters.Get("mr.failed_attempts"), 0);
}

TEST(PipelineTest, ComputationStageAdvancesClock) {
  Pipeline pipe;
  double seen_submit = -1.0;
  pipe.AddComputation("generate schedule", [&](double t) {
    seen_submit = t;
    return 7.0;
  });
  const PipelineResult result = pipe.Run(/*submit_time=*/5.0);
  EXPECT_DOUBLE_EQ(seen_submit, 5.0);
  EXPECT_DOUBLE_EQ(result.end, 12.0);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(result.stages[0].result.end_time, 12.0);
  EXPECT_FALSE(result.failed);
}

TEST(PipelineTest, FailurePropagatesAndStopsLaterStages) {
  const std::vector<int> input = {1, 2, 3, 4, 5, 6};
  // Doom reduce task 1 of the middle stage: both allowed attempts fail.
  ClusterConfig faulty = TestCluster();
  faulty.fault.enabled = true;
  faulty.fault.max_attempts = 2;
  faulty.fault.injected = {{TaskPhase::kReduce, 1, 0},
                           {TaskPhase::kReduce, 1, 1}};

  bool third_ran = false;
  Pipeline pipe;
  pipe.AddStage("first", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "first");
  });
  pipe.AddStage("doomed", [&](double t) {
    return RunCountingJob(input, faulty, t, "doomed");
  });
  pipe.AddStage("third", [&](double t) {
    third_ran = true;
    return RunCountingJob(input, TestCluster(), t, "third");
  });
  const PipelineResult result = pipe.Run();

  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.error, "doomed: reduce task 1 failed after 2 attempts");
  EXPECT_FALSE(third_ran);
  // The failing stage's report is the last one.
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_TRUE(result.stages[1].result.failed);
  EXPECT_DOUBLE_EQ(result.end, result.stages[1].result.end_time);
  // Counters still merged from both executed stages: the doomed job
  // discards its user counters (only "first" contributes stage.maps) but
  // its "mr." fault bookkeeping survives into the pipeline totals.
  EXPECT_EQ(result.counters.Get("stage.maps"), 6);
  EXPECT_GE(result.counters.Get("mr.failed_attempts"), 2);
  EXPECT_EQ(result.Find("third"), nullptr);
  ASSERT_NE(result.Find("doomed"), nullptr);
  EXPECT_TRUE(result.Find("doomed")->result.failed);
}

TEST(PipelineTest, LastStageFailureAfterSuccessfulPredecessors) {
  // The failure can also strike the *final* stage, after every earlier
  // stage committed its counters and timing: the pipeline must report the
  // earlier stages as succeeded and carry their results, failing only as a
  // whole.
  const std::vector<int> input = {1, 2, 3, 4, 5, 6};
  ClusterConfig faulty = TestCluster();
  faulty.fault.enabled = true;
  faulty.fault.max_attempts = 2;
  faulty.fault.injected = {{TaskPhase::kReduce, 0, 0},
                           {TaskPhase::kReduce, 0, 1}};

  Pipeline pipe;
  pipe.AddStage("first", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "first");
  });
  pipe.AddStage("second", [&](double t) {
    return RunCountingJob(input, TestCluster(), t, "second");
  });
  pipe.AddStage("last", [&](double t) {
    return RunCountingJob(input, faulty, t, "last");
  });
  const PipelineResult result = pipe.Run();

  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.error, "last: reduce task 0 failed after 2 attempts");
  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_FALSE(result.stages[0].result.failed);
  EXPECT_FALSE(result.stages[1].result.failed);
  EXPECT_TRUE(result.stages[2].result.failed);
  // Both successful stages' user counters survive; the doomed stage
  // contributes only its "mr." bookkeeping.
  EXPECT_EQ(result.counters.Get("stage.maps"), 12);
  EXPECT_GE(result.counters.Get("mr.failed_attempts"), 2);
  // The pipeline clock ends where the failed stage's timeline stopped.
  EXPECT_DOUBLE_EQ(result.end, result.stages[2].result.end_time);
  EXPECT_GE(result.stages[2].start, result.stages[1].result.end_time);
}

TEST(PipelineTest, StageResultFromJobLabelsErrors) {
  Job job(1, 1);
  ClusterConfig faulty = TestCluster();
  faulty.fault.enabled = true;
  faulty.fault.max_attempts = 1;
  faulty.fault.injected = {{TaskPhase::kMap, 0, 0}};
  Job::Result run = job.Run(
      std::vector<int>{1, 2, 3},
      [](const int& record, Job::MapContext* ctx) { ctx->Emit(record, 1); },
      [](const int&, std::vector<int>*, Job::ReduceContext*) {}, faulty);
  ASSERT_TRUE(run.failed);

  Job::Result copy = run;
  const StageResult labelled = StageResultFromJob(std::move(copy), "stats");
  EXPECT_EQ(labelled.error, "stats: map task 0 failed after 1 attempts");
  const StageResult verbatim = StageResultFromJob(std::move(run), "");
  EXPECT_EQ(verbatim.error, "map task 0 failed after 1 attempts");
}

}  // namespace
}  // namespace progres

// Differential tests for the two execution backends. The MR contract —
// deterministic fault plans, counters merged in task order behind the
// phase barrier, fixed shuffle gather-sort order — promises that the
// threaded backend produces byte-identical results to the serial simulated
// reference, for any thread count and any real interleaving. These tests
// hold the runtime to that promise:
//
//   * every frozen golden driver, re-run threaded with 1 and 4 workers,
//     must reproduce its fixture byte for byte;
//   * a matrix of cluster-size x thread-count x fault-plan configurations
//     (crashes, hangs, poison records, shuffle corruption, backoff +
//     blacklisting, checkpointed recovery) must agree between backends on
//     the full dump, every counter and the quarantined entity ids;
//   * a traced threaded run's wall-clock spans must reconcile exactly with
//     the schedule-derived "mr.*" counters;
//   * a many-task, 8-worker stress run (trace + checkpoints + heavy retry
//     churn) exercises the concurrent paths TSan watches.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "er_golden_util.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/executor.h"
#include "mapreduce/job.h"
#include "mapreduce/trace.h"

namespace progres {
namespace {

using testing_util::DumpErRunResult;
using testing_util::GoldenDriverNames;
using testing_util::RunGoldenDriver;

std::string ReadGoldenFixture(const std::string& name) {
  std::ifstream in(std::string(PROGRES_GOLDEN_DIR) + "/" + name + ".golden",
                   std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- Backend selection plumbing ----

TEST(ExecutionBackendTest, ParseAndToStringRoundTrip) {
  ExecutionBackend backend = ExecutionBackend::kSimulated;
  EXPECT_TRUE(ParseExecutionBackend("threaded", &backend));
  EXPECT_EQ(backend, ExecutionBackend::kThreaded);
  EXPECT_TRUE(ParseExecutionBackend("simulated", &backend));
  EXPECT_EQ(backend, ExecutionBackend::kSimulated);
  EXPECT_FALSE(ParseExecutionBackend("Threaded", &backend));
  EXPECT_FALSE(ParseExecutionBackend("", &backend));
  EXPECT_FALSE(ParseExecutionBackend("parallel", &backend));
  EXPECT_STREQ(ToString(ExecutionBackend::kSimulated), "simulated");
  EXPECT_STREQ(ToString(ExecutionBackend::kThreaded), "threaded");
}

// ---- Golden equivalence: threaded runs reproduce the frozen fixtures ----

struct GoldenCase {
  std::string driver;
  int threads = 1;
};

std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  for (const std::string& name : GoldenDriverNames()) {
    // GoldenCluster() has 3 machines x 2 slots = 6-slot capacity, so the
    // fixture configurations admit up to 6 workers; 8-thread coverage runs
    // on the wider matrix clusters below.
    for (int threads : {1, 4}) cases.push_back({name, threads});
  }
  return cases;
}

class BackendGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(BackendGoldenTest, ThreadedRunMatchesFrozenFixture) {
  if (testing_util::DiskFaultOverlayActive()) {
    GTEST_SKIP() << "fixtures frozen without the disk-fault overlay";
  }
  const GoldenCase c = GetParam();
  const std::string threaded =
      RunGoldenDriver(c.driver, nullptr, ExecutionBackend::kThreaded,
                      c.threads);
  // The fixture is the simulated backend's output, frozen at the seed state
  // (driver_matrix_test keeps that end pinned) — matching it byte for byte
  // is the strongest form of cross-backend equality.
  EXPECT_EQ(threaded, ReadGoldenFixture(c.driver));
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, BackendGoldenTest, ::testing::ValuesIn(GoldenCases()),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return info.param.driver + "_t" + std::to_string(info.param.threads);
    });

// ---- Config matrix: cluster size x threads x fault plan ----

struct MatrixCase {
  std::string label;
  int machines = 2;
  int threads = 1;
  FaultConfig fault;
  bool checkpoint_recovery = false;
  MapEmission map_emission = MapEmission::kPerBlock;
  bool expect_quarantine = false;
};

// Ten configurations spanning machines {2,3,4} x threads {1,4,8} and every
// fault family the threaded backend supports (machine failures and
// speculation are simulated-only and rejected at validation — covered in
// heterogeneous_cluster_test). Threads never exceed the cluster's slot
// capacity (2 slots per machine per phase).
std::vector<MatrixCase> MatrixCases() {
  std::vector<MatrixCase> cases;
  {
    MatrixCase c;
    c.label = "faultfree_m2_t1";
    c.machines = 2;
    c.threads = 1;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "faultfree_m4_t8";
    c.machines = 4;
    c.threads = 8;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "crashes_m2_t4";
    c.machines = 2;
    c.threads = 4;
    c.fault.enabled = true;
    c.fault.seed = 11;
    c.fault.map_failure_prob = 0.15;
    c.fault.reduce_failure_prob = 0.15;
    c.fault.max_attempts = 8;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "hangs_m3_t4";
    c.machines = 3;
    c.threads = 4;
    c.fault.enabled = true;
    c.fault.seed = 12;
    c.fault.map_hang_prob = 0.2;
    c.fault.reduce_hang_prob = 0.2;
    c.fault.task_timeout_seconds = 40.0;
    c.fault.max_attempts = 8;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "poison_skip_m3_t1";
    c.machines = 3;
    c.threads = 1;
    c.fault.enabled = true;
    c.fault.poison_records = {5, 83, 211};
    c.fault.skip_bad_records = true;
    c.fault.max_attempts = 8;
    c.expect_quarantine = true;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "corruption_m2_t4";
    c.machines = 2;
    c.threads = 4;
    c.fault.enabled = true;
    c.fault.seed = 13;
    c.fault.shuffle_corrupt_prob = 0.2;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "backoff_blacklist_m4_t8";
    c.machines = 4;
    c.threads = 8;
    c.fault.enabled = true;
    c.fault.seed = 14;
    c.fault.map_failure_prob = 0.2;
    c.fault.reduce_failure_prob = 0.2;
    c.fault.max_attempts = 8;
    c.fault.retry_backoff_seconds = 3.0;
    c.fault.blacklist_failures = 2;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "checkpoint_m3_t4";
    c.machines = 3;
    c.threads = 4;
    c.fault.enabled = true;
    c.fault.seed = 15;
    c.fault.reduce_failure_prob = 0.3;
    c.fault.max_attempts = 8;
    c.checkpoint_recovery = true;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "kitchen_sink_m4_t8";
    c.machines = 4;
    c.threads = 8;
    c.fault.enabled = true;
    c.fault.seed = 16;
    c.fault.map_failure_prob = 0.1;
    c.fault.reduce_failure_prob = 0.1;
    c.fault.map_hang_prob = 0.1;
    c.fault.task_timeout_seconds = 60.0;
    c.fault.shuffle_corrupt_prob = 0.1;
    c.fault.poison_records = {17, 301};
    c.fault.skip_bad_records = true;
    c.fault.max_attempts = 10;
    c.map_emission = MapEmission::kPerTree;
    c.expect_quarantine = true;
    cases.push_back(c);
  }
  {
    MatrixCase c;
    c.label = "checkpoint_hangs_m4_t8";
    c.machines = 4;
    c.threads = 8;
    c.fault.enabled = true;
    c.fault.seed = 17;
    c.fault.reduce_hang_prob = 0.25;
    c.fault.task_timeout_seconds = 40.0;
    c.fault.max_attempts = 8;
    c.checkpoint_recovery = true;
    cases.push_back(c);
  }
  return cases;
}

// Smaller cousin of the golden workload, sized so twenty driver runs stay
// cheap under TSan.
struct MatrixWorkload {
  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
};

const MatrixWorkload& GetMatrixWorkload() {
  static const MatrixWorkload* workload = [] {
    auto* w = new MatrixWorkload();
    PublicationConfig train_gen;
    train_gen.num_entities = 200;
    train_gen.seed = 961;
    w->train = GeneratePublications(train_gen);
    PublicationConfig gen;
    gen.num_entities = 400;
    gen.seed = 962;
    w->data = GeneratePublications(gen);
    w->blocking = BlockingConfig(
        {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3, 5}, -1}});
    w->match = MatchFunction(
        {{kPubTitle, AttributeSimilarity::kEditDistance, 0.6, 0},
         {kPubVenue, AttributeSimilarity::kEditDistance, 0.4, 0}},
        0.75);
    return w;
  }();
  return *workload;
}

const ProbabilityModel& GetMatrixModel() {
  static const ProbabilityModel* model = [] {
    const MatrixWorkload& w = GetMatrixWorkload();
    return new ProbabilityModel(
        ProbabilityModel::Train(w.train.dataset, w.train.truth, w.blocking));
  }();
  return *model;
}

ErRunResult RunMatrixDriver(const MatrixCase& c, ExecutionBackend backend) {
  const MatrixWorkload& w = GetMatrixWorkload();
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster.machines = c.machines;
  options.cluster.execution_threads = c.threads;
  options.cluster.backend = backend;
  options.cluster.fault = c.fault;
  options.checkpoint_recovery = c.checkpoint_recovery;
  options.map_emission = c.map_emission;
  const ProgressiveEr er(w.blocking, w.match, sn, GetMatrixModel(), options);
  return er.Run(w.data.dataset);
}

class BackendMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(BackendMatrixTest, ThreadedMatchesSimulated) {
  const MatrixCase c = GetParam();
  const ErRunResult sim = RunMatrixDriver(c, ExecutionBackend::kSimulated);
  const ErRunResult threaded = RunMatrixDriver(c, ExecutionBackend::kThreaded);
  const GroundTruth& truth = GetMatrixWorkload().data.truth;
  // The canonical dump covers events, pairs, chunks, timings, the recall
  // curve and the non-shuffle counters...
  EXPECT_EQ(DumpErRunResult(threaded, truth), DumpErRunResult(sim, truth));
  // ...and the remaining observables it skips are held to the same bar:
  // the complete counter map (including "mr.shuffle.*") and the
  // quarantined entity ids.
  EXPECT_EQ(threaded.counters.values(), sim.counters.values());
  EXPECT_EQ(threaded.quarantined_ids, sim.quarantined_ids);
  EXPECT_EQ(threaded.failed, sim.failed);
  EXPECT_EQ(threaded.error, sim.error);
  if (c.expect_quarantine) {
    // The poison plan actually fired — this config is not vacuously equal.
    EXPECT_FALSE(sim.quarantined_ids.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BackendMatrixTest, ::testing::ValuesIn(MatrixCases()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.label;
    });

// ---- Wall-clock trace reconciliation ----

using DiffJob = MapReduceJob<int, int, int>;

constexpr int kMapTasks = 6;
constexpr int kReduceTasks = 4;

// Raw job with a few groups per reduce task; checkpointing at a small alpha
// yields several snapshots per task.
DiffJob::Result RunRawJob(const ClusterConfig& cluster, int records,
                          CheckpointStore* store, double alpha) {
  std::vector<int> input;
  for (int i = 0; i < records; ++i) input.push_back(i * 37 % 101);
  DiffJob job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  if (store != nullptr) job.set_checkpointing(alpha, store, nullptr, nullptr);
  return job.Run(
      input,
      [](const int& record, DiffJob::MapContext* ctx) {
        ctx->counters().Increment("map.records");
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 13, record);
      },
      [](const int& key, std::vector<int>* values, DiffJob::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

ClusterConfig RawCluster(int machines, int threads,
                         ExecutionBackend backend) {
  ClusterConfig cluster;
  cluster.machines = machines;
  cluster.execution_threads = threads;
  cluster.backend = backend;
  cluster.seconds_per_cost_unit = 1.0;
  return cluster;
}

// Crashes, a hang and checkpointed retries in one plan, so the traced run
// exercises every span kind the threaded backend stamps.
FaultConfig ReconcileFaults() {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 6;
  fault.injected.push_back({TaskPhase::kReduce, 0, 0});
  fault.injected.push_back({TaskPhase::kReduce, 1, 0});
  fault.injected.push_back({TaskPhase::kMap, 2, 0});
  fault.injected_hangs.push_back({TaskPhase::kMap, 1, 0, 0.5});
  fault.task_timeout_seconds = 30.0;
  return fault;
}

TEST(ThreadedTraceTest, SpansReconcileWithMrCounters) {
  ClusterConfig cluster = RawCluster(2, 4, ExecutionBackend::kThreaded);
  cluster.fault = ReconcileFaults();
  TraceRecorder recorder;
  cluster.trace = &recorder;
  CheckpointStore store;
  const DiffJob::Result r = RunRawJob(cluster, 229, &store, 5.0);
  ASSERT_FALSE(r.failed) << r.error;

  int64_t attempts = 0;
  int64_t failed = 0;
  int64_t timed_out = 0;
  int64_t shuffles = 0;
  int64_t saves = 0;
  int64_t restores = 0;
  int64_t spill_writes = 0;
  int64_t spill_merges = 0;
  for (const TraceSpan& span : recorder.spans()) {
    // Wall-clock stamps: monotone, and placed on worker lanes (the
    // threaded backend has no machine placement).
    EXPECT_GE(span.start, 0.0);
    EXPECT_GE(span.end, span.start);
    switch (span.kind) {
      case SpanKind::kAttempt:
        ++attempts;
        EXPECT_EQ(span.machine, -1);
        EXPECT_GE(span.slot, 0);
        EXPECT_LT(span.slot, cluster.execution_threads);
        if (span.outcome == SpanOutcome::kTimedOut) {
          ++timed_out;
          ++failed;
        } else if (span.outcome == SpanOutcome::kFailed) {
          ++failed;
        } else {
          EXPECT_EQ(span.outcome, SpanOutcome::kCompleted);
        }
        break;
      case SpanKind::kShuffle:
        ++shuffles;
        EXPECT_GE(span.records_in, 0);
        break;
      case SpanKind::kCheckpointSave:
        ++saves;
        break;
      case SpanKind::kCheckpointRestore:
        ++restores;
        break;
      case SpanKind::kRetryBackoff:
        ADD_FAILURE() << "no backoff configured, yet a backoff span exists";
        break;
      case SpanKind::kSpillWrite:
        ++spill_writes;
        EXPECT_GE(span.records_in, 0);
        EXPECT_GE(span.bytes, 0);
        break;
      case SpanKind::kSpillMerge:
        ++spill_merges;
        break;
    }
  }

  // Every wall-clock span kind reconciles exactly with the schedule-derived
  // "mr.*" counters — the two clocks describe the same execution.
  EXPECT_EQ(attempts, r.counters.Get("mr.attempts"));
  EXPECT_EQ(failed, r.counters.Get("mr.failed_attempts"));
  EXPECT_EQ(timed_out, r.counters.Get("mr.faults.task_timeouts"));
  EXPECT_EQ(shuffles, kReduceTasks);
  EXPECT_EQ(saves, r.counters.Get("mr.checkpoint.saved"));
  EXPECT_EQ(restores, r.counters.Get("mr.checkpoint.restored"));
  EXPECT_EQ(spill_writes, r.counters.Get("mr.spill.runs"));
  EXPECT_EQ(spill_merges, r.counters.Get("mr.spill.merge_passes"));
  // The plan actually produced retries, a timeout kill and checkpoint
  // traffic — the reconciliation above is not vacuous.
  EXPECT_GT(failed, 0);
  EXPECT_GT(timed_out, 0);
  EXPECT_GT(saves, 0);
  EXPECT_GT(restores, 0);

  // Tracing stays observational on the threaded backend too.
  ClusterConfig untraced = cluster;
  untraced.trace = nullptr;
  CheckpointStore untraced_store;
  const DiffJob::Result plain = RunRawJob(untraced, 229, &untraced_store, 5.0);
  EXPECT_EQ(r.outputs, plain.outputs);
  EXPECT_EQ(r.counters.values(), plain.counters.values());
  EXPECT_DOUBLE_EQ(r.timing.end, plain.timing.end);
}

// ---- Thread-safety stress (the run TSan cares about) ----

// Many more tasks than the 8 workers, heavy seed-hashed retry churn, live
// checkpoint saves and trace recording from the worker threads: the
// concurrent paths are counter accumulation, shuffle partition writes,
// CheckpointStore slots and the recorder's mutex. The serial simulated run
// is the reference the result must still match byte for byte.
TEST(ThreadedStressTest, ConcurrentRunMatchesSerialReference) {
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 2718;
  fault.map_failure_prob = 0.3;
  fault.reduce_failure_prob = 0.3;
  fault.max_attempts = 10;

  ClusterConfig serial = RawCluster(4, 1, ExecutionBackend::kSimulated);
  serial.fault = fault;
  CheckpointStore serial_store;

  ClusterConfig threaded = RawCluster(4, 8, ExecutionBackend::kThreaded);
  threaded.fault = fault;
  TraceRecorder recorder;
  threaded.trace = &recorder;
  CheckpointStore threaded_store;

  const int kRecords = 5000;
  const DiffJob::Result reference =
      RunRawJob(serial, kRecords, &serial_store, 20.0);
  ASSERT_FALSE(reference.failed) << reference.error;
  const DiffJob::Result stressed =
      RunRawJob(threaded, kRecords, &threaded_store, 20.0);
  ASSERT_FALSE(stressed.failed) << stressed.error;

  EXPECT_EQ(stressed.outputs, reference.outputs);
  EXPECT_EQ(stressed.counters.values(), reference.counters.values());
  EXPECT_DOUBLE_EQ(stressed.timing.end, reference.timing.end);
  EXPECT_DOUBLE_EQ(stressed.timing.map_end, reference.timing.map_end);
  EXPECT_EQ(threaded_store.saved(), serial_store.saved());
  // The churn was real: retries happened and the wall clock ran.
  EXPECT_GT(reference.counters.Get("mr.failed_attempts"), 0);
  EXPECT_EQ(stressed.timing.wall.threads, 8);
  EXPECT_GT(stressed.timing.wall.total_seconds, 0.0);
  EXPECT_FALSE(recorder.spans().empty());
}

}  // namespace
}  // namespace progres

// Span-invariant suite for the runtime tracing layer (mapreduce/trace.h).
//
// Every recorded execution must satisfy, by construction:
//   * attempt spans on one (process, phase, slot) lane never overlap;
//   * child phase spans (shuffle, checkpoint save/restore) nest inside an
//     attempt span of the same task on the same lane;
//   * span and instant counts reconcile exactly with the "mr." counters the
//     runtime reports (attempts, machine_lost, checkpoint.saved/restored,
//     speculative_launched, machines_dead, blacklist.machines);
//   * alpha-emission events are monotone per task in both time and
//     cumulative pair count;
// and — checked differentially here and against the frozen fixture in
// trace_progressive.golden — attaching a recorder never changes outputs,
// counters or the simulated timeline.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/progressive_er.h"
#include "er_golden_util.h"
#include "mapreduce/checkpoint.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mapreduce/trace.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

constexpr double kEps = 1e-9;

// ---- Shared invariant checks ----

bool IsChildKind(SpanKind kind) {
  return kind == SpanKind::kShuffle || kind == SpanKind::kCheckpointSave ||
         kind == SpanKind::kCheckpointRestore;
}

// Attempt spans on one (pid, phase, slot) lane must not overlap; backoff
// spans on one (pid, phase, task) lane must not either.
void CheckNoLaneOverlap(const std::vector<TraceSpan>& spans) {
  std::map<std::tuple<int, int, int, int>, std::vector<std::pair<double, double>>>
      lanes;
  for (const TraceSpan& span : spans) {
    if (span.kind == SpanKind::kAttempt) {
      lanes[{span.pid, static_cast<int>(span.phase), 0, span.slot}]
          .emplace_back(span.start, span.end);
    } else if (span.kind == SpanKind::kRetryBackoff) {
      lanes[{span.pid, static_cast<int>(span.phase), 1, span.task}]
          .emplace_back(span.start, span.end);
    }
  }
  for (auto& [lane, intervals] : lanes) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_LE(intervals[i - 1].second, intervals[i].first + kEps)
          << "overlap on pid=" << std::get<0>(lane)
          << " phase=" << std::get<1>(lane)
          << (std::get<2>(lane) == 0 ? " slot=" : " backoff task=")
          << std::get<3>(lane) << ": [" << intervals[i - 1].first << ", "
          << intervals[i - 1].second << ") then [" << intervals[i].first
          << ", " << intervals[i].second << ")";
    }
  }
}

// Every child span must fall inside an attempt span of the same task on the
// same (pid, phase, slot) lane.
void CheckChildNesting(const std::vector<TraceSpan>& spans) {
  for (const TraceSpan& child : spans) {
    if (!IsChildKind(child.kind)) continue;
    bool nested = false;
    for (const TraceSpan& parent : spans) {
      if (parent.kind != SpanKind::kAttempt || parent.pid != child.pid ||
          parent.phase != child.phase || parent.task != child.task ||
          parent.slot != child.slot) {
        continue;
      }
      if (child.start >= parent.start - kEps &&
          child.end <= parent.end + kEps) {
        nested = true;
        break;
      }
    }
    EXPECT_TRUE(nested) << "unnested child span kind="
                        << static_cast<int>(child.kind)
                        << " task=" << child.task << " slot=" << child.slot
                        << " at [" << child.start << ", " << child.end << ")";
  }
}

struct SpanTally {
  int64_t regular = 0;       // non-speculative attempts that ran to an end
  int64_t machine_lost = 0;  // attempt occurrences killed by a machine death
  int64_t failed = 0;        // attempts ended by an injected failure
  int64_t speculative = 0;
  int64_t saves = 0;
  int64_t restores = 0;
  double backoff = 0.0;
};

SpanTally TallySpans(const std::vector<TraceSpan>& spans) {
  SpanTally tally;
  for (const TraceSpan& span : spans) {
    switch (span.kind) {
      case SpanKind::kAttempt:
        if (span.speculative) {
          ++tally.speculative;
        } else if (span.outcome == SpanOutcome::kMachineLost) {
          ++tally.machine_lost;
        } else {
          ++tally.regular;
          if (span.outcome == SpanOutcome::kFailed) ++tally.failed;
        }
        break;
      case SpanKind::kCheckpointSave:
        ++tally.saves;
        break;
      case SpanKind::kCheckpointRestore:
        ++tally.restores;
        break;
      case SpanKind::kRetryBackoff:
        tally.backoff += span.end - span.start;
        break;
      case SpanKind::kShuffle:
      case SpanKind::kSpillWrite:
      case SpanKind::kSpillMerge:
        break;
    }
  }
  return tally;
}

// Span/instant counts must reconcile exactly with the run's "mr." counters.
void CheckCounterReconciliation(const TraceRecorder& recorder,
                                const Counters& counters) {
  const SpanTally tally = TallySpans(recorder.spans());
  EXPECT_EQ(tally.regular, counters.Get("mr.attempts"));
  EXPECT_EQ(tally.failed, counters.Get("mr.failed_attempts"));
  EXPECT_EQ(tally.machine_lost, counters.Get("mr.faults.machine_lost"));
  EXPECT_EQ(tally.speculative, counters.Get("mr.speculative_launched"));
  EXPECT_EQ(tally.saves, counters.Get("mr.checkpoint.saved"));
  EXPECT_EQ(tally.restores, counters.Get("mr.checkpoint.restored"));
  int64_t deaths = 0;
  int64_t blacklists = 0;
  for (const TraceInstant& instant : recorder.instants()) {
    if (instant.kind == InstantKind::kMachineDeath) ++deaths;
    if (instant.kind == InstantKind::kMachineBlacklisted) ++blacklists;
  }
  EXPECT_EQ(deaths, counters.Get("mr.faults.machines_dead"));
  EXPECT_EQ(blacklists, counters.Get("mr.blacklist.machines"));
  // The counter rounds the per-phase totals to whole seconds, so the exact
  // span durations must agree within one second.
  EXPECT_NEAR(tally.backoff,
              static_cast<double>(counters.Get("mr.retry.backoff_seconds")),
              1.0);
}

// Alpha emissions must advance monotonically per task, in time and pairs.
void CheckEmissionMonotonicity(const std::vector<AlphaEmission>& emissions) {
  std::map<std::pair<int, int>, const AlphaEmission*> last;  // (pid, task)
  for (const AlphaEmission& emission : emissions) {
    EXPECT_GT(emission.pairs, 0);
    const AlphaEmission*& prev = last[{emission.pid, emission.task}];
    if (prev != nullptr) {
      EXPECT_GE(emission.time, prev->time - kEps);
      EXPECT_EQ(emission.cumulative_pairs,
                prev->cumulative_pairs + emission.pairs);
    } else {
      EXPECT_EQ(emission.cumulative_pairs, emission.pairs);
    }
    prev = &emission;
  }
}

// ---- Randomized cluster/fault/checkpoint sweep on a toy job ----

constexpr int kMapTasks = 5;
constexpr int kReduceTasks = 4;

using Job = MapReduceJob<int, int, int>;

Job::Result RunToyJob(const ClusterConfig& cluster, CheckpointStore* store,
                      double alpha) {
  std::vector<int> input;
  for (int i = 0; i < 263; ++i) input.push_back(i * 37 % 101);
  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  job.set_reduce_cleanup([](Job::ReduceContext* ctx) {
    ctx->clock().Charge(2.0);
    ctx->Emit(-1, ctx->task_id());
  });
  if (store != nullptr) job.set_checkpointing(alpha, store, nullptr, nullptr);
  return job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 13, record);
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

struct RandomConfig {
  ClusterConfig cluster;
  bool checkpoint = false;
};

// Randomized cluster shape x fault plan x checkpoint on/off. Kept inside
// the survivable envelope: at most one injected machine death (and only
// with >= 3 machines, blacklisting off), generous max_attempts.
RandomConfig MakeRandomConfig(uint64_t seed) {
  Rng rng(seed);
  RandomConfig config;
  ClusterConfig& cluster = config.cluster;
  cluster.machines = static_cast<int>(rng.UniformInt(2, 4));
  cluster.map_slots_per_machine = static_cast<int>(rng.UniformInt(1, 2));
  cluster.reduce_slots_per_machine = static_cast<int>(rng.UniformInt(1, 2));
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  if (rng.Bernoulli(0.5)) {
    for (int m = 0; m < cluster.machines; ++m) {
      cluster.machine_speed.push_back(0.5 +
                                      0.25 * static_cast<double>(
                                                 rng.UniformInt(0, 4)));
    }
  }
  cluster.fault.enabled = true;
  cluster.fault.seed = seed * 7919 + 13;
  cluster.fault.max_attempts = 10;
  cluster.fault.map_failure_prob = rng.Bernoulli(0.5) ? 0.2 : 0.0;
  cluster.fault.reduce_failure_prob = rng.Bernoulli(0.7) ? 0.35 : 0.0;
  if (rng.Bernoulli(0.5)) {
    cluster.fault.retry_backoff_seconds = 3.0;
  }
  const bool kill_machine = cluster.machines >= 3 && rng.Bernoulli(0.6);
  if (kill_machine) {
    const int victim =
        static_cast<int>(rng.UniformInt(0, cluster.machines - 1));
    cluster.fault.machine_failures = {
        {victim, 5.0 + rng.UniformDouble() * 40.0}};
  } else if (rng.Bernoulli(0.5)) {
    // Blacklisting and speculation are exercised on death-free timelines.
    cluster.fault.blacklist_failures = 2;
    cluster.speculation.enabled = true;
    cluster.speculation.min_remaining_seconds = 1.0;
  }
  config.checkpoint = rng.Bernoulli(0.5);
  return config;
}

class TraceInvariantTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TraceInvariantTest, RandomizedRunSatisfiesSpanInvariants) {
  const RandomConfig config = MakeRandomConfig(GetParam());
  const double alpha = 10.0;

  // Untraced reference run of the identical configuration.
  CheckpointStore plain_store;
  const Job::Result plain =
      RunToyJob(config.cluster,
                config.checkpoint ? &plain_store : nullptr, alpha);
  ASSERT_FALSE(plain.failed) << plain.error;

  TraceRecorder recorder;
  ClusterConfig traced_cluster = config.cluster;
  traced_cluster.trace = &recorder;
  CheckpointStore traced_store;
  const Job::Result traced =
      RunToyJob(traced_cluster, config.checkpoint ? &traced_store : nullptr,
                alpha);
  ASSERT_FALSE(traced.failed) << traced.error;

  // Differential: tracing is purely observational.
  EXPECT_EQ(traced.outputs, plain.outputs);
  EXPECT_EQ(traced.counters.values(), plain.counters.values());
  EXPECT_EQ(traced.timing.end, plain.timing.end);
  EXPECT_EQ(traced.timing.map_end, plain.timing.map_end);

  const std::vector<TraceSpan> spans = recorder.spans();
  EXPECT_FALSE(spans.empty());
  CheckNoLaneOverlap(spans);
  CheckChildNesting(spans);
  CheckCounterReconciliation(recorder, traced.counters);

  // Attempt spans must carry a machine id consistent with their slot.
  const int map_spm = config.cluster.map_slots_per_machine;
  const int reduce_spm = config.cluster.reduce_slots_per_machine;
  for (const TraceSpan& span : spans) {
    if (span.kind != SpanKind::kAttempt) continue;
    const int spm = span.phase == TaskPhase::kMap ? map_spm : reduce_spm;
    EXPECT_EQ(span.machine, span.slot / spm);
    EXPECT_LT(span.machine, config.cluster.machines);
    EXPECT_LE(span.start, span.end + kEps);
  }

  // Exactly one shuffle mark per reduce task, on its winning attempt.
  int64_t shuffles = 0;
  for (const TraceSpan& span : spans) {
    if (span.kind == SpanKind::kShuffle) ++shuffles;
  }
  EXPECT_EQ(shuffles, kReduceTasks);

  // The exports must render without tripping assertions or loops.
  EXPECT_FALSE(recorder.ToChromeJson().empty());
  EXPECT_FALSE(recorder.ToSlotTimeline().empty());
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, TraceInvariantTest,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                         10u));

// ---- End-to-end: a fault-injected progressive run ----

TEST(TraceErDriverTest, FaultInjectedRunShowsKillsDeathsAndEmissions) {
  const testing_util::GoldenWorkload w = testing_util::MakeGoldenWorkload();
  const SortedNeighborMechanism sn;
  const ProbabilityModel prob =
      ProbabilityModel::Train(w.train.dataset, w.train.truth, w.blocking);

  // Fault-free dry run, itself traced: its timeline pins where machine 1 is
  // guaranteed to be mid-attempt during resolution. With no injected task
  // failures the faulty run replays the identical schedule up to the death,
  // so a death placed inside a clean attempt must kill it.
  TraceRecorder clean_recorder;
  ProgressiveErOptions clean_options;
  clean_options.cluster = testing_util::GoldenCluster();
  clean_options.cluster.trace = &clean_recorder;
  const ProgressiveEr clean_er(w.blocking, w.match, sn, prob, clean_options);
  const ErRunResult clean = clean_er.Run(w.data.dataset);
  ASSERT_FALSE(clean.failed) << clean.error;

  const int clean_resolution_pid = clean_recorder.PidOf("resolution job");
  ASSERT_NE(clean_resolution_pid, -1);
  double death_time = -1.0;
  double longest = 0.0;
  for (const TraceSpan& span : clean_recorder.spans()) {
    if (span.kind != SpanKind::kAttempt || span.pid != clean_resolution_pid ||
        span.phase != TaskPhase::kReduce || span.machine != 1) {
      continue;
    }
    if (span.end - span.start > longest) {
      longest = span.end - span.start;
      death_time = 0.5 * (span.start + span.end);
    }
  }
  ASSERT_GT(longest, 0.0) << "no reduce attempt ran on machine 1";

  TraceRecorder recorder;
  ProgressiveErOptions options;
  options.cluster = testing_util::GoldenCluster();
  options.cluster.trace = &recorder;
  options.cluster.fault.enabled = true;
  options.cluster.fault.seed = 99;
  options.cluster.fault.max_attempts = 10;
  options.cluster.fault.retry_backoff_seconds = 1.0;
  options.cluster.fault.machine_failures = {{1, death_time}};
  options.checkpoint_recovery = true;
  const ProgressiveEr er(w.blocking, w.match, sn, prob, options);
  const ErRunResult result = er.Run(w.data.dataset);
  ASSERT_FALSE(result.failed) << result.error;

  // Exactly-once data plane: faults never change the resolved pairs.
  EXPECT_EQ(result.duplicates, clean.duplicates);

  // The pipeline's stages are registered as trace processes.
  EXPECT_GE(recorder.process_names().size(), 2u);
  EXPECT_NE(recorder.PidOf("statistics job"), -1);
  EXPECT_NE(recorder.PidOf("resolution job"), -1);

  // The acceptance criterion: the trace visibly contains killed-attempt
  // spans and machine-death instants.
  ASSERT_GT(result.counters.Get("mr.faults.machine_lost"), 0)
      << "machine death did not kill any in-flight attempt; trace cannot "
         "show kills";
  const std::vector<TraceSpan> spans = recorder.spans();
  CheckNoLaneOverlap(spans);
  CheckChildNesting(spans);

  // ErRunResult::counters reports the resolution stage only, so reconcile
  // the spans recorded under that stage's pid against it.
  const int resolution_pid = recorder.PidOf("resolution job");
  std::vector<TraceSpan> resolution_spans;
  for (const TraceSpan& span : spans) {
    if (span.pid == resolution_pid) resolution_spans.push_back(span);
  }
  const SpanTally tally = TallySpans(resolution_spans);
  EXPECT_EQ(tally.regular, result.counters.Get("mr.attempts"));
  EXPECT_EQ(tally.machine_lost,
            result.counters.Get("mr.faults.machine_lost"));
  EXPECT_GT(tally.machine_lost, 0);
  EXPECT_EQ(tally.saves, result.counters.Get("mr.checkpoint.saved"));
  EXPECT_EQ(tally.restores, result.counters.Get("mr.checkpoint.restored"));
  int64_t resolution_deaths = 0;
  for (const TraceInstant& instant : recorder.instants()) {
    if (instant.kind == InstantKind::kMachineDeath &&
        instant.pid == resolution_pid) {
      ++resolution_deaths;
    }
  }
  EXPECT_EQ(resolution_deaths,
            result.counters.Get("mr.faults.machines_dead"));
  EXPECT_GT(resolution_deaths, 0);

  // One alpha-emission event per incremental-output chunk, monotone per
  // task in time and cumulative pairs.
  const std::vector<AlphaEmission> emissions = recorder.emissions();
  EXPECT_EQ(emissions.size(), result.chunks.size());
  CheckEmissionMonotonicity(emissions);
  int64_t emitted = 0;
  for (const AlphaEmission& emission : emissions) emitted += emission.pairs;
  EXPECT_EQ(emitted, static_cast<int64_t>(result.duplicates.size()));
}

// ---- Golden trace fixture ----

// The traced fixed-seed progressive run must reproduce the frozen Chrome
// trace JSON byte for byte; schedule regressions surface as diffs here.
// Regenerate with `make_er_golden tests/golden` only for intentional
// schedule or trace-format changes.
TEST(TraceGoldenTest, ProgressiveTraceMatchesFrozenFixture) {
  if (std::getenv("PROGRES_FORCE_SPILL") != nullptr) {
    GTEST_SKIP() << "forced spilling adds spill spans; the fixture freezes "
                    "the no-spill trace";
  }
  std::ifstream in(std::string(PROGRES_GOLDEN_DIR) +
                       "/trace_progressive.golden",
                   std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing trace_progressive.golden";
  std::stringstream frozen;
  frozen << in.rdbuf();
  EXPECT_EQ(testing_util::GoldenTraceJson(), frozen.str());
}

}  // namespace
}  // namespace progres

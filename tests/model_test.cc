#include <algorithm>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "model/dataset.h"
#include "model/entity.h"
#include "model/ground_truth.h"
#include "model/union_find.h"

namespace progres {
namespace {

// ---------------------------------------------------------------- pairs

TEST(PairKeyTest, OrderIndependent) {
  EXPECT_EQ(MakePairKey(3, 9), MakePairKey(9, 3));
}

TEST(PairKeyTest, DistinctPairsDistinctKeys) {
  EXPECT_NE(MakePairKey(1, 2), MakePairKey(1, 3));
  EXPECT_NE(MakePairKey(1, 2), MakePairKey(2, 3));
}

TEST(PairKeyTest, RoundTripIds) {
  const auto [a, b] = PairKeyIds(MakePairKey(42, 7));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 42);
}

TEST(EntityTest, MissingAttributeIsEmpty) {
  Entity e;
  e.attributes = {"x"};
  EXPECT_EQ(e.attribute(0), "x");
  EXPECT_EQ(e.attribute(5), "");
}

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, AddAssignsDenseIds) {
  Dataset d({"name"});
  EXPECT_EQ(d.Add({"a"}), 0);
  EXPECT_EQ(d.Add({"b"}), 1);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.entity(1).attribute(0), "b");
}

TEST(DatasetTest, AttributeIndex) {
  Dataset d({"title", "venue"});
  EXPECT_EQ(d.AttributeIndex("title"), 0);
  EXPECT_EQ(d.AttributeIndex("venue"), 1);
  EXPECT_EQ(d.AttributeIndex("nope"), -1);
}

TEST(DatasetTest, TsvRoundTrip) {
  Dataset d({"a", "b"});
  d.Add({"x", "y"});
  d.Add({"", "z"});
  const std::string path = testing::TempDir() + "/progres_dataset.tsv";
  ASSERT_TRUE(d.SaveTsv(path));
  Dataset loaded;
  ASSERT_TRUE(Dataset::LoadTsv(path, &loaded));
  ASSERT_EQ(loaded.size(), 2);
  EXPECT_EQ(loaded.schema(), d.schema());
  EXPECT_EQ(loaded.entity(0).attributes, d.entity(0).attributes);
  EXPECT_EQ(loaded.entity(1).attributes, d.entity(1).attributes);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- truth

TEST(GroundTruthTest, CountsDuplicatePairs) {
  // Clusters: {0,1,2} (3 pairs), {3,4} (1 pair), {5} (0 pairs).
  GroundTruth truth({7, 7, 7, 9, 9, 11});
  EXPECT_EQ(truth.num_duplicate_pairs(), 4);
  EXPECT_TRUE(truth.IsDuplicate(0, 2));
  EXPECT_FALSE(truth.IsDuplicate(2, 3));
}

TEST(GroundTruthTest, AllDuplicatePairsEnumerates) {
  GroundTruth truth({1, 1, 2, 2, 2});
  std::vector<PairKey> pairs = truth.AllDuplicatePairs();
  std::sort(pairs.begin(), pairs.end());
  const std::vector<PairKey> expected = {MakePairKey(0, 1), MakePairKey(2, 3),
                                         MakePairKey(2, 4), MakePairKey(3, 4)};
  EXPECT_EQ(pairs, expected);
}

TEST(GroundTruthTest, TsvRoundTrip) {
  GroundTruth truth({5, 5, 6});
  const std::string path = testing::TempDir() + "/progres_truth.tsv";
  ASSERT_TRUE(truth.SaveTsv(path));
  GroundTruth loaded;
  ASSERT_TRUE(GroundTruth::LoadTsv(path, &loaded));
  EXPECT_EQ(loaded.num_entities(), 3);
  EXPECT_EQ(loaded.num_duplicate_pairs(), 1);
  EXPECT_TRUE(loaded.IsDuplicate(0, 1));
  EXPECT_FALSE(loaded.IsDuplicate(0, 2));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- unionfind

TEST(UnionFindTest, InitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Connected(2, 2));
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));  // already connected
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFindTest, TransitiveClosureOfChain) {
  UnionFind uf(100);
  for (int i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.Connected(0, 99));
}

}  // namespace
}  // namespace progres

// Machine-level fault domains: deterministic machine deaths kill the
// attempts on the machine's slots and remove it from the cluster, orphaned
// tasks re-queue (with exponential backoff) on the survivors, repeatedly
// failing machines are blacklisted, and the data plane stays byte-identical
// throughout — only the simulated timeline and "mr." bookkeeping change.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mechanism/sorted_neighbor.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;
using testing_util::ValidateAttemptSchedule;

// ---- FaultPlan machine-failure derivation ----

TEST(MachineFailurePlanTest, DisabledPlanHasNoFailures) {
  FaultConfig config;
  config.machine_failures.push_back({0, 5.0});
  config.machine_failure_prob = 1.0;
  config.machine_failure_horizon_seconds = 100.0;
  const FaultPlan plan(config);  // enabled stays false
  EXPECT_TRUE(plan.MachineFailures(4).empty());
}

TEST(MachineFailurePlanTest, SeededFailuresAreDeterministicAndInRange) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 11;
  config.machine_failure_prob = 0.5;
  config.machine_failure_horizon_seconds = 100.0;
  const FaultPlan plan(config);
  const std::vector<MachineFault> a = plan.MachineFailures(10);
  const std::vector<MachineFault> b = plan.MachineFailures(10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_GE(a[i].machine, 0);
    EXPECT_LT(a[i].machine, 10);
    EXPECT_GE(a[i].time, 0.0);
    EXPECT_LT(a[i].time, 100.0);
  }
  // prob=0.5 over 10 machines: some die, some survive (seed-checked once).
  EXPECT_GE(a.size(), 1u);
  EXPECT_LT(a.size(), 10u);
  // Sorted by (time, machine), at most one event per machine.
  std::vector<bool> seen(10, false);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].time, a[i].time);
  }
  for (const MachineFault& f : a) {
    EXPECT_FALSE(seen[static_cast<size_t>(f.machine)]);
    seen[static_cast<size_t>(f.machine)] = true;
  }
}

TEST(MachineFailurePlanTest, InjectedMergesWithSeededEarliestWins) {
  FaultConfig config;
  config.enabled = true;
  config.machine_failures.push_back({2, 30.0});
  config.machine_failures.push_back({2, 10.0});  // earlier event wins
  config.machine_failures.push_back({7, 12.0});  // out of range for 4 machines
  const FaultPlan plan(config);
  const std::vector<MachineFault> failures = plan.MachineFailures(4);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].machine, 2);
  EXPECT_DOUBLE_EQ(failures[0].time, 10.0);
}

// ---- Scheduler-level fault domains ----

AttemptScheduleOptions TwoMachineOptions() {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0, 1.0};
  options.slots_per_machine = 1;  // slot s == machine s
  options.seconds_per_cost_unit = 1.0;
  return options;
}

TEST(MachineScheduleTest, NoFaultsMatchesLegacyScheduler) {
  const std::vector<std::vector<double>> chains = {
      {5.0}, {3.0, 9.0}, {2.0}, {7.0, 1.0, 4.0}, {6.0}};
  const std::vector<double> speeds = {1.0, 0.5, 2.0};
  double legacy_end = 0.0;
  std::vector<double> legacy_starts;
  const std::vector<TaskAttemptTiming> legacy = ScheduleTaskAttempts(
      chains, speeds, 2.0, 0.5, SpeculationConfig{}, &legacy_end,
      &legacy_starts);

  AttemptScheduleOptions options;
  options.slot_speeds = speeds;
  options.slots_per_machine = 1;
  options.start_time = 2.0;
  options.seconds_per_cost_unit = 0.5;
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster(chains, options);

  EXPECT_DOUBLE_EQ(outcome.end_time, legacy_end);
  ASSERT_EQ(outcome.attempts.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(outcome.attempts[i].task, legacy[i].task);
    EXPECT_EQ(outcome.attempts[i].slot, legacy[i].slot);
    EXPECT_DOUBLE_EQ(outcome.attempts[i].start, legacy[i].start);
    EXPECT_DOUBLE_EQ(outcome.attempts[i].end, legacy[i].end);
    EXPECT_EQ(outcome.attempts[i].won, legacy[i].won);
  }
  ASSERT_EQ(outcome.winning_starts.size(), legacy_starts.size());
  for (size_t i = 0; i < legacy_starts.size(); ++i) {
    EXPECT_DOUBLE_EQ(outcome.winning_starts[i], legacy_starts[i]);
  }
  EXPECT_EQ(outcome.machine_lost_attempts, 0);
  EXPECT_EQ(outcome.machines_lost, 0);
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 0.0);
}

TEST(MachineScheduleTest, DeathKillsAttemptAndRequeuesOnSurvivor) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.machine_failures = {{0, 5.0}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{10.0}, {10.0}}, options);

  ASSERT_FALSE(outcome.failed);
  // Task 0 runs 0-5 on machine 0, is killed, then re-runs its full 10 units
  // on machine 1 after task 1 finishes there at t=10.
  ASSERT_EQ(outcome.attempts.size(), 3u);
  const TaskAttemptTiming& killed = outcome.attempts[0];
  EXPECT_EQ(killed.task, 0);
  EXPECT_TRUE(killed.machine_lost);
  EXPECT_TRUE(killed.failed);
  EXPECT_FALSE(killed.won);
  EXPECT_DOUBLE_EQ(killed.start, 0.0);
  EXPECT_DOUBLE_EQ(killed.end, 5.0);
  const TaskAttemptTiming& rerun = outcome.attempts.back();
  EXPECT_EQ(rerun.task, 0);
  EXPECT_EQ(rerun.attempt, killed.attempt);  // no max_attempts consumed
  EXPECT_EQ(rerun.slot, 1);
  EXPECT_TRUE(rerun.won);
  EXPECT_DOUBLE_EQ(rerun.start, 10.0);
  EXPECT_DOUBLE_EQ(rerun.end, 20.0);
  EXPECT_DOUBLE_EQ(outcome.end_time, 20.0);
  EXPECT_EQ(outcome.machine_lost_attempts, 1);
  EXPECT_EQ(outcome.machines_lost, 1);
  // The 5 units done before the kill are replayed from scratch.
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 5.0);
  ValidateAttemptSchedule(outcome.attempts, 2, 0.0, outcome.end_time);
}

TEST(MachineScheduleTest, RecoveryPointShortensTheRerun) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.machine_failures = {{0, 5.0}};
  // Checkpoints at 2 and 4 cost units: the kill at progress 5 resumes from
  // 4, so the rerun executes only 6 of the 10 units.
  options.recovery_points = {{2.0, 4.0}, {}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{10.0}, {10.0}}, options);

  ASSERT_FALSE(outcome.failed);
  const TaskAttemptTiming& rerun = outcome.attempts.back();
  EXPECT_EQ(rerun.task, 0);
  EXPECT_DOUBLE_EQ(rerun.start, 10.0);
  EXPECT_DOUBLE_EQ(rerun.end, 16.0);
  EXPECT_DOUBLE_EQ(outcome.end_time, 16.0);
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 1.0);  // progress 5 - point 4
}

TEST(MachineScheduleTest, LosingEveryMachineFailsThePhase) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.machine_failures = {{0, 5.0}, {1, 8.0}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{10.0}, {10.0}}, options);
  EXPECT_TRUE(outcome.failed);
  EXPECT_GE(outcome.failed_task, 0);
  // The last death coincides with the truncated makespan, so at least the
  // earlier one falls inside the phase window.
  EXPECT_GE(outcome.machines_lost, 1);
  EXPECT_GE(outcome.machine_lost_attempts, 2);
}

TEST(MachineScheduleTest, BackoffDelaysEachRedispatchExponentially) {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0};
  options.slots_per_machine = 1;
  options.seconds_per_cost_unit = 1.0;
  options.retry_backoff_seconds = 3.0;
  options.retry_backoff_factor = 2.0;
  // Two plan failures then success: re-dispatch delays 3 and 6 seconds.
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{5.0, 5.0, 10.0}}, options);
  ASSERT_FALSE(outcome.failed);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  EXPECT_DOUBLE_EQ(outcome.attempts[0].start, 0.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[0].end, 5.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[1].start, 8.0);   // 5 + 3
  EXPECT_DOUBLE_EQ(outcome.attempts[1].end, 13.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[2].start, 19.0);  // 13 + 6
  EXPECT_DOUBLE_EQ(outcome.attempts[2].end, 29.0);
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 9.0);
  EXPECT_DOUBLE_EQ(outcome.end_time, 29.0);
}

TEST(MachineScheduleTest, RepeatedFailuresBlacklistTheMachine) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.blacklist_failures = 2;
  // Task 0 fails twice; both failures land on machine 0 (ties go to the
  // lowest slot), so machine 0 is blacklisted and the third attempt runs on
  // machine 1.
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{1.0, 1.0, 10.0}}, options);
  ASSERT_FALSE(outcome.failed);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  EXPECT_EQ(outcome.attempts[0].slot, 0);
  EXPECT_EQ(outcome.attempts[1].slot, 0);
  EXPECT_EQ(outcome.attempts[2].slot, 1);
  EXPECT_TRUE(outcome.attempts[2].won);
  EXPECT_EQ(outcome.machines_blacklisted, 1);
}

TEST(MachineScheduleTest, LastHealthyMachineIsNeverBlacklisted) {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0};
  options.slots_per_machine = 1;
  options.seconds_per_cost_unit = 1.0;
  options.blacklist_failures = 1;
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{1.0, 1.0, 10.0}}, options);
  ASSERT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.machines_blacklisted, 0);
  EXPECT_TRUE(outcome.attempts.back().won);
}

// ---- Job-level: data plane unchanged, timeline and counters shift ----

constexpr int kMapTasks = 4;
constexpr int kReduceTasks = 3;

ClusterConfig TestCluster(FaultConfig fault = FaultConfig()) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  cluster.fault = std::move(fault);
  return cluster;
}

using Job = MapReduceJob<int, int, int>;

Job::Result RunJob(const ClusterConfig& cluster) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);
  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  return job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("map.records");
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

TEST(MachineFaultJobTest, OutputsIdenticalUnderMachineLoss) {
  const Job::Result baseline = RunJob(TestCluster());
  ASSERT_FALSE(baseline.failed);

  FaultConfig fault;
  fault.enabled = true;
  fault.machine_failures = {{0, 20.0}};  // dies mid-map
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;

  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters), CountersMinusMr(baseline.counters));
  EXPECT_GE(run.counters.Get("mr.faults.machine_lost"), 1);
  EXPECT_EQ(run.counters.Get("mr.faults.machines_dead"), 1);
  EXPECT_GT(run.counters.Get("mr.recovery.replayed_cost"), 0);
  EXPECT_GE(run.timing.end, baseline.timing.end);
  ValidateAttemptSchedule(run.timing.map_attempts, kMapTasks, run.timing.start,
                          run.timing.map_end);
  ValidateAttemptSchedule(run.timing.reduce_attempts, kReduceTasks,
                          run.timing.map_end, run.timing.end);
}

TEST(MachineFaultJobTest, FaultFreeCounterSetHasNoRecoveryEntries) {
  const Job::Result baseline = RunJob(TestCluster());
  for (const std::string name :
       {"mr.faults.machine_lost", "mr.faults.machines_dead",
        "mr.blacklist.machines", "mr.retry.backoff_seconds",
        "mr.recovery.replayed_pairs", "mr.recovery.replayed_cost",
        "mr.checkpoint.saved", "mr.checkpoint.restored"}) {
    EXPECT_EQ(baseline.counters.values().count(name), 0u) << name;
  }
}

TEST(MachineFaultJobTest, LosingAllMachinesFailsTheJobCleanly) {
  FaultConfig fault;
  fault.enabled = true;
  fault.machine_failures = {{0, 10.0}, {1, 15.0}};
  const Job::Result run = RunJob(TestCluster(fault));
  EXPECT_TRUE(run.failed);
  EXPECT_NE(run.error.find("no healthy machines remain"), std::string::npos)
      << run.error;
  EXPECT_TRUE(run.outputs.empty());
  // Only the runtime's own bookkeeping survives a failed job.
  for (const auto& [name, value] : run.counters.values()) {
    EXPECT_EQ(name.rfind("mr.", 0), 0u) << name;
  }
}

TEST(MachineFaultJobTest, BackoffShiftsTimelineOnly) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.injected = {{TaskPhase::kReduce, 0, 0}, {TaskPhase::kReduce, 0, 1}};
  const Job::Result immediate = RunJob(TestCluster(fault));
  ASSERT_FALSE(immediate.failed);

  fault.retry_backoff_seconds = 5.0;
  fault.retry_backoff_factor = 2.0;
  const Job::Result delayed = RunJob(TestCluster(fault));
  ASSERT_FALSE(delayed.failed);

  EXPECT_EQ(delayed.outputs, immediate.outputs);
  // Two failures of one task: delays 5 and 10 seconds.
  EXPECT_EQ(delayed.counters.Get("mr.retry.backoff_seconds"), 15);
  EXPECT_GE(delayed.timing.end, immediate.timing.end + 15.0);
}

// ---- End-to-end: ProgressiveEr under machine failures ----

TEST(MachineFaultJobTest, ProgressiveErResolvedPairsSurviveMachineLoss) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 23;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = 500;
  train_gen.seed = 24;
  const LabeledDataset train = GeneratePublications(train_gen);

  const BlockingConfig blocking(
      {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.7, 0},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.3, 0}},
      0.75);
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);
  const SortedNeighborMechanism sn;

  ProgressiveErOptions options;
  options.cluster = TestCluster();
  options.cluster.machines = 3;
  options.cluster.seconds_per_cost_unit = 1e-3;
  const ErRunResult clean =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(clean.failed) << clean.error;

  ProgressiveErOptions faulty_options = options;
  faulty_options.cluster.fault.enabled = true;
  faulty_options.cluster.fault.seed = 5;
  faulty_options.cluster.fault.reduce_failure_prob = 0.2;
  faulty_options.cluster.fault.max_attempts = 10;
  faulty_options.cluster.fault.retry_backoff_seconds = 1.0;
  // One machine dies mid-run; the survivors absorb its tasks.
  faulty_options.cluster.fault.machine_failures = {
      {1, clean.total_time * 0.5}};
  const ErRunResult faulty =
      ProgressiveEr(blocking, match, sn, prob, faulty_options)
          .Run(data.dataset);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  // Byte-identical resolved pairs — the acceptance bar for fault domains.
  EXPECT_EQ(faulty.duplicates, clean.duplicates);
  EXPECT_EQ(faulty.duplicate_count, clean.duplicate_count);
  EXPECT_EQ(faulty.comparisons, clean.comparisons);
  EXPECT_EQ(CountersMinusMr(faulty.counters), CountersMinusMr(clean.counters));
  EXPECT_GE(faulty.total_time, clean.total_time);
}

}  // namespace
}  // namespace progres

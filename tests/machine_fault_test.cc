// Machine-level fault domains: deterministic machine deaths kill the
// attempts on the machine's slots and remove it from the cluster, orphaned
// tasks re-queue (with exponential backoff) on the survivors, repeatedly
// failing machines are blacklisted, and the data plane stays byte-identical
// throughout — only the simulated timeline and "mr." bookkeeping change.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "mapreduce/fault.h"
#include "mapreduce/job.h"
#include "mechanism/sorted_neighbor.h"
#include "mr_test_util.h"

namespace progres {
namespace {

using testing_util::CountersMinusMr;
using testing_util::ValidateAttemptSchedule;

// ---- FaultPlan machine-failure derivation ----

TEST(MachineFailurePlanTest, DisabledPlanHasNoFailures) {
  FaultConfig config;
  config.machine_failures.push_back({0, 5.0});
  config.machine_failure_prob = 1.0;
  config.machine_failure_horizon_seconds = 100.0;
  const FaultPlan plan(config);  // enabled stays false
  EXPECT_TRUE(plan.MachineFailures(4).empty());
}

TEST(MachineFailurePlanTest, SeededFailuresAreDeterministicAndInRange) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 11;
  config.machine_failure_prob = 0.5;
  config.machine_failure_horizon_seconds = 100.0;
  const FaultPlan plan(config);
  const std::vector<MachineFault> a = plan.MachineFailures(10);
  const std::vector<MachineFault> b = plan.MachineFailures(10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_GE(a[i].machine, 0);
    EXPECT_LT(a[i].machine, 10);
    EXPECT_GE(a[i].time, 0.0);
    EXPECT_LT(a[i].time, 100.0);
  }
  // prob=0.5 over 10 machines: some die, some survive (seed-checked once).
  EXPECT_GE(a.size(), 1u);
  EXPECT_LT(a.size(), 10u);
  // Sorted by (time, machine), at most one event per machine.
  std::vector<bool> seen(10, false);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].time, a[i].time);
  }
  for (const MachineFault& f : a) {
    EXPECT_FALSE(seen[static_cast<size_t>(f.machine)]);
    seen[static_cast<size_t>(f.machine)] = true;
  }
}

TEST(MachineFailurePlanTest, InjectedMergesWithSeededEarliestWins) {
  FaultConfig config;
  config.enabled = true;
  config.machine_failures.push_back({2, 30.0});
  config.machine_failures.push_back({2, 10.0});  // earlier event wins
  config.machine_failures.push_back({7, 12.0});  // out of range for 4 machines
  const FaultPlan plan(config);
  const std::vector<MachineFault> failures = plan.MachineFailures(4);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].machine, 2);
  EXPECT_DOUBLE_EQ(failures[0].time, 10.0);
}

// ---- Config validation of the fault taxonomy knobs ----

TEST(FaultValidationTest, RejectsOutOfRangeHangTimeoutAndSkipKnobs) {
  const auto error_of = [](void (*mutate)(FaultConfig*)) {
    ClusterConfig cluster;
    cluster.fault.enabled = true;
    mutate(&cluster.fault);
    return ValidateClusterConfig(cluster);
  };

  EXPECT_NE(error_of([](FaultConfig* f) { f->map_hang_prob = 1.5; })
                .find("fault.map_hang_prob"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) { f->reduce_hang_prob = -0.1; })
                .find("fault.reduce_hang_prob"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) { f->task_timeout_seconds = -1.0; })
                .find("fault.task_timeout_seconds"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) {
              f->injected_hangs = {{TaskPhase::kMap, 0, 0, 0.0}};
            }).find("fault.injected_hangs[0].hang_at_fraction"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) {
              f->injected_hangs = {{TaskPhase::kMap, 0, 0, 1.5}};
            }).find("fault.injected_hangs[0].hang_at_fraction"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) { f->shuffle_corrupt_prob = 2.0; })
                .find("fault.shuffle_corrupt_prob"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) { f->max_fetch_retries = -1; })
                .find("fault.max_fetch_retries"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) { f->max_attempts_before_skip = 0; })
                .find("fault.max_attempts_before_skip"),
            std::string::npos);
  EXPECT_NE(error_of([](FaultConfig* f) { f->poison_records = {-3}; })
                .find("fault.poison_records[0]"),
            std::string::npos);
  // In-range values of every new knob pass.
  EXPECT_EQ(error_of([](FaultConfig* f) {
              f->map_hang_prob = 0.5;
              f->reduce_hang_prob = 1.0;
              f->task_timeout_seconds = 0.0;
              f->injected_hangs = {{TaskPhase::kReduce, 1, 0, 1.0}};
              f->shuffle_corrupt_prob = 0.25;
              f->max_fetch_retries = 0;
              f->max_attempts_before_skip = 1;
              f->poison_records = {0, 7};
            }),
            "");
}

// ---- Scheduler-level fault domains ----

AttemptScheduleOptions TwoMachineOptions() {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0, 1.0};
  options.slots_per_machine = 1;  // slot s == machine s
  options.seconds_per_cost_unit = 1.0;
  return options;
}

TEST(MachineScheduleTest, NoFaultsMatchesLegacyScheduler) {
  const std::vector<std::vector<double>> chains = {
      {5.0}, {3.0, 9.0}, {2.0}, {7.0, 1.0, 4.0}, {6.0}};
  const std::vector<double> speeds = {1.0, 0.5, 2.0};
  double legacy_end = 0.0;
  std::vector<double> legacy_starts;
  const std::vector<TaskAttemptTiming> legacy = ScheduleTaskAttempts(
      chains, speeds, 2.0, 0.5, SpeculationConfig{}, &legacy_end,
      &legacy_starts);

  AttemptScheduleOptions options;
  options.slot_speeds = speeds;
  options.slots_per_machine = 1;
  options.start_time = 2.0;
  options.seconds_per_cost_unit = 0.5;
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster(chains, options);

  EXPECT_DOUBLE_EQ(outcome.end_time, legacy_end);
  ASSERT_EQ(outcome.attempts.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(outcome.attempts[i].task, legacy[i].task);
    EXPECT_EQ(outcome.attempts[i].slot, legacy[i].slot);
    EXPECT_DOUBLE_EQ(outcome.attempts[i].start, legacy[i].start);
    EXPECT_DOUBLE_EQ(outcome.attempts[i].end, legacy[i].end);
    EXPECT_EQ(outcome.attempts[i].won, legacy[i].won);
  }
  ASSERT_EQ(outcome.winning_starts.size(), legacy_starts.size());
  for (size_t i = 0; i < legacy_starts.size(); ++i) {
    EXPECT_DOUBLE_EQ(outcome.winning_starts[i], legacy_starts[i]);
  }
  EXPECT_EQ(outcome.machine_lost_attempts, 0);
  EXPECT_EQ(outcome.machines_lost, 0);
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 0.0);
}

TEST(MachineScheduleTest, DeathKillsAttemptAndRequeuesOnSurvivor) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.machine_failures = {{0, 5.0}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{10.0}, {10.0}}, options);

  ASSERT_FALSE(outcome.failed);
  // Task 0 runs 0-5 on machine 0, is killed, then re-runs its full 10 units
  // on machine 1 after task 1 finishes there at t=10.
  ASSERT_EQ(outcome.attempts.size(), 3u);
  const TaskAttemptTiming& killed = outcome.attempts[0];
  EXPECT_EQ(killed.task, 0);
  EXPECT_TRUE(killed.machine_lost);
  EXPECT_TRUE(killed.failed);
  EXPECT_FALSE(killed.won);
  EXPECT_DOUBLE_EQ(killed.start, 0.0);
  EXPECT_DOUBLE_EQ(killed.end, 5.0);
  const TaskAttemptTiming& rerun = outcome.attempts.back();
  EXPECT_EQ(rerun.task, 0);
  EXPECT_EQ(rerun.attempt, killed.attempt);  // no max_attempts consumed
  EXPECT_EQ(rerun.slot, 1);
  EXPECT_TRUE(rerun.won);
  EXPECT_DOUBLE_EQ(rerun.start, 10.0);
  EXPECT_DOUBLE_EQ(rerun.end, 20.0);
  EXPECT_DOUBLE_EQ(outcome.end_time, 20.0);
  EXPECT_EQ(outcome.machine_lost_attempts, 1);
  EXPECT_EQ(outcome.machines_lost, 1);
  // The 5 units done before the kill are replayed from scratch.
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 5.0);
  ValidateAttemptSchedule(outcome.attempts, 2, 0.0, outcome.end_time);
}

TEST(MachineScheduleTest, RecoveryPointShortensTheRerun) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.machine_failures = {{0, 5.0}};
  // Checkpoints at 2 and 4 cost units: the kill at progress 5 resumes from
  // 4, so the rerun executes only 6 of the 10 units.
  options.recovery_points = {{2.0, 4.0}, {}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{10.0}, {10.0}}, options);

  ASSERT_FALSE(outcome.failed);
  const TaskAttemptTiming& rerun = outcome.attempts.back();
  EXPECT_EQ(rerun.task, 0);
  EXPECT_DOUBLE_EQ(rerun.start, 10.0);
  EXPECT_DOUBLE_EQ(rerun.end, 16.0);
  EXPECT_DOUBLE_EQ(outcome.end_time, 16.0);
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 1.0);  // progress 5 - point 4
}

TEST(MachineScheduleTest, LosingEveryMachineFailsThePhase) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.machine_failures = {{0, 5.0}, {1, 8.0}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{10.0}, {10.0}}, options);
  EXPECT_TRUE(outcome.failed);
  EXPECT_GE(outcome.failed_task, 0);
  // The last death coincides with the truncated makespan, so at least the
  // earlier one falls inside the phase window.
  EXPECT_GE(outcome.machines_lost, 1);
  EXPECT_GE(outcome.machine_lost_attempts, 2);
}

TEST(MachineScheduleTest, BackoffDelaysEachRedispatchExponentially) {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0};
  options.slots_per_machine = 1;
  options.seconds_per_cost_unit = 1.0;
  options.retry_backoff_seconds = 3.0;
  options.retry_backoff_factor = 2.0;
  // Two plan failures then success: re-dispatch delays 3 and 6 seconds.
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{5.0, 5.0, 10.0}}, options);
  ASSERT_FALSE(outcome.failed);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  EXPECT_DOUBLE_EQ(outcome.attempts[0].start, 0.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[0].end, 5.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[1].start, 8.0);   // 5 + 3
  EXPECT_DOUBLE_EQ(outcome.attempts[1].end, 13.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[2].start, 19.0);  // 13 + 6
  EXPECT_DOUBLE_EQ(outcome.attempts[2].end, 29.0);
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 9.0);
  EXPECT_DOUBLE_EQ(outcome.end_time, 29.0);
}

TEST(MachineScheduleTest, RepeatedFailuresBlacklistTheMachine) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.blacklist_failures = 2;
  // Task 0 fails twice; both failures land on machine 0 (ties go to the
  // lowest slot), so machine 0 is blacklisted and the third attempt runs on
  // machine 1.
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{1.0, 1.0, 10.0}}, options);
  ASSERT_FALSE(outcome.failed);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  EXPECT_EQ(outcome.attempts[0].slot, 0);
  EXPECT_EQ(outcome.attempts[1].slot, 0);
  EXPECT_EQ(outcome.attempts[2].slot, 1);
  EXPECT_TRUE(outcome.attempts[2].won);
  EXPECT_EQ(outcome.machines_blacklisted, 1);
}

TEST(MachineScheduleTest, LastHealthyMachineIsNeverBlacklisted) {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0};
  options.slots_per_machine = 1;
  options.seconds_per_cost_unit = 1.0;
  options.blacklist_failures = 1;
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{1.0, 1.0, 10.0}}, options);
  ASSERT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.machines_blacklisted, 0);
  EXPECT_TRUE(outcome.attempts.back().won);
}

// ---- Scheduler-level hangs and heartbeat timeouts ----

TEST(MachineScheduleTest, HungAttemptHoldsSlotThroughTimeoutThenRetries) {
  AttemptScheduleOptions options;
  options.slot_speeds = {1.0};
  options.slots_per_machine = 1;
  options.seconds_per_cost_unit = 1.0;
  options.task_timeout_seconds = 7.0;
  // Attempt 0 does 4 units of work, then its heartbeat goes silent; the
  // tracker kills it 7 seconds later and the retry (10 units) runs clean.
  options.hang_attempts = {{1, 0}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{4.0, 10.0}}, options);

  ASSERT_FALSE(outcome.failed);
  ASSERT_EQ(outcome.attempts.size(), 2u);
  const TaskAttemptTiming& hung = outcome.attempts[0];
  EXPECT_TRUE(hung.timed_out);
  EXPECT_TRUE(hung.failed);
  EXPECT_FALSE(hung.won);
  EXPECT_FALSE(hung.machine_lost);
  EXPECT_DOUBLE_EQ(hung.start, 0.0);
  EXPECT_DOUBLE_EQ(hung.end, 11.0);  // 4 units of work + 7s of silence
  const TaskAttemptTiming& retry = outcome.attempts[1];
  EXPECT_TRUE(retry.won);
  EXPECT_FALSE(retry.timed_out);
  EXPECT_DOUBLE_EQ(retry.start, 11.0);
  EXPECT_DOUBLE_EQ(retry.end, 21.0);
  EXPECT_EQ(outcome.timeout_kills, 1);
  EXPECT_DOUBLE_EQ(outcome.end_time, 21.0);
}

TEST(MachineScheduleTest, MachineDeathDuringHangCountsAsMachineLost) {
  AttemptScheduleOptions options = TwoMachineOptions();
  options.task_timeout_seconds = 7.0;
  options.hang_attempts = {{1, 0}};
  // The hung occurrence (work done at t=4, kill due t=11) loses its machine
  // at t=6: that is a machine loss, not a timeout, and the re-run of the
  // same attempt index hangs again on the survivor.
  options.machine_failures = {{0, 6.0}};
  const AttemptScheduleOutcome outcome =
      ScheduleTaskAttemptsOnCluster({{4.0, 10.0}}, options);

  ASSERT_FALSE(outcome.failed);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  const TaskAttemptTiming& lost = outcome.attempts[0];
  EXPECT_TRUE(lost.machine_lost);
  EXPECT_FALSE(lost.timed_out);
  EXPECT_DOUBLE_EQ(lost.end, 6.0);
  const TaskAttemptTiming& rehang = outcome.attempts[1];
  EXPECT_EQ(rehang.attempt, lost.attempt);  // machine loss costs no attempt
  EXPECT_EQ(rehang.slot, 1);
  EXPECT_TRUE(rehang.timed_out);
  EXPECT_DOUBLE_EQ(rehang.start, 6.0);
  EXPECT_DOUBLE_EQ(rehang.end, 17.0);
  const TaskAttemptTiming& retry = outcome.attempts[2];
  EXPECT_TRUE(retry.won);
  EXPECT_DOUBLE_EQ(retry.end, 27.0);
  EXPECT_EQ(outcome.machine_lost_attempts, 1);
  EXPECT_EQ(outcome.timeout_kills, 1);
  // All 4 units of pre-hang progress are replayed (no recovery points).
  EXPECT_DOUBLE_EQ(outcome.replayed_cost_units, 4.0);
}

// ---- Job-level: data plane unchanged, timeline and counters shift ----

constexpr int kMapTasks = 4;
constexpr int kReduceTasks = 3;

ClusterConfig TestCluster(FaultConfig fault = FaultConfig()) {
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.execution_threads = 4;
  cluster.seconds_per_cost_unit = 1.0;
  cluster.fault = std::move(fault);
  return cluster;
}

using Job = MapReduceJob<int, int, int>;

Job::Result RunJob(const ClusterConfig& cluster) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i * 37 % 101);
  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  return job.Run(
      input,
      [](const int& record, Job::MapContext* ctx) {
        ctx->counters().Increment("map.records");
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

TEST(MachineFaultJobTest, OutputsIdenticalUnderMachineLoss) {
  const Job::Result baseline = RunJob(TestCluster());
  ASSERT_FALSE(baseline.failed);

  FaultConfig fault;
  fault.enabled = true;
  fault.machine_failures = {{0, 20.0}};  // dies mid-map
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;

  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters), CountersMinusMr(baseline.counters));
  EXPECT_GE(run.counters.Get("mr.faults.machine_lost"), 1);
  EXPECT_EQ(run.counters.Get("mr.faults.machines_dead"), 1);
  EXPECT_GT(run.counters.Get("mr.recovery.replayed_cost"), 0);
  EXPECT_GE(run.timing.end, baseline.timing.end);
  ValidateAttemptSchedule(run.timing.map_attempts, kMapTasks, run.timing.start,
                          run.timing.map_end);
  ValidateAttemptSchedule(run.timing.reduce_attempts, kReduceTasks,
                          run.timing.map_end, run.timing.end);
}

TEST(MachineFaultJobTest, FaultFreeCounterSetHasNoRecoveryEntries) {
  const Job::Result baseline = RunJob(TestCluster());
  for (const std::string name :
       {"mr.faults.machine_lost", "mr.faults.machines_dead",
        "mr.blacklist.machines", "mr.retry.backoff_seconds",
        "mr.recovery.replayed_pairs", "mr.recovery.replayed_cost",
        "mr.checkpoint.saved", "mr.checkpoint.restored",
        "mr.faults.task_timeouts", "mr.shuffle.checksum_errors",
        "mr.shuffle.refetches", "mr.shuffle.map_reruns",
        "mr.skipped.records"}) {
    EXPECT_EQ(baseline.counters.values().count(name), 0u) << name;
  }
}

TEST(MachineFaultJobTest, OutputsIdenticalUnderInjectedHangs) {
  const Job::Result baseline = RunJob(TestCluster());
  ASSERT_FALSE(baseline.failed);

  FaultConfig fault;
  fault.enabled = true;
  fault.task_timeout_seconds = 30.0;
  fault.injected_hangs = {{TaskPhase::kMap, 1, 0, 0.5},
                          {TaskPhase::kReduce, 0, 0, 0.25}};
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;

  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters), CountersMinusMr(baseline.counters));
  EXPECT_EQ(run.counters.Get("mr.faults.task_timeouts"), 2);
  EXPECT_EQ(run.counters.Get("mr.failed_attempts"), 2);
  // Each hang holds its slot for the timeout before the retry can start.
  EXPECT_GE(run.timing.end, baseline.timing.end + 30.0);
  // A hung original never wins — the timeout kill subsumes the race with
  // any speculative twin.
  int timed_out = 0;
  for (const auto* attempts : {&run.timing.map_attempts,
                               &run.timing.reduce_attempts}) {
    for (const TaskAttemptTiming& a : *attempts) {
      if (a.timed_out) {
        ++timed_out;
        EXPECT_TRUE(a.failed);
        EXPECT_FALSE(a.won);
      }
    }
  }
  EXPECT_EQ(timed_out, 2);
  ValidateAttemptSchedule(run.timing.map_attempts, kMapTasks, run.timing.start,
                          run.timing.map_end);
  ValidateAttemptSchedule(run.timing.reduce_attempts, kReduceTasks,
                          run.timing.map_end, run.timing.end);
}

TEST(MachineFaultJobTest, SeededHangsKeepOutputsIdentical) {
  const Job::Result baseline = RunJob(TestCluster());
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 9;
  fault.map_hang_prob = 0.3;
  fault.reduce_hang_prob = 0.3;
  fault.task_timeout_seconds = 20.0;
  fault.max_attempts = 10;
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters), CountersMinusMr(baseline.counters));
  // prob=0.3 over 7 tasks: at least one hangs (seed-checked once).
  EXPECT_GE(run.counters.Get("mr.faults.task_timeouts"), 1);
}

TEST(MachineFaultJobTest, ShuffleCorruptionRefetchesAndRecovers) {
  const Job::Result baseline = RunJob(TestCluster());
  FaultConfig fault;
  fault.enabled = true;
  fault.seed = 3;
  fault.shuffle_corrupt_prob = 0.4;
  fault.max_fetch_retries = 1;
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;

  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters), CountersMinusMr(baseline.counters));
  const int64_t errors = run.counters.Get("mr.shuffle.checksum_errors");
  // prob=0.4 over 4x3 partitions: some fetch is corrupt (seed-checked once).
  EXPECT_GE(errors, 1);
  // Every checksum error triggers exactly one re-fetch.
  EXPECT_EQ(run.counters.Get("mr.shuffle.refetches"), errors);
  const int64_t reruns = run.counters.Get("mr.shuffle.map_reruns");
  EXPECT_GE(reruns, 0);
  EXPECT_LE(reruns, errors);
  if (reruns > 0) {
    // Waiting out a map re-run stalls the affected reduce task.
    EXPECT_GT(run.timing.end, baseline.timing.end);
  }
}

TEST(MachineFaultJobTest, CorruptionCountersAbsentWhenProbabilityZero) {
  FaultConfig fault;
  fault.enabled = true;
  fault.injected = {{TaskPhase::kMap, 0, 0}};  // unrelated crash fault
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_EQ(run.counters.values().count("mr.shuffle.checksum_errors"), 0u);
  EXPECT_EQ(run.counters.values().count("mr.shuffle.refetches"), 0u);
  EXPECT_EQ(run.counters.values().count("mr.shuffle.map_reruns"), 0u);
}

// Poison-sensitive variant of RunJob: input record i carries value i, so
// FaultPlan's record indices line up with the values the map function sees.
// `drop_records` (sorted) makes the map function itself skip those records —
// the fault-free twin of what skip-bad-records quarantining should produce.
Job::Result RunPoisonableJob(const ClusterConfig& cluster,
                             const std::vector<int64_t>& drop_records = {}) {
  std::vector<int> input;
  for (int i = 0; i < 229; ++i) input.push_back(i);
  Job job(kMapTasks, kReduceTasks);
  job.set_map_cost_per_record(0.5);
  job.set_partitioner([](const int& key, int r) { return key % r; });
  job.set_poison_faults(true);
  return job.Run(
      input,
      [&drop_records](const int& record, Job::MapContext* ctx) {
        if (std::binary_search(drop_records.begin(), drop_records.end(),
                               static_cast<int64_t>(record))) {
          return;
        }
        ctx->counters().Increment("map.records");
        ctx->clock().Charge(0.25);
        ctx->Emit(record % 11, record);
      },
      [](const int& key, std::vector<int>* values, Job::ReduceContext* ctx) {
        int sum = 0;
        for (int v : *values) sum += v;
        ctx->counters().Increment("reduce.groups");
        ctx->clock().Charge(static_cast<double>(values->size()));
        ctx->Emit(key, sum);
      },
      cluster);
}

TEST(MachineFaultJobTest, SkipBadRecordsQuarantinesAndMatchesManualSkip) {
  // Records 10 (map task 0) and 100 (map task 1) are poison.
  FaultConfig fault;
  fault.enabled = true;
  fault.poison_records = {10, 100};
  fault.skip_bad_records = true;
  const Job::Result run = RunPoisonableJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;

  ASSERT_EQ(run.quarantined.size(), 2u);
  EXPECT_EQ(run.quarantined[0].task, 0);
  EXPECT_EQ(run.quarantined[0].record, 10);
  EXPECT_EQ(run.quarantined[1].task, 1);
  EXPECT_EQ(run.quarantined[1].record, 100);
  EXPECT_EQ(run.counters.Get("mr.skipped.records"), 2);
  // Each poison record crashed max_attempts_before_skip=2 attempts.
  EXPECT_EQ(run.counters.Get("mr.failed_attempts"), 4);

  // Byte-identical to a fault-free run whose map function skips the same
  // records by hand — quarantining is the ONLY divergence.
  const Job::Result twin = RunPoisonableJob(TestCluster(), {10, 100});
  ASSERT_FALSE(twin.failed);
  EXPECT_TRUE(twin.quarantined.empty());
  EXPECT_EQ(run.outputs, twin.outputs);
  EXPECT_EQ(CountersMinusMr(run.counters), CountersMinusMr(twin.counters));
}

TEST(MachineFaultJobTest, PoisonWithoutSkipDoomsTheJob) {
  FaultConfig fault;
  fault.enabled = true;
  fault.poison_records = {10};
  fault.skip_bad_records = false;  // Hadoop default: the record kills the job
  const Job::Result run = RunPoisonableJob(TestCluster(fault));
  EXPECT_TRUE(run.failed);
  EXPECT_NE(run.error.find("attempts"), std::string::npos) << run.error;
  EXPECT_TRUE(run.quarantined.empty());
  EXPECT_TRUE(run.outputs.empty());
}

TEST(MachineFaultJobTest, PoisonInsensitiveJobIgnoresPoisonRecords) {
  const Job::Result baseline = RunJob(TestCluster());
  FaultConfig fault;
  fault.enabled = true;
  fault.poison_records = {10, 100};
  fault.skip_bad_records = true;
  // RunJob never calls set_poison_faults: like a statistics pre-pass, its
  // map code cannot crash on a bad record.
  const Job::Result run = RunJob(TestCluster(fault));
  ASSERT_FALSE(run.failed) << run.error;
  EXPECT_TRUE(run.quarantined.empty());
  EXPECT_EQ(run.outputs, baseline.outputs);
  EXPECT_EQ(run.counters.values().count("mr.skipped.records"), 0u);
}

TEST(MachineFaultJobTest, LosingAllMachinesFailsTheJobCleanly) {
  FaultConfig fault;
  fault.enabled = true;
  fault.machine_failures = {{0, 10.0}, {1, 15.0}};
  const Job::Result run = RunJob(TestCluster(fault));
  EXPECT_TRUE(run.failed);
  EXPECT_NE(run.error.find("no healthy machines remain"), std::string::npos)
      << run.error;
  EXPECT_TRUE(run.outputs.empty());
  // Only the runtime's own bookkeeping survives a failed job.
  for (const auto& [name, value] : run.counters.values()) {
    EXPECT_EQ(name.rfind("mr.", 0), 0u) << name;
  }
}

TEST(MachineFaultJobTest, BackoffShiftsTimelineOnly) {
  FaultConfig fault;
  fault.enabled = true;
  fault.max_attempts = 4;
  fault.injected = {{TaskPhase::kReduce, 0, 0}, {TaskPhase::kReduce, 0, 1}};
  const Job::Result immediate = RunJob(TestCluster(fault));
  ASSERT_FALSE(immediate.failed);

  fault.retry_backoff_seconds = 5.0;
  fault.retry_backoff_factor = 2.0;
  const Job::Result delayed = RunJob(TestCluster(fault));
  ASSERT_FALSE(delayed.failed);

  EXPECT_EQ(delayed.outputs, immediate.outputs);
  // Two failures of one task: delays 5 and 10 seconds.
  EXPECT_EQ(delayed.counters.Get("mr.retry.backoff_seconds"), 15);
  EXPECT_GE(delayed.timing.end, immediate.timing.end + 15.0);
}

// ---- End-to-end: ProgressiveEr under machine failures ----

TEST(MachineFaultJobTest, ProgressiveErResolvedPairsSurviveMachineLoss) {
  PublicationConfig gen;
  gen.num_entities = 1500;
  gen.seed = 23;
  const LabeledDataset data = GeneratePublications(gen);
  PublicationConfig train_gen;
  train_gen.num_entities = 500;
  train_gen.seed = 24;
  const LabeledDataset train = GeneratePublications(train_gen);

  const BlockingConfig blocking(
      {{"X", kPubTitle, {2, 4}, -1}, {"Y", kPubVenue, {3}, -1}});
  const MatchFunction match(
      {{kPubTitle, AttributeSimilarity::kEditDistance, 0.7, 0},
       {kPubVenue, AttributeSimilarity::kEditDistance, 0.3, 0}},
      0.75);
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);
  const SortedNeighborMechanism sn;

  ProgressiveErOptions options;
  options.cluster = TestCluster();
  options.cluster.machines = 3;
  options.cluster.seconds_per_cost_unit = 1e-3;
  const ErRunResult clean =
      ProgressiveEr(blocking, match, sn, prob, options).Run(data.dataset);
  ASSERT_FALSE(clean.failed) << clean.error;

  ProgressiveErOptions faulty_options = options;
  faulty_options.cluster.fault.enabled = true;
  faulty_options.cluster.fault.seed = 5;
  faulty_options.cluster.fault.reduce_failure_prob = 0.2;
  faulty_options.cluster.fault.max_attempts = 10;
  faulty_options.cluster.fault.retry_backoff_seconds = 1.0;
  // One machine dies mid-run; the survivors absorb its tasks.
  faulty_options.cluster.fault.machine_failures = {
      {1, clean.total_time * 0.5}};
  const ErRunResult faulty =
      ProgressiveEr(blocking, match, sn, prob, faulty_options)
          .Run(data.dataset);
  ASSERT_FALSE(faulty.failed) << faulty.error;

  // Byte-identical resolved pairs — the acceptance bar for fault domains.
  EXPECT_EQ(faulty.duplicates, clean.duplicates);
  EXPECT_EQ(faulty.duplicate_count, clean.duplicate_count);
  EXPECT_EQ(faulty.comparisons, clean.comparisons);
  EXPECT_EQ(CountersMinusMr(faulty.counters), CountersMinusMr(clean.counters));
  EXPECT_GE(faulty.total_time, clean.total_time);
}

}  // namespace
}  // namespace progres

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "similarity/levenshtein.h"

namespace progres {
namespace {

TEST(LevenshteinTest, IdenticalStrings) {
  EXPECT_EQ(Levenshtein("kitten", "kitten"), 0);
  EXPECT_EQ(Levenshtein("", ""), 0);
}

TEST(LevenshteinTest, ClassicExamples) {
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2);
  EXPECT_EQ(Levenshtein("intention", "execution"), 5);
}

TEST(LevenshteinTest, EmptyVsNonEmpty) {
  EXPECT_EQ(Levenshtein("", "abc"), 3);
  EXPECT_EQ(Levenshtein("abc", ""), 3);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(Levenshtein("abcdef", "azced"), Levenshtein("azced", "abcdef"));
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(Levenshtein("abc", "axc"), 1);  // substitution
  EXPECT_EQ(Levenshtein("abc", "ac"), 1);   // deletion
  EXPECT_EQ(Levenshtein("abc", "abxc"), 1); // insertion
}

TEST(BoundedLevenshteinTest, WithinBoundMatchesExact) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 5), 3);
}

TEST(BoundedLevenshteinTest, ExceedsBoundReturnsBoundPlusOne) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 2), 3);
  EXPECT_EQ(BoundedLevenshtein("aaaa", "bbbb", 1), 2);
}

TEST(BoundedLevenshteinTest, LengthGapShortCircuits) {
  EXPECT_EQ(BoundedLevenshtein("a", "abcdefgh", 3), 4);
}

TEST(BoundedLevenshteinTest, ZeroBound) {
  EXPECT_EQ(BoundedLevenshtein("same", "same", 0), 0);
  EXPECT_EQ(BoundedLevenshtein("same", "samx", 0), 1);
}

TEST(EditSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
}

TEST(EditSimilarityTest, PartialOverlap) {
  // dist("abcd", "abxd") = 1, max len 4 -> 0.75.
  EXPECT_DOUBLE_EQ(EditSimilarity("abcd", "abxd"), 0.75);
}

// Property sweep: the banded implementation must agree with the classic DP
// whenever the true distance is within the bound, and report bound + 1
// otherwise. Random strings across several alphabet sizes and length ranges.
class LevenshteinPropertyTest
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LevenshteinPropertyTest, BandedAgreesWithExact) {
  const auto [seed, max_len, alphabet] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  for (int iter = 0; iter < 300; ++iter) {
    std::string a;
    std::string b;
    const int la = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(max_len) + 1));
    const int lb = static_cast<int>(rng.UniformU64(static_cast<uint64_t>(max_len) + 1));
    for (int i = 0; i < la; ++i) {
      a.push_back(static_cast<char>('a' + rng.UniformU64(static_cast<uint64_t>(alphabet))));
    }
    for (int i = 0; i < lb; ++i) {
      b.push_back(static_cast<char>('a' + rng.UniformU64(static_cast<uint64_t>(alphabet))));
    }
    const int64_t exact = Levenshtein(a, b);
    for (int64_t bound : {0L, 1L, 2L, 5L, 30L}) {
      const int64_t banded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(banded, exact) << "a=" << a << " b=" << b << " k=" << bound;
      } else {
        EXPECT_EQ(banded, bound + 1)
            << "a=" << a << " b=" << b << " k=" << bound << " exact=" << exact;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevenshteinPropertyTest,
    testing::Values(std::make_tuple(1, 8, 2), std::make_tuple(2, 8, 26),
                    std::make_tuple(3, 20, 3), std::make_tuple(4, 20, 26),
                    std::make_tuple(5, 40, 4)));

}  // namespace
}  // namespace progres

// Parameterized integration sweep: the full progressive pipeline must hold
// its core invariants across the configuration grid (scheduler x emission x
// cluster size x workload) — plus the golden-equivalence check that pins
// every migrated driver's observable output to the pre-refactor fixtures.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/progressive_er.h"
#include "datagen/generators.h"
#include "er_golden_util.h"
#include "eval/clustering.h"
#include "eval/recall_curve.h"
#include "mapreduce/trace.h"
#include "mechanism/psnm.h"
#include "mechanism/sorted_neighbor.h"

namespace progres {
namespace {

struct MatrixParams {
  TreeScheduler scheduler;
  MapEmission emission;
  int machines;
  bool books;

  std::string Label() const {
    std::string label;
    label += scheduler == TreeScheduler::kOurs         ? "ours"
             : scheduler == TreeScheduler::kNoSplit    ? "nosplit"
             : scheduler == TreeScheduler::kLpt        ? "lpt"
             : scheduler == TreeScheduler::kBlockSplit ? "blocksplit"
                                                       : "pairrange";
    label += emission == MapEmission::kPerBlock ? "_perblock" : "_pertree";
    label += "_m" + std::to_string(machines);
    label += books ? "_books" : "_pubs";
    return label;
  }
};

class DriverMatrixTest : public testing::TestWithParam<MatrixParams> {};

TEST_P(DriverMatrixTest, PipelineInvariantsHold) {
  const MatrixParams p = GetParam();

  LabeledDataset train;
  LabeledDataset data;
  BlockingConfig blocking{std::vector<FamilySpec>{}};
  MatchFunction match{{}, 0.75};
  if (p.books) {
    BookConfig train_gen;
    train_gen.num_entities = 500;
    train_gen.seed = 170;
    train = GenerateBooks(train_gen);
    BookConfig gen;
    gen.num_entities = 2000;
    gen.seed = 171;
    data = GenerateBooks(gen);
    blocking = BlockingConfig({{"X", kBookTitle, {3, 5, 8}, -1},
                               {"Y", kBookAuthors, {3, 5}, -1},
                               {"Z", kBookPublisher, {3, 5}, -1}});
    match = MatchFunction(
        {{kBookTitle, AttributeSimilarity::kEditDistance, 0.35, 0},
         {kBookAuthors, AttributeSimilarity::kEditDistance, 0.2, 0},
         {kBookPublisher, AttributeSimilarity::kEditDistance, 0.1, 0},
         {kBookYear, AttributeSimilarity::kExact, 0.1, 0},
         {kBookIsbn, AttributeSimilarity::kEditDistance, 0.1, 0},
         {kBookPages, AttributeSimilarity::kExact, 0.05, 0},
         {kBookLanguage, AttributeSimilarity::kExact, 0.05, 0},
         {kBookEdition, AttributeSimilarity::kExact, 0.05, 0}},
        0.75);
  } else {
    PublicationConfig train_gen;
    train_gen.num_entities = 500;
    train_gen.seed = 172;
    train = GeneratePublications(train_gen);
    PublicationConfig gen;
    gen.num_entities = 2000;
    gen.seed = 173;
    data = GeneratePublications(gen);
    blocking = BlockingConfig({{"X", kPubTitle, {2, 4, 8}, -1},
                               {"Y", kPubAbstract, {3, 5}, -1},
                               {"Z", kPubVenue, {3, 5}, -1}});
    match = MatchFunction(
        {{kPubTitle, AttributeSimilarity::kEditDistance, 0.5, 0},
         {kPubAbstract, AttributeSimilarity::kEditDistance, 0.3, 350},
         {kPubVenue, AttributeSimilarity::kEditDistance, 0.2, 0}},
        0.75);
  }
  const ProbabilityModel prob =
      ProbabilityModel::Train(train.dataset, train.truth, blocking);

  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster.machines = p.machines;
  options.cluster.execution_threads = 4;
  options.scheduler = p.scheduler;
  options.map_emission = p.emission;
  const ProgressiveEr er(blocking, match, sn, prob, options);
  const ErRunResult result = er.Run(data.dataset);

  SCOPED_TRACE(p.Label());
  // Invariant 1: substantial recall on every configuration.
  const RecallCurve curve = RecallCurve::FromEvents(result.events, data.truth);
  EXPECT_GT(curve.final_recall(), 0.75);
  // Invariant 2: events are confined to the run window.
  for (const DuplicateEvent& event : result.events) {
    EXPECT_GE(event.time, result.preprocessing_end - 1e-9);
    EXPECT_LE(event.time, result.total_time + 1e-9);
  }
  // Invariant 3: counters line up with outcome totals.
  EXPECT_EQ(result.counters.Get("reduce.comparisons"), result.comparisons);
  EXPECT_EQ(result.counters.Get("reduce.duplicates"),
            result.duplicate_count);
  // Invariant 4: clustering the duplicates never crashes and produces a
  // valid assignment.
  const std::vector<int32_t> clusters =
      TransitiveClosure(data.dataset.size(), result.duplicates);
  EXPECT_EQ(static_cast<int64_t>(clusters.size()), data.dataset.size());
}

// Byte-identical equivalence against the pre-refactor seed: every driver's
// full observable output (pairs, counters sans "mr.shuffle.", events,
// chunks, recall curve — or the forests, for the stats job) must match the
// fixture frozen before the runtime was layered. Regenerate the fixtures
// with `make_er_golden tests/golden` only for intentional output changes.
class GoldenEquivalenceTest : public testing::TestWithParam<std::string> {};

TEST_P(GoldenEquivalenceTest, MatchesFrozenFixture) {
  if (testing_util::DiskFaultOverlayActive()) {
    GTEST_SKIP() << "fixtures frozen without the disk-fault overlay";
  }
  const std::string name = GetParam();
  std::ifstream in(std::string(PROGRES_GOLDEN_DIR) + "/" + name + ".golden",
                   std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing fixture for " << name;
  std::stringstream frozen;
  frozen << in.rdbuf();
  const std::string actual = testing_util::RunGoldenDriver(name);
  EXPECT_EQ(actual, frozen.str()) << name << " output diverged from the seed";
}

// Differential: attaching a trace recorder must not change any observable
// output — pairs, counters, events, chunks, recall curve and every
// simulated timestamp (including the makespan) stay byte-identical to the
// untraced run, which the fixture above already pins. The recorder itself
// must not be left empty, or the check would pass vacuously.
TEST_P(GoldenEquivalenceTest, TracingLeavesOutputByteIdentical) {
  if (testing_util::DiskFaultOverlayActive()) {
    GTEST_SKIP() << "fixtures frozen without the disk-fault overlay";
  }
  const std::string name = GetParam();
  std::ifstream in(std::string(PROGRES_GOLDEN_DIR) + "/" + name + ".golden",
                   std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing fixture for " << name;
  std::stringstream frozen;
  frozen << in.rdbuf();
  TraceRecorder recorder;
  const std::string traced = testing_util::RunGoldenDriver(name, &recorder);
  EXPECT_EQ(traced, frozen.str()) << name << " output changed under tracing";
  EXPECT_FALSE(recorder.spans().empty())
      << name << " recorded no spans while traced";
}

// Differential: the final duplicate set is a function of the workload, not
// of how the pair space is partitioned across reduce tasks. Every
// scheduler — including the pair-level BlockSplit/PairRange, which carve
// blocks into sub-block match tasks — must reproduce exactly the "pair"
// lines of the frozen progressive fixture, and therefore byte-identical
// final clusterings. Fixture parsing, not regeneration: a scheduler that
// drops or duplicates pairs diverges from the seed here.
TEST(SchedulerDifferentialTest, FinalDuplicatesInvariantAcrossSchedulers) {
  std::ifstream in(
      std::string(PROGRES_GOLDEN_DIR) + "/progressive_perblock.golden",
      std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> frozen_pairs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("pair ", 0) == 0) frozen_pairs.push_back(line.substr(5));
  }
  ASSERT_FALSE(frozen_pairs.empty());
  std::sort(frozen_pairs.begin(), frozen_pairs.end());

  const testing_util::GoldenWorkload w = testing_util::MakeGoldenWorkload();
  const ProbabilityModel prob =
      ProbabilityModel::Train(w.train.dataset, w.train.truth, w.blocking);
  const SortedNeighborMechanism sn;
  std::vector<int32_t> first_clusters;
  for (const TreeScheduler scheduler :
       {TreeScheduler::kOurs, TreeScheduler::kNoSplit, TreeScheduler::kLpt,
        TreeScheduler::kBlockSplit, TreeScheduler::kPairRange}) {
    SCOPED_TRACE("scheduler=" + std::to_string(static_cast<int>(scheduler)));
    ProgressiveErOptions options;
    options.cluster = testing_util::GoldenCluster();
    options.scheduler = scheduler;
    const ProgressiveEr er(w.blocking, w.match, sn, prob, options);
    const ErRunResult result = er.Run(w.data.dataset);
    ASSERT_FALSE(result.failed) << result.error;

    std::vector<std::string> pairs;
    for (const PairKey pair : result.duplicates) {
      const auto [a, b] = PairKeyIds(pair);
      pairs.push_back(std::to_string(a) + "-" + std::to_string(b));
    }
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, frozen_pairs);

    const std::vector<int32_t> clusters =
        TransitiveClosure(w.data.dataset.size(), result.duplicates);
    if (first_clusters.empty()) {
      first_clusters = clusters;
    } else {
      EXPECT_EQ(clusters, first_clusters);
    }
  }
}

// Invalid schedule parameters must fail the run with a labelled error, not
// crash or silently produce an empty result.
TEST(SchedulerDifferentialTest, InvalidScheduleParamsFailTheRun) {
  const testing_util::GoldenWorkload w = testing_util::MakeGoldenWorkload();
  const ProbabilityModel prob =
      ProbabilityModel::Train(w.train.dataset, w.train.truth, w.blocking);
  const SortedNeighborMechanism sn;
  ProgressiveErOptions options;
  options.cluster = testing_util::GoldenCluster();
  options.cost_vector = {5.0, 1.0};  // not strictly increasing
  const ProgressiveEr er(w.blocking, w.match, sn, prob, options);
  const ErRunResult result = er.Run(w.data.dataset);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.error.find("schedule generation"), std::string::npos)
      << result.error;
}

INSTANTIATE_TEST_SUITE_P(Drivers, GoldenEquivalenceTest,
                         testing::ValuesIn(testing_util::GoldenDriverNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

INSTANTIATE_TEST_SUITE_P(
    Grid, DriverMatrixTest,
    testing::Values(
        MatrixParams{TreeScheduler::kOurs, MapEmission::kPerBlock, 2, false},
        MatrixParams{TreeScheduler::kOurs, MapEmission::kPerTree, 2, false},
        MatrixParams{TreeScheduler::kNoSplit, MapEmission::kPerBlock, 2,
                     false},
        MatrixParams{TreeScheduler::kLpt, MapEmission::kPerBlock, 2, false},
        MatrixParams{TreeScheduler::kOurs, MapEmission::kPerBlock, 5, false},
        MatrixParams{TreeScheduler::kOurs, MapEmission::kPerTree, 5, true},
        MatrixParams{TreeScheduler::kOurs, MapEmission::kPerBlock, 2, true},
        MatrixParams{TreeScheduler::kBlockSplit, MapEmission::kPerBlock, 2,
                     false},
        MatrixParams{TreeScheduler::kPairRange, MapEmission::kPerBlock, 2,
                     false},
        // Pair-level schedules cannot regroup by tree; per-tree emission
        // must fall back to per-block without breaking any invariant.
        MatrixParams{TreeScheduler::kBlockSplit, MapEmission::kPerTree, 3,
                     false},
        MatrixParams{TreeScheduler::kPairRange, MapEmission::kPerBlock, 2,
                     true}),
    [](const testing::TestParamInfo<MatrixParams>& info) {
      return info.param.Label();
    });

}  // namespace
}  // namespace progres
